#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1 in thirty lines.

Runs the vector operation ``a = b * (c + d)`` on the simulated Snitch-like
core in the three forms of the paper's Fig. 1 -- baseline, loop-unrolled,
and chaining -- and prints FPU utilization, cycle count and how many
architectural accumulator registers each variant needed.

Run with:  python examples/quickstart.py
"""

from repro import Session, VecopVariant, workload
from repro.eval.report import format_table


def main() -> None:
    n = 256
    session = Session()
    rows = []
    for variant in VecopVariant:
        result = session.run(workload("vecop", variant, n=n))
        rows.append([
            variant.value,
            result.fpu_utilization,
            result.region_cycles,
            result.meta["arch_accumulators"],
            "yes" if result.correct else "NO",
        ])
    print(format_table(
        ["variant", "fpu util", "cycles", "arch accumulators", "correct"],
        rows,
        title=f"Fig. 1 vector op a = b*(c+d), n={n} doubles",
    ))
    print()
    print("Chaining reaches unrolled throughput with a single accumulator")
    print("register: the FPU pipeline registers provide the other three.")


if __name__ == "__main__":
    main()
