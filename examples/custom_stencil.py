#!/usr/bin/env python
"""Define a custom stencil and run it through the chaining pipeline.

Shows the library as a downstream user would drive it: declare a stencil
(here an anisotropic 3-D star with 11 taps), pick a grid, generate the
Chaining+ kernel, run it, and verify against the numpy golden model --
plus a look at the register plan that the budget allocator produced.

Run with:  python examples/custom_stencil.py
"""

import numpy as np

from repro import Grid3d, Session, StencilSpec, Variant, build_stencil


def make_anisotropic_star() -> StencilSpec:
    """An 11-tap star with a longer reach along x."""
    taps = [
        (0, 0, 0),
        (-1, 0, 0), (1, 0, 0),
        (0, -1, 0), (0, 1, 0),
        (0, 0, -2), (0, 0, -1), (0, 0, 1), (0, 0, 2),
        (0, -1, -1), (0, 1, 1),
    ]
    raw = np.linspace(1.0, 2.0, len(taps))
    coeffs = tuple(raw / raw.sum())
    return StencilSpec("aniso_star", tuple(taps), coeffs)


def main() -> None:
    spec = make_anisotropic_star()
    grid = Grid3d(nz=2, ny=6, nx=32, radius=2)

    session = Session()
    for variant in (Variant.BASE, Variant.CHAINING_PLUS):
        build = build_stencil(spec, grid, variant)
        result = session.run(build)
        print(f"{spec.name} / {variant.label}:")
        print(f"  register plan : {build.meta['register_plan']}")
        print(f"  bit-exact     : {result.correct}")
        print(f"  fpu util      : {result.fpu_utilization:.3f}")
        print(f"  cycles/point  : {result.cycles_per_point:.2f}")
        print(f"  energy eff    : {result.gflops_per_watt:.2f} Gflop/s/W")
        print()

    print("Any tap set works: non-cube patterns ride the SARIS-style")
    print("indirect input stream, and the register allocator decides how")
    print("many coefficients stay resident per variant.")


if __name__ == "__main__":
    main()
