#!/usr/bin/env python
"""Sweep the FPU pipeline depth: chaining benefits grow with depth.

Section II of the paper notes that "chaining benefits are increased for
functional units with deeper pipelines": a deeper pipe means unrolling
needs more architectural registers, while chaining still needs one.  This
example sweeps the pipe depth, compares baseline vs. chaining utilization
on the Fig. 1 vector op, and reports the registers a software-only unroll
would burn at each depth.

Run with:  python examples/pipeline_depth_sweep.py
"""

from repro import CoreConfig, Session, VecopVariant, build_vecop
from repro.eval.report import format_table
from repro.isa.instructions import InstrClass


def config_with_depth(depth: int) -> CoreConfig:
    cfg = CoreConfig()
    cfg.fpu_latency = dict(cfg.fpu_latency)
    for iclass in (InstrClass.FP_ADD, InstrClass.FP_MUL, InstrClass.FP_FMA):
        cfg.fpu_latency[iclass] = depth
    cfg.fpu_pipe_depth = depth
    return cfg


def main() -> None:
    rows = []
    # Depth 7 is the frep-body limit (2*(depth+1) <= 16 instructions).
    for depth in (1, 2, 3, 4, 5, 6):
        cfg = config_with_depth(depth)
        session = Session(cfg)
        n = 24 * (depth + 1)
        base = session.run(build_vecop(n=n, variant=VecopVariant.BASELINE,
                                       cfg=cfg))
        chain = session.run(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                        cfg=cfg))
        rows.append([
            depth,
            base.fpu_utilization,
            chain.fpu_utilization,
            chain.fpu_utilization / base.fpu_utilization,
            depth + 1,   # registers a software unroll would need
            1,           # registers chaining needs
        ])
    print(format_table(
        ["pipe depth", "baseline util", "chaining util", "gain x",
         "unroll regs", "chain regs"],
        rows,
        title="FPU pipeline depth sweep (Fig. 1 vector op)",
    ))
    print()
    print("Deeper pipes widen the gap: the baseline loses `depth` slots")
    print("per dependent pair while chaining stays near full throughput")
    print("with a single architectural register.")


if __name__ == "__main__":
    main()
