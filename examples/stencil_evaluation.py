#!/usr/bin/env python
"""The paper's evaluation (section III) on one stencil.

Builds and runs ``box3d1r`` in all five code variants -- Base--, Base-,
Base, Chaining, Chaining+ -- verifying each against the numpy golden
model, and prints the utilization / power / energy-efficiency table that
corresponds to one kernel group of Fig. 3.

Run with:  python examples/stencil_evaluation.py [kernel]
"""

import sys

from repro import Session, Variant, workload
from repro.eval.report import format_table, percent_delta
from repro.kernels.variants import VARIANT_ORDER


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "box3d1r"
    session = Session()
    results = {}
    for variant in VARIANT_ORDER:
        results[variant] = session.run(workload(kernel, variant))

    rows = []
    for variant in VARIANT_ORDER:
        res = results[variant]
        rows.append([
            variant.label,
            res.fpu_utilization,
            res.region_cycles,
            res.cycles_per_point,
            res.power_mw,
            res.gflops_per_watt,
        ])
    print(format_table(
        ["variant", "fpu util", "cycles", "cyc/point", "power mW",
         "Gflop/s/W"],
        rows,
        title=f"{kernel}: the five variants of the paper's Fig. 3",
    ))

    base = results[Variant.BASE]
    plus = results[Variant.CHAINING_PLUS]
    speedup = percent_delta(base.region_cycles, plus.region_cycles)
    eff = percent_delta(plus.gflops_per_watt, base.gflops_per_watt)
    print()
    print(f"Chaining+ vs Base: {speedup:+.1f}% speedup, "
          f"{eff:+.1f}% energy efficiency "
          f"(paper: ~+4% / ~+10% geomean over two stencils)")


if __name__ == "__main__":
    main()
