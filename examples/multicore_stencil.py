#!/usr/bin/env python
"""SPMD multi-core: split a stencil-style sweep across cluster cores.

The paper's experiments instantiate a Snitch cluster with one compute
core; real clusters ship several sharing the TCDM.  This example runs a
chained vector kernel SPMD on 1, 2 and 4 cores: each hart picks its slice
via ``mhartid``, configures its own SSR lanes, runs the chaining loop,
and meets at the hardware barrier.

Run with:  python examples/multicore_stencil.py
"""

import numpy as np

from repro.core import Cluster
from repro.eval.report import format_table
from repro.kernels.ssrgen import SsrPatternAsm
from repro.ssr.config import CfgField, cfg_addr

N = 512          # doubles, split evenly across cores
IN_C = 0x10000
IN_D = 0x20000
OUT_A = 0x30000
SCALAR = 0x1000


def program(num_cores: int) -> str:
    per_core = N // num_cores
    chunk_bytes = per_core * 8
    # SSR patterns with a placeholder base; each hart rebases its slice.
    ssr0 = SsrPatternAsm(ssr=0, base=IN_C, bounds=[per_core], strides=[8])
    ssr1 = SsrPatternAsm(ssr=1, base=IN_D, bounds=[per_core], strides=[8])
    ssr2 = SsrPatternAsm(ssr=2, base=OUT_A, bounds=[per_core], strides=[8],
                         write=True)
    rebase = "\n".join(
        f"""    li t0, {base}
    add t0, t0, a5
    li t1, {cfg_addr(ssr, CfgField.BASE)}
    scfgw t0, t1
    li t0, {ctrl}
    li t1, {cfg_addr(ssr, CfgField.CTRL)}
    scfgw t0, t1"""
        for ssr, base, ctrl in ((0, IN_C, 0), (1, IN_D, 0), (2, OUT_A, 1))
    )
    return f"""
    csrr a4, mhartid
    li a5, {chunk_bytes}
    mul a5, a4, a5          # byte offset of this hart's slice
    li a0, {SCALAR}
    fld fa0, 0(a0)
{ssr0.emit_setup()}
{ssr1.emit_setup()}
{ssr2.emit_setup()}
{rebase}
    csrrwi x0, chain_mask, 8
    csrrsi x0, ssr_enable, 1
    li t2, {per_core // 4 - 1}
    frep.o t2, 7
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    csrr t3, ssr_enable     # drain barrier (FP side)
    csrrwi x0, 0x7C6, 1     # cluster barrier
    csrrwi x0, chain_mask, 0
    csrrci x0, ssr_enable, 1
    ebreak
"""


def main() -> None:
    rng = np.random.default_rng(21)
    c, d = rng.random(N), rng.random(N)
    golden = (c + d) * 2.5

    rows = []
    baseline_cycles = None
    for num_cores in (1, 2, 4):
        cluster = Cluster(program(num_cores), num_cores=num_cores)
        cluster.mem.write_f64(SCALAR, 2.5)
        cluster.load_f64(IN_C, c)
        cluster.load_f64(IN_D, d)
        cluster.run()
        out = cluster.read_f64(OUT_A, (N,))
        assert np.array_equal(out, golden), f"{num_cores} cores: mismatch"
        if baseline_cycles is None:
            baseline_cycles = cluster.cycle
        rows.append([num_cores, cluster.cycle,
                     baseline_cycles / cluster.cycle,
                     cluster.tcdm.total_conflicts])
    print(format_table(
        ["cores", "cycles", "speedup", "TCDM conflicts"],
        rows, title=f"SPMD chained vecop over {N} doubles"))
    print()
    print("Each hart streams its own slice through its private SSR lanes;")
    print("sub-linear scaling comes from shared-TCDM bank conflicts and")
    print("the fixed per-hart configuration prologue.")


if __name__ == "__main__":
    main()
