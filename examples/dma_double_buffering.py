#!/usr/bin/env python
"""Double-buffered streaming with the cluster DMA (Xdma).

The Snitch-cluster usage model behind the paper's kernels: bulk data
lives in L2; the DMA engine copies tiles into the TCDM while the core
computes on the previous tile.  This example scales a large vector by a
constant, tile by tile, in two ways:

* **blocking**  -- DMA a tile in, compute, DMA it out, repeat;
* **double-buffered** -- two TCDM buffers; tile ``i+1`` loads (and tile
  ``i-1`` stores) while tile ``i`` computes.

Both verify bit-exactly; the cycle counts show the overlap.

Run with:  python examples/dma_double_buffering.py
"""

import numpy as np

from repro.core import Cluster
from repro.kernels.ssrgen import SsrPatternAsm

L2_IN = 0x40000      # "L2" region of the flat memory
L2_OUT = 0x80000
BUF_A = 0x2000       # TCDM tile buffers
BUF_B = 0x4000
TILE = 256           # doubles per tile
TILES = 8


def tile_compute(buf: int, scale_reg: str = "fa0") -> str:
    """SSR-streamed in-place scale of one tile in the TCDM."""
    return "\n".join([
        SsrPatternAsm(ssr=0, base=buf, bounds=[TILE], strides=[8]).emit(),
        SsrPatternAsm(ssr=2, base=buf, bounds=[TILE], strides=[8],
                      write=True).emit(),
        "    csrrsi x0, ssr_enable, 1",
        f"    li t2, {TILE - 1}",
        "    frep.o t2, 0",
        f"    fmul.d ft2, ft0, {scale_reg}",
        "    csrr t3, ssr_enable      # drain barrier",
        "    csrrci x0, ssr_enable, 1",
    ])


def dma(src: int | str, dst: int | str, nbytes: int) -> str:
    return "\n".join([
        f"    li t0, {src}", "    dmsrc t0",
        f"    li t0, {dst}", "    dmdst t0",
        f"    li t1, {nbytes}",
        "    dmcpy a0, t1",
    ])


WAIT = """
wait{id}:
    dmstat a1
    bnez a1, wait{id}
"""


def blocking_program() -> str:
    parts = ["    li a2, 0x1000", "    fld fa0, 0(a2)",
             "    csrrwi x0, sim_mark, 1"]
    for i in range(TILES):
        src = L2_IN + i * TILE * 8
        dst = L2_OUT + i * TILE * 8
        parts.append(dma(src, BUF_A, TILE * 8))
        parts.append(WAIT.format(id=2 * i))
        parts.append(tile_compute(BUF_A))
        parts.append(dma(BUF_A, dst, TILE * 8))
        parts.append(WAIT.format(id=2 * i + 1))
    parts += ["    csrrwi x0, sim_mark, 2", "    ebreak"]
    return "\n".join(parts)


def double_buffered_program() -> str:
    parts = ["    li a2, 0x1000", "    fld fa0, 0(a2)",
             "    csrrwi x0, sim_mark, 1"]
    # Preload tile 0 into A.
    parts.append(dma(L2_IN, BUF_A, TILE * 8))
    parts.append(WAIT.format(id="p"))
    bufs = (BUF_A, BUF_B)
    for i in range(TILES):
        cur = bufs[i % 2]
        nxt = bufs[(i + 1) % 2]
        if i + 1 < TILES:
            # Kick off the next tile's load before computing.
            parts.append(dma(L2_IN + (i + 1) * TILE * 8, nxt, TILE * 8))
        parts.append(tile_compute(cur))
        # Store the finished tile; overlaps with the next load/compute.
        parts.append(dma(cur, L2_OUT + i * TILE * 8, TILE * 8))
        parts.append(WAIT.format(id=i))   # drain queue before reuse
    parts += ["    csrrwi x0, sim_mark, 2", "    ebreak"]
    return "\n".join(parts)


def run(name: str, program: str) -> int:
    cluster = Cluster(program)
    data = np.arange(TILES * TILE, dtype=np.float64)
    cluster.mem.write_f64(0x1000, 3.0)
    cluster.load_f64(L2_IN, data)
    cluster.run()
    out = cluster.read_f64(L2_OUT, (TILES * TILE,))
    assert np.array_equal(out, data * 3.0), f"{name}: wrong result"
    cycles = cluster.perf.region_cycles(1, 2)
    print(f"{name:16s} {cycles:6d} cycles "
          f"(DMA moved {cluster.dma.bytes_moved} bytes)")
    return cycles


def main() -> None:
    print(f"Scaling {TILES} tiles of {TILE} doubles via TCDM buffers:")
    blocking = run("blocking", blocking_program())
    overlapped = run("double-buffered", double_buffered_program())
    print(f"\noverlap speedup: {blocking / overlapped:.2f}x")


if __name__ == "__main__":
    main()
