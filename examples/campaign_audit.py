#!/usr/bin/env python
"""Resuming an interrupted campaign: audit, backfill, re-audit.

A campaign is interrupted halfway (here: simply by mapping only half
the spec's workloads), leaving the result store incomplete.  The audit
diffs the spec against the store and classifies every point; the
backfill plan turns the gaps into a `Session.map` execution that
simulates ONLY what is lost -- completed points never re-run, because
the store is content-addressed.  The same flow resumes campaigns
killed mid-run, re-keys results from older package versions, and
retries failures within a bounded budget (`repro audit --backfill` is
the CLI spelling).

Run with:  python examples/campaign_audit.py
"""

import tempfile

from repro.api import Session
from repro.sweep import SweepSpec

SPEC = SweepSpec(name="audit-demo", kernels=("vecop",),
                 variants=("baseline", "unrolled", "chaining"),
                 ns=(64, 128))


def show(audit) -> None:
    counts = ", ".join(f"{cls} {n}" for cls, n in audit.counts().items()
                       if n)
    print(f"  coverage {100.0 * audit.coverage:5.1f}%  ({counts})")


def main() -> None:
    points = SPEC.points()
    print(f"campaign {SPEC.name!r}: {len(points)} workloads")
    with tempfile.TemporaryDirectory() as store:
        session = Session(cache=store, workers=0)

        print("\n1. campaign interrupted after half the points:")
        session.map(points[:len(points) // 2])
        audit = session.audit(SPEC)
        show(audit)

        print("\n2. backfill plan (exactly the gaps, ordered):")
        plan, campaign = session.backfill(audit)
        for outcome in campaign:
            print(f"  simulated {outcome.point.label}")
        assert campaign.cached_count == 0   # nothing warm re-ran

        print("\n3. re-audit: the campaign is complete:")
        final = session.audit(SPEC)
        show(final)
        assert final.complete and final.coverage == 1.0

        print("\n4. ... and a repeat backfill has nothing to do:")
        plan, campaign = session.backfill(SPEC)
        print(f"  planned {len(plan)} point(s), "
              f"simulated {len(campaign.outcomes)}")


if __name__ == "__main__":
    main()
