#!/usr/bin/env python
"""Reproduce the paper's Fig. 1c and Fig. 2 as textual traces.

Runs the chaining variant of the Fig. 1 vector operation with the trace
recorder attached and prints

* the FP issue-slot trace (Fig. 1c): empty slots are stall bubbles;
* the dataflow view (Fig. 2): the logical FIFO -- FPU pipeline registers
  plus the architectural register's valid bit -- per issue slot.

Run with:  python examples/dataflow_trace.py
"""

from repro import Cluster, VecopVariant, build_vecop
from repro.kernels.build import MARK_START
from repro.trace import TraceRecorder, render_dataflow, render_issue_trace


def main() -> None:
    build = build_vecop(n=16, variant=VecopVariant.CHAINING,
                        loop_mode="bne")
    trace = TraceRecorder()
    cluster = Cluster(build.asm, trace=trace)
    build.load_into(cluster)
    cluster.run()
    assert build.check(cluster), "output mismatch"

    start = cluster.perf.marks[MARK_START].cycle
    print("=== Fig. 1c: FP issue slots (chaining, unroll 4, one register)")
    print(render_issue_trace(trace, start_cycle=start, max_slots=24,
                             show_int=True))
    print()
    print("=== Fig. 2: logical FIFO through the FPU pipe + register ft3")
    print(render_dataflow(trace, chain_reg=3, start_cycle=start,
                          max_slots=24))
    print()
    print("Each '#' is an occupied FPU pipeline register; 'V' marks the")
    print("architectural register's valid bit -- together they form the")
    print("chaining FIFO of capacity pipe_depth + 1 = 4.")


if __name__ == "__main__":
    main()
