#!/usr/bin/env python
"""Simulation as a service: submit, coalesce, cancel, resume.

An in-process job server (the same stack `repro serve` runs) is stood
up on a throwaway store, then driven through the full client surface:
a batch submission, the synchronous cache-hit answer for an identical
re-submission, in-flight coalescing of concurrent duplicate jobs, the
NDJSON event stream, and a journal replay that resumes a job after a
server restart.  `docs/serve.md` documents the HTTP wire protocol;
everything here goes through ``repro.serve.ServeClient`` over real
sockets.

Run with:  python examples/serve_quickstart.py
"""

import tempfile
import threading
from pathlib import Path

from repro.api import workload
from repro.serve.testing import ServerThread

BATCH = [workload("vecop", v, n=64) for v in ("baseline", "chaining")]
SLOW = workload("box3d1r", "Chaining+", grid=(4, 8, 32))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"

        with ServerThread(store, workers=2) as server:
            client = server.client()
            print(f"serving on {server.url} "
                  f"(version {client.healthz()['version']})")

            print("\n1. a batch job simulates every point once:")
            job = client.submit(BATCH)
            view = client.wait(job["id"])
            for rec in view["results"]:
                label = "cache" if rec["cached"] else "simulated"
                print(f"  {rec['status']:>4} ({label})  "
                      f"{rec['result']['cycles']} cycles")

            print("\n2. the identical batch answers from the cache "
                  "at submit time:")
            again = client.submit(BATCH)
            assert again["status"] == "done"   # terminal in the POST
            assert all(r["cached"] for r in again["results"])
            print(f"  status {again['status']!r} in the POST response")

            print("\n3. concurrent duplicates coalesce onto one "
                  "simulation:")
            views = [None] * 8

            def submit(slot: int) -> None:
                handle = server.client().submit(SLOW)
                views[slot] = server.client().wait(handle["id"])

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(len(views))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            cycles = {v["results"][0]["result"]["cycles"] for v in views}
            metrics = client.metrics()["serve"]
            print(f"  {len(views)} jobs, "
                  f"{metrics['serve.executions'] - 2} execution(s) "
                  f"for the slow point, answers {sorted(cycles)}")

            print("\n4. the event stream narrates the lifecycle:")
            trail = [e["event"] for e in client.events(job["id"])]
            print(f"  {' -> '.join(trail)}")

            interrupted = client.submit(
                [workload("vecop", "baseline", n=n)
                 for n in (96, 128, 160)])

        print("\n5. a restarted server resumes the open job from its "
              "journal:")
        with ServerThread(store, workers=2) as server:
            print(f"  replay re-enqueued {server.requeued} point(s)")
            view = server.client().wait(interrupted["id"])
            assert view["status"] == "done"
            print(f"  job {view['id']} finished: "
                  f"{view['done']}/{view['points']} points ok")


if __name__ == "__main__":
    main()
