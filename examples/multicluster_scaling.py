#!/usr/bin/env python
"""Weak scaling of a halo-exchange stencil across 1/2/4 clusters.

Each cluster owns a fixed-size z-slab of the global grid, so the total
problem grows with the cluster count; perfect weak scaling would keep
the cycle count flat.  The gap between that ideal and the measured
cycles is the scale-out tax: halo DMA through the shared global memory,
interconnect bandwidth contention, and system-barrier waits between
sweeps -- all of which the system model accounts per cluster.

Run with:  python examples/multicluster_scaling.py
"""

from repro import Session, workload
from repro.eval.report import (
    format_table,
    scaling_rows,
    system_summary_rows,
)
from repro.kernels.layout import Grid3d
from repro.kernels.variants import Variant

KERNEL = "j3d27pt"
VARIANT = "Chaining+"
SLAB = (4, 6, 16)        # per-cluster interior planes (nz, ny, nx)
ITERS = 2                # halo-exchange sweeps
CLUSTERS = (1, 2, 4)


def main() -> None:
    nz, ny, nx = SLAB
    print(f"Weak scaling {KERNEL}/{VARIANT}: "
          f"{nz}x{ny}x{nx} interior per cluster, {ITERS} sweeps\n")
    session = Session()
    results = {}
    for num_clusters in CLUSTERS:
        result = session.run(workload(
            KERNEL, VARIANT, grid=(nz * num_clusters, ny, nx),
            num_clusters=num_clusters, iters=ITERS))
        assert result.correct, f"{num_clusters} clusters: wrong result"
        results[num_clusters] = result
    rows = []
    for row in scaling_rows(results, weak=True):
        num_clusters, cycles, speedup, efficiency = row
        report = results[num_clusters].system
        rows.append([
            num_clusters,
            f"{nz * num_clusters}x{ny}x{nx}", cycles, efficiency,
            speedup,
            report.gmem_bytes_read + report.gmem_bytes_written,
            report.interconnect_contended_cycles,
        ])
    last = results[CLUSTERS[-1]]
    print(format_table(
        ["clusters", "grid", "cycles", "weak eff", "speedup",
         "gmem bytes", "contended"],
        rows, title="weak scaling (fixed work per cluster)"))
    print()
    util = last.fpu_utilization
    print(f"{CLUSTERS[-1]}-cluster run: aggregate FPU utilization "
          f"{util:.3f}, {last.power_mw:.1f} mW, "
          f"{last.gflops_per_watt:.1f} Gflop/s/W")
    print("Weak efficiency < 1 is the scale-out tax: halo DMA latency,")
    print("global-memory bandwidth sharing, and barrier skew.")


def show_per_cluster() -> None:  # pragma: no cover - illustrative
    """Per-cluster breakdown of one 4-cluster run (library tour)."""
    from repro.core.config import SystemConfig
    from repro.kernels.partition import build_partitioned_stencil
    from repro.kernels.registry import get_stencil
    from repro.system import System

    spec, _ = get_stencil(KERNEL)
    cfg = SystemConfig(num_clusters=4)
    build = build_partitioned_stencil(
        spec, Grid3d(4 * SLAB[0], SLAB[1], SLAB[2]),
        Variant.from_label("Chaining+"), 4, cfg=cfg, iters=ITERS)
    system = System(build.asms, cfg)
    build.load_into(system)
    system.run()
    print(format_table(
        ["cluster", "cycles", "fpu util", "fpu ops", "dma bytes",
         "barrier stalls"],
        system_summary_rows(system), title="per-cluster breakdown"))


if __name__ == "__main__":
    main()
