#!/usr/bin/env python
"""Chaining beyond stencils: reductions and a dual-chain complex dot.

The paper evaluates stencils; this example shows the same mechanism on
three reduction-shaped kernels:

* ``dot``  -- four partial sums live in ONE chaining register's FIFO
  instead of four architectural registers;
* ``gemv`` -- the chained reduction repeated per matrix row;
* ``cdot`` -- complex dot with TWO chaining registers (real/imaginary)
  sharing the FPU pipeline, fed by an affine-with-repeat stream and a
  SARIS-style indirect stream.

Run with:  python examples/linalg_reductions.py
"""

from repro import Session
from repro.eval.report import format_table
from repro.kernels.linalg import (
    LinalgVariant,
    build_axpy,
    build_cdot,
    build_dot,
    build_gemv,
)


def main() -> None:
    builds = [
        ("axpy (control)", build_axpy(n=256)),
        ("dot baseline", build_dot(n=256, variant=LinalgVariant.BASELINE)),
        ("dot chaining", build_dot(n=256, variant=LinalgVariant.CHAINING)),
        ("gemv baseline", build_gemv(rows=16, n=64,
                                     variant=LinalgVariant.BASELINE)),
        ("gemv chaining", build_gemv(rows=16, n=64,
                                     variant=LinalgVariant.CHAINING)),
        ("cdot dual-chain", build_cdot(n=128)),
    ]
    session = Session()
    rows = []
    for name, build in builds:
        result = session.run(build)
        rows.append([
            name,
            result.fpu_utilization,
            result.region_cycles,
            build.meta.get("arch_accumulators", "-"),
            "yes" if result.correct else "NO",
        ])
    print(format_table(
        ["kernel", "fpu util", "cycles", "arch accumulators", "correct"],
        rows, title="Reductions with scalar chaining"))
    print()
    print("dot/gemv: chaining matches the unrolled baseline's cycles with")
    print("a single accumulator register; cdot runs TWO chains (re + im)")
    print("through the shared FPU pipe at two partials each.")


if __name__ == "__main__":
    main()
