"""Scalar-v2 micro-op engine benchmarks: the fastpath-rejected workloads.

The vectorized FREP/SSR fast path (PR 2) bails out on exactly the
workloads the paper's evaluation leans on beyond Fig. 1 -- stencils ride
an indirect SSR stream, and indirect gathers are data-dependent by
definition.  Those run on the scalar execution engine, so this suite
pins the micro-op engine's two contracts on them:

* **speed** -- >= 3x wall-clock over the seed scalar interpreter on the
  ``j3d27pt`` reference grid (the acceptance bar), and a solid win on an
  indirect-SSR gather whose every cycle carries real TCDM traffic;
* **fidelity** -- byte-identical results and identical cycle counts,
  perf/stall counters and TCDM statistics on both.

The timed runs feed the CI benchmark-regression gate.
"""

import time

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.config import CoreConfig
from repro.kernels.build import KernelBuild
from repro.kernels.registry import get_stencil
from repro.kernels.ssrgen import SsrPatternAsm
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant
from repro.mem.memory import Allocator

MIN_STENCIL_SPEEDUP = 3.0
MIN_INDIRECT_SPEEDUP = 1.3


def build_j3d27pt():
    """The acceptance workload: j3d27pt on its reference grid."""
    spec, grid = get_stencil("j3d27pt")
    return build_stencil(spec, grid, Variant.from_label("Chaining+"))


def build_indirect_gather(n: int = 8192, seed: int = 7) -> KernelBuild:
    """Indirect-SSR gather mac: ``acc = sum a[idx[i]] * b[i]``.

    SSR0 streams ``a`` through a permutation index array (two TCDM
    accesses per element, data-dependent addresses -- never fast-path
    eligible); SSR1 streams ``b`` affinely; a single-instruction FREP
    accumulates.
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(-2.0, 2.0, n)
    b = rng.uniform(-2.0, 2.0, n)
    idx = rng.permutation(n).astype(np.uint32)
    alloc = Allocator(0x2000)
    a_a = alloc.alloc_f64(n)
    a_b = alloc.alloc_f64(n)
    a_idx = alloc.alloc(4 * n, align=4)
    a_out = alloc.alloc_f64(1)
    ssr0 = SsrPatternAsm(0, base=a_a, bounds=[n], strides=[8],
                         indirect=True, idx_base=a_idx, idx_size=4,
                         idx_shift=3)
    ssr1 = SsrPatternAsm(1, base=a_b, bounds=[n], strides=[8])
    asm = f"""
{ssr0.emit()}
{ssr1.emit()}
    csrrwi x0, 0x7C0, 1
    fcvt.d.w fa0, x0
    li t3, {n - 1}
    frep.o t3, 0
    fmadd.d fa0, ft0, ft1, fa0
    li a1, {a_out}
    fsd fa0, 0(a1)
    ebreak
"""
    acc = 0.0
    for i in range(n):
        acc = a[idx[i]] * b[i] + acc
    return KernelBuild(name="indirect_gather", asm=asm, symbols={},
                       arrays=[(a_a, a), (a_b, b), (a_idx, idx)],
                       output_addr=a_out, output_shape=(1,),
                       golden=np.array([acc]))


def _run(build: KernelBuild, engine: str) -> Cluster:
    cfg = CoreConfig(engine=engine)
    cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run()
    assert np.array_equal(build.read_output(cluster), build.golden)
    return cluster


def _assert_identical(a: Cluster, b: Cluster) -> None:
    assert a.cycle == b.cycle
    assert a.perf.summary() == b.perf.summary()
    assert a.tcdm.stats() == b.tcdm.stats()
    assert a.fp.fpregs.values == b.fp.fpregs.values


# -- j3d27pt: the acceptance bar -------------------------------------------

def test_scalar_v2_stencil_wallclock(benchmark):
    """The regression-gated number: j3d27pt on the micro-op engine."""
    build = build_j3d27pt()
    benchmark.pedantic(lambda: _run(build, "scalar-v2"), rounds=3,
                       iterations=1)


def test_scalar_stencil_wallclock(benchmark):
    """Reference wall-clock of the seed scalar engine on j3d27pt."""
    build = build_j3d27pt()
    benchmark.pedantic(lambda: _run(build, "scalar"), rounds=1,
                       iterations=1)


def test_scalar_v2_stencil_speedup_and_equivalence(benchmark):
    """>= 3x on the j3d27pt reference grid at zero fidelity cost."""
    build = build_j3d27pt()
    scalar_seconds = []
    for _ in range(2):
        start = time.perf_counter()
        scalar = _run(build, "scalar")
        scalar_seconds.append(time.perf_counter() - start)

    v2 = benchmark.pedantic(lambda: _run(build, "scalar-v2"), rounds=3,
                            iterations=1)

    _assert_identical(scalar, v2)
    if benchmark.stats is None:
        pytest.skip("benchmarking disabled: equivalence checked, "
                    "no timing to assert")
    speedup = min(scalar_seconds) / benchmark.stats.stats.min
    print(f"\nscalar-v2 speedup on j3d27pt reference grid: "
          f"{speedup:.1f}x ({v2.cycle} cycles)")
    assert speedup >= MIN_STENCIL_SPEEDUP


# -- indirect-SSR gather ----------------------------------------------------

def test_scalar_v2_indirect_wallclock(benchmark):
    """Regression-gated: indirect gather on the micro-op engine."""
    build = build_indirect_gather()
    benchmark.pedantic(lambda: _run(build, "scalar-v2"), rounds=3,
                       iterations=1)


def test_scalar_v2_indirect_speedup_and_equivalence(benchmark):
    """Every cycle carries real TCDM traffic (no dead spans to skip), so
    the bar is the pre-decode win alone."""
    build = build_indirect_gather()
    scalar_seconds = []
    for _ in range(2):
        start = time.perf_counter()
        scalar = _run(build, "scalar")
        scalar_seconds.append(time.perf_counter() - start)

    v2 = benchmark.pedantic(lambda: _run(build, "scalar-v2"), rounds=3,
                            iterations=1)

    _assert_identical(scalar, v2)
    if benchmark.stats is None:
        pytest.skip("benchmarking disabled: equivalence checked, "
                    "no timing to assert")
    speedup = min(scalar_seconds) / benchmark.stats.stats.min
    print(f"\nscalar-v2 speedup on indirect gather: {speedup:.1f}x "
          f"({v2.cycle} cycles)")
    assert speedup >= MIN_INDIRECT_SPEEDUP
