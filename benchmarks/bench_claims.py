"""Section III text claims: the paper's headline numbers.

* ~4% geomean speedup and ~10% geomean energy-efficiency gain of
  Chaining+ over Base [SARIS],
* ~8% / ~9% over the direct comparison point Base-,
* ~7% energy-efficiency gain of Chaining over Base (coefficients moved
  to the register file; same instruction count, so no speedup),
* FPU utilization above 93% with chaining.

Measured geomeans are printed next to the paper's numbers and asserted
with tolerances that reflect a cycle-level (non-RTL) reproduction; the
Base- comparisons are looser because our Base- schedules its spill
reloads better than the paper's (documented in EXPERIMENTS.md).
"""

from repro.eval.figures import PAPER_CLAIMS, claims_from_results
from repro.eval.report import format_table


def test_section3_claims(benchmark, fig3_results):
    claims = benchmark.pedantic(claims_from_results,
                                args=(fig3_results,), rounds=1,
                                iterations=1)
    measured = claims.as_dict()
    rows = []
    for key, paper_value in PAPER_CLAIMS.items():
        if key not in measured:
            continue
        rows.append([key, paper_value, round(measured[key], 2)])
    print()
    print(format_table(["claim", "paper", "measured"], rows,
                       title="Section III claims (geomean over the two "
                             "stencils)"))

    # Chaining+ vs Base: the headline 4% / 10%.
    assert 2.0 <= measured["speedup_chaining_plus_vs_base_pct"] <= 8.0
    assert 6.0 <= measured["efficiency_chaining_plus_vs_base_pct"] <= 15.0
    # Chaining vs Base: ~7% energy efficiency, roughly no speedup.
    assert 4.0 <= measured["efficiency_chaining_vs_base_pct"] <= 12.0
    # Chaining+ vs Base-: positive in both metrics (paper: 8%/9%; our
    # Base- is stronger than the paper's, see EXPERIMENTS.md).
    assert measured["speedup_chaining_plus_vs_base_m_pct"] > 0
    assert measured["efficiency_chaining_plus_vs_base_m_pct"] > 0
    # >93% utilization with chaining.
    assert measured["min_chaining_utilization"] > 0.90
