"""Ablation: the register-pressure story behind Fig. 3.

Sweeps the number of stencil taps and reports, per variant, how many
coefficients stay register-resident vs. spilled, plus the measured cost
of the spills.  This regenerates the paper's core argument: at 27 taps
the non-chaining variants are register-limited while chaining frees
enough registers to hold every coefficient.
"""

from repro.eval.report import format_table
from repro.kernels.regalloc import plan_registers
from repro.kernels.variants import Variant


def _pressure_table():
    rows = []
    for ntaps in (7, 15, 23, 27):
        for variant in (Variant.BASE_MM, Variant.CHAINING):
            try:
                plan = plan_registers(variant, ntaps, unroll=4)
                rows.append([ntaps, variant.label, plan.resident_coeffs,
                             len(plan.spilled_taps),
                             plan.registers_used])
            except ValueError as exc:
                rows.append([ntaps, variant.label, "-", "-", str(exc)])
    return rows


def test_register_pressure(benchmark):
    rows = benchmark.pedantic(_pressure_table, rounds=1, iterations=1)
    print()
    print(format_table(
        ["taps", "variant", "resident", "spilled", "regs used"],
        rows, title="Register pressure vs. stencil size"))

    # The paper's crossover: at 27 taps Base-- spills, Chaining does not.
    base27 = plan_registers(Variant.BASE_MM, 27, unroll=4)
    chain27 = plan_registers(Variant.CHAINING, 27, unroll=4)
    assert base27.spilled_taps
    assert not chain27.spilled_taps
    # Below 24 taps nothing spills: the advantage is specific to
    # register-limited kernels, exactly as the paper frames it.
    base23 = plan_registers(Variant.BASE_MM, 23, unroll=4)
    assert not base23.spilled_taps
