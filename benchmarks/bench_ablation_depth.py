"""Ablation: chaining benefit vs. FPU pipeline depth (section II remark).

Runs the ``depth-ablation`` sweep preset through the campaign engine;
the experiment's rationale and a worked walkthrough live in
``docs/sweeps.md``.
"""

from repro.eval.report import format_table
from repro.sweep import SweepRunner
from repro.sweep.presets import ABLATION_DEPTHS, depth_ablation_points


def _sweep():
    campaign = SweepRunner(workers=0).run(depth_ablation_points())
    campaign.raise_on_failure()
    by_depth = {}
    for outcome in campaign:
        depth = dict(outcome.point.overrides)["fpu_depth"]
        by_depth.setdefault(depth, {})[outcome.point.variant] = \
            outcome.result
    return [(depth, row["baseline"].fpu_utilization,
             row["chaining"].fpu_utilization, depth + 1)
            for depth, row in sorted(by_depth.items())]


def test_depth_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert len(rows) == len(ABLATION_DEPTHS)
    print()
    print(format_table(
        ["pipe depth", "baseline util", "chaining util",
         "regs unrolling would need"],
        [list(r) for r in rows],
        title="Chaining benefit vs. FPU pipeline depth"))

    gains = [chain / base for _, base, chain, _ in rows]
    # Monotonically growing benefit with depth.
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:])), gains
    # Chaining stays near-ideal at every depth.
    assert all(chain > 0.9 for _, _, chain, _ in rows)
    # At depth 6 the baseline is crippled, chaining is not.
    assert rows[-1][1] < 0.3
