"""Ablation: chaining benefit vs. FPU pipeline depth (section II remark).

"Chaining benefits are increased for functional units with deeper
pipelines": the baseline loses `depth` issue slots per dependent pair
while chaining keeps one architectural register regardless of depth.
"""

from repro.core.config import CoreConfig
from repro.eval.report import format_table
from repro.eval.runner import run_build
from repro.isa.instructions import InstrClass
from repro.kernels.vecop import VecopVariant, build_vecop

# Depth 7 is the frep limit: the chaining body holds 2*(depth+1)
# instructions and the sequencer buffer is 16 entries.
DEPTHS = (1, 2, 3, 4, 5, 6)


def _config(depth: int) -> CoreConfig:
    cfg = CoreConfig()
    cfg.fpu_latency = dict(cfg.fpu_latency)
    for iclass in (InstrClass.FP_ADD, InstrClass.FP_MUL,
                   InstrClass.FP_FMA):
        cfg.fpu_latency[iclass] = depth
    cfg.fpu_pipe_depth = depth
    return cfg


def _sweep():
    rows = []
    for depth in DEPTHS:
        cfg = _config(depth)
        n = 24 * (depth + 1)
        base = run_build(build_vecop(n=n, variant=VecopVariant.BASELINE,
                                     cfg=cfg), cfg=cfg)
        chain = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                      cfg=cfg), cfg=cfg)
        rows.append((depth, base.fpu_utilization, chain.fpu_utilization,
                     depth + 1))
    return rows


def test_depth_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["pipe depth", "baseline util", "chaining util",
         "regs unrolling would need"],
        [list(r) for r in rows],
        title="Chaining benefit vs. FPU pipeline depth"))

    gains = [chain / base for _, base, chain, _ in rows]
    # Monotonically growing benefit with depth.
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:])), gains
    # Chaining stays near-ideal at every depth.
    assert all(chain > 0.9 for _, _, chain, _ in rows)
    # At depth 6 the baseline is crippled, chaining is not.
    assert rows[-1][1] < 0.3
