"""Multi-cluster system benchmarks: scaling correctness + wall-clock.

Two contracts on the ``repro.system`` scale-out path:

* **scaling** -- strong scaling on a fixed grid must actually speed up
  (4 clusters beat 1 by a solid margin in simulated cycles), and every
  decomposition must reassemble bit-identically to the single-cluster
  reference;
* **simulator throughput** -- the 2-cluster halo-exchange run on the
  composed ``auto`` engine is regression-gated in CI, so the system
  loop's scheduling overhead (min-cycle batching, interconnect
  arbitration, system-level fast-forward) stays paid for.
"""

import numpy as np
import pytest

from repro.core.config import CoreConfig, SystemConfig
from repro.kernels.layout import Grid3d
from repro.kernels.partition import build_partitioned_stencil
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.system import System

GRID = Grid3d(8, 6, 16)
ITERS = 2

#: 4 clusters on the fixed grid must cut simulated cycles at least this
#: much (perfect would be ~4x; halo DMA + barriers take their share).
MIN_STRONG_SPEEDUP = 2.5


def _run(num_clusters: int, engine: str = "auto") -> tuple:
    spec, _ = get_stencil("j3d27pt")
    cfg = SystemConfig(num_clusters=num_clusters,
                       core=CoreConfig(engine=engine))
    build = build_partitioned_stencil(
        spec, GRID, Variant.from_label("Chaining+"), num_clusters,
        cfg=cfg, iters=ITERS)
    system = System(build.asms, cfg)
    build.load_into(system)
    system.run()
    out = build.read_output(system)
    assert np.array_equal(out, build.golden)
    return out, system


def test_system_scaling_wallclock(benchmark):
    """The regression-gated number: 2-cluster j3d27pt halo exchange."""
    benchmark.pedantic(lambda: _run(2), rounds=3, iterations=1)


def test_system_scaling_speedup_and_equivalence(benchmark):
    """Strong scaling delivers, and outputs stay bit-identical."""
    reference, ref_system = _run(1)
    out4, system4 = benchmark.pedantic(lambda: _run(4), rounds=2,
                                       iterations=1)
    assert np.array_equal(out4, reference)
    speedup = ref_system.cycle / system4.cycle
    print(f"\nstrong scaling 1 -> 4 clusters: {speedup:.2f}x "
          f"({ref_system.cycle} -> {system4.cycle} cycles)")
    assert speedup >= MIN_STRONG_SPEEDUP
    if benchmark.stats is None:
        pytest.skip("benchmarking disabled: equivalence checked, "
                    "no timing to assert")
