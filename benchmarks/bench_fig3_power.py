"""Fig. 3 (right panel): power [mW] for two stencils x five variants.

The absolute numbers come from our event-energy model (GF12-plausible
constants, calibrated to the paper's ~60 mW ballpark); the assertions
check the band and the qualitative movements the model can support.  The
known residual vs. the paper -- our Chaining power dips where the paper
shows near-flat bars -- is recorded in EXPERIMENTS.md.
"""

from repro.eval.figures import PAPER_FIG3_POWER_MW
from repro.eval.report import format_table
from repro.kernels.registry import PAPER_KERNELS
from repro.kernels.variants import VARIANT_ORDER, Variant


def test_fig3_power(benchmark, fig3_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for kernel in PAPER_KERNELS:
        for variant in VARIANT_ORDER:
            res = fig3_results[kernel, variant.label]
            paper = PAPER_FIG3_POWER_MW[kernel][variant]
            rows.append([kernel, variant.label, paper,
                         round(res.power_mw, 1),
                         round(res.power_mw - paper, 1)])
    print()
    print(format_table(
        ["kernel", "variant", "paper mW", "measured mW", "delta"],
        rows, title="Fig. 3 right: power"))

    for kernel in PAPER_KERNELS:
        powers = {v: fig3_results[kernel, v.label].power_mw
                  for v in VARIANT_ORDER}
        # The paper's band is ~59.5-63.2 mW; we target the same decade.
        assert all(45.0 < p < 75.0 for p in powers.values()), powers
        # Chaining variants never burn more power than Base: the
        # coefficient stream's TCDM traffic is gone.
        assert powers[Variant.CHAINING] <= powers[Variant.BASE]


def test_energy_breakdown_structure(benchmark, fig3_results):
    """TCDM dominates the energy breakdown, as the analysis assumes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    res = fig3_results["box3d1r", Variant.BASE.label]
    breakdown = res.energy.breakdown
    assert breakdown["tcdm"] == max(breakdown.values())
    assert res.energy.fraction("tcdm") > 0.3
