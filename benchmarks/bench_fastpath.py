"""Fast-path engine benchmarks: wall-clock speedup at zero fidelity cost.

The vectorized FREP/SSR engine must be (a) bit-identical to the scalar
reference in every reported number and (b) at least 3x faster on the
Fig. 1 vecop workload at a sweep-sized n.  Both claims are asserted
here, and the timed runs feed the CI benchmark-regression gate.
"""

import time

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.config import CoreConfig
from repro.kernels.vecop import VecopVariant, build_vecop

N = 4096
MIN_SPEEDUP = 3.0


def _run(engine: str, n: int = N,
         variant: VecopVariant = VecopVariant.CHAINING):
    cfg = CoreConfig(engine=engine)
    build = build_vecop(n=n, variant=variant, cfg=cfg)
    cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run()
    out = cluster.read_f64(build.output_addr, build.output_shape)
    assert np.array_equal(out, build.golden)
    return cluster


def test_fastpath_vecop_wallclock(benchmark):
    """The regression-gated number: fig1 vecop under the fast engine."""
    cluster = benchmark.pedantic(lambda: _run("fast"), rounds=3,
                                 iterations=1)
    assert cluster.fastpath.stats["applications"] >= 1


def test_scalar_vecop_wallclock(benchmark):
    """Reference wall-clock of the scalar engine on the same workload."""
    benchmark.pedantic(lambda: _run("scalar"), rounds=1, iterations=1)


def test_fastpath_speedup_and_equivalence(benchmark):
    """>= 3x on fig1 vecop with zero change in reported numbers."""
    scalar_seconds = []
    for _ in range(2):
        start = time.perf_counter()
        scalar = _run("scalar")
        scalar_seconds.append(time.perf_counter() - start)

    fast = benchmark.pedantic(lambda: _run("fast"), rounds=3,
                              iterations=1)

    assert scalar.cycle == fast.cycle
    assert scalar.perf.summary() == fast.perf.summary()
    assert scalar.tcdm.stats() == fast.tcdm.stats()
    assert scalar.fp.fpregs.values == fast.fp.fpregs.values

    if benchmark.stats is None:
        pytest.skip("benchmarking disabled: equivalence checked, "
                    "no timing to assert")
    speedup = min(scalar_seconds) / benchmark.stats.stats.min
    print(f"\nfast-path speedup on vecop n={N}: {speedup:.1f}x "
          f"({fast.fastpath.stats['fast_forwarded_cycles']} of "
          f"{fast.cycle} cycles batched)")
    assert speedup >= MIN_SPEEDUP


@pytest.mark.parametrize("variant", list(VecopVariant),
                         ids=lambda v: v.value)
def test_fastpath_variant_equivalence(variant):
    """All three Fig. 1 code forms stay bit-identical at batch sizes."""
    scalar = _run("scalar", n=1024, variant=variant)
    fast = _run("fast", n=1024, variant=variant)
    assert scalar.cycle == fast.cycle
    assert scalar.perf.summary() == fast.perf.summary()
    assert fast.fastpath.stats["applications"] >= 1
