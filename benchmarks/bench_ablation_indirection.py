"""Ablation: SARIS-style indirect input stream vs. frep+stagger.

Two supporting experiments around the substrate choices:

* ``star3d1r`` (a non-cube tap set) runs through the indirect stream --
  the case SARIS indirection exists for -- and still verifies bit-exact
  with chaining enabled.
* FREP register *staggering* (Snitch's hardware register rotation) is
  an alternative latency-hiding mechanism: it reaches the same
  throughput as chaining on the vecop but consumes ``depth + 1``
  architectural registers, so it cannot free coefficients like chaining
  does.
"""

import numpy as np

from repro.core import Cluster
from repro.eval.report import format_table
from repro.sweep import SweepRunner, make_point

DATA = 0x2000


def test_irregular_taps_through_indirection(benchmark):
    point = make_point("star3d1r", "Chaining+", grid=(2, 4, 24))

    def run():
        campaign = SweepRunner(workers=0).run([point])
        campaign.raise_on_failure()
        return campaign.outcomes[0].result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nstar3d1r/Chaining+: util={result.fpu_utilization:.3f} "
          f"cycles/point={result.cycles_per_point:.2f} "
          f"(indirect gather, 2 TCDM accesses per element)")
    assert result.correct
    assert result.fpu_utilization > 0.8


def _stagger_run(iters=64):
    """frep + stagger over 4 accumulators: the software-visible
    alternative to chaining."""
    prog = f"""
    li a0, {DATA}
    fld fa4, 0(a0)
    fld fa5, 8(a0)
    csrrwi x0, sim_mark, 1
    li t0, {iters - 1}
    frep.o t0, 0, 3, 1
    fmul.d fa0, fa4, fa5
    csrr t1, ssr_enable
    csrrwi x0, sim_mark, 2
    ebreak
"""
    cluster = Cluster(prog)
    cluster.load_f64(DATA, np.array([1.5, 2.0]))
    cluster.run()
    return cluster


def test_stagger_matches_chaining_throughput_but_burns_registers(
        benchmark):
    cluster = benchmark.pedantic(_stagger_run, rounds=1, iterations=1)
    util = cluster.perf.fpu_utilization(1, 2)
    rows = [
        ["frep + stagger (4 regs)", round(util, 3), 4],
        ["chaining (1 reg)", "~0.99 (see bench_fig1)", 1],
    ]
    print()
    print(format_table(["mechanism", "fpu util", "arch regs"], rows,
                       title="Latency hiding: stagger vs. chaining"))
    assert util > 0.9
    # All four staggered destinations were written.
    for reg in range(10, 14):
        assert cluster.fp.fpregs.values[reg] == 3.0
