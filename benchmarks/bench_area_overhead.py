"""Section III area claim: chaining adds <2% cell area.

The paper implements the extension in GF12LP+ and reports <2% cell-area
increase and negligible frequency degradation.  We size the chaining
additions structurally (mask CSR, valid bits, backpressure handshake,
issue-rule changes) against kGE figures for a Snitch-class core complex.
"""

from repro.energy.area import AreaModel
from repro.eval.report import format_table


def test_area_overhead(benchmark):
    model = benchmark.pedantic(AreaModel, rounds=1, iterations=1)
    rows = [[name, kge] for name, kge in model.breakdown().items()]
    print()
    print(format_table(["component", "kGE"], rows,
                       title="Cluster area model"))
    print(f"\nchaining overhead: {model.overhead_core_percent:.2f}% of the "
          f"core complex ({model.overhead_cluster_percent:.3f}% of the "
          f"cluster incl. TCDM)  --  paper: <2%")
    assert model.overhead_core_percent < 2.0
    assert model.chaining_kge < 5.0
