"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one figure or claim of the paper and prints a
paper-vs-measured table; ``pytest benchmarks/ --benchmark-only`` is the
reproduction entry point.  Results computed once per session are cached
so the table-printing benches don't re-simulate.
"""

import pytest

from repro.eval.figures import fig3_data


@pytest.fixture(scope="session")
def fig3_results():
    """All ten (kernel, variant) runs of Fig. 3, simulated once."""
    return fig3_data()
