"""Fig. 1 reproduction: the vector op a = b*(c+d) in three code forms.

Regenerates the utilization/latency story of the paper's motivating
example: the baseline wastes the FPU latency on every dependent pair,
unrolling and chaining both reach near-full throughput -- but unrolling
needs ``depth + 1`` architectural registers where chaining needs one.
"""

import pytest

from repro.eval.figures import fig1_data
from repro.eval.report import format_table
from repro.api import Session
from repro.kernels.vecop import VecopVariant, build_vecop

N = 256


def test_fig1_table(benchmark):
    results = benchmark.pedantic(fig1_data, kwargs={"n": N}, rounds=1,
                                 iterations=1)
    rows = []
    for name, res in results.items():
        rows.append([name, res.fpu_utilization, res.region_cycles,
                     res.meta["arch_accumulators"]])
    print()
    print(format_table(
        ["variant", "fpu util", "cycles", "arch accumulators"],
        rows, title=f"Fig. 1: a = b*(c+d), n={N}"))

    base = results["baseline"]
    unrolled = results["unrolled"]
    chaining = results["chaining"]
    # The paper's story, as assertions.
    assert base.fpu_utilization < 0.45
    assert unrolled.fpu_utilization > 0.95
    assert chaining.fpu_utilization > 0.95
    assert chaining.meta["arch_accumulators"] == 1
    assert unrolled.meta["arch_accumulators"] == 4


@pytest.mark.parametrize("variant", list(VecopVariant),
                         ids=lambda v: v.value)
def test_fig1_variant_runtime(benchmark, variant):
    """Per-variant simulation benchmark (wall-clock of the simulator)."""
    build = build_vecop(n=N, variant=variant)
    session = Session()

    def run():
        return session.run(build)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.correct
