"""Fig. 3 (left panel): FPU utilization, two stencils x five variants.

Prints measured utilization next to the values read from the paper's
bars and asserts the reproduction's shape: the utilization band, the
chaining-side ordering, and >93% utilization for Chaining+ (the paper's
headline number).
"""

from repro.eval.figures import PAPER_FIG3_UTILIZATION
from repro.eval.report import format_table
from repro.kernels.registry import PAPER_KERNELS
from repro.kernels.variants import VARIANT_ORDER, Variant


def test_fig3_utilization(benchmark, fig3_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for kernel in PAPER_KERNELS:
        for variant in VARIANT_ORDER:
            res = fig3_results[kernel, variant.label]
            paper = PAPER_FIG3_UTILIZATION[kernel][variant]
            rows.append([kernel, variant.label, paper,
                         round(res.fpu_utilization, 3),
                         round(res.fpu_utilization - paper, 3)])
    print()
    print(format_table(
        ["kernel", "variant", "paper", "measured", "delta"],
        rows, title="Fig. 3 left: FPU utilization"))

    for kernel in PAPER_KERNELS:
        utils = {v: fig3_results[kernel, v.label].fpu_utilization
                 for v in VARIANT_ORDER}
        # Everything lives in the paper's band.
        assert all(0.80 <= u <= 1.0 for u in utils.values()), utils
        # Chaining+ is the best variant and clears the paper's 93%.
        assert utils[Variant.CHAINING_PLUS] == max(utils.values())
        assert utils[Variant.CHAINING_PLUS] > 0.93
        # Chaining at least matches Base (same issue count, fewer
        # stream stalls).
        assert utils[Variant.CHAINING] >= utils[Variant.BASE] - 0.01
        # The weakest baseline is Base-- (spill reloads + stores).
        assert utils[Variant.BASE_MM] == min(utils.values())
