"""Reporting helpers: geometric means and plain-text tables.

The benchmark harness prints paper-vs-measured tables with these; keeping
the formatting in one place makes `pytest benchmarks/ --benchmark-only`
output directly comparable to the paper's Fig. 3 and section III claims.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def percent_delta(new: float, old: float) -> float:
    """Relative improvement of ``new`` over ``old`` in percent."""
    if old == 0:
        raise ValueError("old value is zero")
    return 100.0 * (new - old) / old


# -- multi-cluster (repro.system) aggregation ------------------------------


def system_summary_rows(system) -> list[list]:
    """Per-cluster table rows plus a ``total`` row for one system run.

    Columns: cluster, cycles, fpu util, fpu ops, dma bytes, barrier
    stall cycles.  Feed to :func:`format_table`.
    """
    rows: list[list] = []
    total_ops = 0
    total_dma = 0
    total_barrier = 0
    for index, cluster in enumerate(system.clusters):
        perf = cluster.perf
        ops = perf.value("fpu_compute_ops")
        barrier = perf.value("int_barrier_stalls")
        util = ops / cluster.cycle if cluster.cycle else 0.0
        rows.append([index, cluster.cycle, util, ops,
                     cluster.dma.bytes_moved, barrier])
        total_ops += ops
        total_dma += cluster.dma.bytes_moved
        total_barrier += barrier
    rows.append(["total", system.cycle, system.fpu_utilization(),
                 total_ops, total_dma, total_barrier])
    return rows


def scaling_rows(results: dict[int, "object"], metric: str = "cycles",
                 weak: bool = False) -> list[list]:
    """Strong/weak-scaling rows from ``{num_clusters: RunResult}``.

    Columns: clusters, <metric>, speedup vs. the smallest cluster
    count, parallel efficiency.  ``metric`` is lower-is-better (cycles).

    * **strong** (fixed total work): speedup = base/value, efficiency =
      speedup / (n / base_n) -- perfect scaling gives speedup n and
      efficiency 1.
    * **weak** (fixed work *per cluster*): efficiency = base/value
      (equal cycle counts are perfect) and speedup = efficiency *
      (n / base_n) -- the effective scaled-throughput gain.
    """
    if not results:
        return []
    counts = sorted(results)
    base_n = counts[0]
    base = float(getattr(results[base_n], metric))
    rows = []
    for n in counts:
        value = float(getattr(results[n], metric))
        ratio = base / value if value else 0.0
        if weak:
            efficiency = ratio
            speedup = ratio * (n / base_n)
        else:
            speedup = ratio
            efficiency = ratio / (n / base_n)
        rows.append([n, int(value), round(speedup, 3),
                     round(efficiency, 3)])
    return rows
