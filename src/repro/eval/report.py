"""Reporting helpers: geometric means and plain-text tables.

The benchmark harness prints paper-vs-measured tables with these; keeping
the formatting in one place makes `pytest benchmarks/ --benchmark-only`
output directly comparable to the paper's Fig. 3 and section III claims.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def percent_delta(new: float, old: float) -> float:
    """Relative improvement of ``new`` over ``old`` in percent."""
    if old == 0:
        raise ValueError("old value is zero")
    return 100.0 * (new - old) / old
