"""Run generated kernels on the cluster and collect the paper's metrics.

:func:`run_build` executes one :class:`~repro.kernels.build.KernelBuild`,
verifies the output bit-exactly against the golden model, and returns a
:class:`RunResult` with cycle counts, FPU utilization over the measured
region, the energy/power estimates and throughput-derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import Cluster
from repro.core.config import CoreConfig
from repro.energy.model import EnergyModel, EnergyReport
from repro.kernels.build import MARK_END, MARK_START, KernelBuild
from repro.kernels.layout import Grid3d
from repro.kernels.registry import get_stencil
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant


@dataclass
class RunResult:
    """Metrics from one kernel execution."""

    name: str
    correct: bool
    cycles: int                 # whole run
    region_cycles: int          # between the sim_mark region markers
    fpu_utilization: float      # over the measured region
    energy: EnergyReport
    meta: dict = field(default_factory=dict)
    stalls: dict[str, int] = field(default_factory=dict)

    @property
    def power_mw(self) -> float:
        return self.energy.power_mw

    @property
    def gflops(self) -> float:
        """Achieved throughput over the measured region, in Gflop/s."""
        if self.region_cycles == 0:
            return 0.0
        seconds = self.region_cycles / self.meta.get("clock_hz", 1.0e9)
        return self.meta.get("flops", 0) / seconds / 1e9

    @property
    def gflops_per_watt(self) -> float:
        """Energy efficiency: achieved Gflop/s per Watt."""
        if self.energy.power_mw == 0:
            return 0.0
        return self.gflops / (self.energy.power_mw / 1e3)

    @property
    def cycles_per_point(self) -> float:
        points = self.meta.get("points", 0)
        return self.region_cycles / points if points else 0.0


def run_build(build: KernelBuild, cfg: CoreConfig | None = None,
              max_cycles: int = 5_000_000,
              require_correct: bool = True) -> RunResult:
    """Execute ``build`` and return its metrics."""
    cfg = cfg or CoreConfig()
    cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run(max_cycles=max_cycles)

    correct = build.check(cluster)
    if require_correct and not correct:
        raise AssertionError(
            f"{build.name}: simulated output does not match the golden "
            f"model"
        )

    perf = cluster.perf
    have_marks = MARK_START in perf.marks and MARK_END in perf.marks
    region = perf.region_cycles(MARK_START, MARK_END) if have_marks \
        else perf.cycles
    util = perf.fpu_utilization(MARK_START, MARK_END) if have_marks \
        else perf.fpu_utilization()

    model = EnergyModel(cfg)
    energy = model.report(cluster)

    meta = dict(build.meta)
    meta["clock_hz"] = cfg.clock_hz
    return RunResult(
        name=build.name,
        correct=correct,
        cycles=perf.cycles,
        region_cycles=region,
        fpu_utilization=util,
        energy=energy,
        meta=meta,
        stalls=perf.stall_breakdown(),
    )


def run_stencil_variant(kernel: str, variant: Variant,
                        grid: Grid3d | None = None,
                        cfg: CoreConfig | None = None,
                        unroll: int = 4,
                        max_cycles: int = 5_000_000) -> RunResult:
    """Convenience wrapper: build and run one paper data point."""
    spec, default_grid = get_stencil(kernel)
    build = build_stencil(spec, grid or default_grid, variant,
                          unroll=unroll, cfg=cfg)
    return run_build(build, cfg=cfg, max_cycles=max_cycles)
