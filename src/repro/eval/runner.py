"""Single-cluster execution backend behind the unified API.

:func:`execute_build` runs one :class:`~repro.kernels.build.KernelBuild`
on a cluster, verifies the output bit-exactly against the golden model,
and returns the unified :class:`~repro.api.result.Result` (cycle
counts, FPU utilization over the measured region, energy/power, and the
typed ``clock_hz``/``flops``/``points`` throughput inputs).
:func:`execute_stencil` is the one-call stencil data point.

The pre-1.5 entry points :func:`run_build` and
:func:`run_stencil_variant` remain as deprecation shims (one release);
new code goes through :class:`repro.api.Session` or calls the backends
directly.
"""

from __future__ import annotations

import dataclasses
import warnings

from repro.api.result import Result
from repro.core.cluster import Cluster
from repro.core.config import CoreConfig
from repro.energy.model import EnergyModel
from repro.kernels.build import MARK_END, MARK_START, KernelBuild
from repro.kernels.layout import Grid3d
from repro.kernels.registry import get_stencil
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant
from repro.obs import spans as _obs

#: Pre-1.5 name of the unified result type (same class, kept one
#: release for imports; the ``meta``-carried metric fields it used to
#: have are now the typed ``clock_hz``/``flops``/``points``).
RunResult = Result


def _pop_throughput_inputs(name: str, meta: dict) -> tuple[int, int]:
    """Lift the typed throughput inputs out of a build's metadata.

    Every builder must *declare* them (an explicit 0 when the kernel
    reports none) -- the unified ``Result`` never silently defaults a
    missing value to a wrong Gflop/s.
    """
    missing = [key for key in ("flops", "points") if key not in meta]
    if missing:
        raise ValueError(
            f"{name}: build.meta must declare {', '.join(missing)!s} "
            f"(pass an explicit 0 when the kernel reports none); the "
            f"typed Result fields are never silently defaulted")
    return int(meta.pop("flops")), int(meta.pop("points"))


def execute_build(build: KernelBuild, cfg: CoreConfig | None = None,
                  max_cycles: int = 5_000_000,
                  require_correct: bool = True) -> Result:
    """Execute ``build`` and return its metrics."""
    cfg = cfg or CoreConfig()
    cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run(max_cycles=max_cycles)

    correct = build.check(cluster)
    if require_correct and not correct:
        raise AssertionError(
            f"{build.name}: simulated output does not match the golden "
            f"model"
        )

    perf = cluster.perf
    have_marks = MARK_START in perf.marks and MARK_END in perf.marks
    region = perf.region_cycles(MARK_START, MARK_END) if have_marks \
        else perf.cycles
    util = perf.fpu_utilization(MARK_START, MARK_END) if have_marks \
        else perf.fpu_utilization()

    model = EnergyModel(cfg)
    energy = model.report(cluster)

    meta = dict(build.meta)
    flops, points = _pop_throughput_inputs(build.name, meta)
    if _obs.ENABLED:
        from repro.obs.metrics import METRICS, cluster_run_obs

        meta["obs"] = cluster_run_obs(cluster)
        METRICS.inc("ff.spans", cluster.ff_stats["spans"])
        METRICS.inc("ff.cycles", cluster.ff_stats["cycles"])
        if cluster.fastpath is not None:
            stats = cluster.fastpath.stats
            METRICS.inc("fastpath.regions", stats["regions_seen"])
            METRICS.inc("fastpath.eligible", stats["regions_eligible"])
            METRICS.inc("fastpath.cycles",
                        stats["fast_forwarded_cycles"])
    return Result(
        name=build.name,
        correct=correct,
        cycles=perf.cycles,
        region_cycles=region,
        fpu_utilization=util,
        energy=energy,
        clock_hz=cfg.clock_hz,
        flops=flops,
        points=points,
        meta=meta,
        stalls=perf.stall_breakdown(),
    )


def execute_stencil(kernel: str, variant: Variant,
                    grid: Grid3d | None = None,
                    cfg: CoreConfig | None = None,
                    unroll: int = 4,
                    max_cycles: int = 5_000_000,
                    require_correct: bool = True) -> Result:
    """Build and run one paper stencil data point."""
    spec, default_grid = get_stencil(kernel)
    build = build_stencil(spec, grid or default_grid, variant,
                          unroll=unroll, cfg=cfg)
    return execute_build(build, cfg=cfg, max_cycles=max_cycles,
                         require_correct=require_correct)


# -- deprecated pre-1.5 entry points ---------------------------------------


def run_build(build: KernelBuild, cfg: CoreConfig | None = None,
              max_cycles: int = 5_000_000,
              require_correct: bool = True) -> Result:
    """Deprecated alias of :func:`execute_build`.

    .. deprecated:: 1.5
       Use ``repro.api.Session.run(build)`` (or :func:`execute_build`).
    """
    warnings.warn(
        "run_build() is deprecated; use repro.api.Session.run(build) "
        "(or repro.eval.runner.execute_build). Note: clock_hz/flops/"
        "points moved from result.meta to typed Result fields",
        DeprecationWarning, stacklevel=2)
    # Pre-1.5 leniency, shim only: builds could omit flops/points (the
    # metrics silently read as 0).  The unified front door requires
    # them declared; keep old builds running through the deprecation
    # window -- on a copy, so the caller's build still gets the strict
    # error from the new entry points.
    if not {"flops", "points"} <= build.meta.keys():
        build = dataclasses.replace(
            build, meta={"flops": 0, "points": 0, **build.meta})
    return execute_build(build, cfg=cfg, max_cycles=max_cycles,
                         require_correct=require_correct)


def run_stencil_variant(kernel: str, variant: Variant,
                        grid: Grid3d | None = None,
                        cfg: CoreConfig | None = None,
                        unroll: int = 4,
                        max_cycles: int = 5_000_000) -> Result:
    """Deprecated alias of :func:`execute_stencil`.

    .. deprecated:: 1.5
       Use ``repro.api.Session.run(workload(kernel, variant, ...))``.
    """
    warnings.warn(
        "run_stencil_variant() is deprecated; use "
        "repro.api.Session.run(workload(kernel, variant, ...)) "
        "(or repro.eval.runner.execute_stencil). Note: clock_hz/flops/"
        "points moved from result.meta to typed Result fields",
        DeprecationWarning, stacklevel=2)
    return execute_stencil(kernel, variant, grid=grid, cfg=cfg,
                           unroll=unroll, max_cycles=max_cycles)
