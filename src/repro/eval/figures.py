"""Per-figure data harnesses and the paper's reference numbers.

Every figure/claim of the paper has one entry point here; the benchmark
scripts call these and print paper-vs-measured tables.

Paper reference values are transcribed from the text dump of Fig. 3.  The
bar-label association in that dump is ambiguous (the caveat is recorded in
EXPERIMENTS.md); the *text* claims of section III are unambiguous and are
the primary reproduction targets:

* Chaining+ vs Base:  ~4% geomean speedup, ~10% geomean energy efficiency;
* Chaining+ vs Base-: ~8% speedup, ~9% energy efficiency;
* Chaining vs Base:   ~7% energy efficiency (no speedup: same issue count);
* FPU utilization above 93% with chaining;
* <2% area overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.parse import VECOP_KERNEL
from repro.api.result import Result
from repro.api.session import Session
from repro.api.workloads import make_workload
from repro.core.config import CoreConfig
from repro.eval.report import geomean
from repro.kernels.layout import Grid3d
from repro.kernels.registry import PAPER_KERNELS
from repro.kernels.variants import VARIANT_ORDER, Variant
from repro.kernels.vecop import VecopVariant

#: Fig. 3 left panel (FPU utilization) as read from the paper.
PAPER_FIG3_UTILIZATION = {
    "box3d1r": {
        Variant.BASE_MM: 0.85, Variant.BASE_M: 0.86, Variant.BASE: 0.87,
        Variant.CHAINING: 0.88, Variant.CHAINING_PLUS: 0.90,
    },
    "j3d27pt": {
        Variant.BASE_MM: 0.91, Variant.BASE_M: 0.90, Variant.BASE: 0.92,
        Variant.CHAINING: 0.93, Variant.CHAINING_PLUS: 0.95,
    },
}

#: Fig. 3 right panel (power, mW) as read from the paper.
PAPER_FIG3_POWER_MW = {
    "box3d1r": {
        Variant.BASE_MM: 60.6, Variant.BASE_M: 60.6, Variant.BASE: 60.5,
        Variant.CHAINING: 60.4, Variant.CHAINING_PLUS: 63.1,
    },
    "j3d27pt": {
        Variant.BASE_MM: 63.2, Variant.BASE_M: 59.6, Variant.BASE: 59.5,
        Variant.CHAINING: 59.7, Variant.CHAINING_PLUS: 59.6,
    },
}

#: Section III text claims (geomeans over the two stencils).
PAPER_CLAIMS = {
    "speedup_chaining_plus_vs_base_pct": 4.0,
    "efficiency_chaining_plus_vs_base_pct": 10.0,
    "speedup_chaining_plus_vs_base_m_pct": 8.0,
    "efficiency_chaining_plus_vs_base_m_pct": 9.0,
    "efficiency_chaining_vs_base_pct": 7.0,
    "min_chaining_utilization": 0.93,
    "area_overhead_max_pct": 2.0,
}


def fig1_data(n: int = 256, loop_mode: str = "frep",
              cfg: CoreConfig | None = None,
              workers: int | None = 0) -> dict[str, Result]:
    """Fig. 1: the three vecop variants (via the unified session)."""
    workloads = [make_workload(VECOP_KERNEL, variant, n=n,
                               loop_mode=loop_mode)
                 for variant in VecopVariant]
    campaign = Session(cfg, workers=workers).map(workloads)
    campaign.raise_on_failure()
    return {o.point.variant: o.result for o in campaign.outcomes}


def fig3_data(kernels: tuple[str, ...] = PAPER_KERNELS,
              variants: tuple[Variant, ...] = VARIANT_ORDER,
              cfg: CoreConfig | None = None,
              grids: dict[str, Grid3d] | None = None,
              workers: int | None = 0,
              ) -> dict[tuple[str, str], Result]:
    """Fig. 3: all (kernel, variant) points, via the unified session.

    The default ``workers=0`` runs serially in-process, which keeps the
    results bit-identical to calling the execution backends in a loop;
    pass ``workers=None`` (all cores) or an explicit count to fan out.
    """
    workloads = [make_workload(kernel, variant,
                               grid=(grids or {}).get(kernel))
                 for kernel in kernels for variant in variants]
    campaign = Session(cfg, workers=workers).map(workloads)
    campaign.raise_on_failure()
    return {(o.point.kernel, o.point.variant): o.result
            for o in campaign.outcomes}


@dataclass
class ClaimsSummary:
    """Measured counterparts of the section III claims."""

    speedup_chaining_plus_vs_base_pct: float
    efficiency_chaining_plus_vs_base_pct: float
    speedup_chaining_plus_vs_base_m_pct: float
    efficiency_chaining_plus_vs_base_m_pct: float
    efficiency_chaining_vs_base_pct: float
    min_chaining_utilization: float

    def as_dict(self) -> dict[str, float]:
        return {
            "speedup_chaining_plus_vs_base_pct":
                self.speedup_chaining_plus_vs_base_pct,
            "efficiency_chaining_plus_vs_base_pct":
                self.efficiency_chaining_plus_vs_base_pct,
            "speedup_chaining_plus_vs_base_m_pct":
                self.speedup_chaining_plus_vs_base_m_pct,
            "efficiency_chaining_plus_vs_base_m_pct":
                self.efficiency_chaining_plus_vs_base_m_pct,
            "efficiency_chaining_vs_base_pct":
                self.efficiency_chaining_vs_base_pct,
            "min_chaining_utilization": self.min_chaining_utilization,
        }


def claims_from_results(results: dict[tuple[str, str], Result],
                        kernels: tuple[str, ...] = PAPER_KERNELS,
                        ) -> ClaimsSummary:
    """Derive the section III claims from a :func:`fig3_data` result set."""

    def ratio(metric, kernel, num_variant, den_variant):
        return metric(results[kernel, num_variant.label]) \
            / metric(results[kernel, den_variant.label])

    def cycles(res: Result) -> float:
        return res.region_cycles

    def eff(res: Result) -> float:
        return res.gflops_per_watt

    def gm_pct(metric, num, den, invert=False) -> float:
        ratios = []
        for kernel in kernels:
            r = ratio(metric, kernel, num, den)
            ratios.append(1.0 / r if invert else r)
        return 100.0 * (geomean(ratios) - 1.0)

    return ClaimsSummary(
        speedup_chaining_plus_vs_base_pct=gm_pct(
            cycles, Variant.CHAINING_PLUS, Variant.BASE, invert=True),
        efficiency_chaining_plus_vs_base_pct=gm_pct(
            eff, Variant.CHAINING_PLUS, Variant.BASE),
        speedup_chaining_plus_vs_base_m_pct=gm_pct(
            cycles, Variant.CHAINING_PLUS, Variant.BASE_M, invert=True),
        efficiency_chaining_plus_vs_base_m_pct=gm_pct(
            eff, Variant.CHAINING_PLUS, Variant.BASE_M),
        efficiency_chaining_vs_base_pct=gm_pct(
            eff, Variant.CHAINING, Variant.BASE),
        # The paper's ">93% FPU utilization" headline refers to the full
        # chaining configuration (Chaining+) on both stencils.
        min_chaining_utilization=min(
            results[kernel, Variant.CHAINING_PLUS.label].fpu_utilization
            for kernel in kernels
        ),
    )
