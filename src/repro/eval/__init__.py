"""Evaluation backends: run kernels, collect metrics, regenerate figures.

The public front door is :mod:`repro.api` (``Session``/``Workload``);
this package holds the execution backends behind it
(:func:`execute_build`, :func:`execute_stencil`,
:func:`~repro.eval.system_runner.execute_system_stencil`), the
reporting helpers, and the pre-1.5 deprecation shims
(:func:`run_build`, :func:`run_stencil_variant`).
"""

from repro.eval.report import format_table, geomean
from repro.eval.runner import (
    Result,
    RunResult,
    execute_build,
    execute_stencil,
    run_build,
    run_stencil_variant,
)

__all__ = [
    "Result",
    "RunResult",
    "execute_build",
    "execute_stencil",
    "format_table",
    "geomean",
    "run_build",
    "run_stencil_variant",
]
