"""Evaluation harness: run kernels, collect metrics, regenerate figures."""

from repro.eval.runner import RunResult, run_build, run_stencil_variant
from repro.eval.report import format_table, geomean

__all__ = [
    "RunResult",
    "format_table",
    "geomean",
    "run_build",
    "run_stencil_variant",
]
