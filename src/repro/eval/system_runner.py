"""Multi-cluster execution backend behind the unified API.

The system-level counterpart of :mod:`repro.eval.runner`:
:func:`execute_system_stencil` builds the halo-exchange decomposition
(:mod:`repro.kernels.partition`), runs it on a
:class:`repro.system.System`, verifies the reassembled global grid
bit-exactly against the iterated numpy golden model, and returns the
same unified :class:`~repro.api.result.Result` every other backend
produces -- with the system-level aggregation (per-cluster cycles,
global-memory traffic, interconnect contention) as a typed
:class:`~repro.api.result.SystemReport` (mirrored into ``meta`` for
pre-1.5 consumers, one release).

The pre-1.5 entry point :func:`run_system_stencil` remains as a
deprecation shim.
"""

from __future__ import annotations

import warnings

from repro.api.result import Result, SystemReport
from repro.core.config import CoreConfig, SystemConfig
from repro.energy.model import EnergyModel
from repro.eval.runner import _pop_throughput_inputs
from repro.kernels.layout import Grid3d
from repro.kernels.partition import build_partitioned_stencil
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.obs import spans as _obs
from repro.system import System

#: SystemConfig fields settable through the sweep/CLI system axes
#: (``num_clusters`` and ``iters`` route separately).
SYSTEM_KNOBS = ("gmem_banks", "gmem_bank_bytes_per_cycle",
                "gmem_latency", "link_bytes_per_cycle", "gmem_size")


def make_system_config(num_clusters: int = 1,
                       cfg: CoreConfig | None = None,
                       **knobs) -> SystemConfig:
    """Assemble a validated :class:`SystemConfig` from loose knobs."""
    sys_cfg = SystemConfig(num_clusters=num_clusters)
    if cfg is not None:
        sys_cfg.core = cfg
    for key, value in knobs.items():
        if value is None:
            continue
        if key not in SYSTEM_KNOBS:
            raise ValueError(
                f"unknown system knob {key!r}; choose from: "
                f"{', '.join(SYSTEM_KNOBS)}")
        setattr(sys_cfg, key, int(value))
    sys_cfg.validate()
    return sys_cfg


def execute_system_stencil(kernel: str, variant: Variant,
                           grid: Grid3d | None = None,
                           num_clusters: int = 1,
                           cfg: CoreConfig | None = None,
                           sys_cfg: SystemConfig | None = None,
                           unroll: int = 4, iters: int = 1,
                           max_cycles: int = 20_000_000,
                           require_correct: bool = True,
                           tile_order: list[int] | None = None) -> Result:
    """Build, run and verify one multi-cluster stencil data point."""
    spec, default_grid = get_stencil(kernel)
    grid = grid or default_grid
    if sys_cfg is None:
        sys_cfg = make_system_config(num_clusters, cfg)
    elif sys_cfg.num_clusters != num_clusters:
        raise ValueError(
            f"sys_cfg.num_clusters={sys_cfg.num_clusters} but "
            f"num_clusters={num_clusters}")
    build = build_partitioned_stencil(
        spec, grid, variant, num_clusters, unroll=unroll, cfg=sys_cfg,
        iters=iters, tile_order=tile_order)
    system = System(build.asms, sys_cfg)
    build.load_into(system)
    system.run(max_cycles=max_cycles)

    correct = build.check(system)
    if require_correct and not correct:
        raise AssertionError(
            f"{build.name}: reassembled output does not match the "
            f"iterated golden model")

    model = EnergyModel(sys_cfg.core)
    energy = model.system_report(system)

    meta = dict(build.meta)
    report = SystemReport(
        num_clusters=meta.get("num_clusters", num_clusters),
        iters=meta.get("iters", iters),
        per_cluster_cycles=system.per_cluster_cycles(),
        sys_barriers=system.sys_barriers,
        gmem_bytes_read=system.gmem.bytes_read,
        gmem_bytes_written=system.gmem.bytes_written,
        gmem_latency_cycles=system.gmem.transfer_latency_cycles,
        interconnect_busy_cycles=system.interconnect.busy_cycles,
        interconnect_contended_cycles=system.interconnect.contended_cycles,
    )
    flops, points = _pop_throughput_inputs(build.name, meta)
    # Mirror of the typed sub-report for pre-1.5 meta consumers (one
    # release; ``Result.system`` is authoritative).
    meta.update({k: v for k, v in report.to_dict().items()
                 if k not in ("num_clusters", "iters")})
    if _obs.ENABLED:
        from repro.obs.metrics import METRICS, system_run_obs

        meta["obs"] = system_run_obs(system)
        METRICS.inc("system.runs")
        METRICS.inc("dma.bytes", system.gmem.bytes_moved)
        METRICS.inc("dma.contended_cycles",
                    system.interconnect.contended_cycles)
    return Result(
        name=build.name,
        correct=correct,
        cycles=system.cycle,
        region_cycles=system.cycle,
        fpu_utilization=system.fpu_utilization(),
        energy=energy,
        clock_hz=sys_cfg.core.clock_hz,
        flops=flops,
        points=points,
        meta=meta,
        stalls=system.stall_breakdown(),
        system=report,
    )


def run_system_stencil(kernel: str, variant: Variant,
                       grid: Grid3d | None = None,
                       num_clusters: int = 1,
                       cfg: CoreConfig | None = None,
                       sys_cfg: SystemConfig | None = None,
                       unroll: int = 4, iters: int = 1,
                       max_cycles: int = 20_000_000,
                       require_correct: bool = True,
                       tile_order: list[int] | None = None) -> Result:
    """Deprecated alias of :func:`execute_system_stencil`.

    .. deprecated:: 1.5
       Use ``repro.api.Session.run(workload(..., num_clusters=N))``.
    """
    warnings.warn(
        "run_system_stencil() is deprecated; use "
        "repro.api.Session.run(workload(kernel, variant, "
        "num_clusters=N, ...)) (or "
        "repro.eval.system_runner.execute_system_stencil). Note: "
        "clock_hz/flops/points moved from result.meta to typed Result "
        "fields (the system aggregates stay mirrored in meta for one "
        "release)",
        DeprecationWarning, stacklevel=2)
    return execute_system_stencil(
        kernel, variant, grid=grid, num_clusters=num_clusters, cfg=cfg,
        sys_cfg=sys_cfg, unroll=unroll, iters=iters,
        max_cycles=max_cycles, require_correct=require_correct,
        tile_order=tile_order)
