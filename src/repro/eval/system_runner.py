"""Run partitioned stencils on a multi-cluster system, collect metrics.

The system-level counterpart of :mod:`repro.eval.runner`: builds the
halo-exchange decomposition (:mod:`repro.kernels.partition`), runs it on
a :class:`repro.system.System`, verifies the reassembled global grid
bit-exactly against the iterated numpy golden model, and returns the
same :class:`~repro.eval.runner.RunResult` shape the sweep engine and
CLI already consume -- with system-level aggregation (per-cluster
cycles, global-memory traffic, interconnect contention) in ``meta``.
"""

from __future__ import annotations

from repro.core.config import CoreConfig, SystemConfig
from repro.energy.model import EnergyModel
from repro.eval.runner import RunResult
from repro.kernels.layout import Grid3d
from repro.kernels.partition import build_partitioned_stencil
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.system import System

#: SystemConfig fields settable through the sweep/CLI system axes
#: (``num_clusters`` and ``iters`` route separately).
SYSTEM_KNOBS = ("gmem_banks", "gmem_bank_bytes_per_cycle",
                "gmem_latency", "link_bytes_per_cycle", "gmem_size")


def make_system_config(num_clusters: int = 1,
                       cfg: CoreConfig | None = None,
                       **knobs) -> SystemConfig:
    """Assemble a validated :class:`SystemConfig` from loose knobs."""
    sys_cfg = SystemConfig(num_clusters=num_clusters)
    if cfg is not None:
        sys_cfg.core = cfg
    for key, value in knobs.items():
        if value is None:
            continue
        if key not in SYSTEM_KNOBS:
            raise ValueError(
                f"unknown system knob {key!r}; choose from: "
                f"{', '.join(SYSTEM_KNOBS)}")
        setattr(sys_cfg, key, int(value))
    sys_cfg.validate()
    return sys_cfg


def run_system_stencil(kernel: str, variant: Variant,
                       grid: Grid3d | None = None,
                       num_clusters: int = 1,
                       cfg: CoreConfig | None = None,
                       sys_cfg: SystemConfig | None = None,
                       unroll: int = 4, iters: int = 1,
                       max_cycles: int = 20_000_000,
                       require_correct: bool = True,
                       tile_order: list[int] | None = None) -> RunResult:
    """Build, run and verify one multi-cluster stencil data point."""
    spec, default_grid = get_stencil(kernel)
    grid = grid or default_grid
    if sys_cfg is None:
        sys_cfg = make_system_config(num_clusters, cfg)
    elif sys_cfg.num_clusters != num_clusters:
        raise ValueError(
            f"sys_cfg.num_clusters={sys_cfg.num_clusters} but "
            f"num_clusters={num_clusters}")
    build = build_partitioned_stencil(
        spec, grid, variant, num_clusters, unroll=unroll, cfg=sys_cfg,
        iters=iters, tile_order=tile_order)
    system = System(build.asms, sys_cfg)
    build.load_into(system)
    system.run(max_cycles=max_cycles)

    correct = build.check(system)
    if require_correct and not correct:
        raise AssertionError(
            f"{build.name}: reassembled output does not match the "
            f"iterated golden model")

    model = EnergyModel(sys_cfg.core)
    energy = model.system_report(system)

    meta = dict(build.meta)
    meta["clock_hz"] = sys_cfg.core.clock_hz
    meta["per_cluster_cycles"] = system.per_cluster_cycles()
    meta["sys_barriers"] = system.sys_barriers
    meta["gmem_bytes_read"] = system.gmem.bytes_read
    meta["gmem_bytes_written"] = system.gmem.bytes_written
    meta["gmem_latency_cycles"] = system.gmem.transfer_latency_cycles
    meta["interconnect_busy_cycles"] = system.interconnect.busy_cycles
    meta["interconnect_contended_cycles"] = \
        system.interconnect.contended_cycles
    return RunResult(
        name=build.name,
        correct=correct,
        cycles=system.cycle,
        region_cycles=system.cycle,
        fpu_utilization=system.fpu_utilization(),
        energy=energy,
        meta=meta,
        stalls=system.stall_breakdown(),
    )
