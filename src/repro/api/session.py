"""The session: one front door for running workloads at any scale.

A :class:`Session` holds the execution context -- base
:class:`~repro.core.config.CoreConfig`, result cache, process-pool
width, per-point timeout, engine selection -- and exposes:

* :meth:`Session.run` -- execute one :class:`~repro.api.workloads.
  Workload` (or a prebuilt :class:`~repro.kernels.build.KernelBuild`)
  and return the unified :class:`~repro.api.result.Result`;
* :meth:`Session.map` -- execute many workloads through the sweep
  engine's process pool and content-addressed cache, returning the
  :class:`~repro.sweep.runner.Campaign` of outcomes;
* :meth:`Session.resolve` -- the materialized ``CoreConfig`` /
  ``SystemConfig`` a workload would run under (the single-cluster or
  :mod:`repro.system` backend is picked automatically);
* :meth:`Session.key` -- the workload's content-address in the result
  cache (identical to the pre-1.5 sweep ``point_key``);
* :meth:`Session.audit` / :meth:`Session.backfill` -- campaign
  completeness against the session's result store: classify every
  point (ok / missing / error / timeout / stale-version /
  stale-schema) and re-run exactly the gaps
  (:mod:`repro.sweep.audit`).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.api.cancel import CancelToken
from repro.api.execute import (
    DEFAULT_MAX_CYCLES,
    apply_engine,
    execute_workload,
    resolve_config,
)
from repro.api.parse import parse_engine
from repro.api.result import Result
from repro.api.workloads import Workload
from repro.core.config import CoreConfig, SystemConfig
from repro.kernels.build import KernelBuild
from repro.obs import spans as _obs
from repro.obs.metrics import METRICS
from repro.sweep.audit import (
    DEFAULT_RETRY_BUDGET,
    BackfillPlan,
    CampaignAudit,
    audit_campaign,
)
from repro.sweep.cache import ResultCache, package_version, point_key
from repro.sweep.runner import Campaign, SweepRunner


class Session:
    """Execution context resolving workloads onto the right backend.

    ``workers`` sets the default pool width for :meth:`map`:
    ``1`` (the default) runs serially in-process -- results are the
    very objects the backends produced, which bit-identical
    reproduction relies on -- ``None`` sizes the pool to the host's
    cores, and any other integer is an explicit pool width.

    ``max_cycles=None`` (the default) uses each backend's own budget
    -- 20M simulated cycles for multi-cluster workloads, 5M otherwise
    -- identically in :meth:`run` and :meth:`map`, so what enters a
    shared cache never depends on which front door simulated it.

    ``timeout`` is the per-workload wall-clock budget of :meth:`map`
    campaigns (enforced in the sweep workers); :meth:`run` executes
    in-process and is bounded by ``max_cycles`` only.
    """

    def __init__(self, cfg: CoreConfig | None = None, *,
                 cache: ResultCache | str | None = None,
                 workers: int | None = 1,
                 timeout: float | None = None,
                 engine: str | None = None,
                 max_cycles: int | None = None):
        self.cfg = cfg
        self.cache = ResultCache.coerce(cache)
        self.workers = workers
        self.timeout = timeout
        self.engine = parse_engine(engine) if engine is not None else None
        self.max_cycles = max_cycles

    # -- resolution --------------------------------------------------------

    def resolve(self, workload: Workload) -> CoreConfig | SystemConfig:
        """Materialized config ``workload`` runs under in this session."""
        return resolve_config(workload, base_cfg=self.cfg,
                              engine=self.engine)

    def key(self, workload: Workload) -> str:
        """Content-address of ``workload`` in this session's cache."""
        return point_key(workload, package_version(), self.cfg,
                         engine=self.engine)

    # -- execution ---------------------------------------------------------

    def run(self, work: Workload | KernelBuild, *,
            require_correct: bool = True) -> Result:
        """Execute one workload (or prebuilt kernel) and return its
        :class:`Result`.

        Workloads go through the session cache when one is configured;
        ad-hoc :class:`KernelBuild` objects have no canonical form and
        always simulate.  Failures raise (``ValueError`` for bad
        configs, ``AssertionError`` for golden-model mismatches when
        ``require_correct``).
        """
        if isinstance(work, KernelBuild):
            cfg = self._build_cfg()
            if cfg is not None and cfg.engine == "analytical":
                from repro.analytical.model import estimate_build
                return estimate_build(work, cfg=cfg)
            from repro.eval.runner import execute_build
            return execute_build(work, cfg=cfg,
                                 max_cycles=self.max_cycles
                                 or DEFAULT_MAX_CYCLES,
                                 require_correct=require_correct)
        if not isinstance(work, Workload):
            raise TypeError(
                f"Session.run() takes a Workload or a KernelBuild, "
                f"got {type(work).__name__}")
        if not _obs.ENABLED:
            return self._run_workload(work, require_correct)
        METRICS.inc("session.runs")
        with _obs.tracer().span("Session.run", "api",
                                args={"workload": work.label}) as sargs:
            return self._run_workload(work, require_correct,
                                      span_args=sargs)

    def _run_workload(self, work: Workload, require_correct: bool,
                      span_args: dict | None = None) -> Result:
        key = self.key(work) if self.cache is not None else None
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                if span_args is not None:
                    span_args["cache"] = "hit"
                    METRICS.inc("cache.hit")
                return hit
        start = time.perf_counter()
        result = execute_workload(work, base_cfg=self.cfg,
                                  max_cycles=self.max_cycles,
                                  engine=self.engine,
                                  require_correct=require_correct)
        seconds = time.perf_counter() - start
        if key is not None and result.correct:
            # Never cache an incorrect result (possible only with
            # require_correct=False): the key is shared with campaigns
            # that would replay it as an 'ok' outcome.
            self.cache.put(key, work, result, seconds, package_version())
        if span_args is not None:
            # Annotate after cache.put so the wall-clock fields never
            # reach the bit-identity-pinned on-disk records.
            span_args["cache"] = "miss" if key is not None else "uncached"
            if key is not None:
                METRICS.inc("cache.miss")
            METRICS.observe("sweep.point_seconds", seconds)
            result.meta.setdefault("obs", {})["wall_seconds"] = seconds
        return result

    def map(self, workloads: Iterable[Workload],
            parallel: bool | int | None = None,
            progress: Callable | None = None, *,
            fidelity: str | None = None,
            interest: Callable | dict | None = None,
            cancel: CancelToken | None = None) -> Campaign:
        """Execute many workloads; returns the campaign of outcomes.

        ``parallel``: ``None`` uses the session's ``workers`` default,
        ``False`` forces serial in-process execution, ``True`` fans out
        over all cores, and an integer is an explicit pool width.
        Failures are isolated per workload (see
        :class:`~repro.sweep.runner.Outcome`); cache hits replay
        without simulating.

        ``fidelity`` selects the execution tier:

        * ``None`` / ``"cycle"`` -- the session's engine (default);
        * ``"analytical"`` -- the closed-form estimator for every point
          (cached under ``engine="analytical"`` keys; a per-point
          ``("engine", ...)`` override still wins, as everywhere);
        * ``"triage"`` -- estimate every point analytically in-process
          (pure, uncached), then re-run only the ``interest`` region
          (see :func:`repro.analytical.triage.select_interest`; default
          the slowest quartile by estimated cycles) cycle-accurately.
          The merged campaign preserves point order, carries estimate
          outcomes (``meta["fidelity"]="analytical"``, no cache key)
          for the rest, and reports counts in ``Campaign.triage``.

        ``cancel`` is a cooperative :class:`~repro.api.cancel.
        CancelToken`: trip it (from a signal handler, another thread,
        or the serve layer) and the campaign stops dispatching new
        points, drains what is in flight, and returns with
        ``"cancelled"`` outcomes for the rest --
        see :meth:`repro.sweep.runner.SweepRunner.run`.
        """
        works = list(workloads)
        if fidelity not in (None, "cycle", "analytical", "triage"):
            raise ValueError(
                f"fidelity must be one of 'cycle', 'analytical', "
                f"'triage' (or None), got {fidelity!r}")
        if interest is not None and fidelity != "triage":
            raise ValueError(
                "interest applies to fidelity='triage' only")
        if fidelity == "triage":
            def run() -> Campaign:
                return self._map_triage(works, parallel, progress,
                                        interest, cancel)
        else:
            engine = "analytical" if fidelity == "analytical" \
                else self.engine
            runner = SweepRunner(
                cache=self.cache, workers=self._pool_width(parallel),
                timeout=self.timeout, base_cfg=self.cfg,
                max_cycles=self.max_cycles, engine=engine)

            def run() -> Campaign:
                return runner.run(works, progress=progress,
                                  cancel=cancel)
        if not _obs.ENABLED:
            return run()
        with _obs.tracer().span("Session.map", "api",
                                args={"points": len(works)}) as sargs:
            campaign = run()
            sargs["cache_hits"] = campaign.cached_count
            sargs["failed"] = len(campaign.failed)
            return campaign

    def _map_triage(self, works: list[Workload],
                    parallel: bool | int | None,
                    progress: Callable | None,
                    interest: Callable | dict | None,
                    cancel: CancelToken | None = None) -> Campaign:
        """Estimate everything, simulate only the interest region.

        The estimate phase calls the estimator directly -- pure and
        in-process, so a triage campaign provably cannot touch a
        simulator (or the cache) outside its selected points.
        """
        from repro.analytical.model import estimate_workload
        from repro.analytical.triage import select_interest
        from repro.sweep.runner import Outcome

        start = time.perf_counter()
        estimates: list[Result | None] = []
        for work in works:
            try:
                estimates.append(estimate_workload(work,
                                                   base_cfg=self.cfg))
            except Exception:
                # Invalid shapes fail identically at either fidelity;
                # route them to the simulator for the authoritative
                # error outcome.
                estimates.append(None)
        plan = select_interest(works, estimates, interest)
        rerun = sorted(set(plan.selected) | set(plan.failed))
        runner = SweepRunner(
            cache=self.cache, workers=self._pool_width(parallel),
            timeout=self.timeout, base_cfg=self.cfg,
            max_cycles=self.max_cycles, engine=self.engine)
        sub = runner.run([works[i] for i in rerun], progress=progress,
                         cancel=cancel)
        by_index = dict(zip(rerun, sub.outcomes))
        outcomes = [
            by_index[i] if i in by_index else
            Outcome(point=work, status="ok", result=estimates[i])
            for i, work in enumerate(works)]
        campaign = Campaign(outcomes=outcomes,
                            seconds=time.perf_counter() - start,
                            obs=sub.obs, triage=plan.counts(),
                            interrupted=sub.interrupted)
        return campaign

    # -- campaign completeness ---------------------------------------------

    def audit(self, spec_or_points, name: str | None = None,
              ) -> CampaignAudit:
        """Diff a campaign (spec or workload list) against the
        session's result store: classify every point, report coverage
        and gaps (:class:`~repro.sweep.audit.CampaignAudit`).  The
        session's base config and engine are the audit context --
        exactly the cache-key ingredients :meth:`map` would use."""
        if self.cache is None:
            raise ValueError(
                "Session.audit requires a result cache; construct the "
                "session with cache=<dir>")
        return audit_campaign(spec_or_points, self.cache,
                              base_cfg=self.cfg, engine=self.engine,
                              name=name)

    def backfill(self, audit_or_spec,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 progress: Callable | None = None,
                 ) -> tuple[BackfillPlan, Campaign]:
        """Plan and execute the gaps of an audit (or of a spec, which
        is audited first): stale points re-key automatically, failed
        points retry within ``retry_budget`` cumulative attempts.
        Returns ``(plan, campaign)`` -- re-audit to confirm coverage."""
        audit = audit_or_spec if isinstance(audit_or_spec, CampaignAudit) \
            else self.audit(audit_or_spec)
        plan = BackfillPlan(audit, retry_budget=retry_budget)
        return plan, plan.execute(self, progress=progress)

    # -- helpers -----------------------------------------------------------

    def _pool_width(self, parallel: bool | int | None) -> int | None:
        if parallel is None:
            return self.workers
        if parallel is True:
            return None              # all cores
        if parallel is False:
            return 1                 # serial, in-process
        return int(parallel)

    def _build_cfg(self) -> CoreConfig | None:
        """Session config for ad-hoc builds, with the engine applied
        (``fresh``: the session's base config must not be mutated)."""
        return apply_engine(self.cfg, self.engine, fresh=True)
