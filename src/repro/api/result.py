"""The one canonical result schema of the unified API.

Every execution path -- ``Session.run``/``Session.map``, the sweep
engine, the multi-cluster system runner, CLI ``--json``/``--csv`` and
the result cache's JSONL records -- produces and serializes exactly one
shape: :class:`Result`, with :meth:`Result.to_dict` /
:meth:`Result.from_dict` as the stable wire form.

Design rules:

* ``clock_hz``, ``flops`` and ``points`` are **first-class typed
  fields**: omitting one raises at construction instead of silently
  producing a wrong Gflop/s figure (the pre-1.5 ``RunResult`` read them
  out of ``meta`` with hidden defaults).  ``meta`` holds free-form
  extras only and may not shadow the typed fields.
* Derived metrics (``gflops``, ``power_mw``, ...) are recomputed from
  the typed fields; :meth:`to_dict` emits them for consumers but
  :meth:`from_dict` ignores them, so a record can never carry a stale
  derived value.
* Multi-cluster runs attach a typed :class:`SystemReport` sub-report
  (the same aggregates are mirrored into ``meta`` for pre-1.5
  consumers, one release).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.energy.model import EnergyReport

#: Schema identifier stamped into every serialized record.
RESULT_SCHEMA = "repro-result/v1"

#: Scalar fields of the schema, in emission order.  Drives the sweep
#: CSV columns and the golden-file schema tests: the first two identify
#: and qualify the run, the rest are the typed inputs and the derived
#: metrics.
RESULT_SCALARS = (
    "name", "correct", "cycles", "region_cycles", "fpu_utilization",
    "clock_hz", "flops", "points", "gflops", "gflops_per_watt",
    "power_mw", "cycles_per_point",
)

#: Top-level keys of :meth:`Result.to_dict`, exactly and in order.
RESULT_KEYS = ("schema", *RESULT_SCALARS, "energy", "system", "meta",
               "stalls")

#: Performance metrics resolvable on a Result (attribute or property);
#: used by the sweep aggregation layer and for early CLI ``--metric``
#: validation.  Deliberately excludes the raw inputs
#: (``clock_hz``/``flops``/``points``): comparing variants on a
#: constant input makes no sense as a baseline table.
RESULT_METRICS = frozenset({
    "cycles", "region_cycles", "fpu_utilization", "power_mw", "gflops",
    "gflops_per_watt", "cycles_per_point",
})

#: Typed fields that must never appear in ``meta``.
_TYPED_FIELDS = ("clock_hz", "flops", "points")


def _jsonify(value):
    """Normalize ``meta`` extras to their canonical JSON shape (tuples
    become lists), so ``to_dict`` round-trips exactly."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


@dataclass
class SystemReport:
    """Aggregates of one multi-cluster (:mod:`repro.system`) run."""

    num_clusters: int
    iters: int
    per_cluster_cycles: list[int]
    sys_barriers: int
    gmem_bytes_read: int
    gmem_bytes_written: int
    gmem_latency_cycles: int
    interconnect_busy_cycles: int
    interconnect_contended_cycles: int

    def to_dict(self) -> dict:
        # Derived from the dataclass fields: adding a field serializes
        # it automatically (from_dict/from_meta derive the same way).
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemReport":
        return cls(**{f.name: data[f.name]
                      for f in dataclasses.fields(cls)})

    @classmethod
    def from_meta(cls, meta: dict) -> "SystemReport":
        """Lift the sub-report out of a pre-1.5 ``meta`` dict."""
        lifted = {"num_clusters": 1, "iters": 1,
                  "per_cluster_cycles": []}
        for f in dataclasses.fields(cls):
            lifted[f.name] = meta.get(f.name, lifted.get(f.name, 0))
        return cls(**lifted)


@dataclass
class Result:
    """Metrics from one workload execution -- the one result schema."""

    name: str
    correct: bool
    cycles: int                 # whole run
    region_cycles: int          # between the sim_mark region markers
    fpu_utilization: float      # over the measured region
    energy: EnergyReport
    #: Clock used to convert cycles to time/power.  Required.
    clock_hz: float
    #: Useful floating-point operations of the measured region.
    #: Required; pass an explicit 0 for workloads that report none.
    flops: int
    #: Output points produced (grid points, vector elements).  Required;
    #: pass an explicit 0 for workloads that report none.
    points: int
    #: Free-form extras from the kernel builder (never the typed fields).
    meta: dict = field(default_factory=dict)
    stalls: dict[str, int] = field(default_factory=dict)
    #: Multi-cluster aggregates; ``None`` for single-cluster runs.
    system: SystemReport | None = None

    def __post_init__(self) -> None:
        for name in _TYPED_FIELDS:
            # Required non-default fields already make omission a
            # TypeError; an explicit None gets the targeted message.
            if getattr(self, name) is None:
                raise ValueError(
                    f"Result.{name} is required; pass it explicitly "
                    f"(meta holds free-form extras only)")
        if self.clock_hz <= 0:
            raise ValueError(
                f"Result.clock_hz must be positive, got {self.clock_hz}")
        if self.flops < 0 or self.points < 0:
            raise ValueError(
                f"Result.flops/points must be >= 0, got "
                f"{self.flops}/{self.points}")
        shadowed = [k for k in _TYPED_FIELDS if k in self.meta]
        if shadowed:
            raise ValueError(
                f"meta may not shadow typed Result fields: "
                f"{', '.join(shadowed)}")

    # -- derived metrics --------------------------------------------------

    @property
    def power_mw(self) -> float:
        return self.energy.power_mw

    @property
    def gflops(self) -> float:
        """Achieved throughput over the measured region, in Gflop/s."""
        if self.region_cycles == 0:
            return 0.0
        seconds = self.region_cycles / self.clock_hz
        return self.flops / seconds / 1e9

    @property
    def gflops_per_watt(self) -> float:
        """Energy efficiency: achieved Gflop/s per Watt."""
        if self.energy.power_mw == 0:
            return 0.0
        return self.gflops / (self.energy.power_mw / 1e3)

    @property
    def cycles_per_point(self) -> float:
        return self.region_cycles / self.points if self.points else 0.0

    # -- the wire form ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical form; keys are :data:`RESULT_KEYS`."""
        return {
            "schema": RESULT_SCHEMA,
            "name": self.name,
            "correct": self.correct,
            "cycles": self.cycles,
            "region_cycles": self.region_cycles,
            "fpu_utilization": self.fpu_utilization,
            "clock_hz": self.clock_hz,
            "flops": self.flops,
            "points": self.points,
            "gflops": self.gflops,
            "gflops_per_watt": self.gflops_per_watt,
            "power_mw": self.power_mw,
            "cycles_per_point": self.cycles_per_point,
            "energy": {
                "total_pj": self.energy.total_pj,
                "cycles": self.energy.cycles,
                "clock_hz": self.energy.clock_hz,
                "breakdown": dict(self.energy.breakdown),
            },
            "system": self.system.to_dict() if self.system else None,
            "meta": _jsonify(self.meta),
            "stalls": dict(self.stalls),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Result":
        """Inverse of :meth:`to_dict`.

        Also lifts pre-1.5 records (``RunResult`` dicts whose ``meta``
        carried ``clock_hz``/``flops``/``points``) into the typed form,
        so caches written before the API unification still load.
        """
        meta = dict(data.get("meta", {}))
        if "schema" in data and data["schema"] != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {data['schema']!r}; "
                f"this build reads {RESULT_SCHEMA!r}")
        if "schema" in data or any(k in data for k in _TYPED_FIELDS):
            # A stamped -- or stampless-but-new-shaped -- record: the
            # typed fields are REQUIRED at the top level, all of them
            # (KeyError on a malformed/truncated record, never a
            # silently-lifted default).
            clock_hz = data["clock_hz"]
            flops = data["flops"]
            points = data["points"]
            system = SystemReport.from_dict(data["system"]) \
                if data.get("system") else None
        else:  # genuine pre-1.5 record: the fields lived in meta
            clock_hz = meta.pop("clock_hz", 1.0e9)
            flops = meta.pop("flops", 0)
            points = meta.pop("points", 0)
            system = SystemReport.from_meta(meta) \
                if "per_cluster_cycles" in meta else None
        energy = data["energy"]
        return cls(
            name=data["name"],
            correct=data["correct"],
            cycles=data["cycles"],
            region_cycles=data["region_cycles"],
            fpu_utilization=data["fpu_utilization"],
            energy=EnergyReport(
                total_pj=energy["total_pj"],
                cycles=energy["cycles"],
                clock_hz=energy["clock_hz"],
                breakdown=dict(energy["breakdown"]),
            ),
            clock_hz=clock_hz,
            flops=flops,
            points=points,
            meta=meta,
            stalls=dict(data.get("stalls", {})),
            system=system,
        )
