"""repro.api: the unified workload/session API.

One declarative :class:`Workload` describes any experiment the package
can run -- kernel, variant, shape, config overrides, execution engine,
multi-cluster system axes -- and one :class:`Session` executes it,
picking the single-cluster or :mod:`repro.system` backend
automatically.  Every path emits one canonical :class:`Result` schema
(:meth:`Result.to_dict`), shared by CLI JSON, sweep CSV and the result
cache's JSONL records.

Quick start::

    from repro.api import Session, workload

    session = Session(cache=".sweep-cache")
    result = session.run(workload("j3d27pt", "Chaining+"))
    print(result.fpu_utilization, result.gflops_per_watt)

    campaign = session.map(
        [workload("box3d1r", v) for v in
         ("Base--", "Base-", "Base", "Chaining", "Chaining+")],
        parallel=True)
    for outcome in campaign.ok:
        print(outcome.point.label, outcome.result.to_dict()["gflops"])

See ``docs/api.md`` for the full reference and the migration table
from the pre-1.5 entry points.
"""

from repro.api.cancel import CancelToken
from repro.api.execute import (
    DEFAULT_MAX_CYCLES,
    apply_overrides,
    execute_workload,
    resolve_config,
)
from repro.api.parse import (
    VECOP_KERNEL,
    normalize_variant,
    parse_engine,
    parse_kernel,
    parse_stencil_variant,
    parse_variant,
    resolve_variant,
)
from repro.api.result import (
    RESULT_KEYS,
    RESULT_METRICS,
    RESULT_SCALARS,
    RESULT_SCHEMA,
    Result,
    SystemReport,
)
from repro.api.session import Session
from repro.api.workloads import (
    FPU_DEPTH_KEY,
    OVERRIDABLE_FIELDS,
    SYSTEM_FIELDS,
    Workload,
    make_workload,
    workload,
)

__all__ = [
    "CancelToken",
    "DEFAULT_MAX_CYCLES",
    "FPU_DEPTH_KEY",
    "OVERRIDABLE_FIELDS",
    "RESULT_KEYS",
    "RESULT_METRICS",
    "RESULT_SCALARS",
    "RESULT_SCHEMA",
    "Result",
    "SYSTEM_FIELDS",
    "Session",
    "SystemReport",
    "VECOP_KERNEL",
    "Workload",
    "apply_overrides",
    "execute_workload",
    "make_workload",
    "normalize_variant",
    "parse_engine",
    "parse_kernel",
    "parse_stencil_variant",
    "parse_variant",
    "resolve_config",
    "resolve_variant",
    "workload",
]
