"""Workload resolution and backend dispatch.

This is the seam between the declarative :class:`~repro.api.workloads.
Workload` and the execution backends: the single-cluster eval runner
(:mod:`repro.eval.runner`), the vecop builder, and the multi-cluster
system runner (:mod:`repro.eval.system_runner`).  The sweep engine's
workers and :class:`~repro.api.session.Session` both execute through
:func:`execute_workload`, so every front door resolves configs and
picks backends identically.
"""

from __future__ import annotations

import copy

from repro.api.result import Result
from repro.api.workloads import FPU_DEPTH_KEY, Workload
from repro.core.config import CoreConfig, SystemConfig
from repro.eval.runner import execute_build, execute_stencil
from repro.isa.instructions import InstrClass
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.obs import spans as _obs

DEFAULT_MAX_CYCLES = 5_000_000

#: Default budget for multi-cluster workloads (matches the pre-1.5
#: ``run_system_stencil`` default).  Every front door -- ``Session.run``,
#: ``Session.map`` and the sweep runner -- resolves the same
#: per-workload budgets, so cached results are front-door-independent.
DEFAULT_SYSTEM_MAX_CYCLES = 20_000_000


def apply_overrides(base_cfg: CoreConfig | None,
                    overrides: tuple[tuple[str, object], ...],
                    ) -> CoreConfig | None:
    """Materialize a workload's config; ``None`` when nothing is
    overridden.

    Returning ``None`` (rather than a fresh default ``CoreConfig``) keeps
    the un-overridden path byte-identical to calling the eval runner
    directly.
    """
    if base_cfg is None and not overrides:
        return None
    cfg = copy.deepcopy(base_cfg) if base_cfg is not None else CoreConfig()
    for key, value in overrides:
        if key == FPU_DEPTH_KEY:
            depth = int(value)
            cfg.fpu_pipe_depth = depth
            cfg.fpu_latency = dict(cfg.fpu_latency)
            for iclass in (InstrClass.FP_ADD, InstrClass.FP_MUL,
                           InstrClass.FP_FMA):
                cfg.fpu_latency[iclass] = depth
        else:
            setattr(cfg, key, value)
    cfg.validate()
    return cfg


def apply_engine(cfg: CoreConfig | None, engine: str | None,
                 workload_engine: str | None = None,
                 fresh: bool = False) -> CoreConfig | None:
    """Apply a session/campaign-wide ``engine`` to ``cfg`` unless the
    workload's own ``("engine", ...)`` override already decided.

    The one place the engine-precedence rule lives: a plain ``"auto"``
    over an ``"auto"`` config stays ``None``-transparent (byte-identical
    un-overridden path).  ``fresh=True`` deep-copies before mutating
    (for configs not already private, e.g. a session's shared base).
    """
    if engine is None or workload_engine is not None:
        return cfg
    if engine == "auto" and (cfg is None or cfg.engine == "auto"):
        return cfg
    if cfg is None:
        cfg = CoreConfig()
    elif fresh:
        cfg = copy.deepcopy(cfg)
    cfg.engine = engine
    cfg.validate()
    return cfg


def _engine_cfg(cfg: CoreConfig | None, workload: Workload,
                engine: str | None) -> CoreConfig | None:
    # cfg comes from apply_overrides, which always returns a private
    # copy (or None), so in-place application is safe here.
    return apply_engine(cfg, engine, workload.engine)


def _system_config(workload: Workload,
                   cfg: CoreConfig | None) -> SystemConfig:
    """The one place a workload's system axes become a SystemConfig
    (``num_clusters``/``iters`` route separately from the knobs)."""
    from repro.eval.system_runner import make_system_config

    axes = dict(workload.system)
    num_clusters = axes.pop("num_clusters", 1)
    axes.pop("iters", None)
    return make_system_config(num_clusters, cfg, **axes)


def resolve_config(workload: Workload,
                   base_cfg: CoreConfig | None = None,
                   engine: str | None = None,
                   ) -> CoreConfig | SystemConfig:
    """The materialized config ``workload`` would run under.

    Returns a :class:`SystemConfig` for multi-cluster workloads and a
    :class:`CoreConfig` otherwise (a fresh default when nothing is
    overridden).  Informational: :func:`execute_workload` performs the
    same resolution internally.
    """
    cfg = _engine_cfg(apply_overrides(base_cfg, workload.overrides),
                      workload, engine)
    if workload.is_system:
        return _system_config(workload, cfg)
    return cfg if cfg is not None else CoreConfig()


def execute_workload(workload: Workload,
                     base_cfg: CoreConfig | None = None,
                     max_cycles: int | None = None,
                     engine: str | None = None,
                     require_correct: bool = True) -> Result:
    """Run one workload to completion in this process.

    ``engine`` (any of :data:`repro.core.config.ENGINES`) overrides the
    config's execution-engine selection; ``None`` (and the default
    ``"auto"``) leaves the un-overridden path byte-identical to calling
    the backends directly.  ``max_cycles=None`` selects the backend's
    own default budget (:data:`DEFAULT_SYSTEM_MAX_CYCLES` for
    multi-cluster workloads, :data:`DEFAULT_MAX_CYCLES` otherwise).
    """
    if not _obs.ENABLED:
        return _execute_workload(workload, base_cfg, max_cycles, engine,
                                 require_correct)
    label = workload.label
    # The sim-context label groups every simulated-cycle event emitted
    # below (engine selection, fast-forwards, DMA/barriers) onto this
    # workload's own timeline track.
    with _obs.sim_context(label), \
            _obs.tracer().span("execute", "exec",
                               args={"workload": label}) as sargs:
        result = _execute_workload(workload, base_cfg, max_cycles,
                                   engine, require_correct)
        sargs["cycles"] = result.cycles
        sargs["correct"] = result.correct
        return result


def _execute_workload(workload: Workload,
                      base_cfg: CoreConfig | None,
                      max_cycles: int | None,
                      engine: str | None,
                      require_correct: bool) -> Result:
    if max_cycles is None:
        max_cycles = DEFAULT_SYSTEM_MAX_CYCLES if workload.is_system \
            else DEFAULT_MAX_CYCLES
    cfg = _engine_cfg(apply_overrides(base_cfg, workload.overrides),
                      workload, engine)
    if cfg is not None and cfg.engine == "analytical":
        # Closed-form estimate: never constructs a Cluster or System.
        # Imported lazily so the analytical package (which reuses this
        # module's config resolution) stays cycle-free.
        from repro.analytical.model import estimate_workload

        return estimate_workload(workload, base_cfg=base_cfg,
                                 engine=engine)
    if workload.is_vecop:
        kwargs = {"variant": VecopVariant(workload.variant), "cfg": cfg}
        if workload.n is not None:
            kwargs["n"] = workload.n
        if workload.loop_mode is not None:
            kwargs["loop_mode"] = workload.loop_mode
        return execute_build(build_vecop(**kwargs), cfg=cfg,
                             max_cycles=max_cycles,
                             require_correct=require_correct)
    if workload.is_system:
        from repro.eval.system_runner import execute_system_stencil

        sys_cfg = _system_config(workload, cfg)
        kwargs = {"grid": workload.grid3d()}
        if workload.unroll is not None:
            kwargs["unroll"] = workload.unroll
        return execute_system_stencil(
            workload.kernel, workload.stencil_variant(),
            num_clusters=workload.num_clusters, sys_cfg=sys_cfg,
            iters=workload.iters, max_cycles=max_cycles,
            require_correct=require_correct, **kwargs)
    kwargs = {"grid": workload.grid3d(), "cfg": cfg}
    if workload.unroll is not None:
        kwargs["unroll"] = workload.unroll
    return execute_stencil(workload.kernel, workload.stencil_variant(),
                           max_cycles=max_cycles,
                           require_correct=require_correct, **kwargs)
