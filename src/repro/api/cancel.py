"""Cooperative cancellation for campaigns and the serve layer.

A :class:`CancelToken` is a thread-safe latch shared between whoever
wants to stop a campaign (a signal handler, an HTTP cancel endpoint, a
watchdog thread) and the execution engine honouring it
(:meth:`repro.api.Session.map` / :class:`repro.sweep.runner.
SweepRunner`).  Cancellation is *cooperative* and point-granular: the
runner stops dispatching new points as soon as the token trips, lets
in-flight points drain (bounded by their own timeouts), and reports
every undispatched point as a ``"cancelled"`` outcome -- results that
already landed are kept and cached, nothing is rolled back.
"""

from __future__ import annotations

import threading

__all__ = ["CancelToken"]


class CancelToken:
    """Thread-safe one-way cancellation latch.

    ``cancel()`` may be called from any thread (or a signal handler --
    it only sets an event); ``cancelled`` is the cheap check the
    execution loops poll between points.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Trip the token.  Idempotent; never blocks."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the token trips (or ``timeout``); returns the
        tripped state.  Used by watcher threads that must react to
        cancellation *promptly* rather than at the next poll point."""
        return self._event.wait(timeout)

    def __bool__(self) -> bool:
        # A token is always truthy (present); use .cancelled for state.
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"CancelToken({state})"
