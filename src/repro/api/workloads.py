"""The declarative workload spec: one frozen dataclass per experiment.

A :class:`Workload` fully determines one simulation: kernel, variant,
shape axes (``grid``/``unroll`` for stencils, ``n``/``loop_mode`` for
the vecop pseudo-kernel), flat :class:`~repro.core.config.CoreConfig`
overrides (including the execution ``engine``), and the multi-cluster
system axes (``num_clusters``/``iters`` plus the interconnect and
global-memory knobs of :class:`~repro.core.config.SystemConfig`).

It is hashable, orderable and content-addressable: :meth:`canonical`
is the payload of the sweep cache key.  **Compatibility contract:**
``Workload`` has exactly the fields, canonical form and key function of
the pre-1.5 sweep ``Point`` (now a deprecated alias) -- at any given
version string a ``Workload`` hashes to the very key the old ``Point``
produced, bit-for-bit.  (Cache keys still include ``__version__``, so
a release bump invalidates entries by design, exactly as before the
unification.)

Construct through :func:`workload` (alias :func:`make_workload`), which
validates every axis eagerly with error messages listing the valid
values.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

from repro.api.parse import (
    VECOP_KERNEL,
    parse_engine,
    parse_kernel,
    parse_variant,
)
from repro.core.config import CoreConfig
from repro.kernels.layout import Grid3d
from repro.kernels.variants import Variant

#: Virtual override key: pipeline depth *and* ADD/MUL/FMA latency.
FPU_DEPTH_KEY = "fpu_depth"

#: CoreConfig fields a workload may override (scalars only; the latency
#: dict is reached through the ``fpu_depth`` virtual key).
OVERRIDABLE_FIELDS = frozenset(
    f.name for f in dataclass_fields(CoreConfig) if f.name != "fpu_latency"
) | {FPU_DEPTH_KEY}

#: Multi-cluster system axes a (stencil) workload may set: the cluster
#: count, the sweep count of the halo-exchange schedule, and the
#: interconnect/global-memory knobs of
#: :class:`~repro.core.config.SystemConfig`.  Part of every cache key.
SYSTEM_FIELDS = frozenset({
    "num_clusters", "iters", "gmem_banks", "gmem_bank_bytes_per_cycle",
    "gmem_latency", "link_bytes_per_cycle", "gmem_size",
})


def _normalize_grid(grid) -> tuple[int, ...] | None:
    if grid is None:
        return None
    if isinstance(grid, Grid3d):
        dims = (grid.nz, grid.ny, grid.nx)
        return dims if grid.radius == 1 else dims + (grid.radius,)
    dims = tuple(int(d) for d in grid)
    if len(dims) not in (3, 4):
        raise ValueError(f"grid must be (nz, ny, nx[, radius]), got {grid!r}")
    return dims


def _normalize_overrides(overrides) -> tuple[tuple[str, object], ...]:
    if not overrides:
        return ()
    items = dict(overrides).items()
    for key, value in items:
        if key not in OVERRIDABLE_FIELDS:
            raise ValueError(
                f"unknown config override {key!r}; choose from: "
                f"{', '.join(sorted(OVERRIDABLE_FIELDS))}")
        if key == "engine":
            parse_engine(value)
        elif not isinstance(value, (bool, int, float)):
            raise ValueError(
                f"override {key}={value!r} must be a scalar")
    return tuple(sorted(items))


def _normalize_system(system) -> tuple[tuple[str, int], ...]:
    """Validate and canonicalize a workload's multi-cluster axes."""
    if not system:
        return ()
    items = dict(system).items()
    out = []
    for key, value in items:
        if key not in SYSTEM_FIELDS:
            raise ValueError(
                f"unknown system axis {key!r}; choose from: "
                f"{', '.join(sorted(SYSTEM_FIELDS))}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"system axis {key}={value!r} must be an integer")
        out.append((key, value))
    return tuple(sorted(out))


@dataclass(frozen=True)
class Workload:
    """One fully-determined experiment: hashable, orderable, cacheable.

    ``grid``/``unroll`` apply to stencil kernels, ``n``/``loop_mode`` to
    the vecop pseudo-kernel; inapplicable fields stay ``None`` so the
    canonical form is stable across spec spellings.
    """

    kernel: str
    variant: str
    grid: tuple[int, ...] | None = None
    n: int | None = None
    loop_mode: str | None = None
    unroll: int | None = None
    overrides: tuple[tuple[str, object], ...] = ()
    #: Multi-cluster axes (``num_clusters``, ``iters``, interconnect and
    #: global-memory knobs); empty for plain single-cluster workloads.
    #: Always part of :meth:`canonical` -- and therefore of the sweep
    #: cache key -- so a cached single-cluster result can never be
    #: served for a multi-cluster workload.
    system: tuple[tuple[str, int], ...] = ()

    @property
    def is_vecop(self) -> bool:
        return self.kernel == VECOP_KERNEL

    @property
    def is_system(self) -> bool:
        """True when the workload runs on a multi-cluster System."""
        return bool(self.system)

    @property
    def num_clusters(self) -> int:
        return dict(self.system).get("num_clusters", 1)

    @property
    def iters(self) -> int:
        """Halo-exchange sweeps of a system workload (1 otherwise)."""
        return dict(self.system).get("iters", 1)

    @property
    def engine(self) -> str | None:
        """Per-workload engine override, if one is set."""
        value = dict(self.overrides).get("engine")
        return str(value) if value is not None else None

    def grid3d(self) -> Grid3d | None:
        if self.grid is None:
            return None
        nz, ny, nx = self.grid[:3]
        radius = self.grid[3] if len(self.grid) > 3 else 1
        return Grid3d(nz=nz, ny=ny, nx=nx, radius=radius)

    def stencil_variant(self) -> Variant:
        return Variant.from_label(self.variant)

    def canonical(self) -> dict:
        """Plain-type, key-sorted dict -- the content-address payload.

        Byte-identical to the pre-1.5 sweep ``Point.canonical()`` (the
        cache-key compatibility contract; pinned by
        ``tests/test_api_workload.py``).
        """
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "grid": list(self.grid) if self.grid else None,
            "n": self.n,
            "loop_mode": self.loop_mode,
            "unroll": self.unroll,
            "overrides": [[k, v] for k, v in self.overrides],
            "system": [[k, v] for k, v in self.system],
        }

    @classmethod
    def from_canonical(cls, data: dict) -> "Workload":
        return cls(
            kernel=data["kernel"],
            variant=data["variant"],
            grid=tuple(data["grid"]) if data.get("grid") else None,
            n=data.get("n"),
            loop_mode=data.get("loop_mode"),
            unroll=data.get("unroll"),
            overrides=tuple((k, v) for k, v in data.get("overrides", ())),
            system=tuple((k, v) for k, v in data.get("system", ())),
        )

    @property
    def label(self) -> str:
        """Short human-readable identifier for progress/tables."""
        parts = [f"{self.kernel}/{self.variant}"]
        if self.grid:
            parts.append("x".join(str(d) for d in self.grid))
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.loop_mode:
            parts.append(self.loop_mode)
        if self.unroll is not None:
            parts.append(f"unroll={self.unroll}")
        parts.extend(f"{k}={v}" for k, v in self.overrides)
        parts.extend(f"{k}={v}" for k, v in self.system)
        return " ".join(parts)


def workload(kernel: str, variant, grid=None, n=None, loop_mode=None,
             unroll=None, overrides=None, system=None, *,
             engine: str | None = None,
             num_clusters: int | None = None,
             iters: int | None = None) -> Workload:
    """Validating :class:`Workload` constructor accepting loose inputs.

    ``engine`` folds into ``overrides`` (it is an overridable
    ``CoreConfig`` field) and ``num_clusters``/``iters`` fold into
    ``system``, so the convenience keywords change nothing about the
    canonical form or the cache key.
    """
    kernel = parse_kernel(kernel)
    is_vecop = kernel == VECOP_KERNEL
    label = parse_variant(variant, kernel)
    if engine is not None:
        overrides = dict(overrides or {})
        if "engine" in overrides and overrides["engine"] != engine:
            raise ValueError(
                f"conflicting engines: overrides say "
                f"{overrides['engine']!r}, keyword says {engine!r}")
        overrides["engine"] = parse_engine(engine)
    if num_clusters is not None or iters is not None:
        system = dict(system or {})
        for key, value in (("num_clusters", num_clusters),
                           ("iters", iters)):
            if value is None:
                continue
            if key in system and system[key] != value:
                raise ValueError(
                    f"conflicting {key}: system axes say "
                    f"{system[key]!r}, keyword says {value!r}")
            system[key] = value
    # Inapplicable axes would create distinct cache keys (and labels)
    # for identical simulations, so they are rejected outright.
    if is_vecop and (grid is not None or unroll is not None):
        raise ValueError(
            f"kernel {kernel!r} takes n/loop_mode, not grid/unroll")
    if not is_vecop and (n is not None or loop_mode is not None):
        raise ValueError(
            f"kernel {kernel!r} takes grid/unroll, not n/loop_mode")
    if is_vecop and system:
        raise ValueError(
            f"kernel {kernel!r} cannot take system axes; domain "
            f"decomposition applies to stencil kernels only")
    return Workload(
        kernel=kernel,
        variant=label,
        grid=_normalize_grid(grid),
        n=int(n) if n is not None else None,
        loop_mode=str(loop_mode) if loop_mode is not None else None,
        unroll=int(unroll) if unroll is not None else None,
        overrides=_normalize_overrides(overrides),
        system=_normalize_system(system),
    )


#: Explicit-name alias of :func:`workload` (mirrors the retired
#: ``make_point``).
make_workload = workload


def deprecated_point_alias(qualname: str) -> type:
    """The one shim behind every deprecated ``Point`` import path
    (``repro.Point``, ``repro.sweep.Point``, ``repro.sweep.spec.Point``
    expose it via module ``__getattr__``); drop all three call sites
    together when the deprecation window closes."""
    import warnings
    warnings.warn(
        f"{qualname} is deprecated; use repro.api.Workload "
        f"(identical fields, canonical form and cache keys)",
        DeprecationWarning, stacklevel=3)
    return Workload
