"""Shared argument parsing for the unified API, the sweep layer and CLI.

One place resolves every user-facing enumeration -- kernel names,
variant labels (stencil and vecop kinds), execution engines -- with
error messages that list the valid values.  The CLI, the
:class:`~repro.api.workloads.Workload` validating constructor and the
sweep spec all call these helpers, so a typo produces the same
diagnostic no matter which front door it entered through.
"""

from __future__ import annotations

from repro.core.config import ENGINES
from repro.kernels.registry import STENCILS
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant

#: Pseudo-kernel name routing a workload through the Fig. 1 vecop
#: builder (every other kernel name is a stencil in the registry).
VECOP_KERNEL = "vecop"

_STENCIL_LABELS = {v.label.lower(): v.label for v in Variant}
_VECOP_LABELS = {v.value.lower(): v.value for v in VecopVariant}


def parse_kernel(kernel) -> str:
    """Validated kernel name, or ``ValueError`` listing the options.

    (Stencil names come from :func:`repro.kernels.registry.kernel_names`;
    the vecop pseudo-kernel rides alongside.)
    """
    kernel = str(kernel)
    if kernel != VECOP_KERNEL and kernel not in STENCILS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from: "
            f"{', '.join((VECOP_KERNEL, *STENCILS))}")
    return kernel


def resolve_variant(variant, for_vecop: bool) -> str | None:
    """Canonical label of ``variant`` within one workload kind, or
    ``None`` if the spelling does not name a variant of that kind.

    Case-insensitive; enum instances resolve only in their own kind.
    Some spellings name a variant in *both* kinds (``"chaining"`` is the
    vecop variant and, case-insensitively, the stencil ``Chaining``), so
    resolution is always relative to a kernel's kind.
    """
    if isinstance(variant, Variant):
        return variant.label if not for_vecop else None
    if isinstance(variant, VecopVariant):
        return variant.value if for_vecop else None
    pool = _VECOP_LABELS if for_vecop else _STENCIL_LABELS
    return pool.get(str(variant).lower())


def normalize_variant(variant) -> str:
    """Canonical label for any accepted variant spelling, any kind.

    Ambiguous spellings resolve to the vecop label; use
    :func:`parse_variant` with a kernel (or :func:`resolve_variant`)
    when the workload kind is known.
    """
    label = resolve_variant(variant, for_vecop=True)
    if label is None:
        label = resolve_variant(variant, for_vecop=False)
    if label is None:
        options = list(_VECOP_LABELS.values()) + \
            list(_STENCIL_LABELS.values())
        raise ValueError(
            f"unknown variant {variant!r}; choose from: "
            f"{', '.join(options)}")
    return label


def parse_variant(variant, kernel: str | None = None) -> str:
    """Canonical variant label, kind-aware when ``kernel`` is given."""
    if kernel is None:
        return normalize_variant(variant)
    kernel = parse_kernel(kernel)
    label = resolve_variant(variant, for_vecop=kernel == VECOP_KERNEL)
    if label is None:
        pool = _VECOP_LABELS if kernel == VECOP_KERNEL else _STENCIL_LABELS
        raise ValueError(
            f"unknown variant {variant!r} for kernel {kernel!r}; "
            f"choose from: {', '.join(pool.values())}")
    return label


def parse_stencil_variant(label) -> Variant:
    """The stencil :class:`Variant` enum member for ``label``."""
    if isinstance(label, Variant):
        return label
    return Variant.from_label(str(label))


def parse_engine(engine) -> str:
    """Validated execution-engine name (see ``CoreConfig.engine``)."""
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be {', '.join(repr(e) for e in ENGINES[:-1])} "
            f"or {ENGINES[-1]!r}, got {engine!r}")
    return engine
