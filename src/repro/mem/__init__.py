"""Memory substrates: flat byte memory and the banked TCDM model.

The Snitch cluster keeps all compute data in a banked tightly-coupled data
memory (TCDM, the L1 scratchpad).  The timing model matters for this
reproduction in two ways:

* bank conflicts between the SSR data movers and the LSUs cost cycles and
  reduce FPU utilization;
* every TCDM access is an energy event, and avoided coefficient re-reads
  are the source of the paper's energy-efficiency gain.
"""

from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm, TcdmPort

__all__ = ["Memory", "Tcdm", "TcdmPort"]
