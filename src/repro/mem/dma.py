"""Cluster DMA engine (Xdma).

Snitch clusters move bulk data between L2 and the TCDM with a dedicated
DMA engine so compute cores never stall on memory latency -- the classic
double-buffering pattern the SARIS kernels rely on.  The engine is
controlled from the integer core through the ``Xdma`` instructions:

=========  =====================================================
``dmsrc``  set the source byte address
``dmdst``  set the destination byte address
``dmstr``  set source/destination *row* strides (2-D transfers)
``dmrep``  set the repetition (row) count for 2-D transfers
``dmcpy``  start a transfer of ``rs1`` bytes (per row); rd <- txid
``dmstat`` rd <- number of outstanding transfers (0 = idle)
=========  =====================================================

Timing model: the engine moves :attr:`bytes_per_cycle` bytes each cycle
while active.  Transfers are queued and served in order.  The engine
accesses memory directly (it has a dedicated wide TCDM port in the RTL;
contention with the byte-wide core ports is second-order and documented
as a simplification).  Every transferred byte is an energy event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.mem.memory import Memory


@dataclass
class _Transfer:
    txid: int
    src: int
    dst: int
    row_bytes: int
    src_stride: int
    dst_stride: int
    rows: int
    moved: int = 0

    @property
    def total_bytes(self) -> int:
        return self.row_bytes * self.rows


class DmaEngine:
    """In-order queueing DMA engine with a bytes-per-cycle model."""

    def __init__(self, mem: Memory, bytes_per_cycle: int = 64,
                 queue_depth: int = 4):
        self.mem = mem
        self.bytes_per_cycle = bytes_per_cycle
        self.queue_depth = queue_depth
        # Shadow configuration written by dmsrc/dmdst/dmstr/dmrep.
        self.src = 0
        self.dst = 0
        self.src_stride = 0
        self.dst_stride = 0
        self.reps = 1
        self._queue: deque[_Transfer] = deque()
        self._next_txid = 1
        # Statistics (energy-model inputs).
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.transfers_completed = 0

    # -- instruction interface ------------------------------------------------

    def set_src(self, addr: int) -> None:
        self.src = addr & 0xFFFFFFFF

    def set_dst(self, addr: int) -> None:
        self.dst = addr & 0xFFFFFFFF

    def set_strides(self, src_stride: int, dst_stride: int) -> None:
        self.src_stride = src_stride
        self.dst_stride = dst_stride

    def set_reps(self, reps: int) -> None:
        if reps < 1:
            raise ValueError(f"dmrep expects a positive count, got {reps}")
        self.reps = reps

    def start(self, row_bytes: int) -> int:
        """``dmcpy``: enqueue a transfer; returns the transfer id.

        A 1-D copy is a 2-D copy with one row.  Raises when the queue is
        full (the RTL stalls; software is expected to poll ``dmstat``).
        """
        if row_bytes <= 0:
            raise ValueError(f"dmcpy of {row_bytes} bytes")
        if len(self._queue) >= self.queue_depth:
            raise RuntimeError("DMA queue full; poll dmstat before dmcpy")
        tx = _Transfer(self._next_txid, self.src, self.dst, row_bytes,
                       self.src_stride, self.dst_stride, self.reps)
        self._next_txid += 1
        self._queue.append(tx)
        return tx.txid

    def outstanding(self) -> int:
        """``dmstat``: number of queued/active transfers."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return not self._queue

    # -- per-cycle behaviour ------------------------------------------------------

    def step(self) -> None:
        if not self._queue:
            return
        self.busy_cycles += 1
        budget = self.bytes_per_cycle
        while budget > 0 and self._queue:
            tx = self._queue[0]
            row, offset = divmod(tx.moved, tx.row_bytes)
            chunk = min(budget, tx.row_bytes - offset)
            src = tx.src + row * tx.src_stride + offset
            dst = tx.dst + row * tx.dst_stride + offset
            self._copy(src, dst, chunk)
            tx.moved += chunk
            budget -= chunk
            self.bytes_moved += chunk
            if tx.moved >= tx.total_bytes:
                self._queue.popleft()
                self.transfers_completed += 1

    def _copy(self, src: int, dst: int, nbytes: int) -> None:
        data = bytes(self.mem._data[src:src + nbytes])
        if len(data) != nbytes:
            raise ValueError(
                f"DMA read of {nbytes} bytes at {src:#x} out of range")
        if dst + nbytes > self.mem.size:
            raise ValueError(
                f"DMA write of {nbytes} bytes at {dst:#x} out of range")
        self.mem._data[dst:dst + nbytes] = data
