"""Banked TCDM (L1 scratchpad) timing model.

The Snitch cluster TCDM is organized as word-interleaved SRAM banks behind
a single-cycle logarithmic interconnect.  Each bank serves one request per
cycle; concurrent requests to the same bank from different ports conflict
and all but one must retry.

Protocol (one simulated cycle):

1. During the cycle, requesters call :meth:`TcdmPort.request`.  A port can
   hold at most one outstanding request; it stays pending until granted.
2. At the end of the cycle the cluster calls :meth:`Tcdm.arbitrate`.  Per
   bank, the highest-priority pending request is granted and performed on
   the backing :class:`~repro.mem.memory.Memory`.  Losing requests remain
   pending and are retried automatically.
3. A granted read's data becomes available to the requester in the *next*
   cycle (:meth:`TcdmPort.take_response`), modelling the one-cycle SRAM
   latency.

Ports of the SSR class are arbitrated round-robin among themselves so a
pathological stream cannot starve another; LSU ports have static priority
over streamers (matching Snitch, where core requests preempt the
streamers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.memory import Memory


@dataclass
class _Request:
    addr: int
    is_write: bool
    data: float | int | None
    width: int


class TcdmPort:
    """One requester port into the TCDM."""

    def __init__(self, name: str, priority: int, is_streamer: bool = False):
        self.name = name
        self.priority = priority
        self.is_streamer = is_streamer
        #: Rotation index used for round-robin tie-breaking; maintained
        #: by :meth:`Tcdm.port` (the index of the *last* streamer port
        #: registered under this port's name, mirroring the name-keyed
        #: rotation table of the original arbitration loop).
        self._rot_index: int | None = None
        self._pending: _Request | None = None
        self._response: float | int | None = None
        self._response_ready = False
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.conflicts = 0

    # -- requester side ---------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a request is pending or a response is unconsumed."""
        return self._pending is not None or self._response_ready

    def request(self, addr: int, is_write: bool = False,
                data: float | int | None = None, width: int = 8) -> None:
        """Post a request.  The port must be idle."""
        if self._pending is not None:
            raise RuntimeError(f"port {self.name} already has a pending "
                               f"request")
        if self._response_ready:
            raise RuntimeError(f"port {self.name} has an unconsumed response")
        self._pending = _Request(addr, is_write, data, width)

    def response_ready(self) -> bool:
        """True when read data (or a write ack) is available."""
        return self._response_ready

    def take_response(self) -> float | int | None:
        """Consume the response; returns read data (None for writes)."""
        if not self._response_ready:
            raise RuntimeError(f"port {self.name} has no response")
        self._response_ready = False
        data, self._response = self._response, None
        return data

    # -- TCDM side ----------------------------------------------------------

    def _grant(self, mem: Memory) -> None:
        req = self._pending
        assert req is not None
        if req.is_write:
            if req.width == 8:
                if isinstance(req.data, float):
                    mem.write_f64(req.addr, req.data)
                else:
                    mem.write_u64(req.addr, int(req.data))
            elif req.width == 4:
                mem.write_u32(req.addr, int(req.data))
            elif req.width == 2:
                mem.write_u16(req.addr, int(req.data))
            elif req.width == 1:
                mem.write_u8(req.addr, int(req.data))
            else:
                raise ValueError(f"unsupported write width {req.width}")
            self._response = None
            self.writes += 1
        else:
            if req.width == 8:
                self._response = mem.read_f64(req.addr)
            elif req.width == 4:
                self._response = mem.read_u32(req.addr)
            elif req.width == 2:
                self._response = mem.read_u16(req.addr)
            elif req.width == 1:
                self._response = mem.read_u8(req.addr)
            else:
                raise ValueError(f"unsupported read width {req.width}")
            self.reads += 1
        self._pending = None
        self._response_ready = True


class Tcdm:
    """Word-interleaved banked scratchpad with per-cycle arbitration."""

    def __init__(self, mem: Memory, num_banks: int = 32,
                 bank_width: int = 8):
        if num_banks & (num_banks - 1):
            raise ValueError(f"num_banks must be a power of two, got "
                             f"{num_banks}")
        self.mem = mem
        self.num_banks = num_banks
        self.bank_width = bank_width
        self._ports: list[TcdmPort] = []
        self._streamer_ports: list[TcdmPort] = []
        self._name_to_sidx: dict[str, int] = {}
        self._rr_offset = 0
        # Statistics.
        self.total_accesses = 0
        self.total_conflicts = 0
        self.busy_bank_cycles = 0

    def port(self, name: str, priority: int,
             is_streamer: bool = False) -> TcdmPort:
        """Create and register a new requester port."""
        p = TcdmPort(name, priority, is_streamer)
        self._ports.append(p)
        if is_streamer:
            self._streamer_ports.append(p)
            self._name_to_sidx[name] = len(self._streamer_ports) - 1
            # A later streamer may shadow an earlier one's name, so the
            # rotation indices of every port are refreshed.
            for q in self._ports:
                q._rot_index = self._name_to_sidx.get(q.name)
        else:
            p._rot_index = self._name_to_sidx.get(name)
        return p

    @property
    def ports(self) -> tuple[TcdmPort, ...]:
        """All registered requester ports, in registration order."""
        return tuple(self._ports)

    @property
    def interleave_bytes(self) -> int:
        """Bytes after which the bank pattern repeats."""
        return self.num_banks * self.bank_width

    def bank_of(self, addr: int) -> int:
        """Bank index serving byte address ``addr``."""
        return (addr // self.bank_width) % self.num_banks

    def arbitrate(self) -> None:
        """Resolve this cycle's requests (call once per cycle).

        This is the seed reference arbiter; :meth:`arbitrate_v2` is the
        grant-for-grant identical fast variant used by the micro-op
        engine.
        """
        pending = [p for p in self._ports if p._pending is not None]
        if not pending:
            return
        # Static priority, with round-robin rotation among streamer ports.
        # The rotation pointer advances only on contended streamer rounds,
        # so a lone streamer keeps full bandwidth while competing ones
        # alternate.
        streamers = self._streamer_ports
        rot = {}
        if streamers:
            n = len(streamers)
            for i, p in enumerate(streamers):
                rot[p.name] = (i - self._rr_offset) % n
            contended = sum(1 for p in streamers if p._pending is not None)
            if contended >= 2:
                self._rr_offset = (self._rr_offset + 1) % n

        def key(p: TcdmPort) -> tuple[int, int]:
            return (p.priority, rot.get(p.name, 0))

        granted_banks: set[int] = set()
        for p in sorted(pending, key=key):
            bank = self.bank_of(p._pending.addr)
            if bank in granted_banks:
                p.conflicts += 1
                self.total_conflicts += 1
                continue
            granted_banks.add(bank)
            p._grant(self.mem)
            self.total_accesses += 1
        self.busy_bank_cycles += len(granted_banks)

    def arbitrate_v2(self) -> None:
        """Grant-for-grant identical arbitration with the common request
        counts (0, 1, 2) special-cased and the name-keyed rotation table
        replaced by per-port rotation indices."""
        pending = [p for p in self._ports if p._pending is not None]
        if not pending:
            return
        if len(pending) == 1:
            # A lone request always wins its bank, and the round-robin
            # pointer only advances on contended streamer rounds, so the
            # full arbitration dance is skipped.
            p = pending[0]
            p._grant(self.mem)
            self.total_accesses += 1
            self.busy_bank_cycles += 1
            return
        off = self._rr_offset
        n = len(self._streamer_ports)
        contended = 0
        for p in pending:
            if p.is_streamer:
                contended += 1
        if contended >= 2:
            self._rr_offset = (off + 1) % n
        bw = self.bank_width
        nb = self.num_banks
        if len(pending) == 2:
            a, b = pending
            ra, rb = a._rot_index, b._rot_index
            if (b.priority, 0 if rb is None else (rb - off) % n) \
                    < (a.priority, 0 if ra is None else (ra - off) % n):
                a, b = b, a
            mem = self.mem
            req = a._pending
            bank_a = (req.addr // bw) % nb
            if req.is_write:
                a._grant(mem)
            else:
                a._response = mem.read_f64(req.addr) if req.width == 8 \
                    else mem.read_u32(req.addr) if req.width == 4 \
                    else mem.read_u16(req.addr) if req.width == 2 \
                    else mem.read_u8(req.addr)
                a.reads += 1
                a._pending = None
                a._response_ready = True
            req = b._pending
            if (req.addr // bw) % nb == bank_a:
                b.conflicts += 1
                self.total_conflicts += 1
                self.total_accesses += 1
                self.busy_bank_cycles += 1
            else:
                if req.is_write:
                    b._grant(mem)
                else:
                    b._response = mem.read_f64(req.addr) if req.width == 8 \
                        else mem.read_u32(req.addr) if req.width == 4 \
                        else mem.read_u16(req.addr) if req.width == 2 \
                        else mem.read_u8(req.addr)
                    b.reads += 1
                    b._pending = None
                    b._response_ready = True
                self.total_accesses += 2
                self.busy_bank_cycles += 2
            return

        def key(p: TcdmPort) -> tuple[int, int]:
            r = p._rot_index
            return (p.priority, 0 if r is None else (r - off) % n)

        granted_banks: set[int] = set()
        for p in sorted(pending, key=key):
            bank = (p._pending.addr // bw) % nb
            if bank in granted_banks:
                p.conflicts += 1
                self.total_conflicts += 1
                continue
            granted_banks.add(bank)
            p._grant(self.mem)
            self.total_accesses += 1
        self.busy_bank_cycles += len(granted_banks)

    # -- statistics ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Aggregate access statistics, per port and total."""
        out: dict[str, int] = {
            "total_accesses": self.total_accesses,
            "total_conflicts": self.total_conflicts,
        }
        for p in self._ports:
            out[f"{p.name}_reads"] = p.reads
            out[f"{p.name}_writes"] = p.writes
            out[f"{p.name}_conflicts"] = p.conflicts
        return out
