"""Flat byte-addressable backing store.

This is the functional half of the memory system: a plain byte array with
typed accessors.  Timing (banking, arbitration) is layered on top by
:class:`repro.mem.tcdm.Tcdm`.  The harness uses the numpy helpers to place
input arrays and read back results.
"""

from __future__ import annotations

import struct

import numpy as np


class MemoryError_(Exception):
    """Raised on out-of-range or misaligned accesses."""


class Memory:
    """A flat little-endian memory of ``size`` bytes."""

    def __init__(self, size: int = 1 << 20):
        if size <= 0 or size % 8:
            raise ValueError(f"memory size must be a positive multiple of 8, "
                             f"got {size}")
        self.size = size
        self._data = bytearray(size)

    # -- bounds ---------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"access of {nbytes} bytes at {addr:#x} outside memory of "
                f"size {self.size:#x}"
            )
        if addr % nbytes:
            raise MemoryError_(
                f"misaligned {nbytes}-byte access at {addr:#x}"
            )

    # -- scalar accessors -------------------------------------------------

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._data[addr]

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._data[addr] = value & 0xFF

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return struct.unpack_from("<H", self._data, addr)[0]

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        struct.pack_into("<H", self._data, addr, value & 0xFFFF)

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return struct.unpack_from("<I", self._data, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        struct.pack_into("<I", self._data, addr, value & 0xFFFFFFFF)

    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        return struct.unpack_from("<Q", self._data, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        struct.pack_into("<Q", self._data, addr, value & (1 << 64) - 1)

    def read_f64(self, addr: int) -> float:
        self._check(addr, 8)
        return struct.unpack_from("<d", self._data, addr)[0]

    def write_f64(self, addr: int, value: float) -> None:
        self._check(addr, 8)
        struct.pack_into("<d", self._data, addr, value)

    def read_f32(self, addr: int) -> float:
        self._check(addr, 4)
        return struct.unpack_from("<f", self._data, addr)[0]

    def write_f32(self, addr: int, value: float) -> None:
        self._check(addr, 4)
        struct.pack_into("<f", self._data, addr, value)

    # -- bulk numpy helpers ----------------------------------------------

    def write_array(self, addr: int, array: np.ndarray) -> None:
        """Copy ``array`` (C-contiguous view is taken) into memory."""
        raw = np.ascontiguousarray(array).tobytes()
        if addr < 0 or addr + len(raw) > self.size:
            raise MemoryError_(
                f"array of {len(raw)} bytes at {addr:#x} exceeds memory"
            )
        self._data[addr:addr + len(raw)] = raw

    def read_array(self, addr: int, shape: tuple[int, ...],
                   dtype=np.float64) -> np.ndarray:
        """Read an ndarray of ``shape``/``dtype`` starting at ``addr``."""
        count = int(np.prod(shape))
        nbytes = count * np.dtype(dtype).itemsize
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"array of {nbytes} bytes at {addr:#x} exceeds memory"
            )
        flat = np.frombuffer(bytes(self._data[addr:addr + nbytes]),
                             dtype=dtype)
        return flat.reshape(shape).copy()

    def _f64_view(self) -> np.ndarray:
        """Writable float64 view of the whole backing store."""
        return np.frombuffer(memoryview(self._data), dtype=np.float64)

    def _check_f64_addrs(self, addrs: np.ndarray) -> None:
        if addrs.size == 0:
            return
        lo = int(addrs.min())
        hi = int(addrs.max())
        if lo < 0 or hi + 8 > self.size:
            raise MemoryError_(
                f"gather/scatter address {hi:#x} outside memory of size "
                f"{self.size:#x}")
        if np.any(addrs & 7):
            raise MemoryError_("misaligned 8-byte address in gather/scatter")

    def gather_f64(self, addrs) -> np.ndarray:
        """Read one float64 per (8-aligned) byte address, vectorized."""
        addrs = np.asarray(addrs, dtype=np.int64)
        self._check_f64_addrs(addrs)
        return self._f64_view()[addrs >> 3].copy()

    def scatter_f64(self, addrs, values) -> None:
        """Write one float64 per (8-aligned) byte address, vectorized.

        Duplicate addresses resolve to the last occurrence, matching a
        sequential store loop.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        self._check_f64_addrs(addrs)
        self._f64_view()[addrs >> 3] = np.asarray(values, dtype=np.float64)

    def fill(self, addr: int, nbytes: int, byte: int = 0) -> None:
        """Fill ``nbytes`` bytes starting at ``addr`` with ``byte``."""
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryError_(f"fill of {nbytes} bytes at {addr:#x} exceeds "
                               f"memory")
        self._data[addr:addr + nbytes] = bytes([byte & 0xFF]) * nbytes


class Allocator:
    """Bump allocator for laying out arrays in TCDM from the harness."""

    def __init__(self, base: int = 0x100, align: int = 8):
        self._next = base
        self._align = align

    def alloc(self, nbytes: int, align: int | None = None) -> int:
        """Reserve ``nbytes`` and return the base address."""
        align = align or self._align
        addr = (self._next + align - 1) // align * align
        self._next = addr + nbytes
        return addr

    def alloc_f64(self, count: int) -> int:
        """Reserve space for ``count`` doubles."""
        return self.alloc(8 * count, align=8)

    @property
    def used(self) -> int:
        """Bytes allocated so far (high-water mark)."""
        return self._next
