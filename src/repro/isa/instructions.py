"""Instruction definitions for the simulated ISA.

Each mnemonic is described by an :class:`InstrSpec` carrying

* the assembly *format* (operand syntax),
* the operand *domains* (integer ``x`` vs floating-point ``f`` registers),
* the timing *class* (:class:`InstrClass`) used by the core model, and
* the binary encoding fields used by :mod:`repro.isa.encoding`.

Decoded (or assembled) instructions are plain :class:`Instr` records; the
simulator dispatches on ``mnemonic``/``iclass`` rather than on raw bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from functools import cached_property


class InstrClass(Enum):
    """Timing class of an instruction, as seen by the core model."""

    INT_ALU = auto()
    INT_MUL = auto()
    INT_DIV = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    JUMP = auto()
    CSR = auto()
    SYS = auto()

    FP_ADD = auto()      # fadd/fsub
    FP_MUL = auto()
    FP_FMA = auto()
    FP_DIV = auto()
    FP_SQRT = auto()
    FP_CMP = auto()      # feq/flt/fle (write integer rd)
    FP_MINMAX = auto()
    FP_SGNJ = auto()     # sign injection (incl. fmv.d pseudo)
    FP_CVT = auto()
    FP_LOAD = auto()
    FP_STORE = auto()

    FREP = auto()        # Xfrep hardware loop
    SCFG = auto()        # Xssr config access
    DMA = auto()         # Xdma engine control (integer-core side)


#: FP classes that occupy the FPU datapath (count toward FPU utilization).
FP_COMPUTE_CLASSES = frozenset(
    {
        InstrClass.FP_ADD,
        InstrClass.FP_MUL,
        InstrClass.FP_FMA,
        InstrClass.FP_DIV,
        InstrClass.FP_SQRT,
        InstrClass.FP_CMP,
        InstrClass.FP_MINMAX,
        InstrClass.FP_SGNJ,
        InstrClass.FP_CVT,
    }
)

#: Classes dispatched to the FP subsystem (through the FP instruction queue).
FP_QUEUE_CLASSES = FP_COMPUTE_CLASSES | frozenset(
    {InstrClass.FP_LOAD, InstrClass.FP_STORE, InstrClass.FREP, InstrClass.SCFG}
)


class Format(Enum):
    """Assembly syntax / encoding format."""

    R = auto()        # op rd, rs1, rs2
    I = auto()        # op rd, rs1, imm
    SHIFT = auto()    # op rd, rs1, shamt
    LOAD = auto()     # op rd, imm(rs1)
    S = auto()        # op rs2, imm(rs1)
    B = auto()        # op rs1, rs2, target
    U = auto()        # op rd, imm
    J = auto()        # op rd, target
    JR = auto()       # jalr rd, rs1, imm
    CSR = auto()      # op rd, csr, rs1
    CSRI = auto()     # op rd, csr, uimm
    FR = auto()       # op frd, frs1, frs2
    FR1 = auto()      # op frd, frs1          (fsqrt, fcvt, fmv)
    FR4 = auto()      # op frd, frs1, frs2, frs3
    FLOAD = auto()    # op frd, imm(rs1)
    FSTORE = auto()   # op frs2, imm(rs1)
    FREP = auto()     # frep.o rs1, max_inst, stagger_max, stagger_mask
    SCFGW = auto()    # scfgw rs1, rs2
    SCFGR = auto()    # scfgr rd, rs1
    RS1 = auto()      # op rs1            (dmsrc, dmdst, dmrep)
    RD = auto()       # op rd             (dmstat)
    NONE = auto()     # ebreak, ecall, nop-like


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Format
    iclass: InstrClass
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    funct2: int | None = None      # R4 fmt field (bits 26:25)
    rs2_field: int | None = None   # fixed rs2 for unary FP ops
    rd_domain: str | None = None   # 'x', 'f' or None
    rs1_domain: str | None = None
    rs2_domain: str | None = None
    rs3_domain: str | None = None

    @property
    def is_fp(self) -> bool:
        """True when the instruction executes in the FP subsystem."""
        return self.iclass in FP_QUEUE_CLASSES

    @property
    def is_fp_compute(self) -> bool:
        """True when the instruction occupies the FPU datapath."""
        return self.iclass in FP_COMPUTE_CLASSES


@dataclass
class Instr:
    """One decoded instruction.

    ``imm`` is always a Python int holding the sign-extended immediate; for
    branches and jumps it is the byte offset relative to the instruction's
    own address.  ``csr`` holds the CSR address for Zicsr instructions.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0
    csr: int = 0
    #: Address of the instruction once placed in a program (filled by the
    #: assembler); useful for traces.
    addr: int | None = None
    #: Original source line, for diagnostics.
    source: str | None = field(default=None, repr=False)

    # The spec and timing class are functions of the (immutable)
    # mnemonic alone; caching them turns the per-cycle property chains
    # of the dispatch loop into plain attribute loads after first use.
    @cached_property
    def spec(self) -> InstrSpec:
        return SPEC_TABLE[self.mnemonic]

    @cached_property
    def iclass(self) -> InstrClass:
        return self.spec.iclass

    @cached_property
    def is_fp(self) -> bool:
        return self.spec.is_fp

    @cached_property
    def is_fp_compute(self) -> bool:
        return self.spec.is_fp_compute

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.disassembler import format_instr

        return format_instr(self)


_OP = 0b0110011
_OP_IMM = 0b0010011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_LUI = 0b0110111
_AUIPC = 0b0010111
_JAL = 0b1101111
_JALR = 0b1100111
_SYSTEM = 0b1110011
_LOAD_FP = 0b0000111
_STORE_FP = 0b0100111
_OP_FP = 0b1010011
_MADD = 0b1000011
_MSUB = 0b1000111
_NMSUB = 0b1001011
_NMADD = 0b1001111
_CUSTOM0 = 0b0001011   # Xfrep
_CUSTOM1 = 0b0101011   # Xssr config


def _r(mn, iclass, f3, f7, dom="x"):
    return InstrSpec(mn, Format.R, iclass, _OP, funct3=f3, funct7=f7,
                     rd_domain=dom, rs1_domain=dom, rs2_domain=dom)


def _i(mn, iclass, f3):
    return InstrSpec(mn, Format.I, iclass, _OP_IMM, funct3=f3,
                     rd_domain="x", rs1_domain="x")


def _sh(mn, f3, f7):
    return InstrSpec(mn, Format.SHIFT, InstrClass.INT_ALU, _OP_IMM,
                     funct3=f3, funct7=f7, rd_domain="x", rs1_domain="x")


def _ld(mn, f3):
    return InstrSpec(mn, Format.LOAD, InstrClass.LOAD, _LOAD, funct3=f3,
                     rd_domain="x", rs1_domain="x")


def _st(mn, f3):
    return InstrSpec(mn, Format.S, InstrClass.STORE, _STORE, funct3=f3,
                     rs1_domain="x", rs2_domain="x")


def _br(mn, f3):
    return InstrSpec(mn, Format.B, InstrClass.BRANCH, _BRANCH, funct3=f3,
                     rs1_domain="x", rs2_domain="x")


def _csr(mn, f3):
    return InstrSpec(mn, Format.CSR, InstrClass.CSR, _SYSTEM, funct3=f3,
                     rd_domain="x", rs1_domain="x")


def _csri(mn, f3):
    return InstrSpec(mn, Format.CSRI, InstrClass.CSR, _SYSTEM, funct3=f3,
                     rd_domain="x")


def _fr(mn, iclass, f7, f3=0b111):
    # f3=0b111 means "dynamic rounding mode" for arithmetic ops.
    return InstrSpec(mn, Format.FR, iclass, _OP_FP, funct3=f3, funct7=f7,
                     rd_domain="f", rs1_domain="f", rs2_domain="f")


def _fr4(mn, opcode):
    return InstrSpec(mn, Format.FR4, InstrClass.FP_FMA, opcode,
                     funct3=0b111, funct2=0b01, rd_domain="f",
                     rs1_domain="f", rs2_domain="f", rs3_domain="f")


_SPECS: list[InstrSpec] = [
    # --- RV32I ---------------------------------------------------------
    _r("add", InstrClass.INT_ALU, 0b000, 0b0000000),
    _r("sub", InstrClass.INT_ALU, 0b000, 0b0100000),
    _r("sll", InstrClass.INT_ALU, 0b001, 0b0000000),
    _r("slt", InstrClass.INT_ALU, 0b010, 0b0000000),
    _r("sltu", InstrClass.INT_ALU, 0b011, 0b0000000),
    _r("xor", InstrClass.INT_ALU, 0b100, 0b0000000),
    _r("srl", InstrClass.INT_ALU, 0b101, 0b0000000),
    _r("sra", InstrClass.INT_ALU, 0b101, 0b0100000),
    _r("or", InstrClass.INT_ALU, 0b110, 0b0000000),
    _r("and", InstrClass.INT_ALU, 0b111, 0b0000000),
    _i("addi", InstrClass.INT_ALU, 0b000),
    _i("slti", InstrClass.INT_ALU, 0b010),
    _i("sltiu", InstrClass.INT_ALU, 0b011),
    _i("xori", InstrClass.INT_ALU, 0b100),
    _i("ori", InstrClass.INT_ALU, 0b110),
    _i("andi", InstrClass.INT_ALU, 0b111),
    _sh("slli", 0b001, 0b0000000),
    _sh("srli", 0b101, 0b0000000),
    _sh("srai", 0b101, 0b0100000),
    InstrSpec("lui", Format.U, InstrClass.INT_ALU, _LUI, rd_domain="x"),
    InstrSpec("auipc", Format.U, InstrClass.INT_ALU, _AUIPC, rd_domain="x"),
    _ld("lb", 0b000),
    _ld("lh", 0b001),
    _ld("lw", 0b010),
    _ld("lbu", 0b100),
    _ld("lhu", 0b101),
    _st("sb", 0b000),
    _st("sh", 0b001),
    _st("sw", 0b010),
    _br("beq", 0b000),
    _br("bne", 0b001),
    _br("blt", 0b100),
    _br("bge", 0b101),
    _br("bltu", 0b110),
    _br("bgeu", 0b111),
    InstrSpec("jal", Format.J, InstrClass.JUMP, _JAL, rd_domain="x"),
    InstrSpec("jalr", Format.JR, InstrClass.JUMP, _JALR, funct3=0b000,
              rd_domain="x", rs1_domain="x"),
    InstrSpec("ecall", Format.NONE, InstrClass.SYS, _SYSTEM, funct3=0b000),
    InstrSpec("ebreak", Format.NONE, InstrClass.SYS, _SYSTEM, funct3=0b000),
    # --- RV32M ---------------------------------------------------------
    _r("mul", InstrClass.INT_MUL, 0b000, 0b0000001),
    _r("mulh", InstrClass.INT_MUL, 0b001, 0b0000001),
    _r("mulhsu", InstrClass.INT_MUL, 0b010, 0b0000001),
    _r("mulhu", InstrClass.INT_MUL, 0b011, 0b0000001),
    _r("div", InstrClass.INT_DIV, 0b100, 0b0000001),
    _r("divu", InstrClass.INT_DIV, 0b101, 0b0000001),
    _r("rem", InstrClass.INT_DIV, 0b110, 0b0000001),
    _r("remu", InstrClass.INT_DIV, 0b111, 0b0000001),
    # --- Zicsr ---------------------------------------------------------
    _csr("csrrw", 0b001),
    _csr("csrrs", 0b010),
    _csr("csrrc", 0b011),
    _csri("csrrwi", 0b101),
    _csri("csrrsi", 0b110),
    _csri("csrrci", 0b111),
    # --- F/D loads & stores -------------------------------------------
    InstrSpec("flw", Format.FLOAD, InstrClass.FP_LOAD, _LOAD_FP, funct3=0b010,
              rd_domain="f", rs1_domain="x"),
    InstrSpec("fld", Format.FLOAD, InstrClass.FP_LOAD, _LOAD_FP, funct3=0b011,
              rd_domain="f", rs1_domain="x"),
    InstrSpec("fsw", Format.FSTORE, InstrClass.FP_STORE, _STORE_FP,
              funct3=0b010, rs1_domain="x", rs2_domain="f"),
    InstrSpec("fsd", Format.FSTORE, InstrClass.FP_STORE, _STORE_FP,
              funct3=0b011, rs1_domain="x", rs2_domain="f"),
    # --- D arithmetic ---------------------------------------------------
    _fr("fadd.d", InstrClass.FP_ADD, 0b0000001),
    _fr("fsub.d", InstrClass.FP_ADD, 0b0000101),
    _fr("fmul.d", InstrClass.FP_MUL, 0b0001001),
    _fr("fdiv.d", InstrClass.FP_DIV, 0b0001101),
    InstrSpec("fsqrt.d", Format.FR1, InstrClass.FP_SQRT, _OP_FP, funct3=0b111,
              funct7=0b0101101, rs2_field=0b00000, rd_domain="f",
              rs1_domain="f"),
    _fr4("fmadd.d", _MADD),
    _fr4("fmsub.d", _MSUB),
    _fr4("fnmsub.d", _NMSUB),
    _fr4("fnmadd.d", _NMADD),
    _fr("fsgnj.d", InstrClass.FP_SGNJ, 0b0010001, f3=0b000),
    _fr("fsgnjn.d", InstrClass.FP_SGNJ, 0b0010001, f3=0b001),
    _fr("fsgnjx.d", InstrClass.FP_SGNJ, 0b0010001, f3=0b010),
    _fr("fmin.d", InstrClass.FP_MINMAX, 0b0010101, f3=0b000),
    _fr("fmax.d", InstrClass.FP_MINMAX, 0b0010101, f3=0b001),
    InstrSpec("feq.d", Format.FR, InstrClass.FP_CMP, _OP_FP, funct3=0b010,
              funct7=0b1010001, rd_domain="x", rs1_domain="f",
              rs2_domain="f"),
    InstrSpec("flt.d", Format.FR, InstrClass.FP_CMP, _OP_FP, funct3=0b001,
              funct7=0b1010001, rd_domain="x", rs1_domain="f",
              rs2_domain="f"),
    InstrSpec("fle.d", Format.FR, InstrClass.FP_CMP, _OP_FP, funct3=0b000,
              funct7=0b1010001, rd_domain="x", rs1_domain="f",
              rs2_domain="f"),
    InstrSpec("fcvt.w.d", Format.FR1, InstrClass.FP_CVT, _OP_FP, funct3=0b111,
              funct7=0b1100001, rs2_field=0b00000, rd_domain="x",
              rs1_domain="f"),
    InstrSpec("fcvt.d.w", Format.FR1, InstrClass.FP_CVT, _OP_FP, funct3=0b111,
              funct7=0b1101001, rs2_field=0b00000, rd_domain="f",
              rs1_domain="x"),
    # --- Xfrep ----------------------------------------------------------
    InstrSpec("frep.o", Format.FREP, InstrClass.FREP, _CUSTOM0, funct3=0b000,
              rs1_domain="x"),
    InstrSpec("frep.i", Format.FREP, InstrClass.FREP, _CUSTOM0, funct3=0b001,
              rs1_domain="x"),
    # --- Xssr config ------------------------------------------------------
    InstrSpec("scfgw", Format.SCFGW, InstrClass.SCFG, _CUSTOM1, funct3=0b001,
              funct7=0b0000000, rs1_domain="x", rs2_domain="x"),
    InstrSpec("scfgr", Format.SCFGR, InstrClass.SCFG, _CUSTOM1, funct3=0b010,
              funct7=0b0000001, rd_domain="x", rs1_domain="x"),
    # --- Xdma (cluster DMA engine, integer-core controlled) ----------------
    InstrSpec("dmsrc", Format.RS1, InstrClass.DMA, _CUSTOM1, funct3=0b011,
              funct7=0b0000000, rs1_domain="x"),
    InstrSpec("dmdst", Format.RS1, InstrClass.DMA, _CUSTOM1, funct3=0b011,
              funct7=0b0000001, rs1_domain="x"),
    InstrSpec("dmrep", Format.RS1, InstrClass.DMA, _CUSTOM1, funct3=0b011,
              funct7=0b0000010, rs1_domain="x"),
    InstrSpec("dmstr", Format.SCFGW, InstrClass.DMA, _CUSTOM1, funct3=0b100,
              funct7=0b0000000, rs1_domain="x", rs2_domain="x"),
    InstrSpec("dmcpy", Format.SCFGR, InstrClass.DMA, _CUSTOM1, funct3=0b101,
              funct7=0b0000000, rd_domain="x", rs1_domain="x"),
    InstrSpec("dmstat", Format.RD, InstrClass.DMA, _CUSTOM1, funct3=0b110,
              funct7=0b0000000, rd_domain="x"),
]

#: Mnemonic -> spec lookup for every supported instruction.
SPEC_TABLE: dict[str, InstrSpec] = {s.mnemonic: s for s in _SPECS}


def spec_for(mnemonic: str) -> InstrSpec:
    """Return the :class:`InstrSpec` for ``mnemonic``.

    Raises ``KeyError`` with a helpful message for unknown mnemonics.
    """
    try:
        return SPEC_TABLE[mnemonic]
    except KeyError:
        raise KeyError(f"unknown mnemonic {mnemonic!r}") from None
