"""A small two-pass assembler for the simulated ISA.

Supports the subset needed by the kernel generators and tests:

* one instruction per line, ``#`` / ``//`` comments, ``label:`` definitions;
* all mnemonics from :mod:`repro.isa.instructions` plus the common pseudo
  instructions (``nop``, ``li``, ``mv``, ``j``, ``ret``, ``beqz``, ``bnez``,
  ``fmv.d``);
* symbolic CSR names (``chain_mask``, ``ssr_enable``, ...);
* ``%name`` placeholders, substituted from the ``symbols`` mapping -- the
  kernel generators use these for array base addresses and loop bounds;
* branch/jump targets given as labels or as numeric byte offsets (the
  paper's listings use ``-12``-style offsets).

The output is a :class:`Program`: a list of :class:`~repro.isa.instructions.Instr`
records with resolved addresses, plus the label map.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.csr import CSR
from repro.isa.encoding import encode
from repro.isa.instructions import Format, Instr, spec_for
from repro.isa.registers import fp_reg, int_reg


class AssemblerError(ValueError):
    """Raised on any malformed assembly input."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        detail = message
        if line_no is not None:
            detail = f"line {line_no}: {message}"
            if line is not None:
                detail += f"  [{line.strip()}]"
        super().__init__(detail)
        self.line_no = line_no


@dataclass
class Program:
    """An assembled program."""

    instrs: list[Instr]
    labels: dict[str, int] = field(default_factory=dict)
    base: int = 0

    def __len__(self) -> int:
        return len(self.instrs)

    def encode_words(self) -> list[int]:
        """Encode every instruction into its 32-bit machine word."""
        return [encode(i) for i in self.instrs]

    def at(self, addr: int) -> Instr:
        """Return the instruction at byte address ``addr``."""
        index = (addr - self.base) // 4
        return self.instrs[index]


_CSR_NAMES = {c.name.lower(): int(c) for c in CSR}

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


def _tokenize_operands(text: str) -> list[str]:
    text = text.strip()
    if not text:
        return []
    return [t.strip() for t in text.split(",")]


def _parse_int(token: str) -> int:
    token = token.strip()
    neg = token.startswith("-")
    if neg:
        token = token[1:]
    if token.lower().startswith("0x"):
        value = int(token, 16)
    elif token.lower().startswith("0b"):
        value = int(token, 2)
    else:
        value = int(token, 10)
    return -value if neg else value


class _Line:
    def __init__(self, mnemonic: str, operands: list[str], line_no: int,
                 source: str):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line_no = line_no
        self.source = source


def assemble(text: str, symbols: dict[str, int] | None = None,
             base: int = 0) -> Program:
    """Assemble ``text`` into a :class:`Program`.

    ``symbols`` provides values for ``%name`` placeholders.  ``base`` is the
    byte address of the first instruction.
    """
    symbols = symbols or {}
    lines = _first_pass(text, symbols)
    labels: dict[str, int] = {}
    expanded: list[_Line] = []
    addr = base
    for line in lines:
        if line.mnemonic.endswith(":") and not line.operands:
            label = line.mnemonic[:-1]
            if not label.isidentifier():
                raise AssemblerError(f"bad label {label!r}", line.line_no)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line.line_no)
            labels[label] = addr
            continue
        for piece in _expand_pseudo(line):
            expanded.append(piece)
            addr += 4

    instrs: list[Instr] = []
    addr = base
    for line in expanded:
        instr = _parse_instr(line, labels, addr)
        instr.addr = addr
        instr.source = line.source
        instrs.append(instr)
        addr += 4
    return Program(instrs, labels, base)


def _first_pass(text: str, symbols: dict[str, int]) -> list[_Line]:
    out: list[_Line] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        line = _substitute_symbols(line, symbols, line_no, raw)
        # A label may share a line with an instruction: "loop: fadd.d ..."
        while ":" in line:
            label, rest = line.split(":", 1)
            label = label.strip()
            out.append(_Line(f"{label}:", [], line_no, raw))
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _tokenize_operands(parts[1]) if len(parts) > 1 else []
        out.append(_Line(mnemonic, operands, line_no, raw))
    return out


def _substitute_symbols(line: str, symbols: dict[str, int], line_no: int,
                        raw: str) -> str:
    def repl(match: re.Match) -> str:
        name = match.group(1)
        if name not in symbols:
            raise AssemblerError(f"undefined symbol %{name}", line_no, raw)
        return str(symbols[name])

    # Accept both %name and %[name] (the paper's listing style).
    line = re.sub(r"%\[(\w+)\]", repl, line)
    return re.sub(r"%(\w+)", repl, line)


def _expand_pseudo(line: _Line) -> list[_Line]:
    mn, ops, no, src = line.mnemonic, line.operands, line.line_no, line.source
    if mn == "nop":
        return [_Line("addi", ["x0", "x0", "0"], no, src)]
    if mn == "mv":
        _expect(ops, 2, line)
        return [_Line("addi", [ops[0], ops[1], "0"], no, src)]
    if mn == "li":
        _expect(ops, 2, line)
        return _expand_li(ops[0], ops[1], no, src)
    if mn == "j":
        _expect(ops, 1, line)
        return [_Line("jal", ["x0", ops[0]], no, src)]
    if mn == "ret":
        return [_Line("jalr", ["x0", "ra", "0"], no, src)]
    if mn == "beqz":
        _expect(ops, 2, line)
        return [_Line("beq", [ops[0], "x0", ops[1]], no, src)]
    if mn == "bnez":
        _expect(ops, 2, line)
        return [_Line("bne", [ops[0], "x0", ops[1]], no, src)]
    if mn == "bgt":
        _expect(ops, 3, line)
        return [_Line("blt", [ops[1], ops[0], ops[2]], no, src)]
    if mn == "ble":
        _expect(ops, 3, line)
        return [_Line("bge", [ops[1], ops[0], ops[2]], no, src)]
    if mn == "fmv.d":
        _expect(ops, 2, line)
        return [_Line("fsgnj.d", [ops[0], ops[1], ops[1]], no, src)]
    if mn == "fneg.d":
        _expect(ops, 2, line)
        return [_Line("fsgnjn.d", [ops[0], ops[1], ops[1]], no, src)]
    if mn == "fabs.d":
        _expect(ops, 2, line)
        return [_Line("fsgnjx.d", [ops[0], ops[1], ops[1]], no, src)]
    if mn == "csrr":
        _expect(ops, 2, line)
        return [_Line("csrrs", [ops[0], ops[1], "x0"], no, src)]
    if mn == "csrw":
        _expect(ops, 2, line)
        return [_Line("csrrw", ["x0", ops[0], ops[1]], no, src)]
    if mn == "csrs":
        _expect(ops, 2, line)
        return [_Line("csrrs", ["x0", ops[0], ops[1]], no, src)]
    if mn == "csrc":
        _expect(ops, 2, line)
        return [_Line("csrrc", ["x0", ops[0], ops[1]], no, src)]
    return [line]


def _expect(ops: list[str], n: int, line: _Line) -> None:
    if len(ops) != n:
        raise AssemblerError(
            f"{line.mnemonic} expects {n} operands, got {len(ops)}",
            line.line_no, line.source,
        )


def _expand_li(rd: str, imm_token: str, no: int, src: str) -> list[_Line]:
    try:
        value = _parse_int(imm_token)
    except ValueError:
        raise AssemblerError(f"li needs a constant, got {imm_token!r}", no,
                             src) from None
    if not -(1 << 31) <= value < 1 << 32:
        raise AssemblerError(f"li constant {value} does not fit 32 bits", no,
                             src)
    if value >= 1 << 31:
        value -= 1 << 32  # Accept unsigned 32-bit constants.
    if -2048 <= value < 2048:
        return [_Line("addi", [rd, "x0", str(value)], no, src)]
    lo = ((value & 0xFFF) ^ 0x800) - 0x800  # sign-extended low 12 bits
    hi = ((value - lo) >> 12) & 0xFFFFF
    out = [_Line("lui", [rd, str(hi)], no, src)]
    if lo:
        out.append(_Line("addi", [rd, rd, str(lo)], no, src))
    return out


def _parse_instr(line: _Line, labels: dict[str, int], addr: int) -> Instr:
    try:
        spec = spec_for(line.mnemonic)
    except KeyError as exc:
        raise AssemblerError(str(exc), line.line_no, line.source) from None

    ops = line.operands
    instr = Instr(spec.mnemonic)
    fmt = spec.fmt

    def reg(token: str, domain: str) -> int:
        try:
            return int_reg(token) if domain == "x" else fp_reg(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), line.line_no, line.source) from None

    def imm(token: str) -> int:
        try:
            return _parse_int(token)
        except ValueError:
            raise AssemblerError(
                f"bad immediate {token!r}", line.line_no, line.source
            ) from None

    def target(token: str) -> int:
        if token in labels:
            return labels[token] - addr
        try:
            return _parse_int(token)
        except ValueError:
            raise AssemblerError(
                f"unknown label or offset {token!r}", line.line_no, line.source
            ) from None

    def csr_addr(token: str) -> int:
        if token in _CSR_NAMES:
            return _CSR_NAMES[token]
        # The disassembler renders unnamed CSRs as ``csr_0x...``.
        if token.startswith("csr_"):
            return imm(token[4:])
        return imm(token)

    def mem_operand(token: str) -> tuple[int, str]:
        match = _MEM_OPERAND.match(token.replace(" ", ""))
        if not match:
            raise AssemblerError(
                f"expected imm(reg), got {token!r}", line.line_no, line.source
            )
        return imm(match.group(1)), match.group(2)

    if fmt in (Format.R, Format.FR):
        _expect(ops, 3, line)
        instr.rd = reg(ops[0], spec.rd_domain)
        instr.rs1 = reg(ops[1], spec.rs1_domain)
        instr.rs2 = reg(ops[2], spec.rs2_domain)
    elif fmt == Format.FR1:
        _expect(ops, 2, line)
        instr.rd = reg(ops[0], spec.rd_domain)
        instr.rs1 = reg(ops[1], spec.rs1_domain)
    elif fmt == Format.FR4:
        _expect(ops, 4, line)
        instr.rd = reg(ops[0], "f")
        instr.rs1 = reg(ops[1], "f")
        instr.rs2 = reg(ops[2], "f")
        instr.rs3 = reg(ops[3], "f")
    elif fmt in (Format.I, Format.SHIFT, Format.JR):
        _expect(ops, 3, line)
        instr.rd = reg(ops[0], "x")
        instr.rs1 = reg(ops[1], "x")
        instr.imm = imm(ops[2])
    elif fmt in (Format.LOAD, Format.FLOAD):
        _expect(ops, 2, line)
        instr.rd = reg(ops[0], spec.rd_domain)
        instr.imm, base_reg = mem_operand(ops[1])
        instr.rs1 = reg(base_reg, "x")
    elif fmt in (Format.S, Format.FSTORE):
        _expect(ops, 2, line)
        instr.rs2 = reg(ops[0], spec.rs2_domain)
        instr.imm, base_reg = mem_operand(ops[1])
        instr.rs1 = reg(base_reg, "x")
    elif fmt == Format.B:
        _expect(ops, 3, line)
        instr.rs1 = reg(ops[0], "x")
        instr.rs2 = reg(ops[1], "x")
        instr.imm = target(ops[2])
    elif fmt == Format.U:
        _expect(ops, 2, line)
        instr.rd = reg(ops[0], "x")
        instr.imm = imm(ops[1])
    elif fmt == Format.J:
        _expect(ops, 2, line)
        instr.rd = reg(ops[0], "x")
        instr.imm = target(ops[1])
    elif fmt == Format.CSR:
        _expect(ops, 3, line)
        instr.rd = reg(ops[0], "x")
        instr.csr = csr_addr(ops[1])
        instr.rs1 = reg(ops[2], "x")
    elif fmt == Format.CSRI:
        _expect(ops, 3, line)
        instr.rd = reg(ops[0], "x")
        instr.csr = csr_addr(ops[1])
        instr.imm = imm(ops[2])
    elif fmt == Format.FREP:
        if len(ops) not in (2, 4):
            raise AssemblerError(
                "frep expects rs1, max_inst[, stagger_max, stagger_mask]",
                line.line_no, line.source,
            )
        from repro.isa.encoding import pack_frep

        instr.rs1 = reg(ops[0], "x")
        max_inst = imm(ops[1])
        stagger_max = imm(ops[2]) if len(ops) == 4 else 0
        stagger_mask = imm(ops[3]) if len(ops) == 4 else 0
        instr.imm = pack_frep(max_inst, stagger_max, stagger_mask)
    elif fmt == Format.SCFGW:
        _expect(ops, 2, line)
        instr.rs1 = reg(ops[0], "x")
        instr.rs2 = reg(ops[1], "x")
    elif fmt == Format.SCFGR:
        _expect(ops, 2, line)
        instr.rd = reg(ops[0], "x")
        instr.rs1 = reg(ops[1], "x")
    elif fmt == Format.RS1:
        _expect(ops, 1, line)
        instr.rs1 = reg(ops[0], "x")
    elif fmt == Format.RD:
        _expect(ops, 1, line)
        instr.rd = reg(ops[0], "x")
    elif fmt == Format.NONE:
        _expect(ops, 0, line)
    else:  # pragma: no cover
        raise AssemblerError(f"unhandled format {fmt}", line.line_no)
    return instr
