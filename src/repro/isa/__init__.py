"""RISC-V ISA subset with the Snitch extensions used by the paper.

This package models the ISA-visible surface needed to reproduce the
scalar-chaining experiments:

* RV32IM integer base (the Snitch integer core is RV32).
* The F/D floating-point extensions (64-bit FP registers, as on Snitch).
* ``Xssr``  -- stream semantic registers (``scfgw``/``scfgr`` config access).
* ``Xfrep`` -- the floating-point repetition (hardware loop) instruction.
* ``Xchain`` -- the paper's contribution.  Chaining is configured purely
  through a custom CSR (``0x7C3``), so it adds no new opcodes; the CSR is
  defined in :mod:`repro.isa.csr`.

The package provides instruction definitions, a binary encoder/decoder and
a small two-pass assembler so kernels can be written (and generated) as
ordinary assembly text.
"""

from repro.isa.registers import (
    FP_REG_NAMES,
    INT_REG_NAMES,
    fp_reg,
    fp_reg_name,
    int_reg,
    int_reg_name,
)
from repro.isa.csr import CSR
from repro.isa.instructions import Instr, InstrClass, SPEC_TABLE, spec_for
from repro.isa.encoding import decode, encode
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.disassembler import disassemble

__all__ = [
    "AssemblerError",
    "CSR",
    "FP_REG_NAMES",
    "INT_REG_NAMES",
    "Instr",
    "InstrClass",
    "Program",
    "SPEC_TABLE",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "fp_reg",
    "fp_reg_name",
    "int_reg",
    "int_reg_name",
    "spec_for",
]
