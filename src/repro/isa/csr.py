"""Control and status register map.

Besides a handful of standard machine-level CSRs, this defines the Snitch
custom CSRs used by the experiments:

* ``SSR_ENABLE`` (``0x7C0``) -- bit 0 turns the stream semantic registers
  on; while set, reads/writes of ``ft0``-``ft2`` carry stream semantics.
* ``FPMODE`` (``0x7C1``) -- reserved on Snitch; modelled for completeness.
* ``CHAIN_MASK`` (``0x7C3``) -- the paper's contribution.  A 32-bit mask
  with one bit per architectural FP register; setting bit *i* gives
  register *i* FIFO semantics (writes push at FPU writeback, reads pop at
  issue, a valid bit provides backpressure).
* ``CHAIN_STATUS`` (``0x7C4``) -- read-only helper exposing the current
  valid bits, useful for debugging and assertions (our addition; the paper
  only requires the mask CSR).
"""

from __future__ import annotations

from enum import IntEnum


class CSR(IntEnum):
    """CSR addresses understood by the simulator."""

    # Standard (subset).
    FFLAGS = 0x001
    FRM = 0x002
    FCSR = 0x003
    MCYCLE = 0xB00
    MINSTRET = 0xB02
    MHARTID = 0xF14

    # Snitch custom CSRs.
    SSR_ENABLE = 0x7C0
    FPMODE = 0x7C1
    # The paper places the chaining mask at 0x7C3.
    CHAIN_MASK = 0x7C3
    CHAIN_STATUS = 0x7C4
    # Simulator-only: writes snapshot the performance counters under the
    # written id, delimiting measurement regions (handled by the integer
    # core, zero-latency; does not exist in the RTL).
    SIM_MARK = 0x7C5
    # Cluster hardware barrier: a write blocks the core until every
    # non-halted core in the cluster has arrived (Snitch clusters provide
    # an equivalent hardware synchronization primitive).
    BARRIER = 0x7C6
    # System-wide barrier: a write blocks the core until every non-halted
    # core in *every* cluster of the surrounding :class:`repro.system
    # .System` has arrived.  Released by the system, never by the
    # cluster; writing it on a standalone cluster therefore hangs (the
    # multi-cluster halo-exchange programs are system programs).
    SYS_BARRIER = 0x7C7


#: CSRs that configure the FP subsystem.  Writes to these must stay ordered
#: with respect to in-flight FP instructions, so the core routes them
#: through the FP instruction queue (as Snitch does for ssr enable).
FP_SUBSYSTEM_CSRS = frozenset(
    {CSR.SSR_ENABLE, CSR.FPMODE, CSR.CHAIN_MASK, CSR.CHAIN_STATUS,
     CSR.FFLAGS, CSR.FRM, CSR.FCSR}
)


def csr_name(addr: int) -> str:
    """Return a human-readable name for CSR ``addr``."""
    try:
        return CSR(addr).name.lower()
    except ValueError:
        return f"csr_{addr:#x}"


def is_fp_csr(addr: int) -> bool:
    """True when CSR ``addr`` belongs to the FP subsystem."""
    try:
        return CSR(addr) in FP_SUBSYSTEM_CSRS
    except ValueError:
        return False
