"""Register name tables for the integer and floating-point register files.

Snitch is an RV32IMAFD core with a 64-bit FPU data path, so there are 32
integer registers (``x0``-``x31``, 32-bit) and 32 floating-point registers
(``f0``-``f31``, 64-bit).  The stream semantic registers of the ``Xssr``
extension alias ``ft0``-``ft2`` (= ``f0``-``f2``); the chaining extension of
the paper can be enabled on any FP register through the mask CSR.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Number of stream semantic registers; they alias ``f0 .. f{N-1}``.
NUM_SSRS = 3

_INT_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

#: ABI name of each integer register, indexed by register number.
INT_REG_NAMES = _INT_ABI_NAMES

#: ABI name of each FP register, indexed by register number.
FP_REG_NAMES = _FP_ABI_NAMES


def _build_lookup(abi_names: tuple[str, ...], prefix: str) -> dict[str, int]:
    table = {name: idx for idx, name in enumerate(abi_names)}
    for idx in range(len(abi_names)):
        table[f"{prefix}{idx}"] = idx
    # 'fp' is the conventional alias for s0/x8.
    if prefix == "x":
        table["fp"] = 8
    return table


_INT_LOOKUP = _build_lookup(_INT_ABI_NAMES, "x")
_FP_LOOKUP = _build_lookup(_FP_ABI_NAMES, "f")


def int_reg(name: str) -> int:
    """Return the integer register number for ``name`` (ABI or ``xN``)."""
    try:
        return _INT_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def fp_reg(name: str) -> int:
    """Return the FP register number for ``name`` (ABI or ``fN``)."""
    try:
        return _FP_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown FP register {name!r}") from None


def int_reg_name(num: int) -> str:
    """Return the canonical ABI name of integer register ``num``."""
    return INT_REG_NAMES[num]


def fp_reg_name(num: int) -> str:
    """Return the canonical ABI name of FP register ``num``."""
    return FP_REG_NAMES[num]


def is_ssr_reg(num: int) -> bool:
    """True when FP register ``num`` is stream-mapped while SSRs are on."""
    return 0 <= num < NUM_SSRS
