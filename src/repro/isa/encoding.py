"""Binary encoding and decoding of instructions.

Standard RV32IM/Zicsr/F/D instructions use their official encodings.  The
Snitch extensions use the custom opcode spaces:

* ``Xfrep`` (``frep.o``/``frep.i``) lives in *custom-0* (``0001011``).  The
  12-bit immediate packs ``max_inst`` (bits 3:0), ``stagger_max`` (7:4) and
  ``stagger_mask`` (11:8); the repetition count is read from ``rs1``.
* ``Xssr`` (``scfgw``/``scfgr``) lives in *custom-1* (``0101011``).

Encode/decode round-trips exactly for every instruction produced by the
assembler; that property is exercised by the hypothesis test-suite.
"""

from __future__ import annotations

from repro.isa.instructions import Format, Instr, InstrSpec, SPEC_TABLE


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (e.g. immediate range)."""


def _check_range(value: int, lo: int, hi: int, what: str, instr: Instr) -> None:
    if not lo <= value <= hi:
        raise EncodingError(
            f"{what} {value} out of range [{lo}, {hi}] in {instr.mnemonic}"
        )


def _check_reg(num: int, what: str, instr: Instr) -> None:
    if not 0 <= num < 32:
        raise EncodingError(f"{what} x/f{num} out of range in {instr.mnemonic}")


def pack_frep(max_inst: int, stagger_max: int = 0, stagger_mask: int = 0) -> int:
    """Pack the FREP immediate fields into the 12-bit immediate."""
    if not 0 <= max_inst < 16:
        raise EncodingError(f"frep max_inst {max_inst} out of range [0, 15]")
    if not 0 <= stagger_max < 16:
        raise EncodingError(f"frep stagger_max {stagger_max} out of range")
    if not 0 <= stagger_mask < 16:
        raise EncodingError(f"frep stagger_mask {stagger_mask} out of range")
    return max_inst | (stagger_max << 4) | (stagger_mask << 8)


def unpack_frep(imm: int) -> tuple[int, int, int]:
    """Return ``(max_inst, stagger_max, stagger_mask)`` from a FREP imm."""
    return imm & 0xF, (imm >> 4) & 0xF, (imm >> 8) & 0xF


def _sext(value: int, bits: int) -> int:
    """Sign-extend ``bits``-wide ``value`` to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def encode(instr: Instr) -> int:
    """Encode ``instr`` into its 32-bit machine word."""
    spec = instr.spec
    op = spec.opcode
    f3 = spec.funct3 or 0
    rd, rs1, rs2, rs3 = instr.rd, instr.rs1, instr.rs2, instr.rs3
    imm = instr.imm
    for num, what in ((rd, "rd"), (rs1, "rs1"), (rs2, "rs2"), (rs3, "rs3")):
        _check_reg(num, what, instr)

    fmt = spec.fmt
    if fmt in (Format.R, Format.FR, Format.SCFGW):
        return (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
            | (rd << 7) | op
    if fmt == Format.SCFGR:
        return (spec.funct7 << 25) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if fmt == Format.RS1:
        return (spec.funct7 << 25) | (rs1 << 15) | (f3 << 12) | op
    if fmt == Format.RD:
        return (spec.funct7 << 25) | (f3 << 12) | (rd << 7) | op
    if fmt == Format.FR1:
        return (spec.funct7 << 25) | (spec.rs2_field << 20) | (rs1 << 15) \
            | (f3 << 12) | (rd << 7) | op
    if fmt == Format.FR4:
        return (rs3 << 27) | (spec.funct2 << 25) | (rs2 << 20) | (rs1 << 15) \
            | (f3 << 12) | (rd << 7) | op
    if fmt in (Format.I, Format.LOAD, Format.FLOAD, Format.JR):
        _check_range(imm, -2048, 2047, "immediate", instr)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if fmt == Format.SHIFT:
        _check_range(imm, 0, 31, "shift amount", instr)
        return (spec.funct7 << 25) | (imm << 20) | (rs1 << 15) | (f3 << 12) \
            | (rd << 7) | op
    if fmt in (Format.S, Format.FSTORE):
        _check_range(imm, -2048, 2047, "immediate", instr)
        lo = imm & 0x1F
        hi = (imm >> 5) & 0x7F
        return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
            | (lo << 7) | op
    if fmt == Format.B:
        _check_range(imm, -4096, 4094, "branch offset", instr)
        if imm & 1:
            raise EncodingError(f"odd branch offset {imm} in {instr.mnemonic}")
        b = imm & 0x1FFF
        word = ((b >> 12) & 1) << 31
        word |= ((b >> 5) & 0x3F) << 25
        word |= rs2 << 20
        word |= rs1 << 15
        word |= f3 << 12
        word |= ((b >> 1) & 0xF) << 8
        word |= ((b >> 11) & 1) << 7
        return word | op
    if fmt == Format.U:
        _check_range(imm, 0, (1 << 20) - 1, "upper immediate", instr)
        return (imm << 12) | (rd << 7) | op
    if fmt == Format.J:
        _check_range(imm, -(1 << 20), (1 << 20) - 2, "jump offset", instr)
        if imm & 1:
            raise EncodingError(f"odd jump offset {imm} in {instr.mnemonic}")
        j = imm & 0x1FFFFF
        word = ((j >> 20) & 1) << 31
        word |= ((j >> 1) & 0x3FF) << 21
        word |= ((j >> 11) & 1) << 20
        word |= ((j >> 12) & 0xFF) << 12
        return word | (rd << 7) | op
    if fmt == Format.CSR:
        _check_range(instr.csr, 0, 0xFFF, "csr address", instr)
        return (instr.csr << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if fmt == Format.CSRI:
        _check_range(instr.csr, 0, 0xFFF, "csr address", instr)
        _check_range(imm, 0, 31, "csr immediate", instr)
        return (instr.csr << 20) | (imm << 15) | (f3 << 12) | (rd << 7) | op
    if fmt == Format.FREP:
        _check_range(imm, 0, 0xFFF, "frep immediate", instr)
        return (imm << 20) | (rs1 << 15) | (f3 << 12) | op
    if fmt == Format.NONE:
        # ecall (imm 0) / ebreak (imm 1).
        system_imm = 1 if instr.mnemonic == "ebreak" else 0
        return (system_imm << 20) | (f3 << 12) | op
    raise EncodingError(f"cannot encode format {fmt} ({instr.mnemonic})")


def _build_decode_index() -> dict[int, list[InstrSpec]]:
    index: dict[int, list[InstrSpec]] = {}
    for spec in SPEC_TABLE.values():
        index.setdefault(spec.opcode, []).append(spec)
    return index


_DECODE_INDEX = _build_decode_index()


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a recognized instruction."""


def decode(word: int) -> Instr:
    """Decode the 32-bit machine word ``word`` into an :class:`Instr`."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    f3 = (word >> 12) & 0x7
    f7 = (word >> 25) & 0x7F
    f2 = (word >> 25) & 0x3
    rd = (word >> 7) & 0x1F
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    rs3 = (word >> 27) & 0x1F

    candidates = _DECODE_INDEX.get(opcode)
    if not candidates:
        raise DecodeError(f"unknown opcode {opcode:#09b} in word {word:#010x}")

    spec = _match_spec(candidates, word, f3, f7, f2, rs2)
    fmt = spec.fmt
    instr = Instr(spec.mnemonic)

    if fmt in (Format.R, Format.FR, Format.SCFGW, Format.FR4):
        instr.rd, instr.rs1, instr.rs2 = rd, rs1, rs2
        if fmt == Format.FR4:
            instr.rs3 = rs3
    elif fmt == Format.SCFGR:
        instr.rd, instr.rs1 = rd, rs1
    elif fmt == Format.RS1:
        instr.rs1 = rs1
    elif fmt == Format.RD:
        instr.rd = rd
    elif fmt == Format.FR1:
        instr.rd, instr.rs1 = rd, rs1
    elif fmt in (Format.I, Format.LOAD, Format.FLOAD, Format.JR):
        instr.rd, instr.rs1 = rd, rs1
        instr.imm = _sext(word >> 20, 12)
    elif fmt == Format.SHIFT:
        instr.rd, instr.rs1 = rd, rs1
        instr.imm = rs2
    elif fmt in (Format.S, Format.FSTORE):
        instr.rs1, instr.rs2 = rs1, rs2
        instr.imm = _sext((f7 << 5) | rd, 12)
    elif fmt == Format.B:
        instr.rs1, instr.rs2 = rs1, rs2
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        instr.imm = _sext(imm, 13)
    elif fmt == Format.U:
        instr.rd = rd
        instr.imm = (word >> 12) & 0xFFFFF
    elif fmt == Format.J:
        instr.rd = rd
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        instr.imm = _sext(imm, 21)
    elif fmt == Format.CSR:
        instr.rd, instr.rs1 = rd, rs1
        instr.csr = (word >> 20) & 0xFFF
    elif fmt == Format.CSRI:
        instr.rd = rd
        instr.imm = rs1
        instr.csr = (word >> 20) & 0xFFF
    elif fmt == Format.FREP:
        instr.rs1 = rs1
        instr.imm = (word >> 20) & 0xFFF
    elif fmt == Format.NONE:
        pass
    else:  # pragma: no cover - all formats handled above
        raise DecodeError(f"cannot decode format {fmt}")
    return instr


def _match_spec(candidates: list[InstrSpec], word: int, f3: int, f7: int,
                f2: int, rs2: int) -> InstrSpec:
    for spec in candidates:
        if spec.fmt == Format.NONE:
            system_imm = (word >> 20) & 0xFFF
            want = 1 if spec.mnemonic == "ebreak" else 0
            if f3 == spec.funct3 and system_imm == want and (word >> 7) & 0x1F == 0:
                return spec
            continue
        if spec.funct3 is not None and spec.funct3 != f3:
            continue
        if spec.fmt == Format.FR4:
            if spec.funct2 == f2:
                return spec
            continue
        if spec.funct7 is not None and spec.fmt in (
            Format.R, Format.FR, Format.FR1, Format.SHIFT, Format.SCFGW,
            Format.SCFGR, Format.RS1, Format.RD,
        ):
            if spec.funct7 != f7:
                continue
        if spec.rs2_field is not None and spec.rs2_field != rs2:
            continue
        return spec
    raise DecodeError(
        f"no matching instruction for word {word:#010x} "
        f"(opcode {word & 0x7F:#09b}, funct3 {f3:#05b}, funct7 {f7:#09b})"
    )
