"""Disassembler: turn :class:`~repro.isa.instructions.Instr` records (or raw
32-bit words) back into assembly text.

``assemble(disassemble(program))`` reproduces the original instruction
stream; this round-trip is part of the property-based test-suite.
"""

from __future__ import annotations

from repro.isa.csr import csr_name
from repro.isa.encoding import decode, unpack_frep
from repro.isa.instructions import Format, Instr
from repro.isa.registers import fp_reg_name, int_reg_name


def format_instr(instr: Instr) -> str:
    """Render one instruction as assembly text."""
    spec = instr.spec
    fmt = spec.fmt
    x = int_reg_name
    f = fp_reg_name
    mn = instr.mnemonic

    if fmt == Format.R or fmt == Format.FR:
        rn = x if spec.rd_domain == "x" else f
        s1 = x if spec.rs1_domain == "x" else f
        s2 = x if spec.rs2_domain == "x" else f
        return f"{mn} {rn(instr.rd)}, {s1(instr.rs1)}, {s2(instr.rs2)}"
    if fmt == Format.FR1:
        rn = x if spec.rd_domain == "x" else f
        s1 = x if spec.rs1_domain == "x" else f
        return f"{mn} {rn(instr.rd)}, {s1(instr.rs1)}"
    if fmt == Format.FR4:
        return (f"{mn} {f(instr.rd)}, {f(instr.rs1)}, {f(instr.rs2)}, "
                f"{f(instr.rs3)}")
    if fmt in (Format.I, Format.SHIFT, Format.JR):
        return f"{mn} {x(instr.rd)}, {x(instr.rs1)}, {instr.imm}"
    if fmt == Format.LOAD:
        return f"{mn} {x(instr.rd)}, {instr.imm}({x(instr.rs1)})"
    if fmt == Format.FLOAD:
        return f"{mn} {f(instr.rd)}, {instr.imm}({x(instr.rs1)})"
    if fmt == Format.S:
        return f"{mn} {x(instr.rs2)}, {instr.imm}({x(instr.rs1)})"
    if fmt == Format.FSTORE:
        return f"{mn} {f(instr.rs2)}, {instr.imm}({x(instr.rs1)})"
    if fmt == Format.B:
        return f"{mn} {x(instr.rs1)}, {x(instr.rs2)}, {instr.imm}"
    if fmt == Format.U:
        return f"{mn} {x(instr.rd)}, {instr.imm}"
    if fmt == Format.J:
        return f"{mn} {x(instr.rd)}, {instr.imm}"
    if fmt == Format.CSR:
        return f"{mn} {x(instr.rd)}, {csr_name(instr.csr)}, {x(instr.rs1)}"
    if fmt == Format.CSRI:
        return f"{mn} {x(instr.rd)}, {csr_name(instr.csr)}, {instr.imm}"
    if fmt == Format.FREP:
        max_inst, stagger_max, stagger_mask = unpack_frep(instr.imm)
        if stagger_max or stagger_mask:
            return (f"{mn} {x(instr.rs1)}, {max_inst}, {stagger_max}, "
                    f"{stagger_mask}")
        return f"{mn} {x(instr.rs1)}, {max_inst}"
    if fmt == Format.SCFGW:
        return f"{mn} {x(instr.rs1)}, {x(instr.rs2)}"
    if fmt == Format.SCFGR:
        return f"{mn} {x(instr.rd)}, {x(instr.rs1)}"
    if fmt == Format.RS1:
        return f"{mn} {x(instr.rs1)}"
    if fmt == Format.RD:
        return f"{mn} {x(instr.rd)}"
    if fmt == Format.NONE:
        return mn
    raise ValueError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble(item: int | Instr) -> str:
    """Disassemble a raw 32-bit word or a decoded instruction."""
    if isinstance(item, int):
        item = decode(item)
    return format_instr(item)


def disassemble_program(words: list[int]) -> str:
    """Disassemble a list of machine words into newline-joined text."""
    return "\n".join(disassemble(w) for w in words)
