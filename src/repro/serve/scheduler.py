"""Priority scheduler: cache-first, coalescing, pool-dispatching.

The scheduler is the piece that makes a million cheap lookups cost
zero simulations.  Every submitted point is resolved in this order:

1. **Cache hit** -- answered synchronously from the content-addressed
   :class:`~repro.sweep.cache.ResultCache`, never touching the pool.
2. **In-flight coalescing** -- a point whose key is already queued or
   running *subscribes* to that execution instead of starting another:
   N concurrent submissions of one identical workload run exactly one
   simulation, and all N observe the same bit-identical record.
3. **Dispatch** -- everything else enters a priority heap
   (``(priority, submit-seq)`` order, bounded by ``max_queue``) and is
   bridged onto a :class:`~concurrent.futures.ProcessPoolExecutor`
   running the sweep engine's own
   :func:`~repro.sweep.runner.point_worker` (same in-worker SIGALRM
   timeout, same result/failure records as a local campaign).

All state transitions are journaled through the
:class:`~repro.serve.jobs.JobStore`; results never are -- the cache is
the durable result store, which is what makes crash recovery free.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.api.session import Session
from repro.api.workloads import Workload
from repro.obs import spans as _obs
from repro.obs.metrics import METRICS
from repro.serve.jobs import Job, JobStore, new_job_id
from repro.sweep.cache import package_version
from repro.sweep.runner import _pool_worker_init, point_worker

__all__ = ["QueueFull", "Scheduler", "SERVE_COUNTERS"]

#: Counter families exposed by ``Scheduler.metrics()`` and mirrored
#: into :data:`repro.obs.metrics.METRICS` when observability is on.
SERVE_COUNTERS = (
    "requests", "cache_hits", "dedup_hits", "executions",
    "jobs_done", "jobs_error", "jobs_timeout", "jobs_cancelled",
)


class QueueFull(Exception):
    """The pending-task queue is at ``max_queue``; submission refused."""


@dataclass
class _Task:
    """One unique in-flight cache key and everyone waiting on it."""

    key: str
    workload: Workload
    timeout: float | None
    #: ``(job_id, point_index)`` pairs to fan the record out to.
    subscribers: list[tuple[str, int]] = field(default_factory=list)
    future: Future | None = None
    cancelled: bool = False


class Scheduler:
    """Bridge between job submissions and the simulation pool.

    Thread-safe: submissions arrive from the asyncio event loop,
    completions from executor callback threads, all serialized by one
    lock (every hold is short -- key hashing, dict/heap bookkeeping).
    """

    def __init__(self, session: Session, store: JobStore, *,
                 workers: int | None = None, max_queue: int = 1024):
        if session.cache is None:
            raise ValueError(
                "serve requires a result cache; construct the Session "
                "with cache=<dir>")
        self.session = session
        self.store = store
        self.max_queue = max_queue
        import os
        self.workers = workers or session.workers or os.cpu_count() or 1
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_pool_worker_init)
        self._lock = threading.RLock()
        self._tasks: dict[str, _Task] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._inflight = 0
        self._queued = 0
        self._shutdown = False
        self.counters = {name: 0 for name in SERVE_COUNTERS}

    # -- metrics ------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        # Callers hold self._lock.
        self.counters[name] += value
        if _obs.ENABLED:
            METRICS.inc(f"serve.{name}", value)

    def metrics(self) -> dict:
        """JSON-ready ``serve.*`` snapshot (counters + live gauges)."""
        with self._lock:
            snap = {f"serve.{k}": v for k, v in self.counters.items()}
            snap["serve.queue_depth"] = self._queued
            snap["serve.inflight"] = self._inflight
            if _obs.ENABLED:
                METRICS.gauge("serve.queue_depth", self._queued)
                METRICS.gauge("serve.inflight", self._inflight)
            return snap

    # -- submission ---------------------------------------------------------

    def submit(self, workloads: list[Workload], *,
               priority: int = 10, timeout: float | None = None) -> Job:
        """Create, journal, and schedule one job; returns it queued
        (or already terminal, when every point was a cache hit)."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            self._count("requests")
            keys = [self.session.key(w) for w in workloads]
            fresh = {k for i, k in enumerate(keys)
                     if self.session.cache.get(k) is None
                     and k not in self._tasks}
            if self._queued + len(fresh) > self.max_queue:
                raise QueueFull(
                    f"queue full: {self._queued} queued + "
                    f"{len(fresh)} new > max {self.max_queue}")
            job = Job(id=new_job_id(), workloads=list(workloads),
                      priority=priority,
                      timeout=timeout if timeout is not None
                      else self.session.timeout)
            self.store.add(job)
            job.add_event("submitted", points=len(workloads))
            self._schedule(job, keys)
            return job

    def resume(self, jobs: list[Job]) -> int:
        """Re-enqueue journal-replayed jobs (see ``JobStore.replay``).

        Finished points resolve as cache hits on the spot; only the
        genuinely unfinished remainder re-enters the queue.  Returns
        the number of points re-enqueued.
        """
        requeued = 0
        with self._lock:
            for job in jobs:
                keys = [self.session.key(w) for w in job.workloads]
                requeued += self._schedule(job, keys)
            # Terminal jobs keep their journaled status; their result
            # *views* are rebuilt from the cache (results are never
            # journaled -- the store is the durable result store).
            for job in self.store.jobs.values():
                if not job.terminal:
                    continue
                for index, workload in enumerate(job.workloads):
                    if job.results[index] is not None:
                        continue
                    key = self.session.key(workload)
                    hit = self.session.cache.get(key)
                    if hit is not None:
                        job.results[index] = {
                            "status": "ok", "key": key, "cached": True,
                            "seconds": None, "result": hit.to_dict(),
                            "error": None}
        return requeued

    def _schedule(self, job: Job, keys: list[str]) -> int:
        # Callers hold self._lock; returns the newly queued task count.
        created = 0
        cache = self.session.cache
        for index, (workload, key) in enumerate(zip(job.workloads,
                                                    keys)):
            if job.results[index] is not None:
                continue
            hit = cache.get(key)
            if hit is not None:
                self._count("cache_hits")
                job.results[index] = {
                    "status": "ok", "key": key, "cached": True,
                    "seconds": None, "result": hit.to_dict(),
                    "error": None}
                job.add_event("point", index=index, status="ok",
                              cached=True)
                continue
            task = self._tasks.get(key)
            if task is not None:
                self._count("dedup_hits")
                task.subscribers.append((job.id, index))
                job.add_event("point_coalesced", index=index, key=key)
                continue
            task = _Task(key=key, workload=workload,
                         timeout=job.timeout,
                         subscribers=[(job.id, index)])
            self._tasks[key] = task
            heapq.heappush(self._heap,
                           (job.priority, next(self._seq), key))
            self._queued += 1
            created += 1
        if job.done_count == len(job.workloads):
            self._finalize(job)
        else:
            self._dispatch()
        return created

    # -- dispatch and completion --------------------------------------------

    def _dispatch(self) -> None:
        # Callers hold self._lock.
        if self._shutdown:  # a late _on_done must not resubmit
            return
        session = self.session
        while self._inflight < self.workers and self._heap:
            _, _, key = heapq.heappop(self._heap)
            task = self._tasks.get(key)
            if task is None or task.cancelled or task.future is not None:
                continue
            self._queued -= 1
            self._count("executions")
            task.future = self._executor.submit(
                point_worker, task.workload, session.cfg,
                session.max_cycles, task.timeout, session.engine,
                _obs.sink_dir())
            self._inflight += 1
            for job_id, _ in task.subscribers:
                job = self.store.get(job_id)
                if job is not None and job.status == "queued":
                    self.store.set_status(job, "running")
                    job.add_event("running")
            task.future.add_done_callback(
                lambda fut, key=key: self._on_done(key, fut))

    def _on_done(self, key: str, future: Future) -> None:
        # Runs on an executor callback thread.
        try:
            status, payload, seconds = future.result()
        except CancelledError:
            status, payload, seconds = "cancelled", "cancelled", None
        except Exception:
            status, payload, seconds = ("error", traceback.format_exc(),
                                        None)
        with self._lock:
            task = self._tasks.pop(key, None)
            self._inflight -= 1
            if task is None:  # cancelled away entirely
                self._dispatch()
                return
            record = self._record(task, status, payload, seconds)
            for job_id, index in task.subscribers:
                job = self.store.get(job_id)
                if job is None or job.results[index] is not None:
                    continue
                job.results[index] = record
                job.add_event("point", index=index,
                              status=record["status"], cached=False)
                if job.done_count == len(job.workloads):
                    self._finalize(job)
            self._dispatch()

    def _record(self, task: _Task, status: str, payload,
                seconds: float | None) -> dict:
        # Callers hold self._lock.
        cache = self.session.cache
        version = package_version()
        if status == "ok":
            cache.put(task.key, task.workload, payload,
                      seconds or 0.0, version)
            return {"status": "ok", "key": task.key, "cached": False,
                    "seconds": seconds, "result": payload.to_dict(),
                    "error": None}
        if status in ("error", "timeout"):
            cache.put_failure(task.key, task.workload, status,
                              str(payload), seconds or 0.0, version)
        return {"status": status, "key": task.key, "cached": False,
                "seconds": seconds, "result": None,
                "error": str(payload)}

    def _finalize(self, job: Job) -> None:
        # Callers hold self._lock.  Worst point status wins.
        statuses = {r["status"] for r in job.results if r is not None}
        for worst in ("cancelled", "error", "timeout"):
            if worst in statuses:
                final = worst
                break
        else:
            final = "done"
        self.store.set_status(job, final)
        self._count(f"jobs_{final}")
        job.add_event("finished", status=final)
        if _obs.ENABLED:
            seconds = (job.finished or time.time()) - job.created
            _obs.tracer().complete(
                "serve.job", cat="serve", start=job.created,
                seconds=seconds,
                args={"job": job.id, "status": final,
                      "points": len(job.workloads),
                      "cache_hits": sum(
                          1 for r in job.results
                          if r and r.get("cached"))})

    # -- cancellation and shutdown ------------------------------------------

    def cancel(self, job_id: str) -> Job | None:
        """Cooperatively cancel a job.  Pending points are dropped,
        running points shared with *other* jobs keep going (their
        results still land in the cache); a running point this job
        exclusively owns is cancelled if it has not started.  Returns
        the job, or ``None`` if unknown; terminal jobs are a no-op."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None or job.terminal:
                return job
            for key, task in list(self._tasks.items()):
                mine = [(jid, idx) for jid, idx in task.subscribers
                        if jid == job_id]
                if not mine:
                    continue
                task.subscribers = [s for s in task.subscribers
                                    if s[0] != job_id]
                if not task.subscribers:
                    task.cancelled = True
                    if task.future is None:
                        del self._tasks[key]  # heap entry skips lazily
                        self._queued -= 1
                    elif task.future.cancel():
                        self._tasks.pop(key, None)
            for index, record in enumerate(job.results):
                if record is None:
                    job.results[index] = {
                        "status": "cancelled", "key": None,
                        "cached": False, "seconds": None,
                        "result": None, "error": "cancelled by client"}
                    job.add_event("point", index=index,
                                  status="cancelled", cached=False)
            self._finalize(job)
            self._dispatch()
            return job

    def shutdown(self, wait: bool = False) -> None:
        """Stop dispatching and journal every live job as interrupted
        (non-terminal: the next boot re-enqueues them)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            for job in self.store.jobs.values():
                if not job.terminal:
                    self.store.set_status(job, "interrupted")
        self._executor.shutdown(wait=wait, cancel_futures=True)
