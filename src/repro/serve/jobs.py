"""Job model and the durable job journal.

A :class:`Job` is one submission to the service: one or many
:class:`~repro.api.Workload` points, a priority, an optional per-point
timeout, per-point result records, and a lifecycle status::

    queued -> running -> done | error | timeout | cancelled

The :class:`JobStore` persists the lifecycle as an append-only JSONL
journal (``jobs.jsonl``, living beside the sharded result store, same
single-``write()``-per-line discipline).  Only *transitions* are
journaled -- never results: results are content-addressed in the
:class:`~repro.sweep.cache.ResultCache`, so a restarted server rebuilds
every job from ``replay()`` and re-resolves its points through the
cache.  Finished points come back as cache hits, unfinished points are
re-enqueued -- nothing is lost and nothing simulates twice.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.workloads import Workload

__all__ = ["Job", "JobStore", "TERMINAL_STATUSES"]

#: Statuses a job never leaves.  ``interrupted`` is deliberately NOT
#: terminal: it only annotates what happened (a server died mid-job)
#: and the job is re-enqueued on the next boot.
TERMINAL_STATUSES = frozenset({"done", "error", "timeout", "cancelled"})


def new_job_id() -> str:
    return "job-" + uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submission: N workloads sharing a priority and timeout."""

    id: str
    workloads: list[Workload]
    priority: int = 10
    timeout: float | None = None
    created: float = field(default_factory=time.time)
    status: str = "queued"
    #: Per-point result records (wire schema of ``Result.to_dict()``
    #: under ``"result"``); ``None`` until the point resolves.
    results: list[dict | None] = field(default_factory=list)
    #: Monotonic progress/lifecycle event log for ``/events`` streaming.
    events: list[dict] = field(default_factory=list)
    finished: float | None = None

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.workloads)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def done_count(self) -> int:
        return sum(1 for r in self.results if r is not None)

    def add_event(self, event: str, **fields) -> None:
        self.events.append({"event": event, "ts": time.time(),
                            "job": self.id, **fields})

    def view(self, *, results: bool = True) -> dict:
        """JSON-ready job state for ``GET /v1/jobs/{id}``."""
        view = {
            "id": self.id,
            "status": self.status,
            "priority": self.priority,
            "timeout": self.timeout,
            "created": self.created,
            "finished": self.finished,
            "points": len(self.workloads),
            "done": self.done_count,
            "workloads": [w.canonical() for w in self.workloads],
        }
        if results:
            view["results"] = list(self.results)
        return view

    # -- journal (de)serialization ------------------------------------------

    def submit_record(self) -> dict:
        return {
            "op": "submit",
            "id": self.id,
            "workloads": [w.canonical() for w in self.workloads],
            "priority": self.priority,
            "timeout": self.timeout,
            "created": self.created,
        }

    @classmethod
    def from_submit_record(cls, record: dict) -> "Job":
        return cls(
            id=record["id"],
            workloads=[Workload.from_canonical(w)
                       for w in record["workloads"]],
            priority=int(record.get("priority", 10)),
            timeout=record.get("timeout"),
            created=float(record.get("created", 0.0)),
        )


class JobStore:
    """Append-only JSONL job journal with full-state replay.

    Two op shapes::

        {"op": "submit", "id": ..., "workloads": [...],
         "priority": ..., "timeout": ..., "created": ...}
        {"op": "status", "id": ..., "status": ..., "ts": ...}

    Appends are one ``write()`` of one ``\\n``-terminated line on an
    ``O_APPEND`` handle -- the same lock-free multi-writer discipline
    as the result store's shards, so a crash can at worst lose the
    final line, never corrupt an earlier one.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self.jobs: dict[str, Job] = {}

    # -- persistence --------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as sink:
                sink.write(line)

    def add(self, job: Job) -> None:
        """Register and journal a new submission."""
        self.jobs[job.id] = job
        self._append(job.submit_record())

    def set_status(self, job: Job, status: str) -> None:
        """Transition ``job`` and journal the transition."""
        job.status = status
        if status in TERMINAL_STATUSES:
            job.finished = time.time()
        self._append({"op": "status", "id": job.id, "status": status,
                      "ts": time.time()})

    # -- replay -------------------------------------------------------------

    def replay(self) -> list[Job]:
        """Rebuild all jobs from the journal; return the unfinished.

        Jobs whose last journaled status is non-terminal (``queued``,
        ``running``, or ``interrupted`` from a prior crash) are reset
        to ``queued`` and returned for re-enqueueing; their finished
        points will come straight back out of the result cache.
        Corrupt trailing lines (torn final write) are skipped.
        """
        self.jobs = {}
        if not self.path.exists():
            return []
        with open(self.path) as source:
            for raw in source:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # torn trailing write; ops are append-only
                op = record.get("op")
                if op == "submit":
                    try:
                        job = Job.from_submit_record(record)
                    except Exception:
                        continue  # unparseable workload: skip the job
                    self.jobs[job.id] = job
                elif op == "status":
                    job = self.jobs.get(record.get("id"))
                    if job is not None:
                        job.status = record.get("status", job.status)
        pending = []
        for job in self.jobs.values():
            if job.terminal:
                job.finished = job.finished or job.created
                continue
            job.status = "queued"
            job.results = [None] * len(job.workloads)
            job.add_event("requeued", reason="journal replay")
            pending.append(job)
        pending.sort(key=lambda j: (j.priority, j.created))
        return pending

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)
