"""Asyncio HTTP front end: stdlib-only framing over ``asyncio`` streams.

No web framework: requests are parsed straight off the stream reader
(request line, headers, ``Content-Length`` body) and every response
closes its connection, which keeps the server loop small enough to
audit.  Endpoints (all JSON, wire schema of results =
``Result.to_dict()``):

=====================================  ==================================
``POST /v1/jobs``                      submit one workload or a batch
``GET  /v1/jobs/{id}``                 job status + per-point results
``GET  /v1/jobs/{id}/events``          NDJSON progress stream
``POST /v1/jobs/{id}/cancel``          cooperative cancellation
``GET  /v1/healthz``                   liveness + version
``GET  /v1/metrics``                   obs registry + ``serve.*`` gauges
=====================================  ==================================

See ``docs/serve.md`` for the full API reference with curl examples.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.api.workloads import Workload
from repro.obs.metrics import METRICS
from repro.serve.scheduler import QueueFull, Scheduler

__all__ = ["ReproServer"]

_MAX_BODY = 8 * 1024 * 1024
#: Poll interval of the ``/events`` stream (the scheduler appends to
#: ``Job.events`` from executor threads; the stream tails the list).
_EVENT_POLL_SECONDS = 0.05


def _parse_workloads(body: dict) -> list[Workload]:
    """Accept ``{"workload": {...}}`` or ``{"workloads": [{...}]}``."""
    if "workload" in body:
        raw = [body["workload"]]
    elif "workloads" in body:
        raw = body["workloads"]
        if not isinstance(raw, list) or not raw:
            raise ValueError("'workloads' must be a non-empty list")
    else:
        raise ValueError("body needs 'workload' or 'workloads'")
    return [Workload.from_canonical(item) for item in raw]


class ReproServer:
    """One scheduler behind an asyncio TCP listener.

    ``prune_interval`` (seconds) arms a background task that calls
    :meth:`ResultCache.prune` with the given budgets, so long-running
    services do not grow their store unbounded.
    """

    def __init__(self, scheduler: Scheduler,
                 host: str = "127.0.0.1", port: int = 8023, *,
                 prune_interval: float | None = None,
                 prune_max_bytes: int | None = None,
                 prune_max_age_days: float | None = None,
                 ready_file: str | Path | None = None):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.prune_interval = prune_interval
        self.prune_max_bytes = prune_max_bytes
        self.prune_max_age_days = prune_max_age_days
        self.ready_file = Path(ready_file) if ready_file else None
        self._server: asyncio.AbstractServer | None = None
        self._pruner: asyncio.Task | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.prune_interval:
            self._pruner = asyncio.get_running_loop().create_task(
                self._prune_loop())
        if self.ready_file is not None:
            import os
            self.ready_file.write_text(json.dumps(
                {"host": self.host, "port": self.port,
                 "pid": os.getpid()}))

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._pruner is not None:
            self._pruner.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.scheduler.shutdown(wait=False)

    async def _prune_loop(self) -> None:
        while True:
            await asyncio.sleep(self.prune_interval)
            try:
                self.scheduler.session.cache.prune(
                    max_bytes=self.prune_max_bytes,
                    max_age_days=self.prune_max_age_days)
            except Exception:  # pragma: no cover - keep serving
                pass

    # -- request handling ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _ = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = min(int(value.strip()), _MAX_BODY)
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0].rstrip("/")
        if method == "GET" and path == "/v1/healthz":
            from repro import __version__
            return await self._json(writer, 200, {
                "ok": True, "version": __version__})
        if method == "GET" and path == "/v1/metrics":
            return await self._json(writer, 200, {
                "serve": self.scheduler.metrics(),
                "metrics": METRICS.snapshot()})
        if method == "POST" and path == "/v1/jobs":
            return await self._submit(body, writer)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method == "GET" and rest.endswith("/events"):
                return await self._events(rest[:-len("/events")]
                                          .rstrip("/"), writer)
            if method == "POST" and rest.endswith("/cancel"):
                return await self._cancel(rest[:-len("/cancel")]
                                          .rstrip("/"), writer)
            if method == "GET":
                return await self._job(rest, writer)
        await self._json(writer, 404, {"error": f"no route {method} "
                                                f"{path}"})

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
            workloads = _parse_workloads(payload)
            priority = int(payload.get("priority", 10))
            timeout = payload.get("timeout")
            timeout = float(timeout) if timeout is not None else None
        except (ValueError, TypeError, KeyError) as exc:
            return await self._json(writer, 400, {"error": str(exc)})
        try:
            job = self.scheduler.submit(workloads, priority=priority,
                                        timeout=timeout)
        except QueueFull as exc:
            return await self._json(writer, 429, {"error": str(exc)})
        except RuntimeError as exc:
            return await self._json(writer, 503, {"error": str(exc)})
        await self._json(writer, 201, job.view(results=job.terminal))

    async def _job(self, job_id: str,
                   writer: asyncio.StreamWriter) -> None:
        job = self.scheduler.store.get(job_id)
        if job is None:
            return await self._json(writer, 404,
                                    {"error": f"unknown job {job_id}"})
        await self._json(writer, 200, job.view())

    async def _cancel(self, job_id: str,
                      writer: asyncio.StreamWriter) -> None:
        job = self.scheduler.store.get(job_id)
        if job is None:
            return await self._json(writer, 404,
                                    {"error": f"unknown job {job_id}"})
        if job.terminal:
            return await self._json(writer, 409, {
                "error": f"job is already {job.status}",
                "id": job.id, "status": job.status})
        job = self.scheduler.cancel(job_id)
        await self._json(writer, 200,
                         {"id": job.id, "status": job.status})

    async def _events(self, job_id: str,
                      writer: asyncio.StreamWriter) -> None:
        job = self.scheduler.store.get(job_id)
        if job is None:
            return await self._json(writer, 404,
                                    {"error": f"unknown job {job_id}"})
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            # Job.events only ever appends; tail it by index.
            while sent < len(job.events):
                event = job.events[sent]
                sent += 1
                writer.write(json.dumps(event, sort_keys=True)
                             .encode() + b"\n")
            await writer.drain()
            if job.terminal and sent >= len(job.events):
                return
            await asyncio.sleep(_EVENT_POLL_SECONDS)

    @staticmethod
    async def _json(writer: asyncio.StreamWriter, status: int,
                    payload: dict) -> None:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 409: "Conflict",
                   429: "Too Many Requests",
                   503: "Service Unavailable"}
        body = json.dumps(payload, sort_keys=True).encode()
        writer.write(
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        await writer.drain()
