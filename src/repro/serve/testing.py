"""In-process server harness for tests and examples.

:class:`ServerThread` runs a full :class:`~repro.serve.http.
ReproServer` (scheduler, journal, listener on an OS-assigned port) on
a background event-loop thread, so a test can exercise the real wire
protocol without subprocess management.  Kill-and-restart durability
tests still need a real process -- see the CI serve-smoke script.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from repro.api.session import Session
from repro.serve.client import ServeClient
from repro.serve.http import ReproServer
from repro.serve.jobs import JobStore
from repro.serve.scheduler import Scheduler

__all__ = ["ServerThread"]


class ServerThread:
    """A live serve stack bound to ``127.0.0.1:<ephemeral port>``.

    Use as a context manager::

        with ServerThread(store_dir) as server:
            client = server.client()
            job = client.submit(workload("vecop", "baseline", n=16))
    """

    def __init__(self, store: str | Path, *, workers: int = 1,
                 timeout: float | None = None, max_queue: int = 1024,
                 engine: str | None = None):
        self.store = Path(store)
        self.session = Session(cache=str(self.store), workers=workers,
                               timeout=timeout, engine=engine)
        self.job_store = JobStore(self.store / "jobs.jsonl")
        pending = self.job_store.replay()
        self.scheduler = Scheduler(self.session, self.job_store,
                                   workers=workers, max_queue=max_queue)
        self.requeued = self.scheduler.resume(pending)
        self.server = ReproServer(self.scheduler, port=0)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.url, timeout=timeout)

    def start(self) -> "ServerThread":
        def run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="serve-test-server")
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
