"""repro.serve: simulation-as-a-service on top of :class:`Session`.

The serve layer turns the package's one front door into a long-running
async job service: submit :class:`~repro.api.Workload` JSON over HTTP,
get back the canonical :meth:`~repro.api.Result.to_dict` wire schema.
Three properties make it cheap at scale:

* **cache-first** -- any point already in the content-addressed result
  store is answered synchronously, without touching the pool;
* **coalescing** -- N concurrent submissions of one identical workload
  run exactly one simulation;
* **durable** -- the job journal (``jobs.jsonl``) plus the result
  store survive restarts: unfinished jobs are re-enqueued on boot and
  their finished points resolve as cache hits.

Run one with ``python -m repro serve --store .serve-store``; see
``docs/serve.md`` for the API reference.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.http import ReproServer
from repro.serve.jobs import TERMINAL_STATUSES, Job, JobStore
from repro.serve.scheduler import QueueFull, Scheduler

__all__ = [
    "Job",
    "JobStore",
    "QueueFull",
    "ReproServer",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "TERMINAL_STATUSES",
]
