"""Thin stdlib client for the serve API (tests, examples, scripts).

One :class:`ServeClient` per server; every method is one blocking
HTTP round trip via :mod:`urllib.request` -- no sessions, no retries,
no dependencies.  Workloads go over the wire in their
:meth:`~repro.api.Workload.canonical` form; results come back in the
:meth:`~repro.api.Result.to_dict` wire schema.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from repro.api.workloads import Workload
from repro.serve.jobs import TERMINAL_STATUSES

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """Non-2xx response; carries the HTTP status and server payload."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode())
            except (ValueError, OSError):
                payload = {"error": str(exc)}
            raise ServeError(exc.code, payload) from None

    # -- API ----------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(self, workloads: Workload | list[Workload], *,
               priority: int = 10,
               timeout: float | None = None) -> dict:
        """Submit one workload or a batch; returns the job view."""
        if isinstance(workloads, Workload):
            workloads = [workloads]
        body: dict = {"workloads": [w.canonical() for w in workloads],
                      "priority": priority}
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal status."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["status"] in TERMINAL_STATUSES:
                return view
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['status']} after "
                    f"{timeout}s")
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's NDJSON event log until it closes."""
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/events")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
