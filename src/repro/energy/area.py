"""Cluster area model and the chaining overhead estimate.

The paper reports that the chaining extension adds **<2% cell area** to
the implemented design (and negligible frequency degradation).  We model
the cluster's logic area in kilo-gate-equivalents (kGE) with figures in
the range published for Snitch-class clusters, and size the chaining
additions from their structure:

* the 32-bit mask CSR,
* one valid bit + FIFO push/pop control per FP register,
* the writeback backpressure handshake.

These are a few hundred gate equivalents against a multi-hundred-kGE
core complex, comfortably under the paper's 2% bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AreaModel:
    """Logic area breakdown in kGE (SRAM macros accounted separately)."""

    components_kge: dict[str, float] = field(default_factory=lambda: {
        "int_core": 22.0,          # Snitch integer core
        "fpu": 115.0,              # 64-bit FMA-capable FPU
        "fp_regfile": 18.0,        # 32 x 64b, multiported
        "fp_queue_sequencer": 14.0,  # FREP sequencer + FP queue
        "ssr_streamers": 27.0,     # 3 lanes incl. indirection support
        "lsu_interconnect": 30.0,  # LSUs + TCDM crossbar slice
    })
    #: SRAM macro area is reported separately; chaining adds none.
    tcdm_sram_kge_equiv: float = 560.0

    chaining_parts_kge: dict[str, float] = field(default_factory=lambda: {
        "chain_mask_csr": 0.25,        # 32-bit CSR + decode
        "valid_bits_and_control": 0.9,  # 32 valid bits, push/pop logic
        "writeback_backpressure": 0.45,  # stall handshake into the pipe
        "issue_rule_changes": 0.6,     # WAW elision / pop at issue
    })

    @property
    def core_complex_kge(self) -> float:
        """Logic area of the core complex, without SRAM macros."""
        return sum(self.components_kge.values())

    @property
    def cluster_kge(self) -> float:
        return self.core_complex_kge + self.tcdm_sram_kge_equiv

    @property
    def chaining_kge(self) -> float:
        return sum(self.chaining_parts_kge.values())

    @property
    def overhead_core_percent(self) -> float:
        """Chaining area as % of core-complex logic (the paper's basis)."""
        return 100.0 * self.chaining_kge / self.core_complex_kge

    @property
    def overhead_cluster_percent(self) -> float:
        """Chaining area as % of the whole cluster including TCDM."""
        return 100.0 * self.chaining_kge / self.cluster_kge

    def breakdown(self) -> dict[str, float]:
        out = dict(self.components_kge)
        out["tcdm_sram_equiv"] = self.tcdm_sram_kge_equiv
        out["chaining_extension"] = self.chaining_kge
        return out
