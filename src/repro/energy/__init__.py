"""Event-based energy/power and area models.

The paper's power numbers come from post-layout switching activity in
GF12LP+ at 0.8 V / 25 degC, which we cannot reproduce.  Instead, every
architectural event in the simulator (instruction issue, FPU operation,
register-file/FIFO access, TCDM access, streamer activity) is charged a
technology-plausible unit energy, plus a static per-cycle term.  Relative
power and energy-efficiency across code variants -- the quantities behind
the paper's claims -- are driven by the event *counts*, which the
simulator reproduces exactly.
"""

from repro.energy.model import EnergyModel, EnergyParams, EnergyReport
from repro.energy.area import AreaModel

__all__ = ["AreaModel", "EnergyModel", "EnergyParams", "EnergyReport"]
