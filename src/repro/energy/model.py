"""Event-energy model of the cluster.

Unit energies are rough GF12LP+ (0.8 V, typical corner) figures assembled
from the literature on Snitch-class clusters; they are deliberately simple
and fully documented so the calibration is auditable:

* the TCDM access energy includes SRAM macro, interconnect and bank
  controller -- it dominates data-movement energy and is the term whose
  avoidance (coefficient re-reads) produces the paper's 7% efficiency gain
  for Chaining over Base;
* chaining FIFO accesses tap existing pipeline registers plus a valid
  bit, so they are charged far less than a 32x64b register-file port --
  this is the second, smaller part of the energy story;
* a constant static+clock term anchors total power near the paper's
  ~60 mW at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CoreConfig


@dataclass
class EnergyParams:
    """Unit energies in picojoules (per event) and static power terms."""

    int_issue: float = 1.8          # integer instr fetch/decode/execute
    fp_dispatch: float = 0.8        # FP queue write+read
    fpu_op: dict[str, float] = field(default_factory=lambda: {
        "fpu_fp_add": 8.0,
        "fpu_fp_mul": 10.0,
        "fpu_fp_fma": 13.0,
        "fpu_fp_div": 25.0,
        "fpu_fp_sqrt": 30.0,
        "fpu_fp_cmp": 2.0,
        "fpu_fp_minmax": 2.0,
        "fpu_fp_sgnj": 1.5,
        "fpu_fp_cvt": 3.0,
    })
    fp_rf_read: float = 1.1         # 64b register-file read port
    fp_rf_write: float = 1.4
    chain_access: float = 0.3       # FIFO pop/push: pipe register + valid
    ssr_reg_access: float = 0.6     # stream FIFO read/write at reg port
    ssr_active_cycle: float = 0.5   # AGU + control per active lane cycle
    tcdm_read64: float = 16.0       # SRAM + interconnect, 64-bit
    tcdm_write64: float = 14.0
    tcdm_access32: float = 10.0     # 32-bit accesses (indices, int LSU)
    dma_per_byte: float = 0.9       # wide DMA transfers, per byte
    static_pj_per_cycle: float = 16.0   # leakage + clock tree @ 1 GHz
    # Multi-cluster (repro.system) terms: global-memory access energy is
    # charged per byte moved through the HBM-like interface (DRAM-class,
    # an order of magnitude above a TCDM access), plus a static term for
    # the shared uncore (interconnect + memory controller).
    gmem_per_byte: float = 10.0
    uncore_static_pj_per_cycle: float = 8.0


@dataclass
class EnergyReport:
    """Total energy, average power and the per-component breakdown."""

    total_pj: float
    cycles: int
    clock_hz: float
    breakdown: dict[str, float]

    @property
    def power_mw(self) -> float:
        """Average power in milliwatts."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / self.clock_hz
        return self.total_pj * 1e-12 / seconds * 1e3

    @property
    def pj_per_cycle(self) -> float:
        return self.total_pj / self.cycles if self.cycles else 0.0

    def fraction(self, component: str) -> float:
        return self.breakdown.get(component, 0.0) / self.total_pj \
            if self.total_pj else 0.0


class EnergyModel:
    """Charges unit energies against a finished cluster's event counts."""

    def __init__(self, cfg: CoreConfig | None = None,
                 params: EnergyParams | None = None):
        self.cfg = cfg or CoreConfig()
        self.params = params or EnergyParams()

    def report(self, cluster) -> EnergyReport:
        """Compute the energy report for a completed simulation."""
        p = self.params
        perf = cluster.perf
        cycles = perf.cycles
        breakdown: dict[str, float] = {}

        breakdown["int_core"] = perf.value("int_instrs") * p.int_issue
        breakdown["fp_dispatch"] = perf.value("fp_dispatches") * p.fp_dispatch

        fpu = 0.0
        for counter, unit in p.fpu_op.items():
            fpu += perf.value(counter) * unit
        breakdown["fpu"] = fpu

        breakdown["fp_rf"] = (perf.value("fp_rf_reads") * p.fp_rf_read
                              + perf.value("fp_rf_writes") * p.fp_rf_write)
        breakdown["chaining"] = (perf.value("chain_pops")
                                 + perf.value("chain_pushes")) \
            * p.chain_access
        breakdown["ssr_regs"] = (perf.value("ssr_reg_reads")
                                 + perf.value("ssr_reg_writes")) \
            * p.ssr_reg_access

        fps = getattr(cluster, "fps", None) or [cluster.fp]
        ssr_active = sum(s.active_cycles for fp in fps
                         for s in fp.streamers)
        breakdown["ssr_agu"] = ssr_active * p.ssr_active_cycle

        breakdown["tcdm"] = self._tcdm_energy(cluster)
        dma = getattr(cluster, "dma", None)
        breakdown["dma"] = (dma.bytes_moved if dma else 0) * p.dma_per_byte
        breakdown["static"] = cycles * p.static_pj_per_cycle

        total = sum(breakdown.values())
        return EnergyReport(total, cycles, self.cfg.clock_hz, breakdown)

    def system_report(self, system) -> EnergyReport:
        """Energy report for a completed multi-cluster system run.

        Per-cluster events are charged exactly as in :meth:`report`
        (each cluster's static term runs for its own cycle count), then
        the system-level terms are added: global-memory traffic and the
        uncore static power over the whole-system runtime.
        """
        p = self.params
        breakdown: dict[str, float] = {}
        for cluster in system.clusters:
            for component, energy in self.report(cluster) \
                    .breakdown.items():
                breakdown[component] = breakdown.get(component, 0.0) \
                    + energy
        cycles = max((cl.cycle for cl in system.clusters), default=0)
        breakdown["gmem"] = system.gmem.bytes_moved * p.gmem_per_byte
        breakdown["uncore_static"] = cycles * p.uncore_static_pj_per_cycle
        total = sum(breakdown.values())
        return EnergyReport(total, cycles, self.cfg.clock_hz, breakdown)

    def _tcdm_energy(self, cluster) -> float:
        p = self.params
        energy = 0.0
        for port in cluster.tcdm._ports:
            wide = not (port.name.endswith("_idx") or port.name == "core")
            if wide:
                energy += port.reads * p.tcdm_read64
                energy += port.writes * p.tcdm_write64
            else:
                energy += (port.reads + port.writes) * p.tcdm_access32
        return energy
