"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

* ``fig1``   -- the three vector-op variants of Fig. 1;
* ``fig3``   -- the full 2-kernel x 5-variant evaluation of Fig. 3;
* ``claims`` -- the section III geomean claims, paper vs. measured;
* ``run``    -- a single kernel/variant with full metrics;
* ``trace``  -- the Fig. 1c / Fig. 2 issue and dataflow traces;
* ``area``   -- the area-overhead estimate;
* ``sweep``  -- run an experiment campaign (preset or spec file) through
  the parallel, cached sweep engine;
* ``audit``  -- diff a campaign against the result store: coverage
  tables, gap classification (missing/error/timeout/stale), an
  executable backfill plan (``--backfill``/``--dry-run``), and store
  maintenance (``--verify-store``, ``--migrate-store``);
* ``calibrate`` -- cross-validate the closed-form analytical model
  against a cycle-accurate engine and emit the per-kernel-family
  error-bound report (``repro-calibration/v1``);
* ``profile`` -- run one kernel/variant under cProfile and print the
  top-N hotspot tables (cumulative + tottime), so perf work starts
  from data;
* ``serve``  -- the async simulation-as-a-service job layer
  (:mod:`repro.serve`): submit workloads over HTTP, cache-first with
  in-flight dedup, durable job journal (see ``docs/serve.md``);
* ``cache``  -- result-store maintenance (``cache prune``: LRU shard
  eviction with failure-log awareness);
* ``list``   -- available kernels, variants and sweep presets.

Every command is a thin shell over :mod:`repro.api`: arguments build a
:class:`~repro.api.Workload`, a :class:`~repro.api.Session` executes
it, and all machine-readable output (``--json PATH``, ``--csv PATH``)
emits the one canonical result schema
(:meth:`repro.api.Result.to_dict`).
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import json
import signal
import sys

import repro.obs as obs
from repro.api import (
    RESULT_METRICS,
    RESULT_SCALARS,
    CancelToken,
    Session,
    make_workload,
    normalize_variant,
)
from repro.core.cluster import Cluster
from repro.core.config import ENGINES
from repro.energy.area import AreaModel
from repro.eval.figures import (
    PAPER_CLAIMS,
    PAPER_FIG3_POWER_MW,
    PAPER_FIG3_UTILIZATION,
    claims_from_results,
    fig1_data,
    fig3_data,
)
from repro.eval.report import format_table
from repro.kernels.build import MARK_START
from repro.kernels.registry import kernel_names
from repro.kernels.variants import VARIANT_ORDER
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.sweep import (
    AUDIT_AXES,
    PRESETS,
    BackfillPlan,
    ResultCache,
    SweepSpec,
    preset_points,
    speedup_vs_baseline,
    summary_rows,
)
from repro.sweep.audit import DEFAULT_RETRY_BUDGET
from repro.trace import TraceRecorder, render_dataflow, render_issue_trace

#: stdout rounding of ``repro run`` (the pre-1.5 display precision).
_RUN_DISPLAY_DIGITS = {"fpu_utilization": 4, "power_mw": 2, "gflops": 3,
                       "gflops_per_watt": 3, "cycles_per_point": 3}

#: exit status for a cancelled/interrupted campaign (128 + SIGINT).
EXIT_INTERRUPTED = 130


@contextlib.contextmanager
def _graceful_signals(token: CancelToken):
    """Drain-then-abort signal handling around a campaign.

    The first SIGINT/SIGTERM trips ``token`` so the campaign stops
    dispatching and drains in flight points (results land in the
    cache, the failure log is flushed).  A second signal escalates to
    ``KeyboardInterrupt``, which the runner answers by terminating
    pool workers outright.  Handlers are restored on exit.
    """
    def handler(signum, frame):
        if token.cancelled:  # second signal: abort now
            raise KeyboardInterrupt
        token.cancel()
        print("\ninterrupt: draining in-flight points "
              "(^C again to abort)", file=sys.stderr, flush=True)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # non-main thread / platform
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _maybe_write_json(path: str | None, payload) -> None:
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)


def _parse_grid(args) -> tuple[int, int, int] | None:
    dims = (args.nz, args.ny, args.nx)
    if all(d is None for d in dims):
        return None
    if any(d is None for d in dims):
        raise SystemExit("--nz/--ny/--nx must be given together")
    return dims


def cmd_fig1(args) -> int:
    results = fig1_data(n=args.n)
    rows = [[name, res.fpu_utilization, res.region_cycles,
             res.meta["arch_accumulators"]]
            for name, res in results.items()]
    print(format_table(
        ["variant", "fpu util", "cycles", "arch accumulators"], rows,
        title=f"Fig. 1: a = b*(c+d), n={args.n}"))
    _maybe_write_json(args.json, {name: res.to_dict()
                                  for name, res in results.items()})
    return 0


def cmd_fig3(args) -> int:
    kernels = tuple(args.kernel) if args.kernel else ("box3d1r", "j3d27pt")
    try:
        results = fig3_data(kernels=kernels)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    rows = []
    for kernel in kernels:
        for variant in VARIANT_ORDER:
            res = results[kernel, variant.label]
            paper_util = PAPER_FIG3_UTILIZATION.get(kernel, {}).get(variant)
            paper_power = PAPER_FIG3_POWER_MW.get(kernel, {}).get(variant)
            rows.append([kernel, variant.label,
                         paper_util if paper_util is not None else "-",
                         round(res.fpu_utilization, 3),
                         paper_power if paper_power is not None else "-",
                         round(res.power_mw, 1)])
    print(format_table(
        ["kernel", "variant", "util(paper)", "util(ours)",
         "mW(paper)", "mW(ours)"],
        rows, title="Fig. 3: utilization and power"))
    _maybe_write_json(args.json, {
        f"{kernel}/{label}": res.to_dict()
        for (kernel, label), res in results.items()
    })
    return 0


def cmd_claims(args) -> int:
    results = fig3_data()
    claims = claims_from_results(results).as_dict()
    rows = [[key, PAPER_CLAIMS.get(key, "-"), round(value, 2)]
            for key, value in claims.items()]
    print(format_table(["claim", "paper", "measured"], rows,
                       title="Section III claims"))
    _maybe_write_json(args.json, claims)
    return 0


def cmd_run(args) -> int:
    grid = _parse_grid(args)
    if args.num_clusters < 1:
        raise SystemExit(f"--num-clusters must be >= 1, got "
                         f"{args.num_clusters}")
    if args.iters < 1:
        raise SystemExit(f"--iters must be >= 1, got {args.iters}")
    system = {}
    if (args.num_clusters > 1 or args.iters > 1
            or args.gmem_latency is not None
            or args.gmem_banks is not None
            or args.link_bytes is not None):
        system = {"num_clusters": args.num_clusters, "iters": args.iters}
        if args.gmem_latency is not None:
            system["gmem_latency"] = args.gmem_latency
        if args.gmem_banks is not None:
            system["gmem_banks"] = args.gmem_banks
        if args.link_bytes is not None:
            system["link_bytes_per_cycle"] = args.link_bytes
    session = Session()  # backend-default cycle budgets
    try:
        work = make_workload(args.kernel, args.variant, grid=grid,
                             system=system or None)
        result = session.run(work)
    except (ValueError, AssertionError) as exc:
        raise SystemExit(str(exc)) from None
    record = result.to_dict()
    # Display rounding only; --json keeps the full-fidelity schema.
    shown = dict(record, **{k: round(record[k], d) for k, d in
                            _RUN_DISPLAY_DIGITS.items()})
    width = 30 if system else 18
    for key in RESULT_SCALARS:
        print(f"{key:{width}s} {shown[key]}")
    print(f"{'stalls':{width}s} {record['stalls']}")
    if record["system"]:
        for key, value in record["system"].items():
            print(f"{key:{width}s} {value}")
    _maybe_write_json(args.json, record)
    return 0 if result.correct else 1


def cmd_trace(args) -> int:
    variant = VecopVariant(args.variant)
    build = build_vecop(n=args.n, variant=variant, loop_mode=args.loop)
    trace = TraceRecorder()
    cluster = Cluster(build.asm, trace=trace)
    build.load_into(cluster)
    cluster.run()
    start = cluster.perf.marks[MARK_START].cycle
    print(render_issue_trace(trace, start_cycle=start,
                             max_slots=args.slots, show_int=True))
    if variant is VecopVariant.CHAINING:
        print()
        print(render_dataflow(trace, chain_reg=3, start_cycle=start,
                              max_slots=args.slots))
    if args.perfetto:
        label = f"vecop/{variant.value} n={args.n}"
        path = obs.write_trace(args.perfetto,
                               obs.recorder_events(trace, label=label))
        print(f"\nwrote Perfetto trace ({len(trace.fp_events)} fp + "
              f"{len(trace.int_events)} int events): {path}")
    return 0


def cmd_area(args) -> int:
    model = AreaModel()
    rows = [[name, kge] for name, kge in model.breakdown().items()]
    print(format_table(["component", "kGE"], rows, title="Area model"))
    print(f"chaining overhead: {model.overhead_core_percent:.2f}% of core "
          f"complex (paper: <2%)")
    _maybe_write_json(args.json, {
        "breakdown_kge": model.breakdown(),
        "overhead_core_percent": model.overhead_core_percent,
    })
    return 0


def _campaign_points(args, what: str) -> tuple[str, str, list]:
    """Resolve ``--preset``/``--spec`` into ``(name, title, points)``
    (shared by ``sweep`` and ``audit``)."""
    if bool(args.preset) == bool(args.spec):
        raise SystemExit("pass exactly one of --preset or --spec")
    if args.preset:
        try:
            description, points = preset_points(args.preset)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        name = args.preset
        title = f"{what} preset {args.preset!r} ({description})"
    else:
        try:
            spec = SweepSpec.from_file(args.spec)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"bad spec {args.spec}: {exc}") from None
        points = spec.points()
        name = spec.name
        title = f"{what} {spec.name!r} from {args.spec}"
    if not points:
        raise SystemExit("spec expands to zero points")
    return name, title, points


def cmd_sweep(args) -> int:
    if args.metric not in RESULT_METRICS:
        raise SystemExit(
            f"unknown metric {args.metric!r}; choose from: "
            f"{', '.join(sorted(RESULT_METRICS))}")
    baseline = None
    if args.baseline:
        try:
            baseline = normalize_variant(args.baseline)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    _, title, points = _campaign_points(args, "sweep")
    points = _apply_system_axes(args, points)

    session = Session(
        cache=None if args.no_cache else args.cache_dir,
        workers=args.workers, timeout=args.timeout,
        engine=args.engine)

    meter = obs.ProgressMeter(total=len(points)) if args.progress else None

    def progress(outcome, done, total):
        if meter is not None:
            meter.update(outcome, done, total)
        elif not args.quiet:
            tag = "hit" if outcome.cached else outcome.status
            print(f"[{done:3d}/{total}] {tag:7s} {outcome.point.label}"
                  + (f" ({outcome.seconds:.2f}s)" if not outcome.cached
                     else ""))

    interest = None
    if any(v is not None for v in (args.interest_top, args.interest_min,
                                   args.interest_max)):
        if args.fidelity != "triage":
            raise SystemExit(
                "--interest-top/--interest-min/--interest-max require "
                "--fidelity triage")
        interest = {"metric": args.interest_metric}
        if args.interest_top is not None:
            interest["top"] = args.interest_top
        if args.interest_min is not None:
            interest["min"] = args.interest_min
        if args.interest_max is not None:
            interest["max"] = args.interest_max

    print(f"{title}: {len(points)} points, "
          + ("cache off" if args.no_cache else f"cache {args.cache_dir}")
          + (f", fidelity {args.fidelity}" if args.fidelity else ""))
    tracer = obs.enable(jsonl_dir=args.obs_out, keep_in_memory=False) \
        if args.obs_out else None
    token = CancelToken()
    with _graceful_signals(token):
        try:
            campaign = session.map(points, progress=progress,
                                   fidelity=args.fidelity,
                                   interest=interest, cancel=token)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        finally:
            if meter is not None:
                meter.close()
            if tracer is not None:
                trace_path = obs.export_dir(args.obs_out, tracer=tracer)
                obs.disable()

    if tracer is not None:
        metrics_path = _write_obs_metrics(args.obs_out, campaign)
        print(f"wrote {trace_path} and {metrics_path}")

    print()
    print(format_table(
        ["point", "status", "fpu util", "region cycles", "mW",
         "Gflop/s/W", "cache"],
        summary_rows(campaign), title=title))

    if baseline:
        table = speedup_vs_baseline(campaign, baseline,
                                    metric=args.metric)
        if table:
            rows = [[variant, round(entry["geomean"], 4),
                     round(entry["geomean_pct"], 2), len(entry["ratios"])]
                    for variant, entry in table.items()]
            print()
            print(format_table(
                ["variant", f"geomean {args.metric} ratio", "gain %",
                 "points"],
                rows, title=f"vs. baseline {baseline!r}"))
        else:
            print(f"\nno successful points matched baseline "
                  f"{baseline!r}; skipping comparison table")

    hits = campaign.cached_count
    simulated = len(campaign) - hits
    failed = len(campaign.failed)
    cancelled = campaign.cancelled_count
    print(f"\n{len(campaign)} points: {hits} cache hits "
          f"({100.0 * campaign.hit_rate:.0f}%), {simulated} simulated, "
          f"{failed} failed, wall {campaign.seconds:.2f}s"
          + (f", {cancelled} cancelled" if cancelled else "")
          + (" [interrupted]" if campaign.interrupted else ""))
    if campaign.triage is not None:
        t = campaign.triage
        print(f"triage: {t['estimated']} estimated analytically, "
              f"{t['selected']} re-run cycle-accurately")

    _maybe_write_json(args.json, {
        "title": title,
        "points": len(campaign),
        "cache_hits": hits,
        "cached_count": campaign.cached_count,
        "hit_rate": round(campaign.hit_rate, 4),
        "ok": campaign.ok_count,
        "errors": campaign.error_count,
        "timeouts": campaign.timeout_count,
        "failed": failed,
        "seconds": round(campaign.seconds, 3),
        "fidelity": args.fidelity,
        "triage": campaign.triage,
        "summary": campaign.summary(),
        "outcomes": [o.record() for o in campaign],
    })
    if args.csv:
        _write_sweep_csv(args.csv, campaign)
    if campaign.interrupted or cancelled:
        return EXIT_INTERRUPTED
    return 0 if not failed else 1


def cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve import JobStore, ReproServer, Scheduler

    session = Session(cache=args.store, workers=args.workers,
                      timeout=args.timeout, engine=args.engine)
    job_store = JobStore(Path(args.store) / "jobs.jsonl")
    pending = job_store.replay()
    scheduler = Scheduler(session, job_store, workers=args.workers,
                          max_queue=args.max_queue)
    requeued = scheduler.resume(pending)
    server = ReproServer(
        scheduler, host=args.host, port=args.port,
        prune_interval=args.prune_interval,
        prune_max_bytes=args.prune_max_bytes,
        prune_max_age_days=args.prune_max_age_days,
        ready_file=args.ready_file)

    async def run() -> None:
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(store {args.store}, {scheduler.workers} workers"
              + (f"; journal replay: {len(pending)} job(s), "
                 f"{requeued} point(s) re-enqueued" if pending else "")
              + ")", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("shutting down: journaling live jobs as interrupted",
              flush=True)
        await server.stop()

    asyncio.run(run())
    return 0


def cmd_cache_prune(args) -> int:
    if args.max_bytes is None and args.max_age_days is None:
        raise SystemExit("cache prune needs --max-bytes and/or "
                         "--max-age-days")
    cache = ResultCache(args.cache_dir)
    try:
        report = cache.prune(max_bytes=args.max_bytes,
                             max_age_days=args.max_age_days,
                             dry_run=args.dry_run)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{cache.root}: {verb} {len(report['evicted_shards'])} "
          f"shard(s), {report['evicted_records']} record(s), "
          f"{report['evicted_bytes']} bytes "
          f"(dropped {report['dropped_failures']} superseded "
          f"failure record(s)); keeping {report['kept_shards']} "
          f"shard(s), {report['kept_bytes']} bytes")
    _maybe_write_json(args.json, report)
    return 0


def cmd_calibrate(args) -> int:
    from repro.analytical.calibrate import (
        DEFAULT_FLOOR,
        DEFAULT_SAFETY,
        calibrate,
    )

    points = None
    title = "calibrate: built-in cross-validation spec"
    if args.preset or args.spec:
        _, title, points = _campaign_points(args, "calibrate")
    print(f"{title} (reference engine: {args.engine})")
    report = calibrate(
        points, engine=args.engine,
        cache=None if args.no_cache else args.cache_dir,
        workers=args.workers, timeout=args.timeout,
        include_linalg=not args.no_linalg,
        safety=args.safety if args.safety is not None else DEFAULT_SAFETY,
        floor=args.floor if args.floor is not None else DEFAULT_FLOOR)
    rows = [[fam, fit.points,
             round(fit.scale_cycles, 4),
             f"{100 * fit.max_rel_err_cycles:.2f}%",
             f"{100 * fit.bound_cycles:.2f}%",
             round(fit.scale_energy, 4),
             f"{100 * fit.bound_energy:.2f}%"]
            for fam, fit in sorted(report.families.items())]
    print()
    print(format_table(
        ["family", "points", "cycle scale", "cycle resid", "cycle bound",
         "energy scale", "energy bound"],
        rows, title=f"calibration ({report.schema})"))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.out}")
    _maybe_write_json(args.json, report.to_dict())
    return 0


def _write_obs_metrics(obs_dir, campaign):
    """Dump the campaign summary plus the parent-process metric
    snapshot next to the merged trace."""
    from pathlib import Path

    path = Path(obs_dir) / "metrics.json"
    payload = {
        "campaign": campaign.summary(),
        "metrics": obs.METRICS.snapshot(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def _apply_system_axes(args, points):
    """Merge CLI-level multi-cluster axes into every stencil point."""
    axes = {}
    if args.num_clusters is not None:
        axes["num_clusters"] = args.num_clusters
    if args.iters is not None:
        axes["iters"] = args.iters
    if args.gmem_latency is not None:
        axes["gmem_latency"] = args.gmem_latency
    if args.link_bytes is not None:
        axes["link_bytes_per_cycle"] = args.link_bytes
    if not axes:
        return points
    merged_points = []
    for point in points:
        if point.is_vecop:
            merged_points.append(point)
            continue
        merged = dict(point.system)
        merged.update(axes)
        try:
            merged_points.append(make_workload(
                point.kernel, point.variant, grid=point.grid,
                unroll=point.unroll,
                overrides=dict(point.overrides) or None,
                system=merged))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    return merged_points


#: Workload-identity columns of the sweep CSV; the metric columns are
#: the one result schema's scalars, minus only the build ``name``
#: (redundant with the identity columns).
CSV_IDENTITY = ("kernel", "variant", "grid", "n", "loop_mode", "unroll",
                "overrides", "system", "status", "cached", "seconds")
CSV_METRICS = tuple(k for k in RESULT_SCALARS if k != "name")


def _write_sweep_csv(path: str, campaign) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*CSV_IDENTITY, *CSV_METRICS])
        for outcome in campaign:
            point = outcome.point
            record = outcome.result.to_dict() if outcome.result else None
            writer.writerow([
                point.kernel, point.variant,
                "x".join(map(str, point.grid)) if point.grid else "",
                point.n if point.n is not None else "",
                point.loop_mode or "",
                point.unroll if point.unroll is not None else "",
                ";".join(f"{k}={v}" for k, v in point.overrides),
                ";".join(f"{k}={v}" for k, v in point.system),
                outcome.status, int(outcome.cached),
                round(outcome.seconds, 4),
                *([record[k] for k in CSV_METRICS] if record
                  else [""] * len(CSV_METRICS)),
            ])


#: Columns of the ``repro audit --csv`` per-point classification.
AUDIT_CSV_HEADER = ("label", "kernel", "variant", "engine",
                    "num_clusters", "key", "status", "detail", "attempts")


def _write_audit_csv(path: str, audit) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(AUDIT_CSV_HEADER)
        for entry in audit:
            point = entry.point
            writer.writerow([
                point.label, point.kernel, point.variant,
                point.engine or audit.engine, point.num_clusters,
                entry.key, entry.status, entry.detail or "",
                entry.attempts,
            ])


def _print_audit(title: str, audit, quiet: bool) -> None:
    print(f"{title}: {audit.total} points, coverage "
          f"{100.0 * audit.coverage:.1f}% ({audit.ok_count} ok)")
    gap_counts = ", ".join(f"{cls} {n}" for cls, n in
                           audit.counts().items()
                           if cls != "ok" and n)
    if gap_counts:
        print(f"gaps: {gap_counts}")
    if audit.corrupt_lines:
        print(f"corrupt store lines skipped: {audit.corrupt_lines} "
              f"(see --verify-store)")
    print()
    rows = [[axis, value, row["ok"], row["total"],
             f"{100.0 * row['coverage']:.1f}%"]
            for axis in AUDIT_AXES
            for value, row in audit.by_axis(axis).items()]
    print(format_table(["axis", "value", "ok", "total", "coverage"],
                       rows, title="coverage by axis"))
    if audit.gaps and not quiet:
        print()
        shown = audit.gaps[:25]
        for entry in shown:
            extra = f" [{entry.detail}]" if entry.detail else ""
            attempt = f" attempts={entry.attempts}" if entry.attempts \
                else ""
            print(f"  {entry.status:14s} {entry.point.label}"
                  f"{attempt}{extra}")
        if len(audit.gaps) > len(shown):
            print(f"  ... {len(audit.gaps) - len(shown)} more "
                  f"(--json/--csv for the full gap report)")


def _print_verify(cache_dir: str, report: dict) -> None:
    print(f"store {cache_dir}: {report['records']} record(s) in "
          f"{report['files']} file(s), {report['failure_records']} "
          f"failure record(s)")
    for bucket in ("corrupt", "invalid", "conflicts", "orphans",
                   "duplicates"):
        entries = report[bucket]
        if entries:
            print(f"  {bucket}: {len(entries)}")
            for entry in entries[:10]:
                print(f"    {entry}")
    print("store integrity: " + ("ok" if report["ok"] else "FAILED"))


def cmd_audit(args) -> int:
    store_only = (args.verify_store or args.migrate_store) and \
        not (args.preset or args.spec)
    cache = ResultCache(args.cache_dir)
    store_ok = True

    if args.migrate_store:
        stats = cache.migrate()
        print(f"migrated {stats['migrated']} record(s) into "
              f"{stats['shards']} shard file(s) under "
              f"{cache.shards_dir} (one-way)")
        if stats["corrupt_lines"]:
            print(f"warning: {stats['corrupt_lines']} malformed "
                  f"line(s) skipped, not migrated")

    verify_report = None
    if args.verify_store:
        verify_report = cache.verify()
        _print_verify(args.cache_dir, verify_report)
        store_ok = verify_report["ok"]

    if store_only:
        _maybe_write_json(args.json, {"verify": verify_report})
        return 0 if store_ok else 1

    name, title, points = _campaign_points(args, "audit")
    session = Session(cache=cache, workers=args.workers,
                      timeout=args.timeout, engine=args.engine)
    audit = session.audit(points, name=name)
    _print_audit(title, audit, args.quiet)

    payload = audit.to_dict()
    if verify_report is not None:
        payload["verify"] = verify_report
    exit_ok = audit.complete and store_ok

    if args.backfill or args.dry_run:
        plan = BackfillPlan(audit, retry_budget=args.retry_budget)
        payload["backfill"] = plan.to_dict()
        if args.dry_run:
            print()
            print(plan.describe())
        else:
            def progress(outcome, done, total):
                if not args.quiet:
                    tag = "hit" if outcome.cached else outcome.status
                    print(f"[{done:3d}/{total}] {tag:7s} "
                          f"{outcome.point.label}")

            print(f"\nbackfilling {len(plan)} point(s) "
                  f"({len(plan.abandoned)} abandoned, retry budget "
                  f"{plan.retry_budget})")
            campaign = plan.execute(session, progress=progress)
            payload["backfill"]["executed"] = campaign.summary()
            post = session.audit(points, name=name)
            payload["post"] = post.to_dict()
            print(f"\nafter backfill: coverage "
                  f"{100.0 * post.coverage:.1f}% "
                  f"({post.ok_count}/{post.total} ok)")
            exit_ok = post.complete and not plan.abandoned and store_ok

    _maybe_write_json(args.json, payload)
    if args.csv:
        _write_audit_csv(args.csv, audit)
    return 0 if exit_ok else 1


def cmd_profile(args) -> int:
    """Run one kernel/variant under cProfile and print hotspot tables."""
    import cProfile
    import io
    import pstats

    grid = _parse_grid(args)
    session = Session(engine=args.engine)
    try:
        work = make_workload(args.kernel, args.variant, grid=grid)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    engine = session.resolve(work).engine

    profiler = cProfile.Profile()
    profiler.enable()
    result = session.run(work)
    profiler.disable()

    print(f"{args.kernel}/{work.variant} engine={engine}: "
          f"{result.cycles} cycles, correct={result.correct}")
    for sort in ("cumulative", "tottime"):
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats(sort).print_stats(args.top)
        print(f"\n== top {args.top} by {sort} ==")
        # Drop the pstats preamble: keep the header line and the rows.
        lines = buf.getvalue().splitlines()
        start = next((i for i, line in enumerate(lines)
                      if line.lstrip().startswith("ncalls")), 0)
        print("\n".join(lines[start:]).rstrip())
    return 0


def cmd_list(args) -> int:
    print("kernels: " + ", ".join(kernel_names()))
    print("variants: " + ", ".join(v.label for v in VARIANT_ORDER))
    print("vecop variants: " + ", ".join(v.value for v in VecopVariant))
    print("sweep presets: " + ", ".join(sorted(PRESETS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalar-chaining reproduction harness (DATE 2025 LBR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Fig. 1 vector-op variants")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--json")
    p.set_defaults(func=cmd_fig1)

    p = sub.add_parser("fig3", help="Fig. 3 utilization + power")
    p.add_argument("--kernel", action="append",
                   help="restrict to one or more kernels")
    p.add_argument("--json")
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("claims", help="section III geomean claims")
    p.add_argument("--json")
    p.set_defaults(func=cmd_claims)

    p = sub.add_parser("run", help="run one kernel/variant")
    p.add_argument("--kernel", default="box3d1r")
    p.add_argument("--variant", default="Chaining+")
    p.add_argument("--nz", type=int)
    p.add_argument("--ny", type=int)
    p.add_argument("--nx", type=int)
    p.add_argument("--num-clusters", type=int, default=1,
                   help="run on a multi-cluster system with this many "
                        "clusters (domain-decomposed halo exchange)")
    p.add_argument("--iters", type=int, default=1,
                   help="halo-exchange sweeps (system runs)")
    p.add_argument("--gmem-latency", type=int, default=None,
                   help="global-memory access latency in cycles")
    p.add_argument("--gmem-banks", type=int, default=None,
                   help="global-memory bank count (bandwidth scale)")
    p.add_argument("--link-bytes", type=int, default=None,
                   help="per-cluster interconnect link bytes/cycle")
    p.add_argument("--json")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("trace", help="Fig. 1c / Fig. 2 traces")
    p.add_argument("--variant", default="chaining",
                   choices=[v.value for v in VecopVariant])
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--loop", default="bne", choices=["bne", "frep"])
    p.add_argument("--slots", type=int, default=24)
    p.add_argument("--perfetto", metavar="PATH",
                   help="also write the issue trace as Chrome "
                        "trace-event JSON (open at ui.perfetto.dev)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("area", help="area-overhead estimate")
    p.add_argument("--json")
    p.set_defaults(func=cmd_area)

    p = sub.add_parser("sweep", help="run an experiment campaign")
    p.add_argument("--preset", help="named campaign: "
                   + ", ".join(sorted(PRESETS)))
    p.add_argument("--spec", help="JSON/TOML sweep spec file")
    p.add_argument("--cache-dir", default=".sweep-cache",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate every point")
    p.add_argument("--workers", type=int, default=None,
                   help="process count (default: all cores; 0/1: serial)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock budget in seconds")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine for every point (bit-identical "
                        "results; 'fast' vectorizes eligible FREP/SSR "
                        "regions, 'scalar-v2' is the pre-decoded "
                        "micro-op engine, 'scalar' is the cycle-by-cycle "
                        "reference, 'auto' composes fast + scalar-v2, "
                        "default: config's own choice); "
                        "part of the result-cache key")
    p.add_argument("--num-clusters", type=int, default=None,
                   help="run every stencil point on this many clusters "
                        "(adds the system axes to labels + cache keys)")
    p.add_argument("--iters", type=int, default=None,
                   help="halo-exchange sweeps for multi-cluster points")
    p.add_argument("--gmem-latency", type=int, default=None,
                   help="global-memory access latency override")
    p.add_argument("--link-bytes", type=int, default=None,
                   help="per-cluster interconnect link bytes/cycle")
    p.add_argument("--baseline",
                   help="variant label for geomean-vs-baseline table")
    p.add_argument("--metric", default="region_cycles",
                   help="metric for the baseline comparison")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    p.add_argument("--progress", action="store_true",
                   help="single-line live meter on stderr (done/total, "
                        "rate, ETA, cache hit-rate) instead of "
                        "per-point lines")
    p.add_argument("--obs-out", metavar="DIR",
                   help="enable telemetry for the campaign and write "
                        "DIR/trace.json (Perfetto) + DIR/metrics.json")
    p.add_argument("--fidelity", choices=["cycle", "analytical", "triage"],
                   default=None,
                   help="execution tier: 'analytical' estimates every "
                        "point in closed form (microseconds/point), "
                        "'triage' estimates everything and re-runs only "
                        "the interest region cycle-accurately, 'cycle' "
                        "(default) simulates everything")
    p.add_argument("--interest-metric", default="cycles",
                   help="triage interest metric (default: cycles)")
    p.add_argument("--interest-top", type=float, default=None,
                   help="triage: re-run the top FRACTION of points by "
                        "the interest metric (default 0.25)")
    p.add_argument("--interest-min", type=float, default=None,
                   help="triage: re-run points with metric >= MIN")
    p.add_argument("--interest-max", type=float, default=None,
                   help="triage: re-run points with metric <= MAX")
    p.add_argument("--json")
    p.add_argument("--csv")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("serve",
                       help="run the async simulation-as-a-service job "
                            "layer (HTTP; see docs/serve.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="bind port (0: OS-assigned; default 8023)")
    p.add_argument("--store", default=".serve-store",
                   help="result store + job journal directory "
                        "(default .serve-store)")
    p.add_argument("--workers", type=int, default=None,
                   help="simulation pool width (default: all cores)")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="pending-point queue bound; submissions beyond "
                        "it get HTTP 429 (default 1024)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-point wall-clock budget in seconds "
                        "(a job's own timeout wins)")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine for every served point "
                        "(cache-key ingredient)")
    p.add_argument("--prune-interval", type=float, default=None,
                   help="seconds between store prunes (default: never)")
    p.add_argument("--prune-max-bytes", type=int, default=None,
                   help="shard-byte budget for the periodic prune")
    p.add_argument("--prune-max-age-days", type=float, default=None,
                   help="shard-age horizon for the periodic prune")
    p.add_argument("--ready-file", metavar="PATH",
                   help="write {host, port, pid} JSON here once "
                        "listening (for scripts and CI)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cache",
                       help="result-store maintenance (prune)")
    cache_sub = p.add_subparsers(dest="cache_cmd", required=True)
    p = cache_sub.add_parser(
        "prune", help="evict cold shards, LRU by shard mtime "
                      "(failure-log aware)")
    p.add_argument("--cache-dir", default=".sweep-cache",
                   help="result store to prune (default .sweep-cache)")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="evict oldest shards until the rest fit")
    p.add_argument("--max-age-days", type=float, default=None,
                   help="evict shards untouched for longer than this")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be evicted; touch nothing")
    p.add_argument("--json")
    p.set_defaults(func=cmd_cache_prune)

    p = sub.add_parser("calibrate",
                       help="cross-validate the analytical model against "
                            "a cycle-accurate engine and fit per-family "
                            "error bounds (repro-calibration/v1)")
    p.add_argument("--preset", help="named campaign: "
                   + ", ".join(sorted(PRESETS)))
    p.add_argument("--spec", help="JSON/TOML sweep spec file (default: "
                                  "the built-in cross-validation spec)")
    p.add_argument("--cache-dir", default=".sweep-cache",
                   help="result cache for the cycle-accurate runs")
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate every point")
    p.add_argument("--workers", type=int, default=None,
                   help="process count (default: all cores; 0/1: serial)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock budget in seconds")
    p.add_argument("--engine",
                   choices=[e for e in ENGINES if e != "analytical"],
                   default="auto",
                   help="cycle-accurate reference engine (default auto)")
    p.add_argument("--safety", type=float, default=None,
                   help="error-bound margin over the worst residual "
                        "(default 2.0)")
    p.add_argument("--floor", type=float, default=None,
                   help="minimum advertised error bound (default 0.05)")
    p.add_argument("--no-linalg", action="store_true",
                   help="skip the linalg cross-validation builds")
    p.add_argument("--out", metavar="PATH",
                   help="write the calibration report JSON here")
    p.add_argument("--json")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("audit",
                       help="campaign coverage, gap report and backfill "
                            "against the result store")
    p.add_argument("--preset", help="named campaign: "
                   + ", ".join(sorted(PRESETS)))
    p.add_argument("--spec", help="JSON/TOML sweep spec file")
    p.add_argument("--cache-dir", default=".sweep-cache",
                   help="result store to audit (default .sweep-cache)")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="campaign engine context (cache-key ingredient; "
                        "must match the sweep being audited)")
    p.add_argument("--workers", type=int, default=None,
                   help="process count for --backfill execution")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock budget for --backfill")
    p.add_argument("--backfill", action="store_true",
                   help="execute the plan: simulate exactly the gaps "
                        "(missing, stale re-keys, budgeted retries)")
    p.add_argument("--dry-run", action="store_true",
                   help="print the backfill plan without executing")
    p.add_argument("--retry-budget", type=int,
                   default=DEFAULT_RETRY_BUDGET,
                   help="max cumulative attempts for failed points "
                        f"(default {DEFAULT_RETRY_BUDGET})")
    p.add_argument("--verify-store", action="store_true",
                   help="re-parse every store record against the result "
                        "schema; report corrupt/duplicate/orphan lines")
    p.add_argument("--migrate-store", action="store_true",
                   help="move flat results.jsonl records into the "
                        "sharded layout (one-way)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-gap and per-point lines")
    p.add_argument("--json")
    p.add_argument("--csv")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("profile",
                       help="cProfile one kernel/variant, print hotspots")
    p.add_argument("--kernel", default="j3d27pt")
    p.add_argument("--variant", default="Chaining+")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine to profile (default: auto)")
    p.add_argument("--top", type=int, default=15,
                   help="rows per hotspot table")
    p.add_argument("--nz", type=int)
    p.add_argument("--ny", type=int)
    p.add_argument("--nx", type=int)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("list", help="available kernels and variants")
    p.set_defaults(func=cmd_list)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("\naborted", file=sys.stderr, flush=True)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
