"""repro: scalar chaining for RISC-V in-order cores.

A cycle-level, hazard-faithful reproduction of

    "Late Breaking Results: A RISC-V ISA Extension for Chaining in Scalar
    Processors" (Colagrande, Jonnalagadda, Benini -- DATE 2025).

Quick start::

    from repro import Cluster, build_vecop, run_build, VecopVariant

    build = build_vecop(n=256, variant=VecopVariant.CHAINING)
    result = run_build(build)
    print(result.fpu_utilization, result.power_mw)

Package map:

* :mod:`repro.isa`     -- RV32IM + F/D + Xssr/Xfrep/Xchain, assembler
* :mod:`repro.core`    -- the Snitch-like core and the chaining extension
* :mod:`repro.ssr`     -- stream semantic registers (affine + indirect)
* :mod:`repro.mem`     -- banked TCDM model
* :mod:`repro.kernels` -- Fig. 1 vecop and SARIS-style stencil generators
* :mod:`repro.energy`  -- event-based energy/power and area models
* :mod:`repro.eval`    -- run harness and figure regeneration
* :mod:`repro.sweep`   -- experiment campaigns: declarative sweeps,
  parallel execution, content-addressed result caching, aggregation
* :mod:`repro.system`  -- multi-cluster scale-out: shared global
  memory, inter-cluster DMA arbitration, system barrier, and the
  halo-exchange domain decomposition in :mod:`repro.kernels.partition`
* :mod:`repro.trace`   -- issue traces (Fig. 1c) and dataflow (Fig. 2)
"""

from repro.core import ChainController, Cluster, CoreConfig, SystemConfig
from repro.energy import AreaModel, EnergyModel, EnergyParams
from repro.eval import RunResult, geomean, run_build, run_stencil_variant
from repro.eval.system_runner import run_system_stencil
from repro.isa import assemble, decode, disassemble, encode
from repro.kernels import (
    Grid3d,
    KernelBuild,
    StencilSpec,
    Variant,
    VecopVariant,
    box3d1r,
    build_stencil,
    build_vecop,
    j3d27pt,
    star3d1r,
)
from repro.kernels.partition import build_partitioned_stencil
from repro.system import GLOBAL_BASE, System
from repro.sweep import (
    Campaign,
    Point,
    ResultCache,
    SweepRunner,
    SweepSpec,
    make_point,
)
from repro.trace import TraceRecorder, render_dataflow, render_issue_trace

__version__ = "1.4.0"

__all__ = [
    "AreaModel",
    "Campaign",
    "ChainController",
    "Cluster",
    "CoreConfig",
    "EnergyModel",
    "EnergyParams",
    "GLOBAL_BASE",
    "Grid3d",
    "KernelBuild",
    "Point",
    "ResultCache",
    "RunResult",
    "StencilSpec",
    "SweepRunner",
    "SweepSpec",
    "System",
    "SystemConfig",
    "TraceRecorder",
    "Variant",
    "VecopVariant",
    "__version__",
    "assemble",
    "box3d1r",
    "build_partitioned_stencil",
    "build_stencil",
    "build_vecop",
    "decode",
    "disassemble",
    "encode",
    "geomean",
    "j3d27pt",
    "make_point",
    "render_dataflow",
    "render_issue_trace",
    "run_build",
    "run_stencil_variant",
    "run_system_stencil",
    "star3d1r",
]
