"""repro: scalar chaining for RISC-V in-order cores.

A cycle-level, hazard-faithful reproduction of

    "Late Breaking Results: A RISC-V ISA Extension for Chaining in Scalar
    Processors" (Colagrande, Jonnalagadda, Benini -- DATE 2025).

Quick start (the unified API: one Workload in, one Result out)::

    from repro import Session, workload

    session = Session(cache=".sweep-cache")
    result = session.run(workload("j3d27pt", "Chaining+"))
    print(result.fpu_utilization, result.power_mw, result.gflops_per_watt)

    # many workloads, process-parallel, content-addressed caching:
    campaign = session.map(
        [workload("box3d1r", "Chaining+", num_clusters=n, iters=2,
                  grid=(4, 4, 8)) for n in (1, 2, 4)],
        parallel=True)
    for outcome in campaign.ok:
        print(outcome.point.label, outcome.result.to_dict()["gflops"])

Package map:

* :mod:`repro.api`     -- the unified Workload/Session/Result front door
* :mod:`repro.isa`     -- RV32IM + F/D + Xssr/Xfrep/Xchain, assembler
* :mod:`repro.core`    -- the Snitch-like core and the chaining extension
* :mod:`repro.ssr`     -- stream semantic registers (affine + indirect)
* :mod:`repro.mem`     -- banked TCDM model
* :mod:`repro.kernels` -- Fig. 1 vecop and SARIS-style stencil generators
* :mod:`repro.energy`  -- event-based energy/power and area models
* :mod:`repro.eval`    -- execution backends and figure regeneration
* :mod:`repro.sweep`   -- experiment campaigns: declarative sweeps,
  parallel execution, content-addressed result caching, aggregation
* :mod:`repro.system`  -- multi-cluster scale-out: shared global
  memory, inter-cluster DMA arbitration, system barrier, and the
  halo-exchange domain decomposition in :mod:`repro.kernels.partition`
* :mod:`repro.trace`   -- issue traces (Fig. 1c) and dataflow (Fig. 2)
* :mod:`repro.obs`     -- opt-in telemetry: spans, metrics, and
  Perfetto timeline export (``docs/observability.md``)
"""

from repro import obs
from repro.api import (
    Result,
    Session,
    SystemReport,
    Workload,
    make_workload,
    workload,
)
from repro.api.workloads import deprecated_point_alias as \
    _deprecated_point_alias
from repro.core import ChainController, Cluster, CoreConfig, SystemConfig
from repro.energy import AreaModel, EnergyModel, EnergyParams
from repro.eval import RunResult, geomean, run_build, run_stencil_variant
from repro.eval.system_runner import run_system_stencil
from repro.isa import assemble, decode, disassemble, encode
from repro.kernels import (
    Grid3d,
    KernelBuild,
    StencilSpec,
    Variant,
    VecopVariant,
    box3d1r,
    build_stencil,
    build_vecop,
    j3d27pt,
    star3d1r,
)
from repro.kernels.partition import build_partitioned_stencil
from repro.system import GLOBAL_BASE, System
from repro.sweep import (
    Campaign,
    ResultCache,
    SweepRunner,
    SweepSpec,
    make_point,
)
from repro.trace import TraceRecorder, render_dataflow, render_issue_trace

__version__ = "1.9.0"

__all__ = [
    "AreaModel",
    "Campaign",
    "ChainController",
    "Cluster",
    "CoreConfig",
    "EnergyModel",
    "EnergyParams",
    "GLOBAL_BASE",
    "Grid3d",
    "KernelBuild",
    "Result",
    "ResultCache",
    "RunResult",
    "Session",
    "StencilSpec",
    "SweepRunner",
    "SweepSpec",
    "System",
    "SystemConfig",
    "SystemReport",
    "TraceRecorder",
    "Variant",
    "VecopVariant",
    "Workload",
    "__version__",
    "assemble",
    "box3d1r",
    "build_partitioned_stencil",
    "build_stencil",
    "build_vecop",
    "decode",
    "disassemble",
    "encode",
    "geomean",
    "j3d27pt",
    "make_point",
    "make_workload",
    "obs",
    "render_dataflow",
    "render_issue_trace",
    "run_build",
    "run_stencil_variant",
    "run_system_stencil",
    "star3d1r",
    "workload",
]


def __getattr__(name: str):
    # "Point" is deliberately NOT in __all__: a star import must not
    # fire the deprecation warning for users who never touch it.
    if name == "Point":
        return _deprecated_point_alias("repro.Point")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
