"""Tiered fidelity: the closed-form ``"analytical"`` engine.

* :mod:`repro.analytical.model` -- per-kernel-family cycle/energy
  estimators behind the unchanged Workload/Session/Result surface
  (``engine="analytical"``);
* :mod:`repro.analytical.calibrate` -- the cross-validation harness:
  run both backends over a spec, fit per-family correction factors,
  emit a ``repro-calibration/v1`` report with error bounds;
* :mod:`repro.analytical.triage` -- ``Session.map(fidelity="triage")``
  support: estimate everything, simulate only the interest region.
"""

from repro.analytical.calibrate import (
    CALIBRATION_SCHEMA,
    CalibrationReport,
    FamilyFit,
    calibrate,
    calibration_builds,
    calibration_workloads,
)
from repro.analytical.model import (
    ANALYTICAL_ENGINE,
    FAMILIES,
    FIDELITY_ANALYTICAL,
    FIDELITY_KEY,
    estimate_build,
    estimate_workload,
    kernel_family,
)
from repro.analytical.triage import TriagePlan, select_interest

__all__ = [
    "ANALYTICAL_ENGINE",
    "CALIBRATION_SCHEMA",
    "CalibrationReport",
    "FAMILIES",
    "FIDELITY_ANALYTICAL",
    "FIDELITY_KEY",
    "FamilyFit",
    "TriagePlan",
    "calibrate",
    "calibration_builds",
    "calibration_workloads",
    "estimate_build",
    "estimate_workload",
    "kernel_family",
    "select_interest",
]
