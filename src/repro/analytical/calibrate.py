"""Cross-validation harness: fit the analytical model per family.

:func:`calibrate` runs the same points through both fidelities -- the
cycle-accurate engines via :meth:`Session.map` (so results land in the
session cache under their ordinary keys) and the closed-form estimators
in-process -- then fits one multiplicative correction per kernel family
(the geometric mean of ``actual / estimate``) for cycles and energy
separately, and turns the post-scale residuals into the per-family
relative-error *bounds* the differential suite and the docs advertise:

    ``bound = max(floor, safety * max_residual_error)``

The report (``repro-calibration/v1``) is a plain, deterministic JSON
document -- no wall-clock fields -- so its schema is golden-pinned in
``tests/data/calibration_golden.json``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analytical.model import (
    estimate_build,
    estimate_workload,
    kernel_family,
)
from repro.api.result import Result
from repro.api.workloads import Workload, workload
from repro.core.config import CoreConfig

#: Fixed schema identifier of the calibration report.
CALIBRATION_SCHEMA = "repro-calibration/v1"

#: Error-bound safety margin over the worst observed residual.
DEFAULT_SAFETY = 2.0

#: Error-bound floor: bounds are never advertised tighter than this.
DEFAULT_FLOOR = 0.05


def _round(value: float) -> float:
    return round(float(value), 6)


@dataclass
class FamilyFit:
    """Fitted correction + residual error bound for one kernel family."""

    family: str
    points: int
    scale_cycles: float = 1.0
    scale_energy: float = 1.0
    max_rel_err_cycles: float = 0.0
    max_rel_err_energy: float = 0.0
    bound_cycles: float = DEFAULT_FLOOR
    bound_energy: float = DEFAULT_FLOOR

    def to_dict(self) -> dict:
        return {
            "points": self.points,
            "scale_cycles": _round(self.scale_cycles),
            "scale_energy": _round(self.scale_energy),
            "max_rel_err_cycles": _round(self.max_rel_err_cycles),
            "max_rel_err_energy": _round(self.max_rel_err_energy),
            "bound_cycles": _round(self.bound_cycles),
            "bound_energy": _round(self.bound_energy),
        }

    @classmethod
    def from_dict(cls, family: str, data: dict) -> "FamilyFit":
        return cls(family=family, **{k: data[k] for k in (
            "points", "scale_cycles", "scale_energy",
            "max_rel_err_cycles", "max_rel_err_energy",
            "bound_cycles", "bound_energy")})


@dataclass
class CalibrationReport:
    """Per-family fits plus provenance; serializes deterministically."""

    version: str
    engine: str
    families: dict[str, FamilyFit] = field(default_factory=dict)
    schema: str = CALIBRATION_SCHEMA

    def bound(self, family: str, metric: str = "cycles") -> float:
        """Advertised relative-error bound (the documented guarantee)."""
        fit = self.families.get(family)
        if fit is None:
            return DEFAULT_FLOOR
        return fit.bound_cycles if metric == "cycles" \
            else fit.bound_energy

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "version": self.version,
            "engine": self.engine,
            "families": {name: self.families[name].to_dict()
                         for name in sorted(self.families)},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationReport":
        if data.get("schema") != CALIBRATION_SCHEMA:
            raise ValueError(
                f"not a {CALIBRATION_SCHEMA} report: schema is "
                f"{data.get('schema')!r}")
        return cls(
            version=data["version"],
            engine=data["engine"],
            families={name: FamilyFit.from_dict(name, fit)
                      for name, fit in data["families"].items()},
            schema=data["schema"],
        )


def calibration_workloads(include_systems: bool = True) -> list[Workload]:
    """The default cross-validation spec: every family, small shapes.

    Deliberately modest -- tens of points, each fast under the auto
    engine -- so calibration is something one reruns after touching
    either the model or the simulator, not an overnight job.
    """
    points = [
        workload("vecop", "baseline", n=64, loop_mode="frep"),
        workload("vecop", "baseline", n=64, loop_mode="bne"),
        workload("vecop", "unrolled", n=64, loop_mode="frep"),
        workload("vecop", "unrolled", n=64, loop_mode="bne"),
        workload("vecop", "chaining", n=64, loop_mode="frep"),
        workload("vecop", "chaining", n=64, loop_mode="bne"),
        workload("j2d5pt", "Chaining", grid=(1, 8, 32)),
        workload("j2d5pt", "Base-", grid=(1, 8, 32)),
        workload("box2d1r", "Base--", grid=(1, 8, 32)),
        workload("box2d1r", "Base", grid=(1, 8, 32)),
        workload("star3d1r", "Chaining", grid=(2, 4, 16)),
        workload("j3d27pt", "Chaining", grid=(2, 4, 16)),
    ]
    if include_systems:
        points += [
            workload("star3d1r", "Chaining", grid=(8, 4, 16),
                     num_clusters=2, iters=2),
            workload("box3d1r", "Base-", grid=(8, 4, 16),
                     num_clusters=4, iters=1),
        ]
    return points


def calibration_builds(cfg: CoreConfig | None = None) -> list:
    """Linalg cross-validation builds (linalg has no Workload axis)."""
    from repro.kernels.linalg import LinalgVariant, build_axpy, \
        build_cdot, build_dot, build_gemv

    return [
        build_axpy(n=64, cfg=cfg),
        build_dot(n=64, variant=LinalgVariant.CHAINING, cfg=cfg),
        build_dot(n=64, variant=LinalgVariant.BASELINE, cfg=cfg),
        build_gemv(rows=8, n=32, variant=LinalgVariant.CHAINING, cfg=cfg),
        build_cdot(n=32, cfg=cfg),
    ]


def _geomean(ratios: list[float]) -> float:
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def _fit_family(family: str, pairs: list[tuple[Result, Result]],
                safety: float, floor: float) -> FamilyFit:
    """One family's scale + residual bound from (estimate, actual)."""
    cyc = [(e.cycles, a.cycles) for e, a in pairs]
    nrg = [(e.energy.total_pj, a.energy.total_pj) for e, a in pairs]
    fit = FamilyFit(family=family, points=len(pairs))
    for metric, samples in (("cycles", cyc), ("energy", nrg)):
        scale = _geomean([a / e for e, a in samples if e > 0])
        err = max((abs(e * scale - a) / a for e, a in samples if a > 0),
                  default=0.0)
        setattr(fit, f"scale_{metric}", scale)
        setattr(fit, f"max_rel_err_{metric}", err)
        setattr(fit, f"bound_{metric}", max(floor, safety * err))
    return fit


def calibrate(points: Iterable[Workload] | None = None, *,
              cfg: CoreConfig | None = None,
              engine: str = "auto",
              cache=None,
              workers: int | None = 1,
              timeout: float | None = None,
              include_linalg: bool = True,
              safety: float = DEFAULT_SAFETY,
              floor: float = DEFAULT_FLOOR,
              version: str | None = None,
              progress: Callable | None = None) -> CalibrationReport:
    """Run both fidelities over ``points`` and fit per-family corrections.

    Cycle-accurate results come from a :class:`~repro.api.session.
    Session` (so a ``cache`` makes re-calibration incremental);
    estimates are computed in-process and never cached.  ``version``
    defaults to the package version -- pass a fixed string for
    reproducible reports (the golden test does).
    """
    from repro.api.session import Session
    from repro.sweep.cache import package_version

    works = list(points) if points is not None else calibration_workloads()
    session = Session(cfg, cache=cache, workers=workers,
                      timeout=timeout, engine=engine)
    campaign = session.map(works, progress=progress)
    pairs: dict[str, list[tuple[Result, Result]]] = {}
    for out in campaign.outcomes:
        if out.status != "ok" or out.result is None:
            continue
        est = estimate_workload(out.point, base_cfg=cfg)
        pairs.setdefault(kernel_family(out.point), []) \
            .append((est, out.result))
    if include_linalg:
        from repro.eval.runner import execute_build

        for build in calibration_builds(cfg):
            actual = execute_build(build, cfg=cfg)
            est = estimate_build(build, cfg=cfg)
            pairs.setdefault("linalg", []).append((est, actual))
    report = CalibrationReport(
        version=version if version is not None else package_version(),
        engine=engine)
    for family in sorted(pairs):
        report.families[family] = _fit_family(family, pairs[family],
                                              safety, floor)
    return report
