"""Interest-region selection for ``Session.map(fidelity="triage")``.

Triage estimates every point analytically (microseconds, in-process,
no cache writes) and re-runs only the *interest region* through the
cycle-accurate engines.  The interest spec is either

* a callable ``interest(workload, estimate) -> bool``, or
* a dict with a ``"metric"`` (any numeric :class:`Result` attribute or
  ``meta`` entry; default ``"cycles"``) plus a threshold:
  ``{"top": 0.25}`` keeps the top quartile, ``{"min": lo}`` /
  ``{"max": hi}`` keep points whose metric falls inside the bounds, or
* ``None`` -- the default ``{"metric": "cycles", "top": 0.25}``.

``top`` always selects at least one point, so a triage campaign never
silently skips simulation altogether.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api.result import Result
from repro.api.workloads import Workload

#: Default interest region: the slowest quartile by estimated cycles.
DEFAULT_INTEREST = {"metric": "cycles", "top": 0.25}


def _metric_value(result: Result, metric: str) -> float:
    value = getattr(result, metric, None)
    if value is None:
        value = result.meta.get(metric)
    if value is None and metric == "energy_pj":
        value = result.energy.total_pj
    if not isinstance(value, (int, float)):
        raise ValueError(
            f"interest metric {metric!r} is not a numeric Result "
            f"attribute or meta entry")
    return float(value)


@dataclass
class TriagePlan:
    """Which points of a triage campaign get cycle-accurate re-runs.

    Indices refer to positions in the original workload sequence, so
    the merged campaign preserves point order.
    """

    workloads: Sequence[Workload]
    estimates: Sequence[Result | None]
    selected: list[int] = field(default_factory=list)
    #: Indices whose *estimate* failed (bad shapes fail identically at
    #: either fidelity, so these always go to the simulator for the
    #: authoritative error).
    failed: list[int] = field(default_factory=list)

    @property
    def estimated_count(self) -> int:
        return sum(1 for e in self.estimates if e is not None)

    def counts(self) -> dict:
        """The ``Campaign.triage`` payload."""
        return {
            "points": len(self.workloads),
            "estimated": self.estimated_count,
            "selected": len(self.selected) + len(self.failed),
        }


def select_interest(workloads: Sequence[Workload],
                    estimates: Sequence[Result | None],
                    interest: Callable | dict | None = None) -> TriagePlan:
    """Partition a triage campaign into estimate-only and re-run sets."""
    plan = TriagePlan(workloads=workloads, estimates=estimates)
    scored: list[tuple[int, Result]] = []
    for i, est in enumerate(estimates):
        if est is None:
            plan.failed.append(i)
        else:
            scored.append((i, est))
    if callable(interest):
        plan.selected = [i for i, est in scored if interest(workloads[i],
                                                           est)]
        return plan
    spec = dict(DEFAULT_INTEREST if interest is None else interest)
    metric = str(spec.pop("metric", "cycles"))
    top = spec.pop("top", None)
    lo = spec.pop("min", None)
    hi = spec.pop("max", None)
    if spec:
        raise ValueError(
            f"unknown interest key(s) {sorted(spec)}; expected "
            f"'metric' plus 'top' or 'min'/'max'")
    if top is not None and (lo is not None or hi is not None):
        raise ValueError("interest takes either 'top' or 'min'/'max', "
                         "not both")
    values = [(i, _metric_value(est, metric)) for i, est in scored]
    if top is not None:
        frac = float(top)
        if not 0.0 < frac <= 1.0:
            raise ValueError(f"interest 'top' must be in (0, 1], got "
                             f"{frac}")
        keep = max(1, math.ceil(frac * len(values))) if values else 0
        ranked = sorted(values, key=lambda iv: (-iv[1], iv[0]))
        plan.selected = sorted(i for i, _ in ranked[:keep])
    else:
        if lo is None and hi is None:
            raise ValueError(
                "interest dict needs a threshold: 'top' or 'min'/'max'")
        plan.selected = [
            i for i, v in values
            if (lo is None or v >= lo) and (hi is None or v <= hi)]
    return plan
