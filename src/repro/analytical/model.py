"""Closed-form cycle/energy estimation: the ``"analytical"`` engine.

Every kernel family the repo simulates has a steady-state issue
structure that the cycle-accurate engines merely confirm; this module
promotes that arithmetic to a first-class backend.  An estimate costs
microseconds instead of seconds and returns the same
:class:`~repro.api.result.Result` schema as the simulators -- with
``meta["fidelity"] = "analytical"`` so a cached estimate can never
masquerade as a cycle-accurate record.

Model per kernel family (see ``docs/fidelity.md`` for the derivations):

* **vecop** -- the paper's Fig. 1 arithmetic: ``2 + latency`` cycles per
  element for the dependency-stalled baseline, 2 per element once
  unrolling or chaining fills the pipeline; the ``bne`` loop adds the
  integer-side overhead not hidden under the FP schedule.
* **stencil** -- issue-slot accounting: each unrolled block costs its FP
  issue slots (``ntaps * unroll`` compute ops + explicit stores + spill
  reloads from the register plan) plus the loop-integer overhead, with
  per-row SSR re-arm and per-plane bookkeeping terms on top.
* **system** -- per-sweep phase model of the z-slab halo exchange: a
  latency+bandwidth DMA term for the slab+halo load and the
  plane-by-plane interior store (equal-share interconnect contention
  across clusters), the tile's stencil estimate for compute, and a
  barrier term between sweeps; the slowest cluster paces each sweep.
* **linalg** -- per-build schedules of axpy/dot/gemv/cdot: streamed
  fmadd throughput plus the reduction drain (``fmv`` pops and a
  latency-bound add chain).

Energy is synthesized from the same event counts the estimators imply
(FP ops, SSR/TCDM traffic, DMA/global-memory bytes, static leakage)
charged at :class:`~repro.energy.model.EnergyParams` unit energies.

Raw estimates deliberately favor transparency over tuning; the
calibration harness (:mod:`repro.analytical.calibrate`) fits one
multiplicative correction per family and reports the residual error
bound the differential suite enforces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.api.result import Result, SystemReport
from repro.api.workloads import Workload
from repro.core.config import CoreConfig, SystemConfig
from repro.energy.model import EnergyParams, EnergyReport
from repro.isa.instructions import InstrClass
from repro.kernels.layout import DOUBLE, Grid3d
from repro.kernels.partition import split_slabs
from repro.kernels.regalloc import plan_registers
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant

#: Value stamped into ``Result.meta["fidelity"]`` by every estimate.
FIDELITY_ANALYTICAL = "analytical"

#: ``meta`` key carrying the fidelity marker.
FIDELITY_KEY = "fidelity"

#: The engine name the estimator answers to.
ANALYTICAL_ENGINE = "analytical"

#: Calibration families: every workload/build maps to exactly one.
FAMILIES = ("vecop", "stencil", "system", "linalg")

#: Kernel names of :mod:`repro.kernels.linalg` builds.
LINALG_KERNELS = ("axpy", "dot", "gemv", "cdot")


def kernel_family(work) -> str:
    """Calibration family of a :class:`Workload` or kernel build.

    ``vecop`` and the linalg builds are their own families; stencil
    workloads split into single-cluster ``stencil`` and multi-cluster
    ``system`` (whose DMA/barrier terms dominate differently).
    """
    if isinstance(work, Workload):
        if work.is_vecop:
            return "vecop"
        return "system" if work.is_system else "stencil"
    meta = getattr(work, "meta", {}) or {}
    kernel = meta.get("kernel")
    if kernel == "vecop":
        return "vecop"
    if kernel in LINALG_KERNELS:
        return "linalg"
    if "num_clusters" in meta:
        return "system"
    return "stencil"


@dataclass
class _Estimate:
    """Accumulator for one estimate: cycle terms + energy events."""

    setup: float = 0.0
    region: float = 0.0
    end: float = 0.0
    flops: int = 0
    points: int = 0
    utilization: float = 0.0
    #: Energy event counts, keyed like the simulator's perf counters.
    events: dict[str, float] = field(default_factory=dict)
    #: Model terms exposed in ``meta["model"]`` for auditability.
    terms: dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return int(round(self.setup + self.region + self.end))

    def add(self, event: str, count: float) -> None:
        self.events[event] = self.events.get(event, 0.0) + count


def _resolve_calibration(calibration, family: str) -> tuple[float, float]:
    """``(cycle scale, energy scale)`` for ``family`` (1.0 when absent)."""
    if calibration is None:
        return 1.0, 1.0
    families = getattr(calibration, "families", calibration)
    fit = families.get(family) if hasattr(families, "get") else None
    if fit is None:
        return 1.0, 1.0
    if isinstance(fit, dict):
        return (float(fit.get("scale_cycles", 1.0)),
                float(fit.get("scale_energy", 1.0)))
    return (float(getattr(fit, "scale_cycles", 1.0)),
            float(getattr(fit, "scale_energy", 1.0)))


def _add_len(amount: int) -> int:
    """Instructions of :func:`~repro.kernels.stencil_codegen._emit_add`."""
    if amount == 0:
        return 0
    return 1 if -2048 <= amount < 2048 else 2


def _ssr_setup_instrs(ndims: int, indirect: bool = False) -> int:
    """``emit_setup`` length: 3 instrs per scfgw field write."""
    writes = 2 * ndims + 1 + (2 if indirect else 0)
    return 3 * writes


def _ssr_arm_instrs(base_reg: bool = False) -> int:
    """``emit_arm``: BASE write (2 instrs from a register, 3 from a
    literal) plus the 3-instr CTRL commit."""
    return (2 if base_reg else 3) + 3


def _fp_latency(cfg: CoreConfig) -> int:
    return cfg.fpu_latency_of(InstrClass.FP_ADD)


# -- vecop ---------------------------------------------------------------------


def _estimate_vecop(variant: VecopVariant, n: int, loop_mode: str,
                    cfg: CoreConfig) -> _Estimate:
    depth = cfg.fpu_pipe_depth
    lat = _fp_latency(cfg)
    unroll = 1 if variant is VecopVariant.BASELINE else depth + 1
    if variant is not VecopVariant.BASELINE and n % unroll:
        raise ValueError(f"n={n} must be a multiple of {unroll}")
    if loop_mode not in ("bne", "frep"):
        raise ValueError(f"loop_mode must be 'bne' or 'frep', got "
                         f"{loop_mode!r}")
    iters = n // unroll

    est = _Estimate(flops=2 * n, points=n)
    # Steady state: the baseline pays the RAW dependency (issue fadd,
    # stall ``lat``, issue fmul); unrolled/chaining issue one FP op per
    # cycle.
    fp_per_iter = (2 + lat) if variant is VecopVariant.BASELINE \
        else 2 * unroll
    est.region = fp_per_iter * iters
    if loop_mode == "bne":
        # The integer core issues 2*unroll dispatches plus addi/bne and
        # the taken-branch penalty per iteration; only the part not
        # hidden under the FP schedule shows up as extra cycles.
        int_per_iter = 2 * unroll + 2 + cfg.branch_penalty
        est.region += max(0, int_per_iter - fp_per_iter) * iters
        est.region += 2                      # li t3 / li t4
    else:
        est.region += 2                      # li t2 / frep.o
    est.region += lat + 4                    # FP drain + sync CSR read
    # Prologue: 3 single-dim streams, scalar load, CSR dance.
    est.setup = 3 * (_ssr_setup_instrs(1) + _ssr_arm_instrs()) + 8
    est.end = 4
    est.utilization = min(1.0, 2 * n / est.region) if est.region else 0.0

    est.add("int_instrs", est.setup + est.end
            + (2 * iters + 2 if loop_mode == "bne" else 2))
    est.add("fp_dispatches", 2 * n + 1)
    est.add("fpu_fp_add", n)
    est.add("fpu_fp_mul", n)
    if variant is VecopVariant.CHAINING:
        est.add("chain", 2 * n)
        est.add("fp_rf_reads", n)            # fa0 per fmul
    else:
        est.add("fp_rf_reads", 2 * n)        # acc + fa0 per fmul
        est.add("fp_rf_writes", n)
    est.add("ssr_reads", 2 * n)
    est.add("ssr_writes", n)
    est.add("tcdm_read64", 2 * n)
    est.add("tcdm_write64", n)
    est.add("ssr_active", 3 * est.region)
    est.terms = {"fp_per_iter": fp_per_iter, "iters": iters,
                 "unroll": unroll}
    return est


# -- stencil (single cluster) --------------------------------------------------


def _estimate_stencil_tile(spec, grid: Grid3d, variant: Variant,
                           unroll: int, cfg: CoreConfig) -> _Estimate:
    """Setup + compute-region estimate of one (tile) stencil kernel.

    Mirrors :func:`~repro.kernels.stencil_codegen._emit_compute`: the
    same validation, the same register plan, the same loop nest -- with
    issue-slot counts in place of simulation.
    """
    if grid.radius < spec.radius:
        raise ValueError(f"grid radius {grid.radius} < stencil radius "
                         f"{spec.radius}")
    if grid.nx % unroll:
        raise ValueError(f"nx={grid.nx} not a multiple of unroll={unroll}")
    plan = plan_registers(variant, spec.ntaps, unroll, cfg.fpu_pipe_depth)

    lat = _fp_latency(cfg)
    nbx = grid.nx // unroll
    blocks = nbx * grid.ny * grid.nz
    rows = grid.ny * grid.nz
    spills = len(plan.spilled_taps)
    store = not variant.writeback_via_ssr
    ntaps = spec.ntaps

    # Per block: every FP instruction costs one issue slot (compute ops,
    # spill reloads, explicit stores), plus the x-loop integer overhead.
    slots = ntaps * unroll + spills + (unroll if store else 0)
    int_oh = 2 + cfg.branch_penalty + (1 if store else 0)

    # Per row: SSR re-arm from a register, counter reset, pointer bumps,
    # y-loop bookkeeping.
    row_bytes = grid.row_bytes
    row_oh = _ssr_arm_instrs(base_reg=True) + 1 \
        + _add_len(row_bytes) \
        + (_add_len(row_bytes - grid.nx * DOUBLE) if store else 0) \
        + 2 + cfg.branch_penalty
    plane_skip = grid.plane_bytes - grid.ny * row_bytes
    plane_oh = 1 + _add_len(plane_skip) \
        + (_add_len(plane_skip) if store else 0) \
        + 2 + cfg.branch_penalty

    est = _Estimate(flops=spec.flops_per_point * grid.points,
                    points=grid.points)
    est.region = blocks * (slots + int_oh) + rows * row_oh \
        + grid.nz * plane_oh + lat + 6

    setup = 1 + plan.resident_coeffs                      # li s8 + flds
    setup += _ssr_setup_instrs(1, indirect=True)          # input stream
    if variant.coeffs_via_ssr:
        setup += _ssr_setup_instrs(2) + _ssr_arm_instrs()
    if variant.writeback_via_ssr:
        setup += _ssr_setup_instrs(3) + _ssr_arm_instrs()
    if plan.chain_mask:
        setup += 1
    setup += 1 + 5 + (1 if store else 0) + 1   # enable, pointers, mark
    est.setup = setup
    est.end = 4
    compute_ops = ntaps * unroll * blocks
    est.utilization = min(1.0, compute_ops / est.region) \
        if est.region else 0.0

    est.add("int_instrs", est.setup + est.end
            + blocks * int_oh + rows * row_oh + grid.nz * plane_oh)
    est.add("fp_dispatches", slots * blocks + plan.resident_coeffs)
    est.add("fpu_fp_mul", unroll * blocks)
    est.add("fpu_fp_fma", (ntaps - 1) * unroll * blocks)
    if variant.uses_chaining:
        est.add("chain", 2 * compute_ops)
        est.add("fp_rf_reads", compute_ops)               # coefficients
    else:
        resident_reads = (ntaps - spills) * unroll * blocks \
            if not variant.coeffs_via_ssr else 0
        est.add("fp_rf_reads", resident_reads
                + (ntaps - 1) * unroll * blocks
                + (unroll * blocks if store else 0))
        est.add("fp_rf_writes", compute_ops + spills * blocks)
    est.add("ssr_reads", compute_ops
            + (compute_ops if variant.coeffs_via_ssr else 0))
    est.add("ssr_writes", 0 if store else grid.points)
    est.add("tcdm_read64", compute_ops + spills * blocks
            + (ntaps * blocks if variant.coeffs_via_ssr else 0))
    est.add("tcdm_write64", grid.points)
    est.add("tcdm_access32", compute_ops)                 # index fetches
    lanes = 1 + (1 if (variant.coeffs_via_ssr
                       or variant.writeback_via_ssr) else 0)
    est.add("ssr_active", lanes * est.region)
    est.terms = {"blocks": blocks, "slots": slots, "int_oh": int_oh,
                 "row_oh": row_oh, "plane_oh": plane_oh,
                 "spills": spills}
    return est


# -- system (multi-cluster halo exchange) --------------------------------------


def _estimate_system(spec, grid: Grid3d, variant: Variant, unroll: int,
                     sys_cfg: SystemConfig, iters: int) -> _Estimate:
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    cfg = sys_cfg.core
    num_clusters = sys_cfg.num_clusters
    slabs = split_slabs(grid.nz, num_clusters)
    total_bytes = grid.total_bytes
    if 2 * total_bytes > sys_cfg.gmem_size:
        raise ValueError(
            f"two padded {grid.shape_padded} grids need "
            f"{2 * total_bytes} bytes of global memory; configured "
            f"gmem_size={sys_cfg.gmem_size}")
    r = grid.radius
    lat = max(1, sys_cfg.gmem_latency)
    # Equal-share contention: during the DMA phases every cluster moves
    # global-memory bytes concurrently.
    share = sys_cfg.gmem_bytes_per_cycle // num_clusters \
        if num_clusters > 1 else sys_cfg.gmem_bytes_per_cycle
    bw = min(cfg.dma_bytes_per_cycle, sys_cfg.link_bytes_per_cycle,
             max(8, share))

    est = _Estimate(flops=spec.flops_per_point * grid.points * iters,
                    points=grid.points)
    sweep_max = 0.0
    compute_ops_total = 0.0
    halo_total = 0
    interior_total = 0
    tile_cycles_max = 0
    for _, tz in slabs:
        tile = Grid3d(tz, grid.ny, grid.nx, r)
        tile_est = _estimate_stencil_tile(spec, tile, variant, unroll,
                                          cfg)
        halo_bytes = (tz + 2 * r) * grid.plane_bytes
        interior_bytes = tz * grid.ny * grid.nx * DOUBLE
        halo_total += halo_bytes
        interior_total += interior_bytes
        t_load = 8 + lat + math.ceil(halo_bytes / bw) + 4
        t_comp = tile_est.setup + tile_est.region + tile_est.end
        # Store: one 2-D transfer per interior plane, each paying the
        # access latency; the per-transfer setup instructions overlap
        # with the DMA except at the batch-poll boundaries.
        t_store = max(6 * tz, tz * (lat + 1)
                      + math.ceil(interior_bytes / bw)) + 10
        sweep_max = max(sweep_max, t_load + t_comp + t_store)
        tile_cycles_max = max(tile_cycles_max, tile_est.cycles)
        compute_ops_total += spec.ntaps * tile.points
        for event, count in tile_est.events.items():
            est.add(event, count * iters)

    barrier_oh = 12.0
    est.setup = 10
    est.region = iters * sweep_max + (iters - 1) * barrier_oh
    est.end = 5
    cycles = est.cycles
    est.utilization = min(1.0, compute_ops_total * iters
                          / (num_clusters * cycles)) if cycles else 0.0

    est.add("dma_bytes", iters * (halo_total + interior_total))
    est.add("gmem_bytes", iters * (halo_total + interior_total))
    busy = iters * (math.ceil(max((tz + 2 * r) for _, tz in slabs)
                              * grid.plane_bytes / bw)
                    + math.ceil(max(tz for _, tz in slabs)
                                * grid.ny * grid.nx * DOUBLE / bw))
    est.terms = {
        "num_clusters": num_clusters,
        "iters": iters,
        "bw_bytes_per_cycle": bw,
        "sweep_cycles": sweep_max,
        "tile_cycles_max": tile_cycles_max,
        "halo_bytes_per_sweep": halo_total,
        "interior_bytes_per_sweep": interior_total,
        "interconnect_busy": busy,
        "transfers_per_sweep": num_clusters + grid.nz,
    }
    return est


def _system_report(est: _Estimate, iters: int) -> SystemReport:
    t = est.terms
    num_clusters = int(t["num_clusters"])
    cycles = est.cycles
    lat_cycles = int(t["transfers_per_sweep"]) * iters
    busy = int(t["interconnect_busy"])
    return SystemReport(
        num_clusters=num_clusters,
        iters=iters,
        per_cluster_cycles=[cycles] * num_clusters,
        sys_barriers=max(0, iters - 1),
        gmem_bytes_read=int(t["halo_bytes_per_sweep"]) * iters,
        gmem_bytes_written=int(t["interior_bytes_per_sweep"]) * iters,
        gmem_latency_cycles=lat_cycles,
        interconnect_busy_cycles=busy,
        interconnect_contended_cycles=busy if num_clusters > 1 else 0,
    )


# -- linalg builds -------------------------------------------------------------


def _reduction_drain(lanes: int, lat: int, chaining: bool) -> float:
    """Drain of the dot/gemv schedule: ``fmv`` pops (chaining only) plus
    the latency-bound left-to-right add chain."""
    return (lanes if chaining else 0) + (lanes - 1) * (1 + lat)


def _estimate_linalg(meta: dict, cfg: CoreConfig) -> _Estimate:
    kernel = meta["kernel"]
    lat = _fp_latency(cfg)
    lanes = cfg.fpu_pipe_depth + 1
    chaining = meta.get("variant", "chaining") == "chaining"
    n = int(meta.get("n", 0))

    if kernel == "axpy":
        est = _Estimate(flops=2 * n, points=n)
        est.region = n + 2 + lat + 4
        est.setup = 3 * (_ssr_setup_instrs(1) + _ssr_arm_instrs()) + 6
        est.add("fpu_fp_fma", n)
        est.add("fp_dispatches", n)
        est.add("tcdm_read64", 2 * n)
        est.add("tcdm_write64", n)
        est.add("ssr_reads", 2 * n)
        est.add("ssr_writes", n)
    elif kernel == "dot":
        if n % lanes:
            raise ValueError(f"n={n} must be a multiple of {lanes}")
        est = _Estimate(flops=2 * n, points=n)
        est.region = n + 2 + _reduction_drain(lanes, lat, chaining) \
            + 3 + lat + 4
        est.setup = 2 * (_ssr_setup_instrs(1) + _ssr_arm_instrs()) + 4
        est.add("fpu_fp_mul", lanes)
        est.add("fpu_fp_fma", n - lanes)
        est.add("fpu_fp_add", lanes - 1)
        est.add("fp_dispatches", n + 2 * lanes)
        est.add("tcdm_read64", 2 * n)
        est.add("ssr_reads", 2 * n)
        if chaining:
            est.add("chain", 2 * n)
    elif kernel == "gemv":
        rows = int(meta["rows"])
        if n % lanes:
            raise ValueError(f"n={n} must be a multiple of {lanes}")
        est = _Estimate(flops=2 * rows * n, points=rows)
        # The row-loop integer bookkeeping (fsd/addi/bne) issues under
        # the FP drain; only the store slot and branch redirect remain.
        per_row = n + 2 + _reduction_drain(lanes, lat, chaining) + 2
        est.region = rows * per_row + 3 + lat + 4
        est.setup = 2 * (_ssr_setup_instrs(2) + _ssr_arm_instrs()) + 4
        est.add("fpu_fp_mul", rows * lanes)
        est.add("fpu_fp_fma", rows * (n - lanes))
        est.add("fpu_fp_add", rows * (lanes - 1))
        est.add("fp_dispatches", rows * (n + 2 * lanes))
        est.add("tcdm_read64", 2 * rows * n)
        est.add("tcdm_write64", rows)
        est.add("ssr_reads", 2 * rows * n)
        if chaining:
            est.add("chain", 2 * rows * n)
    elif kernel == "cdot":
        if cfg.fpu_pipe_depth != 3:
            raise ValueError(
                "cdot's dual-chain schedule is written for the default "
                "pipe depth of 3 (capacity 4)")
        if n % 2:
            raise ValueError(f"n={n} must be even")
        blocks = n // 2
        est = _Estimate(flops=8 * n, points=n)
        est.region = 8 * blocks + 2 + 4 + 4 * (1 + lat) + 3 + lat + 4
        est.setup = _ssr_setup_instrs(3) + _ssr_setup_instrs(1, True) \
            + 2 * _ssr_arm_instrs() + 5
        est.add("fpu_fp_fma", 8 * blocks - 4)
        est.add("fpu_fp_mul", 4)
        est.add("fpu_fp_add", 2)
        est.add("fp_dispatches", 8 * blocks + 8)
        est.add("tcdm_read64", 2 * n + 4 * n)
        est.add("tcdm_access32", 4 * n)
        est.add("tcdm_write64", 2)
        est.add("ssr_reads", 8 * n)
        est.add("chain", 16 * blocks)
    else:
        raise ValueError(
            f"no analytical model for kernel {kernel!r}; supported "
            f"builds: vecop, {', '.join(LINALG_KERNELS)}")
    est.end = 4
    est.add("int_instrs", est.setup + est.end + 6)
    est.add("ssr_active", 2 * est.region)
    compute = est.events.get("fpu_fp_fma", 0) \
        + est.events.get("fpu_fp_mul", 0) + est.events.get("fpu_fp_add", 0)
    est.utilization = min(1.0, compute / est.region) if est.region else 0.0
    est.terms = {"lanes": lanes, "n": n}
    return est


# -- energy synthesis ----------------------------------------------------------


def _energy_report(est: _Estimate, cfg: CoreConfig,
                   num_clusters: int = 1,
                   scale: float = 1.0) -> EnergyReport:
    """Charge the estimate's event counts at the unit energies.

    The breakdown uses the same component keys as
    :class:`~repro.energy.model.EnergyModel` so downstream consumers
    (CSV, plots) need no special casing.
    """
    p = EnergyParams()
    ev = est.events
    cycles = est.cycles
    breakdown: dict[str, float] = {}
    breakdown["int_core"] = ev.get("int_instrs", 0) * p.int_issue
    breakdown["fp_dispatch"] = ev.get("fp_dispatches", 0) * p.fp_dispatch
    breakdown["fpu"] = sum(
        ev.get(op, 0) * unit for op, unit in p.fpu_op.items())
    breakdown["fp_rf"] = ev.get("fp_rf_reads", 0) * p.fp_rf_read \
        + ev.get("fp_rf_writes", 0) * p.fp_rf_write
    breakdown["chaining"] = ev.get("chain", 0) * p.chain_access
    breakdown["ssr_regs"] = (ev.get("ssr_reads", 0)
                             + ev.get("ssr_writes", 0)) * p.ssr_reg_access
    breakdown["ssr_agu"] = ev.get("ssr_active", 0) * p.ssr_active_cycle
    breakdown["tcdm"] = ev.get("tcdm_read64", 0) * p.tcdm_read64 \
        + ev.get("tcdm_write64", 0) * p.tcdm_write64 \
        + ev.get("tcdm_access32", 0) * p.tcdm_access32
    breakdown["dma"] = ev.get("dma_bytes", 0) * p.dma_per_byte
    breakdown["static"] = num_clusters * cycles * p.static_pj_per_cycle
    if num_clusters > 1 or "gmem_bytes" in ev:
        breakdown["gmem"] = ev.get("gmem_bytes", 0) * p.gmem_per_byte
        breakdown["uncore_static"] = cycles * p.uncore_static_pj_per_cycle
    if scale != 1.0:
        breakdown = {k: v * scale for k, v in breakdown.items()}
    total = sum(breakdown.values())
    return EnergyReport(total, cycles, cfg.clock_hz, breakdown)


# -- public entry points -------------------------------------------------------


def _result_from_estimate(name: str, family: str, est: _Estimate,
                          cfg: CoreConfig, calibration,
                          num_clusters: int = 1,
                          system: SystemReport | None = None,
                          extra_meta: dict | None = None) -> Result:
    scale_cycles, scale_energy = _resolve_calibration(calibration, family)
    if scale_cycles != 1.0:
        est.setup *= scale_cycles
        est.region *= scale_cycles
        est.end *= scale_cycles
    cycles = est.cycles
    region = int(round(est.region))
    if system is not None:
        # The system runner reports region == cycles (the measured
        # region spans the whole phase schedule).
        region = cycles
        system.per_cluster_cycles = [cycles] * system.num_clusters
    energy = _energy_report(est, cfg, num_clusters=num_clusters,
                            scale=scale_energy)
    meta = {
        FIDELITY_KEY: FIDELITY_ANALYTICAL,
        "engine": ANALYTICAL_ENGINE,
        "family": family,
        "model": {k: round(float(v), 4) for k, v in est.terms.items()},
    }
    if scale_cycles != 1.0 or scale_energy != 1.0:
        meta["calibration"] = {"scale_cycles": scale_cycles,
                               "scale_energy": scale_energy}
    if extra_meta:
        meta.update(extra_meta)
    return Result(
        name=name,
        correct=True,
        cycles=cycles,
        region_cycles=region,
        fpu_utilization=round(est.utilization, 4),
        energy=energy,
        clock_hz=cfg.clock_hz,
        flops=est.flops,
        points=est.points,
        meta=meta,
        stalls={},
        system=system,
    )


def estimate_workload(workload: Workload,
                      base_cfg: CoreConfig | None = None,
                      engine: str | None = None,
                      calibration=None) -> Result:
    """Closed-form :class:`Result` estimate for one workload.

    Resolves the config exactly like
    :func:`~repro.api.execute.execute_workload` (overrides, then the
    campaign engine under the workload's own precedence) and never
    constructs a simulator.  Raises the same ``ValueError`` a build
    would for invalid shapes, so campaigns fail identically at either
    fidelity.  ``calibration`` (a
    :class:`~repro.analytical.calibrate.CalibrationReport` or plain
    family dict) applies fitted per-family correction factors.
    """
    from repro.api.execute import (
        _engine_cfg,
        _system_config,
        apply_overrides,
    )

    cfg = _engine_cfg(apply_overrides(base_cfg, workload.overrides),
                      workload, engine)
    core = cfg if cfg is not None else CoreConfig()
    family = kernel_family(workload)
    if workload.is_vecop:
        est = _estimate_vecop(
            VecopVariant(workload.variant),
            workload.n if workload.n is not None else 256,
            workload.loop_mode or "frep", core)
        return _result_from_estimate(workload.label, family, est, core,
                                     calibration)
    spec, default_grid = get_stencil(workload.kernel)
    grid = workload.grid3d() or default_grid
    unroll = workload.unroll if workload.unroll is not None else 4
    variant = workload.stencil_variant()
    if workload.is_system:
        sys_cfg = _system_config(workload, cfg)
        est = _estimate_system(spec, grid, variant, unroll, sys_cfg,
                               workload.iters)
        system = _system_report(est, workload.iters)
        return _result_from_estimate(
            workload.label, family, est, core, calibration,
            num_clusters=workload.num_clusters, system=system)
    est = _estimate_stencil_tile(spec, grid, variant, unroll, core)
    return _result_from_estimate(workload.label, family, est, core,
                                 calibration)


def estimate_build(build, cfg: CoreConfig | None = None,
                   calibration=None) -> Result:
    """Closed-form estimate for a prebuilt kernel (vecop/linalg).

    Reads the build's ``meta`` (kernel, n, variant, ...); stencil builds
    have no grid shape in their meta and must go through
    :func:`estimate_workload` instead.
    """
    cfg = cfg or CoreConfig()
    meta = dict(getattr(build, "meta", {}) or {})
    kernel = meta.get("kernel")
    family = kernel_family(build)
    if kernel == "vecop":
        est = _estimate_vecop(VecopVariant(meta["variant"]),
                              int(meta["n"]),
                              meta.get("loop_mode", "frep"), cfg)
    elif kernel in LINALG_KERNELS:
        est = _estimate_linalg(meta, cfg)
    else:
        raise ValueError(
            f"no analytical model for build {build.name!r} "
            f"(kernel {kernel!r}); stencil kernels are estimated "
            f"through Workload (the grid shape is not in build meta)")
    return _result_from_estimate(build.name, family, est, cfg,
                                 calibration)
