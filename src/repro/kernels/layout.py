"""Grid memory layout for the stencil kernels.

Input and output grids are row-major ``(z, y, x)`` float64 arrays with a
halo of ``radius`` cells on every face.  ``x`` is the contiguous (unit
stride) dimension; kernels unroll along it.  The layout object knows every
byte stride and address the code generators and golden-comparison code
need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DOUBLE = 8


@dataclass(frozen=True)
class Grid3d:
    """Interior extents plus halo bookkeeping for one stencil grid."""

    nz: int
    ny: int
    nx: int
    radius: int = 1

    def __post_init__(self):
        if min(self.nz, self.ny, self.nx) < 1:
            raise ValueError(f"empty interior {self.shape_interior}")
        if self.radius < 1:
            raise ValueError("radius must be >= 1")

    # -- shapes ---------------------------------------------------------------

    @property
    def shape_interior(self) -> tuple[int, int, int]:
        return self.nz, self.ny, self.nx

    @property
    def shape_padded(self) -> tuple[int, int, int]:
        r2 = 2 * self.radius
        return self.nz + r2, self.ny + r2, self.nx + r2

    @property
    def points(self) -> int:
        return self.nz * self.ny * self.nx

    # -- byte strides -----------------------------------------------------------

    @property
    def row_bytes(self) -> int:
        return self.shape_padded[2] * DOUBLE

    @property
    def plane_bytes(self) -> int:
        return self.shape_padded[1] * self.row_bytes

    @property
    def total_bytes(self) -> int:
        return self.shape_padded[0] * self.plane_bytes

    # -- addresses ---------------------------------------------------------------

    def element_offset(self, z: int, y: int, x: int) -> int:
        """Byte offset of padded-coordinate ``(z, y, x)`` from the base."""
        _, py, px = self.shape_padded
        return ((z * py + y) * px + x) * DOUBLE

    def interior_offset(self, z: int = 0, y: int = 0, x: int = 0) -> int:
        """Byte offset of interior point ``(z, y, x)``."""
        r = self.radius
        return self.element_offset(z + r, y + r, x + r)

    def linear_index(self, z: int, y: int, x: int) -> int:
        """Element (not byte) index of a padded coordinate."""
        _, py, px = self.shape_padded
        return (z * py + y) * px + x

    # -- data -------------------------------------------------------------------

    def make_input(self, seed: int = 1) -> np.ndarray:
        """Deterministic random input over the padded shape."""
        rng = np.random.default_rng(seed)
        return rng.uniform(-1.0, 1.0, self.shape_padded)

    def extract_interior(self, padded: np.ndarray) -> np.ndarray:
        r = self.radius
        return padded[r:r + self.nz, r:r + self.ny, r:r + self.nx]
