"""Assembly emission helpers for SSR configuration.

Code generators describe a stream with :class:`SsrPatternAsm` and get back
the ``li``/``scfgw`` sequence that programs the lane.  Values can be
literal integers or ``%symbol`` references resolved by the assembler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssr.config import CfgField, MAX_DIMS, cfg_addr


def _scfgw(value, ssr: int, cfg_field: int, lines: list[str]) -> None:
    lines.append(f"    li t0, {value}")
    lines.append(f"    li t1, {cfg_addr(ssr, cfg_field)}")
    lines.append("    scfgw t0, t1")


@dataclass
class SsrPatternAsm:
    """A stream pattern to be programmed into lane ``ssr``."""

    ssr: int
    base: int | str
    bounds: list[int] = field(default_factory=list)
    strides: list[int] = field(default_factory=list)
    repeat: int = 0
    write: bool = False
    indirect: bool = False
    idx_base: int | str = 0
    idx_size: int = 4
    idx_shift: int = 3

    def ctrl_value(self) -> int:
        ndims = max(1, len(self.bounds))
        return ((1 if self.write else 0)
                | (2 if self.indirect else 0)
                | ((ndims - 1) << 2))

    def emit_setup(self) -> str:
        """Program everything except CTRL (bounds, strides, repeat, ...).

        Emitted once in the kernel prologue; re-arming per row only needs
        :meth:`emit_arm` (a BASE update + CTRL commit).
        """
        if len(self.bounds) != len(self.strides):
            raise ValueError("bounds and strides must have equal length")
        if len(self.bounds) > MAX_DIMS:
            raise ValueError(f"{len(self.bounds)} dims exceed MAX_DIMS "
                             f"({MAX_DIMS})")
        lines: list[str] = [f"    # ssr{self.ssr} pattern setup"]
        for d, (bound, stride) in enumerate(zip(self.bounds, self.strides)):
            _scfgw(bound, self.ssr, CfgField.BOUND0 + d, lines)
            _scfgw(stride, self.ssr, CfgField.STRIDE0 + d, lines)
        _scfgw(self.repeat, self.ssr, CfgField.REPEAT, lines)
        if self.indirect:
            _scfgw(self.idx_base, self.ssr, CfgField.IDX_BASE, lines)
            idx_cfg = (self.idx_size.bit_length() - 1) \
                | (self.idx_shift << 4)
            _scfgw(idx_cfg, self.ssr, CfgField.IDX_CFG, lines)
        return "\n".join(lines)

    def emit_arm(self, base_reg: str | None = None) -> str:
        """Write BASE (from a register or the literal) and commit CTRL.

        ``base_reg`` lets loops re-arm with a pointer they maintain in an
        integer register instead of a constant.
        """
        lines: list[str] = [f"    # ssr{self.ssr} arm"]
        if base_reg is not None:
            lines.append(f"    li t1, {cfg_addr(self.ssr, CfgField.BASE)}")
            lines.append(f"    scfgw {base_reg}, t1")
        else:
            _scfgw(self.base, self.ssr, CfgField.BASE, lines)
        _scfgw(self.ctrl_value(), self.ssr, CfgField.CTRL, lines)
        return "\n".join(lines)

    def emit(self, base_reg: str | None = None) -> str:
        """Full setup + arm."""
        return self.emit_setup() + "\n" + self.emit_arm(base_reg)
