"""Stencil kernel code generation for the five evaluation variants.

Kernel structure (all variants):

* The stencil *input* is streamed through SSR0 as a SARIS-style indirect
  stream: a precomputed index array walks, block by block, the ``unroll``
  points of each tap.  One index pattern covers one row and is re-armed
  with a new window base per row.  (The index fetcher occupies the third
  lane's resources, so exactly one further SSR lane is free -- this
  reproduces the paper's setup where Base must choose between streaming
  coefficients and streaming the output.)
* The innermost block computes ``unroll`` output points: for each tap, one
  ``fmul``/``fmadd`` per point, accumulators rotating across points.  For
  chaining variants the "rotation" is the FIFO through the FPU pipe and a
  single architectural register.
* Coefficients come from SSR1 (Base), from registers (Chaining/Chaining+),
  or from registers with per-block spill reloads (Base--/Base-), as
  decided by :mod:`repro.kernels.regalloc`.
* Results leave through explicit ``fsd`` (Base--/Base/Chaining) or through
  SSR1 armed as a write stream (Base-/Chaining+).

The generated program marks the measured region with ``sim_mark`` CSR
writes; a blocking FP-CSR read before the closing mark synchronizes the
integer core with the FP subsystem.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CoreConfig
from repro.kernels.build import MARK_END, MARK_START, KernelBuild
from repro.kernels.layout import DOUBLE, Grid3d
from repro.kernels.regalloc import RegisterPlan, plan_registers
from repro.kernels.ssrgen import SsrPatternAsm
from repro.kernels.stencil import StencilSpec
from repro.kernels.variants import Variant
from repro.isa.registers import fp_reg_name
from repro.mem.memory import Allocator

#: How many tap groups ahead of use a spilled coefficient is reloaded.
SPILL_LEAD = 2


def build_stencil(spec: StencilSpec, grid: Grid3d, variant: Variant,
                  unroll: int = 4, cfg: CoreConfig | None = None,
                  seed: int = 1) -> KernelBuild:
    """Generate one stencil kernel build.

    ``grid.nx`` must be a multiple of ``unroll``; chaining variants
    additionally require ``unroll == fpu_pipe_depth + 1``.
    """
    cfg = cfg or CoreConfig()
    if grid.radius < spec.radius:
        raise ValueError(f"grid radius {grid.radius} < stencil radius "
                         f"{spec.radius}")
    if grid.nx % unroll:
        raise ValueError(f"nx={grid.nx} not a multiple of unroll={unroll}")
    plan = plan_registers(variant, spec.ntaps, unroll, cfg.fpu_pipe_depth)

    nbx = grid.nx // unroll
    alloc = Allocator(0x1000)
    a_in = alloc.alloc_f64(int(np.prod(grid.shape_padded)))
    a_out = alloc.alloc_f64(int(np.prod(grid.shape_padded)))
    a_coef = alloc.alloc_f64(spec.ntaps)
    idx = _index_pattern(spec, grid, unroll, nbx)
    a_idx = alloc.alloc(4 * idx.size, align=4)

    grid_in = grid.make_input(seed)
    golden_interior = spec.golden(grid_in)
    # The kernel writes only the interior of a zero-initialized padded
    # grid, so the bit-exact expectation is interior-in-zeros.
    golden = np.zeros(grid.shape_padded)
    r = grid.radius
    golden[r:r + grid.nz, r:r + grid.ny, r:r + grid.nx] = golden_interior

    asm = _emit(spec, grid, variant, plan, cfg, nbx,
                a_in=a_in, a_out=a_out, a_coef=a_coef, a_idx=a_idx,
                n_idx=idx.size)

    arrays = [
        (a_in, grid_in),
        (a_out, np.zeros(grid.shape_padded)),
        (a_coef, np.array(spec.coeffs)),
        (a_idx, idx),
    ]
    blocks = nbx * grid.ny * grid.nz
    meta = {
        "kernel": spec.name,
        "variant": variant.label,
        "unroll": unroll,
        "ntaps": spec.ntaps,
        "points": grid.points,
        "blocks": blocks,
        "flops": spec.flops_per_point * grid.points,
        "expected_compute_ops": spec.ntaps * grid.points,
        "expected_stores": 0 if variant.writeback_via_ssr else grid.points,
        "expected_spill_loads": len(plan.spilled_taps) * blocks,
        "register_plan": plan.describe(),
    }
    return KernelBuild(
        name=f"{spec.name}/{variant.label}",
        asm=asm,
        symbols={},
        arrays=arrays,
        output_addr=a_out,
        output_shape=grid.shape_padded,
        golden=golden,
        meta=meta,
    )




# -- index pattern -------------------------------------------------------------


def _index_pattern(spec: StencilSpec, grid: Grid3d, unroll: int,
                   nbx: int) -> np.ndarray:
    """Per-row indirect indices: block-major, tap, then unrolled point.

    Indices are element offsets relative to the row *window base*, the
    element ``(-radius, -radius, -radius)`` away from the row's first
    interior point; all offsets are therefore non-negative.
    """
    r = grid.radius
    _, py, px = grid.shape_padded
    out = np.empty(nbx * spec.ntaps * unroll, dtype=np.uint32)
    pos = 0
    for b in range(nbx):
        for dz, dy, dx in spec.taps:
            for p in range(unroll):
                x = b * unroll + p
                zz, yy, xx = dz + r, dy + r, x + dx + r
                out[pos] = (zz * py + yy) * px + xx \
                    - ((0 * py + 0) * px + 0)
                pos += 1
    return out


# -- assembly emission -----------------------------------------------------------


def _emit(spec: StencilSpec, grid: Grid3d, variant: Variant,
          plan: RegisterPlan, cfg: CoreConfig, nbx: int, *, a_in: int,
          a_out: int, a_coef: int, a_idx: int, n_idx: int) -> str:
    lines: list[str] = [f"    # {spec.name} / {variant.label} "
                        f"(unroll {plan.unroll}, {spec.ntaps} taps)"]
    _emit_compute(lines.append, spec, grid, variant, plan, nbx,
                  a_in=a_in, a_out=a_out, a_coef=a_coef, a_idx=a_idx,
                  n_idx=n_idx, mark_start=MARK_START, mark_end=MARK_END)
    lines.append("    ebreak")
    return "\n".join(lines) + "\n"


def emit_tile_compute(spec: StencilSpec, tile: Grid3d, variant: Variant,
                      unroll: int = 4, cfg: CoreConfig | None = None, *,
                      a_in: int, a_out: int, a_coef: int, a_idx: int,
                      label_prefix: str = "") -> tuple[str, np.ndarray]:
    """Compute-only assembly for one grid tile, plus its index pattern.

    Emits exactly the compute section :func:`build_stencil` generates
    (coefficient loads, SSR setup, the loop nest, the FP-drain barrier
    and stream teardown) without the program frame (region marks and the
    final ``ebreak``), so callers -- the multi-cluster halo-exchange
    builder in :mod:`repro.kernels.partition` -- can splice several
    compute phases into one program.  ``label_prefix`` namespaces the
    loop labels to keep spliced phases collision-free.

    Returns ``(asm, idx)`` where ``idx`` is the uint32 indirect-index
    pattern that must be placed at ``a_idx`` before the phase runs.
    """
    cfg = cfg or CoreConfig()
    if tile.radius < spec.radius:
        raise ValueError(f"tile radius {tile.radius} < stencil radius "
                         f"{spec.radius}")
    if tile.nx % unroll:
        raise ValueError(f"nx={tile.nx} not a multiple of "
                         f"unroll={unroll}")
    plan = plan_registers(variant, spec.ntaps, unroll, cfg.fpu_pipe_depth)
    nbx = tile.nx // unroll
    idx = _index_pattern(spec, tile, unroll, nbx)
    lines: list[str] = []
    _emit_compute(lines.append, spec, tile, variant, plan, nbx,
                  a_in=a_in, a_out=a_out, a_coef=a_coef, a_idx=a_idx,
                  n_idx=idx.size, mark_start=None, mark_end=None,
                  label_prefix=label_prefix)
    return "\n".join(lines), idx


def _emit_compute(emit, spec: StencilSpec, grid: Grid3d,
                  variant: Variant, plan: RegisterPlan, nbx: int, *,
                  a_in: int, a_out: int, a_coef: int, a_idx: int,
                  n_idx: int, mark_start: int | None,
                  mark_end: int | None, label_prefix: str = "") -> None:
    r = grid.radius
    row_bytes = grid.row_bytes
    plane_bytes = grid.plane_bytes
    unroll = plan.unroll
    blocks_total = nbx * grid.ny * grid.nz

    # SSR0: indirect input stream, re-armed per row.
    ssr_in = SsrPatternAsm(
        ssr=0, base=0, bounds=[n_idx], strides=[0], indirect=True,
        idx_base=a_idx, idx_size=4, idx_shift=3,
    )
    # First row window base: element (0, 0, 0) of the padded grid offset
    # so that tap (-r,-r,-r) of interior point (0,0,0) is index 0.
    w0 = a_in  # window (pz-r, py-r, px-r) for the first row == grid base

    out0 = a_out + grid.interior_offset(0, 0, 0)

    # ---- prologue -----------------------------------------------------------
    emit(f"    li s8, {a_coef}")
    for tap, reg in plan.coeff_regs.items():
        emit(f"    fld {fp_reg_name(reg)}, {tap * DOUBLE}(s8)")

    emit(ssr_in.emit_setup())
    if variant.coeffs_via_ssr:
        coeff_stream = SsrPatternAsm(
            ssr=1, base=a_coef, bounds=[spec.ntaps, blocks_total],
            strides=[DOUBLE, 0], repeat=unroll - 1,
        )
        emit(coeff_stream.emit())
    if variant.writeback_via_ssr:
        out_stream = SsrPatternAsm(
            ssr=1, base=out0,
            bounds=[grid.nx, grid.ny, grid.nz],
            strides=[DOUBLE, row_bytes, plane_bytes],
            write=True,
        )
        emit(out_stream.emit())
    if plan.chain_mask:
        emit(f"    csrrwi x0, chain_mask, {plan.chain_mask}")
    emit("    csrrsi x0, ssr_enable, 1")

    emit(f"    li s0, {w0}")
    if not variant.writeback_via_ssr:
        emit(f"    li s1, {out0}")
    emit(f"    li s5, {nbx}")
    emit(f"    li s6, {grid.ny}")
    emit(f"    li s7, {grid.nz}")
    emit("    li s2, 0")
    if mark_start is not None:
        emit(f"    csrrwi x0, sim_mark, {mark_start}")

    # ---- loops ---------------------------------------------------------------
    emit(f"{label_prefix}zloop:")
    emit("    li s3, 0")
    emit(f"{label_prefix}yloop:")
    emit(ssr_in.emit_arm(base_reg="s0"))
    emit("    li s4, 0")
    emit(f"{label_prefix}bloop:")
    _emit_block(emit, spec, variant, plan)
    if not variant.writeback_via_ssr:
        emit(f"    addi s1, s1, {unroll * DOUBLE}")
    emit("    addi s4, s4, 1")
    emit(f"    bne s4, s5, {label_prefix}bloop")
    # next row
    _emit_add(emit, "s0", row_bytes)
    if not variant.writeback_via_ssr:
        _emit_add(emit, "s1", row_bytes - grid.nx * DOUBLE)
    emit("    addi s3, s3, 1")
    emit(f"    bne s3, s6, {label_prefix}yloop")
    # next plane: skip the 2r halo rows
    _emit_add(emit, "s0", plane_bytes - grid.ny * row_bytes)
    if not variant.writeback_via_ssr:
        _emit_add(emit, "s1", plane_bytes - grid.ny * row_bytes)
    emit("    addi s2, s2, 1")
    emit(f"    bne s2, s7, {label_prefix}zloop")

    # ---- epilogue ------------------------------------------------------------
    emit("    csrr t2, ssr_enable      # FP-subsystem sync barrier")
    if mark_end is not None:
        emit(f"    csrrwi x0, sim_mark, {mark_end}")
    if plan.chain_mask:
        emit("    csrrwi x0, chain_mask, 0")
    emit("    csrrci x0, ssr_enable, 1")


def _emit_add(emit, reg: str, amount: int) -> None:
    """reg += amount, via addi when it fits the 12-bit immediate."""
    if amount == 0:
        return
    if -2048 <= amount < 2048:
        emit(f"    addi {reg}, {reg}, {amount}")
    else:
        emit(f"    li t2, {amount}")
        emit(f"    add {reg}, {reg}, t2")


def _spill_schedule(plan: RegisterPlan) -> dict[int, list[tuple[int, int]]]:
    """Map tap-group index -> [(temp reg, tap)] reloads emitted after it.

    Each spilled coefficient is loaded :data:`SPILL_LEAD` groups before
    its use, after the group that consumed the temp's previous value --
    in-order issue makes the overwrite safe and hides the load latency.
    """
    schedule: dict[int, list[tuple[int, int]]] = {}
    for j, tap in enumerate(plan.spilled_taps):
        load_after = max(0, tap - SPILL_LEAD)
        temp = plan.temp_regs[j % len(plan.temp_regs)]
        schedule.setdefault(load_after, []).append((temp, tap))
    return schedule


def _emit_block(emit, spec: StencilSpec, variant: Variant,
                plan: RegisterPlan) -> None:
    """The unrolled inner block: ntaps groups of ``unroll`` FP ops."""
    unroll = plan.unroll
    spills = _spill_schedule(plan)
    spill_reg = {tap: temp for group in spills.values()
                 for temp, tap in group}
    last = spec.ntaps - 1

    for tap in range(spec.ntaps):
        if variant.coeffs_via_ssr:
            coeff = "ft1"
        elif tap in plan.coeff_regs:
            coeff = fp_reg_name(plan.coeff_regs[tap])
        else:
            coeff = fp_reg_name(spill_reg[tap])
        for p in range(unroll):
            acc = fp_reg_name(plan.acc_regs[p])
            if tap == 0:
                if spec.ntaps == 1 and variant.writeback_via_ssr:
                    emit(f"    fmul.d ft1, ft0, {coeff}")
                else:
                    emit(f"    fmul.d {acc}, ft0, {coeff}")
            elif tap == last and variant.writeback_via_ssr:
                emit(f"    fmadd.d ft1, ft0, {coeff}, {acc}")
            else:
                emit(f"    fmadd.d {acc}, ft0, {coeff}, {acc}")
        for temp, stap in spills.get(tap, ()):
            emit(f"    fld {fp_reg_name(temp)}, {stap * DOUBLE}(s8)")
    if not variant.writeback_via_ssr:
        for p in range(unroll):
            acc = fp_reg_name(plan.acc_regs[p])
            emit(f"    fsd {acc}, {p * DOUBLE}(s1)")
