"""The kernel build product consumed by the evaluation runner."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Region marker ids used by every generated kernel: the measured region
#: spans from after the setup/prologue to after the FP-subsystem sync
#: barrier at the end of the compute loops.
MARK_START = 1
MARK_END = 2


@dataclass
class KernelBuild:
    """Everything needed to run one generated kernel and check it."""

    name: str
    asm: str
    symbols: dict[str, int]
    #: ``(address, array)`` pairs to place in TCDM before the run.
    arrays: list[tuple[int, np.ndarray]]
    #: Where the kernel writes its result and its shape.
    output_addr: int
    output_shape: tuple[int, ...]
    #: Bit-exact expected output.
    golden: np.ndarray
    #: Free-form metadata (variant, unroll, expected op counts, ...).
    meta: dict = field(default_factory=dict)

    def load_into(self, cluster) -> None:
        """Place all input arrays into the cluster's memory."""
        for addr, array in self.arrays:
            if array.dtype == np.float64:
                cluster.load_f64(addr, array)
            elif array.dtype == np.uint32:
                cluster.load_u32(addr, array)
            else:
                raise TypeError(f"unsupported array dtype {array.dtype}")

    def read_output(self, cluster) -> np.ndarray:
        return cluster.read_f64(self.output_addr, self.output_shape)

    def check(self, cluster) -> bool:
        """Bit-exact comparison of the kernel output against the golden."""
        return np.array_equal(self.read_output(cluster), self.golden)
