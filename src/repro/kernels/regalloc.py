"""Register budgeting for the stencil code generators.

This module reproduces the paper's register-pressure story *by
construction* rather than by hard-coding: given the variant, the unroll
factor and the number of stencil coefficients, it computes how many
coefficients fit in the FP register file and which must be reloaded from
memory every block.

Budget on the 32-entry FP register file:

* ``f0``-``f2`` are stream registers whenever SSRs are enabled (always,
  since the input is streamed) -- 29 usable registers remain;
* non-chaining variants need ``unroll`` accumulators plus 2 rotating
  temporaries for spill reloads;
* chaining variants need a *single* accumulator register (the FIFO through
  the FPU pipe provides the other ``unroll - 1`` slots) and no spill
  temporaries, which is what frees enough registers to hold all 27
  coefficients of the paper's stencils.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_FP_REGS, NUM_SSRS, fp_reg_name
from repro.kernels.variants import Variant

#: First FP register available to kernels (f0-f2 are stream registers).
FIRST_FREE = NUM_SSRS

#: Rotating temporaries used to pipeline spill reloads (load-use slack).
SPILL_TEMPS = 2


@dataclass(frozen=True)
class RegisterPlan:
    """Concrete register assignment for one stencil kernel build."""

    variant: Variant
    unroll: int
    ntaps: int
    #: Accumulator register numbers (length ``unroll``; for chaining
    #: variants all entries alias the single chaining register).
    acc_regs: tuple[int, ...]
    #: Coefficient register of each *resident* tap, by tap index.
    coeff_regs: dict[int, int]
    #: Tap indices whose coefficient is reloaded every block.
    spilled_taps: tuple[int, ...]
    #: Temporaries used for spill reloads.
    temp_regs: tuple[int, ...]

    @property
    def chain_reg(self) -> int | None:
        return self.acc_regs[0] if self.variant.uses_chaining else None

    @property
    def chain_mask(self) -> int:
        if not self.variant.uses_chaining:
            return 0
        return 1 << self.acc_regs[0]

    @property
    def resident_coeffs(self) -> int:
        return len(self.coeff_regs)

    @property
    def registers_used(self) -> int:
        regs = set(self.acc_regs) | set(self.coeff_regs.values()) \
            | set(self.temp_regs)
        return len(regs)

    def describe(self) -> str:
        """Human-readable allocation summary (used by DESIGN/report)."""
        accs = ", ".join(fp_reg_name(r) for r in dict.fromkeys(self.acc_regs))
        return (f"{self.variant.label}: acc=[{accs}] "
                f"resident coeffs={self.resident_coeffs}/{self.ntaps} "
                f"spilled={len(self.spilled_taps)} "
                f"regs used={self.registers_used}/{NUM_FP_REGS - FIRST_FREE}")


def plan_registers(variant: Variant, ntaps: int, unroll: int,
                   fpu_depth: int = 3) -> RegisterPlan:
    """Compute the register allocation for one kernel build.

    Raises ``ValueError`` when the configuration cannot work (e.g. a
    chaining variant whose unroll factor does not match the FIFO capacity
    ``fpu_depth + 1``).
    """
    usable = NUM_FP_REGS - FIRST_FREE
    if variant.uses_chaining:
        if unroll != fpu_depth + 1:
            raise ValueError(
                f"chaining requires unroll == fpu_depth + 1 "
                f"(= {fpu_depth + 1}), got {unroll}: the logical FIFO "
                f"holds exactly pipe + architectural register"
            )
        chain_reg = FIRST_FREE
        acc_regs = (chain_reg,) * unroll
        next_reg = FIRST_FREE + 1
        avail_for_coeffs = usable - 1
        temp_regs: tuple[int, ...] = ()
    else:
        acc_regs = tuple(range(FIRST_FREE, FIRST_FREE + unroll))
        next_reg = FIRST_FREE + unroll
        if variant.coeffs_via_ssr:
            avail_for_coeffs = 0
            temp_regs = ()
        else:
            temp_regs = tuple(range(NUM_FP_REGS - SPILL_TEMPS, NUM_FP_REGS))
            avail_for_coeffs = usable - unroll - SPILL_TEMPS

    if variant.coeffs_via_ssr:
        coeff_regs: dict[int, int] = {}
        spilled: tuple[int, ...] = ()
    else:
        resident = min(ntaps, avail_for_coeffs)
        coeff_regs = {t: next_reg + t for t in range(resident)}
        spilled = tuple(range(resident, ntaps))
        if variant.coeffs_in_rf and spilled:
            raise ValueError(
                f"{variant.label} requires all {ntaps} coefficients "
                f"register-resident but only {resident} fit"
            )
        if spilled and not temp_regs:
            raise ValueError("spilled coefficients but no temporaries")

    return RegisterPlan(variant, unroll, ntaps, acc_regs, coeff_regs,
                        spilled, temp_regs)
