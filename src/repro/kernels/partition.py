"""Domain decomposition: stencil grids tiled across a multi-cluster system.

The 3-D grid is split into contiguous z-slabs, one per cluster (z is the
outermost, plane-contiguous dimension, so a slab *plus its halo* is one
contiguous byte range of the global padded grid and loads with a single
1-D DMA transfer).  Each cluster runs the same phase schedule per sweep,
built on the double-buffering idiom of
``examples/dma_double_buffering.py`` (DMA in, poll ``dmstat``, compute,
DMA out) plus the system barrier:

1. **load** -- DMA the slab + halo from the current global read buffer
   into the cluster-local padded tile;
2. **compute** -- the unmodified single-cluster stencil compute section
   (:func:`repro.kernels.stencil_codegen.emit_tile_compute`) over the
   local tile;
3. **store** -- DMA the tile *interior* back to the global write buffer
   (one 2-D transfer per plane: interior rows only, so the global
   boundary ring is never touched);
4. **exchange** -- system barrier (between sweeps only), after which the
   read/write buffers swap.  The next load then picks up the halo
   planes the neighboring clusters just wrote -- the halo exchange is
   mediated by global memory, there are no direct cluster-to-cluster
   copies.

Because every output point is computed from the same float64 inputs in
the same tap order as the single-cluster kernel, the reassembled global
grid is bit-identical for every cluster count -- the invariant the
differential suite (``tests/test_system_scaling.py``) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SystemConfig
from repro.kernels.layout import DOUBLE, Grid3d
from repro.kernels.stencil import StencilSpec
from repro.kernels.stencil_codegen import emit_tile_compute
from repro.kernels.variants import Variant
from repro.mem.memory import Allocator
from repro.system.system import GLOBAL_BASE

#: Max in-flight store-phase transfers before polling (queue depth is 4;
#: keeping one slot free makes ``dmcpy`` retry-free).
_STORE_BATCH = 3


def split_slabs(nz: int, num_clusters: int) -> list[tuple[int, int]]:
    """Partition ``nz`` interior planes into per-cluster ``(z0, tz)`` slabs.

    The remainder goes to the first ``nz % num_clusters`` slabs, so slab
    sizes differ by at most one plane.
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if nz < num_clusters:
        raise ValueError(
            f"cannot split nz={nz} interior planes across "
            f"{num_clusters} clusters; every cluster needs at least one")
    base, extra = divmod(nz, num_clusters)
    slabs = []
    z0 = 0
    for index in range(num_clusters):
        tz = base + (1 if index < extra else 0)
        slabs.append((z0, tz))
        z0 += tz
    return slabs


def iterated_golden(spec: StencilSpec, padded: np.ndarray,
                    iters: int) -> np.ndarray:
    """Numpy golden model for ``iters`` Jacobi-style sweeps.

    Each sweep recomputes the interior from the previous grid; the
    boundary ring is a fixed (Dirichlet) condition carried over
    unchanged -- exactly what the ping-pong global buffers implement.
    """
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")
    grid = np.asarray(padded, dtype=np.float64).copy()
    r = spec.radius
    for _ in range(iters):
        interior = spec.golden(grid)
        grid = grid.copy()
        grid[r:grid.shape[0] - r, r:grid.shape[1] - r,
             r:grid.shape[2] - r] = interior
    return grid


@dataclass
class SystemBuild:
    """Everything needed to run one partitioned stencil and check it."""

    name: str
    #: One program per cluster (cluster ``i`` runs ``asms[i]``).
    asms: list[str]
    #: Per-cluster ``(local address, array)`` pairs (coefficients and
    #: the indirect-index pattern; tile data arrives by DMA).
    local_arrays: list[list[tuple[int, np.ndarray]]]
    #: ``(absolute global address, array)`` pairs for the global memory.
    gmem_arrays: list[tuple[int, np.ndarray]]
    #: Where the final sweep's result lives (absolute global address).
    output_addr: int
    output_shape: tuple[int, ...]
    #: Bit-exact expected output (full padded grid after all sweeps).
    golden: np.ndarray
    #: Tile assignment: cluster ``i`` computes slab ``tiles[i]``.
    tiles: list[tuple[int, int]]
    meta: dict = field(default_factory=dict)

    def load_into(self, system) -> None:
        """Place global buffers and per-cluster constants."""
        for addr, array in self.gmem_arrays:
            system.gmem.write_array(addr, array)
        for cluster, arrays in zip(system.clusters, self.local_arrays):
            for addr, array in arrays:
                if array.dtype == np.float64:
                    cluster.load_f64(addr, array)
                elif array.dtype == np.uint32:
                    cluster.load_u32(addr, array)
                else:
                    raise TypeError(
                        f"unsupported array dtype {array.dtype}")

    def read_output(self, system) -> np.ndarray:
        return system.gmem.read_array(self.output_addr,
                                      self.output_shape)

    def check(self, system) -> bool:
        """Bit-exact comparison against the iterated golden model."""
        return np.array_equal(self.read_output(system), self.golden)


def build_partitioned_stencil(
        spec: StencilSpec, grid: Grid3d, variant: Variant,
        num_clusters: int, unroll: int = 4,
        cfg: SystemConfig | None = None, iters: int = 1, seed: int = 1,
        tile_order: list[int] | None = None) -> SystemBuild:
    """Build the per-cluster halo-exchange programs for one stencil.

    ``tile_order[i]`` names the slab cluster ``i`` computes (default:
    identity).  Any permutation produces the same global output and --
    because the interconnect arbitration is ID-agnostic -- the same
    multiset of per-cluster cycle counts, which the property suite
    checks.
    """
    cfg = cfg or SystemConfig(num_clusters=num_clusters)
    if cfg.num_clusters != num_clusters:
        raise ValueError(
            f"cfg.num_clusters={cfg.num_clusters} but "
            f"num_clusters={num_clusters}")
    if grid.radius < spec.radius:
        raise ValueError(f"grid radius {grid.radius} < stencil radius "
                         f"{spec.radius}")
    slabs = split_slabs(grid.nz, num_clusters)
    if tile_order is None:
        tile_order = list(range(num_clusters))
    if sorted(tile_order) != list(range(num_clusters)):
        raise ValueError(
            f"tile_order {tile_order!r} is not a permutation of "
            f"0..{num_clusters - 1}")

    # Global layout: two ping-pong full padded grids.  Sweep t reads
    # buffer t%2 and writes buffer (t+1)%2; both start as the input grid
    # so the fixed boundary ring is present in either.
    total_bytes = grid.total_bytes
    g_bufs = (GLOBAL_BASE, GLOBAL_BASE + total_bytes)
    if 2 * total_bytes > cfg.gmem_size:
        raise ValueError(
            f"two padded {grid.shape_padded} grids need "
            f"{2 * total_bytes} bytes of global memory; configured "
            f"gmem_size={cfg.gmem_size}")

    grid_in = grid.make_input(seed)
    golden = iterated_golden(spec, grid_in, iters)

    asms: list[str] = []
    local_arrays: list[list[tuple[int, np.ndarray]]] = []
    for cluster_index in range(num_clusters):
        z0, tz = slabs[tile_order[cluster_index]]
        asm, arrays = _emit_cluster_program(
            spec, grid, Grid3d(tz, grid.ny, grid.nx, grid.radius), z0,
            variant, unroll, cfg, iters, g_bufs)
        asms.append(asm)
        local_arrays.append(arrays)

    points = grid.points
    meta = {
        "kernel": spec.name,
        "variant": variant.label,
        "unroll": unroll,
        "num_clusters": num_clusters,
        "iters": iters,
        "points": points,
        "flops": spec.flops_per_point * points * iters,
        "tiles": [slabs[tile_order[i]] for i in range(num_clusters)],
        "halo_bytes_per_sweep": sum(
            (tz + 2 * grid.radius) * grid.plane_bytes
            for _, tz in slabs),
        "interior_bytes_per_sweep": sum(
            tz * grid.ny * grid.nx * DOUBLE for _, tz in slabs),
    }
    return SystemBuild(
        name=f"{spec.name}/{variant.label}@{num_clusters}c",
        asms=asms,
        local_arrays=local_arrays,
        gmem_arrays=[(g_bufs[0], grid_in), (g_bufs[1], grid_in)],
        output_addr=g_bufs[iters % 2],
        output_shape=grid.shape_padded,
        golden=golden,
        tiles=[slabs[tile_order[i]] for i in range(num_clusters)],
        meta=meta,
    )


def _emit_cluster_program(spec: StencilSpec, grid: Grid3d, tile: Grid3d,
                          z0: int, variant: Variant, unroll: int,
                          cfg: SystemConfig, iters: int,
                          g_bufs: tuple[int, int]) -> tuple[str, list]:
    """One cluster's program: ``iters`` load/compute/store/barrier phases."""
    alloc = Allocator(0x1000)
    a_in = alloc.alloc_f64(int(np.prod(tile.shape_padded)))
    a_out = alloc.alloc_f64(int(np.prod(tile.shape_padded)))
    a_coef = alloc.alloc_f64(spec.ntaps)
    # The tile-relative index pattern is sweep-invariant; its size is
    # (nx // unroll) * ntaps * unroll entries, so the slot can be
    # reserved before the first emission returns the pattern itself
    # (emit_tile_compute validates nx % unroll before it matters).
    a_idx = alloc.alloc(
        4 * (tile.nx // unroll) * spec.ntaps * unroll, align=4)
    idx = None
    halo_bytes = tile.shape_padded[0] * grid.plane_bytes

    lines: list[str] = [
        f"    # {spec.name} / {variant.label} slab z0={z0} "
        f"tz={tile.nz} ({iters} sweep{'s' if iters > 1 else ''})"]
    emit = lines.append
    for sweep in range(iters):
        src_buf = g_bufs[sweep % 2]
        dst_buf = g_bufs[(sweep + 1) % 2]
        prefix = f"t{sweep}_"
        # ---- load: slab + halo, one contiguous 1-D transfer ----------
        emit(f"    # sweep {sweep}: load slab+halo from "
             f"{src_buf:#x}")
        emit(f"    li t0, {src_buf + z0 * grid.plane_bytes}")
        emit("    dmsrc t0")
        emit(f"    li t0, {a_in}")
        emit("    dmdst t0")
        emit("    li t0, 1")
        emit("    dmrep t0")
        emit(f"    li t1, {halo_bytes}")
        emit("    dmcpy a0, t1")
        _emit_wait(emit, f"{prefix}wld")
        # ---- compute: the single-cluster kernel over the tile --------
        asm, tile_idx = emit_tile_compute(
            spec, tile, variant, unroll=unroll, cfg=cfg.core,
            a_in=a_in, a_out=a_out, a_coef=a_coef, a_idx=a_idx,
            label_prefix=prefix)
        if idx is None:
            idx = tile_idx
        emit(asm)
        # ---- store: interior rows only, one 2-D transfer per plane ---
        emit(f"    # sweep {sweep}: store interior to {dst_buf:#x}")
        emit(f"    li t0, {tile.row_bytes}")
        emit(f"    li t1, {grid.row_bytes}")
        emit("    dmstr t0, t1")
        emit(f"    li t0, {tile.ny}")
        emit("    dmrep t0")
        in_flight = 0
        for z in range(tile.nz):
            emit(f"    li t0, {a_out + tile.interior_offset(z, 0, 0)}")
            emit("    dmsrc t0")
            dst = dst_buf + grid.interior_offset(z0 + z, 0, 0)
            emit(f"    li t0, {dst}")
            emit("    dmdst t0")
            emit(f"    li t1, {tile.nx * DOUBLE}")
            emit("    dmcpy a0, t1")
            in_flight += 1
            if in_flight == _STORE_BATCH and z + 1 < tile.nz:
                _emit_wait(emit, f"{prefix}wst{z}")
                in_flight = 0
        _emit_wait(emit, f"{prefix}wst")
        # ---- exchange: system barrier between sweeps -----------------
        if sweep + 1 < iters:
            emit("    csrrwi x0, 0x7C7, 1    # system barrier")
    emit("    ebreak")
    if alloc.used > cfg.core.mem_size:
        raise ValueError(
            f"tile {tile.shape_padded} needs {alloc.used} bytes of "
            f"cluster memory; configured mem_size={cfg.core.mem_size}")
    arrays = [
        (a_coef, np.array(spec.coeffs)),
        (a_idx, idx),
    ]
    return "\n".join(lines) + "\n", arrays


def _emit_wait(emit, label: str) -> None:
    """Spin on ``dmstat`` until the DMA queue drains."""
    emit(f"{label}:")
    emit("    dmstat a1")
    emit(f"    bnez a1, {label}")
