"""Kernel generators: the paper's workloads as assembly code generators.

* :mod:`repro.kernels.vecop` -- the vector operation ``a = b * (c + d)`` of
  the paper's Fig. 1, in baseline, unrolled and chaining form.
* :mod:`repro.kernels.stencil` / :mod:`repro.kernels.stencil_codegen` --
  the SARIS-style stencil kernels (``box3d1r``, ``j3d27pt`` and friends) in
  the five evaluation variants Base--, Base-, Base, Chaining, Chaining+.

Each generator returns a :class:`repro.kernels.build.KernelBuild`: assembly
text, data arrays, the golden reference and metadata, ready for
:mod:`repro.eval.runner`.
"""

from repro.kernels.build import KernelBuild
from repro.kernels.stencil import (
    StencilSpec,
    box2d1r,
    box3d1r,
    j2d5pt,
    j3d27pt,
    star3d1r,
)
from repro.kernels.layout import Grid3d
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.linalg import (
    LinalgVariant,
    build_axpy,
    build_cdot,
    build_dot,
    build_gemv,
)
from repro.kernels.registry import KERNELS, STENCILS, kernel_names

__all__ = [
    "Grid3d",
    "KERNELS",
    "KernelBuild",
    "LinalgVariant",
    "STENCILS",
    "StencilSpec",
    "Variant",
    "VecopVariant",
    "box2d1r",
    "box3d1r",
    "build_axpy",
    "build_cdot",
    "build_dot",
    "build_gemv",
    "build_stencil",
    "build_vecop",
    "j2d5pt",
    "j3d27pt",
    "kernel_names",
    "star3d1r",
]
