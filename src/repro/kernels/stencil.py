"""Stencil specifications and numpy golden models.

A stencil is a list of (dz, dy, dx) taps with one coefficient per tap.
The two kernels evaluated in the paper, ``box3d1r`` and ``j3d27pt``, are
both radius-1 27-tap cube stencils from the SARIS suite; they differ in
their coefficient sets (box blur vs. variable-coefficient Jacobi) and, in
our harness, in their default grid shapes.  Both carry 27 *distinct*
coefficients, which is what makes them register-limited on a 32-register
file: 27 coefficients + accumulators + stream registers exceed 32.

The golden models accumulate in exactly the generated code's tap order
with float64 multiply-then-add per tap, so simulator output compares
bit-exactly against numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StencilSpec:
    """A named stencil: taps (in code-generation order) and coefficients."""

    name: str
    taps: tuple[tuple[int, int, int], ...]
    coeffs: tuple[float, ...]

    def __post_init__(self):
        if len(self.taps) != len(self.coeffs):
            raise ValueError(
                f"{self.name}: {len(self.taps)} taps but "
                f"{len(self.coeffs)} coefficients"
            )

    @property
    def ntaps(self) -> int:
        return len(self.taps)

    @property
    def radius(self) -> int:
        return max(max(abs(o) for o in tap) for tap in self.taps)

    @property
    def is_cube(self) -> bool:
        """True when the taps form the full (2r+1)^3 cube in our order."""
        r = self.radius
        expected = tuple(
            (dz, dy, dx)
            for dz in range(-r, r + 1)
            for dy in range(-r, r + 1)
            for dx in range(-r, r + 1)
        )
        return self.taps == expected

    @property
    def flops_per_point(self) -> int:
        """1 flop for the first tap (mul), 2 per fmadd afterwards."""
        return 1 + 2 * (self.ntaps - 1)

    def golden(self, grid: np.ndarray) -> np.ndarray:
        """Reference output over the interior of ``grid`` (z, y, x).

        Accumulation order matches the generated code: tap 0 initializes
        with a multiply, every further tap is multiply-then-add.
        """
        r = self.radius
        nz, ny, nx = (dim - 2 * r for dim in grid.shape)
        if min(nz, ny, nx) <= 0:
            raise ValueError(f"grid {grid.shape} too small for radius {r}")

        def window(tap):
            dz, dy, dx = tap
            return grid[r + dz:r + dz + nz, r + dy:r + dy + ny,
                        r + dx:r + dx + nx]

        acc = self.coeffs[0] * window(self.taps[0])
        for tap, coeff in zip(self.taps[1:], self.coeffs[1:]):
            acc = window(tap) * coeff + acc
        return acc


def _cube_taps(radius: int) -> tuple[tuple[int, int, int], ...]:
    return tuple(
        (dz, dy, dx)
        for dz in range(-radius, radius + 1)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
    )


def box3d1r(radius: int = 1) -> StencilSpec:
    """3-D box stencil of radius ``r``: uniform-ish blur, distinct weights.

    Weights fall off with Manhattan distance and are normalized to sum to
    one; all 27 values are distinct from the hardware's point of view
    (each occupies its own register/stream slot).
    """
    taps = _cube_taps(radius)
    raw = [1.0 / (1.0 + abs(dz) + abs(dy) + abs(dx)) + 0.001 * i
           for i, (dz, dy, dx) in enumerate(taps)]
    total = sum(raw)
    return StencilSpec(f"box3d{radius}r",
                       taps, tuple(w / total for w in raw))


def j3d27pt() -> StencilSpec:
    """27-point 3-D Jacobi with variable coefficients (SARIS ``j3d27pt``).

    Center-heavy symmetric-style weights, perturbed so all 27 are
    distinct, normalized to sum to one.
    """
    taps = _cube_taps(1)
    raw = []
    for i, (dz, dy, dx) in enumerate(taps):
        dist = abs(dz) + abs(dy) + abs(dx)
        base = {0: 8.0, 1: 4.0, 2: 2.0, 3: 1.0}[dist]
        raw.append(base + 0.01 * i)
    total = sum(raw)
    return StencilSpec("j3d27pt", taps, tuple(w / total for w in raw))


def star3d1r() -> StencilSpec:
    """7-point 3-D star stencil: exercises truly irregular (non-cube) taps."""
    taps = (
        (0, 0, 0),
        (-1, 0, 0), (1, 0, 0),
        (0, -1, 0), (0, 1, 0),
        (0, 0, -1), (0, 0, 1),
    )
    coeffs = (0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
    return StencilSpec("star3d1r", taps, coeffs)


def j2d5pt() -> StencilSpec:
    """5-point 2-D Jacobi (z extent 1)."""
    taps = ((0, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1))
    return StencilSpec("j2d5pt", taps, (0.5, 0.125, 0.125, 0.125, 0.125))


def box2d1r() -> StencilSpec:
    """9-point 2-D box (z extent 1)."""
    taps = tuple((0, dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1))
    raw = [1.0 + 0.05 * i for i in range(9)]
    total = sum(raw)
    return StencilSpec("box2d1r", taps, tuple(w / total for w in raw))
