"""Linear-algebra kernels: chaining beyond stencils.

The paper demonstrates scalar chaining on stencils; the mechanism applies
to any register-limited dataflow with producer/consumer balance.  This
module generates four kernels that exercise different aspects:

* **axpy** ``y = a*x + y`` -- streaming only, no inter-iteration
  dependency: chaining is *not* needed, a useful negative control.
* **dot** ``s = sum(x*y)`` -- a reduction.  The chaining variant keeps
  ``pipe_depth + 1`` partial sums in the logical FIFO of a *single*
  architectural register (the classic unrolled reduction needs one
  register per partial), then drains with ``fmv.d`` pops and a left-to-
  right add chain.
* **gemv** ``y = A @ x`` -- one dot-reduction per matrix row, re-using
  the chaining FIFO across rows with per-row drains.
* **cdot** -- complex dot product with *two* chaining registers (real
  and imaginary accumulators).  Chains share the FPU pipeline, so the
  total number of outstanding partials is bounded by ``depth + 1``: each
  component gets ``(depth + 1) // 2`` lanes and the schedule interleaves
  re/im operations so every push finds its pop in time.  The real
  operand streams affinely with the repeat feature; the imaginary
  operand needs a re/im-swapped second half per block and rides a
  SARIS-style indirect stream.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.config import CoreConfig
from repro.kernels.build import MARK_END, MARK_START, KernelBuild
from repro.kernels.ssrgen import SsrPatternAsm
from repro.mem.memory import Allocator


class LinalgVariant(Enum):
    BASELINE = "baseline"      # unrolled with one register per partial
    CHAINING = "chaining"      # single chaining accumulator


def _marks(loop_lines: list[str]) -> list[str]:
    return (
        [f"    csrrwi x0, sim_mark, {MARK_START}"]
        + loop_lines
        + ["    csrr t5, ssr_enable      # sync barrier",
           f"    csrrwi x0, sim_mark, {MARK_END}"]
    )


# -- axpy ---------------------------------------------------------------------


def build_axpy(n: int = 256, alpha: float = 1.75,
               cfg: CoreConfig | None = None, seed: int = 11,
               ) -> KernelBuild:
    """``y[i] = alpha * x[i] + y[i]`` -- pure streaming, no chaining."""
    cfg = cfg or CoreConfig()
    alloc = Allocator(0x1000)
    a_x = alloc.alloc_f64(n)
    a_y = alloc.alloc_f64(n)
    a_out = alloc.alloc_f64(n)
    a_alpha = alloc.alloc_f64(1)

    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, n)
    y = rng.uniform(-1, 1, n)
    golden = x * alpha + y

    streams = "\n".join([
        SsrPatternAsm(ssr=0, base=a_x, bounds=[n], strides=[8]).emit(),
        SsrPatternAsm(ssr=1, base=a_y, bounds=[n], strides=[8]).emit(),
        SsrPatternAsm(ssr=2, base=a_out, bounds=[n], strides=[8],
                      write=True).emit(),
    ])
    loop = [f"    li t2, {n - 1}",
            "    frep.o t2, 0",
            "    fmadd.d ft2, ft0, fa0, ft1"]
    asm = "\n".join(
        [f"    li a0, {a_alpha}", "    fld fa0, 0(a0)", streams,
         "    csrrsi x0, ssr_enable, 1"]
        + _marks(loop)
        + ["    csrrci x0, ssr_enable, 1", "    ebreak"]
    ) + "\n"

    return KernelBuild(
        name="axpy",
        asm=asm,
        symbols={},
        arrays=[(a_x, x), (a_y, y), (a_alpha, np.array([alpha])),
                (a_out, np.zeros(n))],
        output_addr=a_out,
        output_shape=(n,),
        golden=golden,
        meta={"kernel": "axpy", "n": n, "flops": 2 * n,
              "points": n, "expected_compute_ops": n},
    )


# -- dot ----------------------------------------------------------------------


def _dot_partials(x: np.ndarray, y: np.ndarray, lanes: int) -> np.ndarray:
    """Lane-partial sums in the exact op order of the generated code."""
    partials = np.zeros(lanes)
    for i in range(len(x)):
        lane = i % lanes
        partials[lane] = x[i] * y[i] + partials[lane]
    return partials


def _left_reduce(partials: np.ndarray) -> float:
    acc = partials[0]
    for p in partials[1:]:
        acc = acc + p
    return acc


def _reduction_loop(lanes: int, groups: int, chaining: bool) -> list[str]:
    """Shared schedule of dot/gemv: seed group, frep body, drain."""
    out: list[str] = []
    if chaining:
        out += ["    fmul.d ft3, ft0, ft1"] * lanes
        if groups > 1:
            out += [f"    li t2, {groups - 2}",
                    f"    frep.o t2, {lanes - 1}"]
            out += ["    fmadd.d ft3, ft0, ft1, ft3"] * lanes
        out += [f"    fmv.d fa{lane}, ft3" for lane in range(lanes)]
    else:
        out += [f"    fmul.d fa{lane}, ft0, ft1" for lane in range(lanes)]
        if groups > 1:
            out += [f"    li t2, {groups - 2}",
                    f"    frep.o t2, {lanes - 1}"]
            out += [f"    fmadd.d fa{lane}, ft0, ft1, fa{lane}"
                    for lane in range(lanes)]
    for lane in range(1, lanes):
        out.append(f"    fadd.d fa0, fa0, fa{lane}")
    return out


def build_dot(n: int = 256, variant: LinalgVariant = LinalgVariant.CHAINING,
              cfg: CoreConfig | None = None, seed: int = 12) -> KernelBuild:
    """``s = sum(x[i] * y[i])`` with ``pipe_depth + 1`` partial sums."""
    cfg = cfg or CoreConfig()
    lanes = cfg.fpu_pipe_depth + 1
    if n % lanes:
        raise ValueError(f"n={n} must be a multiple of {lanes}")

    alloc = Allocator(0x1000)
    a_x = alloc.alloc_f64(n)
    a_y = alloc.alloc_f64(n)
    a_out = alloc.alloc_f64(1)

    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, n)
    y = rng.uniform(-1, 1, n)
    golden = np.array([_left_reduce(_dot_partials(x, y, lanes))])

    streams = "\n".join([
        SsrPatternAsm(ssr=0, base=a_x, bounds=[n], strides=[8]).emit(),
        SsrPatternAsm(ssr=1, base=a_y, bounds=[n], strides=[8]).emit(),
    ])

    chaining = variant is LinalgVariant.CHAINING
    loop = _reduction_loop(lanes, n // lanes, chaining)
    loop += [f"    li a1, {a_out}", "    fsd fa0, 0(a1)"]

    lines = ([streams, "    csrrsi x0, ssr_enable, 1"]
             + (["    csrrwi x0, chain_mask, 8"] if chaining else [])
             + _marks(loop)
             + (["    csrrwi x0, chain_mask, 0"] if chaining else [])
             + ["    csrrci x0, ssr_enable, 1", "    ebreak"])

    return KernelBuild(
        name=f"dot/{variant.value}",
        asm="\n".join(lines) + "\n",
        symbols={},
        arrays=[(a_x, x), (a_y, y), (a_out, np.zeros(1))],
        output_addr=a_out,
        output_shape=(1,),
        golden=golden,
        meta={"kernel": "dot", "variant": variant.value, "n": n,
              "points": n, "flops": 2 * n,
              "arch_accumulators": 1 if chaining else lanes},
    )


# -- gemv ---------------------------------------------------------------------


def build_gemv(rows: int = 16, n: int = 64,
               variant: LinalgVariant = LinalgVariant.CHAINING,
               cfg: CoreConfig | None = None, seed: int = 13,
               ) -> KernelBuild:
    """``y = A @ x`` -- one chained dot-reduction per matrix row."""
    cfg = cfg or CoreConfig()
    lanes = cfg.fpu_pipe_depth + 1
    if n % lanes:
        raise ValueError(f"n={n} must be a multiple of {lanes}")

    alloc = Allocator(0x1000)
    a_mat = alloc.alloc_f64(rows * n)
    a_x = alloc.alloc_f64(n)
    a_y = alloc.alloc_f64(rows)

    rng = np.random.default_rng(seed)
    mat = rng.uniform(-1, 1, (rows, n))
    x = rng.uniform(-1, 1, n)
    golden = np.array([
        _left_reduce(_dot_partials(mat[r], x, lanes)) for r in range(rows)
    ])

    # SSR0: the matrix, row-major, armed once for all rows.
    # SSR1: x, replayed per row through a stride-0 outer dimension.
    streams = "\n".join([
        SsrPatternAsm(ssr=0, base=a_mat, bounds=[n * rows],
                      strides=[8]).emit(),
        SsrPatternAsm(ssr=1, base=a_x, bounds=[n, rows],
                      strides=[8, 0]).emit(),
    ])

    chaining = variant is LinalgVariant.CHAINING
    row_body = _reduction_loop(lanes, n // lanes, chaining)
    row_body += ["    fsd fa0, 0(a1)", "    addi a1, a1, 8"]

    loop = ([f"    li a1, {a_y}", "    li s2, 0", f"    li s3, {rows}",
             "rowloop:"]
            + row_body
            + ["    addi s2, s2, 1", "    bne s2, s3, rowloop"])

    lines = ([streams, "    csrrsi x0, ssr_enable, 1"]
             + (["    csrrwi x0, chain_mask, 8"] if chaining else [])
             + _marks(loop)
             + (["    csrrwi x0, chain_mask, 0"] if chaining else [])
             + ["    csrrci x0, ssr_enable, 1", "    ebreak"])

    return KernelBuild(
        name=f"gemv/{variant.value}",
        asm="\n".join(lines) + "\n",
        symbols={},
        arrays=[(a_mat, mat), (a_x, x), (a_y, np.zeros(rows))],
        output_addr=a_y,
        output_shape=(rows,),
        golden=golden,
        meta={"kernel": "gemv", "variant": variant.value,
              "rows": rows, "n": n, "points": rows,
              "flops": 2 * rows * n,
              "arch_accumulators": 1 if chaining else lanes},
    )


# -- complex dot -----------------------------------------------------------------


def build_cdot(n: int = 64, cfg: CoreConfig | None = None,
               seed: int = 14) -> KernelBuild:
    """Complex dot product with two chaining accumulators.

    Elements are stored interleaved ``(re, im)``.  Per block of two
    complex elements the schedule issues eight operations, alternating
    between the real chain ``ft3`` and the imaginary chain ``ft4``::

        re0 += xr0*yr0   im0 += xr0*yi0   re1 += xr1*yr1   im1 += xr1*yi1
        re0 -= xi0*yi0   im0 += xi0*yr0   re1 -= xi1*yi1   im1 += xi1*yr1

    Each chain holds two outstanding partials; together they exactly fill
    the shared logical FIFO (pipe depth 3 + 1).  The x operand pattern
    ``xr0 xr0 xr1 xr1 xi0 xi0 xi1 xi1`` is affine with ``repeat = 1``;
    the y pattern swaps re/im in the second half of each block and uses
    an indirect stream.
    """
    cfg = cfg or CoreConfig()
    if cfg.fpu_pipe_depth != 3:
        raise ValueError("cdot's dual-chain schedule is written for the "
                         "default pipe depth of 3 (capacity 4)")
    if n % 2:
        raise ValueError(f"n={n} must be even")
    blocks = n // 2

    alloc = Allocator(0x1000)
    a_x = alloc.alloc_f64(2 * n)
    a_y = alloc.alloc_f64(2 * n)
    a_out = alloc.alloc_f64(2)

    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, 2 * n)
    y = rng.uniform(-1, 1, 2 * n)

    # y index pattern per block (element indices into the y array):
    # yr0 yi0 yr1 yi1 | yi0 yr0 yi1 yr1
    y_idx = []
    for b in range(blocks):
        e0, e1 = 4 * b, 4 * b + 2
        y_idx += [e0, e0 + 1, e1, e1 + 1, e0 + 1, e0, e1 + 1, e1]
    y_idx = np.array(y_idx, dtype=np.uint32)
    a_yidx = alloc.alloc(4 * y_idx.size, align=4)

    # Golden with the exact op order.
    re_p, im_p = [0.0, 0.0], [0.0, 0.0]
    for b in range(blocks):
        for lane in range(2):
            i = 2 * b + lane
            re_p[lane] = x[2 * i] * y[2 * i] + re_p[lane]
            im_p[lane] = x[2 * i] * y[2 * i + 1] + im_p[lane]
        for lane in range(2):
            i = 2 * b + lane
            re_p[lane] = -(x[2 * i + 1] * y[2 * i + 1]) + re_p[lane]
            im_p[lane] = x[2 * i + 1] * y[2 * i] + im_p[lane]
    golden = np.array([re_p[0] + re_p[1], im_p[0] + im_p[1]])

    # x: affine, repeat=1: per block [xr0, xr1, xi0, xi1] each twice.
    x_stream = SsrPatternAsm(
        ssr=0, base=a_x,
        bounds=[2, 2, blocks], strides=[16, 8, 32], repeat=1)
    y_stream = SsrPatternAsm(
        ssr=1, base=a_y, bounds=[y_idx.size], strides=[0],
        indirect=True, idx_base=a_yidx)
    streams = x_stream.emit() + "\n" + y_stream.emit()

    block_ops = [
        "    fmadd.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
        "    fmadd.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
        "    fnmsub.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
        "    fnmsub.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
    ]
    seed_ops = [
        "    fmul.d ft3, ft0, ft1",
        "    fmul.d ft4, ft0, ft1",
        "    fmul.d ft3, ft0, ft1",
        "    fmul.d ft4, ft0, ft1",
        "    fnmsub.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
        "    fnmsub.d ft3, ft0, ft1, ft3",
        "    fmadd.d ft4, ft0, ft1, ft4",
    ]
    loop = list(seed_ops)
    if blocks > 1:
        loop += [f"    li t2, {blocks - 2}", "    frep.o t2, 7"]
        loop += block_ops
    # Drain: ft3 pops re0, re1; ft4 pops im0, im1.
    loop += [
        "    fmv.d fa0, ft3",
        "    fmv.d fa2, ft4",
        "    fmv.d fa1, ft3",
        "    fmv.d fa3, ft4",
        "    fadd.d fa0, fa0, fa1",
        "    fadd.d fa2, fa2, fa3",
        f"    li a1, {a_out}",
        "    fsd fa0, 0(a1)",
        "    fsd fa2, 8(a1)",
    ]

    mask = (1 << 3) | (1 << 4)
    lines = ([streams, "    csrrsi x0, ssr_enable, 1",
              f"    csrrwi x0, chain_mask, {mask}"]
             + _marks(loop)
             + ["    csrrwi x0, chain_mask, 0",
                "    csrrci x0, ssr_enable, 1", "    ebreak"])

    return KernelBuild(
        name="cdot",
        asm="\n".join(lines) + "\n",
        symbols={},
        arrays=[(a_x, x), (a_y, y), (a_yidx, y_idx),
                (a_out, np.zeros(2))],
        output_addr=a_out,
        output_shape=(2,),
        golden=golden,
        meta={"kernel": "cdot", "n": n, "points": n, "flops": 8 * n,
              "arch_accumulators": 2, "chain_mask": mask},
    )
