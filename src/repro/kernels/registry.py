"""Registry of the workloads evaluated in the paper and their defaults.

``STENCILS`` maps kernel name to ``(spec factory, default grid)``.  The
two paper kernels get the grid shapes used by the Fig. 3 reproduction;
the extra stencils exercise the generator on different tap structures.
"""

from __future__ import annotations

from repro.kernels.layout import Grid3d
from repro.kernels.stencil import (
    StencilSpec,
    box2d1r,
    box3d1r,
    j2d5pt,
    j3d27pt,
    star3d1r,
)

#: name -> (stencil factory, default evaluation grid).
STENCILS: dict[str, tuple] = {
    # The two paper kernels.  j3d27pt gets longer rows, amortizing the
    # per-row stream re-arm better (it shows slightly higher utilization
    # in the paper as well).
    "box3d1r": (box3d1r, Grid3d(nz=4, ny=10, nx=48)),
    "j3d27pt": (j3d27pt, Grid3d(nz=4, ny=6, nx=96)),
    # Extra kernels (not in the paper's evaluation).
    "star3d1r": (star3d1r, Grid3d(nz=4, ny=8, nx=32)),
    "j2d5pt": (j2d5pt, Grid3d(nz=1, ny=16, nx=64)),
    "box2d1r": (box2d1r, Grid3d(nz=1, ny=12, nx=64)),
}

#: The kernels of the paper's Fig. 3.
PAPER_KERNELS = ("box3d1r", "j3d27pt")

KERNELS = dict(STENCILS)


def kernel_names() -> list[str]:
    return list(STENCILS)


def get_stencil(name: str) -> tuple[StencilSpec, Grid3d]:
    """Return ``(spec, default grid)`` for kernel ``name``."""
    try:
        factory, grid = STENCILS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(STENCILS)}"
        ) from None
    return factory(), grid
