"""The five code variants of the paper's evaluation (section III).

========== ============================= ==========================
variant    stencil coefficients          result writeback
========== ============================= ==========================
Base--     explicit loads (RF subset,    explicit ``fsd``
           per-block reloads of spills)
Base-      explicit loads, as Base--     SSR (the lane freed by not
                                         streaming coefficients)
Base [7]   streamed through an SSR       explicit ``fsd``
Chaining   register file (chaining frees explicit ``fsd``
           the registers to hold all)
Chaining+  register file                 SSR (the lane freed from
                                         coefficient streaming)
========== ============================= ==========================

All variants stream the stencil *input* through SSR0 (indirect, SARIS
style -- the index fetcher occupies the third lane's resources, which is
why only one further lane is available, matching the paper's setup).
"""

from __future__ import annotations

from enum import Enum


class Variant(Enum):
    """Evaluation variant, ordered as in the paper's Fig. 3."""

    BASE_MM = "Base--"
    BASE_M = "Base-"
    BASE = "Base"
    CHAINING = "Chaining"
    CHAINING_PLUS = "Chaining+"

    @property
    def uses_chaining(self) -> bool:
        return self in (Variant.CHAINING, Variant.CHAINING_PLUS)

    @property
    def coeffs_via_ssr(self) -> bool:
        return self is Variant.BASE

    @property
    def coeffs_in_rf(self) -> bool:
        """All coefficients register-resident (needs chaining to fit)."""
        return self.uses_chaining

    @property
    def writeback_via_ssr(self) -> bool:
        return self in (Variant.BASE_M, Variant.CHAINING_PLUS)

    @property
    def label(self) -> str:
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "Variant":
        """Case-insensitive lookup by paper label (``"Chaining+"`` ...)."""
        for variant in cls:
            if variant.label.lower() == str(label).lower():
                return variant
        options = ", ".join(v.label for v in cls)
        raise ValueError(
            f"unknown variant {label!r}; choose from: {options}")


#: Paper plotting/reporting order.
VARIANT_ORDER = (
    Variant.BASE_MM,
    Variant.BASE_M,
    Variant.BASE,
    Variant.CHAINING,
    Variant.CHAINING_PLUS,
)
