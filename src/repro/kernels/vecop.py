"""The paper's Fig. 1 vector operation ``a[i] = b * (c[i] + d[i])``.

Three code variants, exactly mirroring the figure:

* **baseline** (Fig. 1a): one ``fadd``/``fmul`` pair per element; the RAW
  dependency costs the FPU-pipeline latency in stalls every iteration;
* **unrolled** (Fig. 1b): unrolled by ``fpu_depth + 1`` with one
  architectural accumulator per slot (``ft3``-``ft6``) -- full throughput
  at the price of register pressure;
* **chaining** (Fig. 1c): the same schedule with a *single* accumulator
  (``ft3``) carrying FIFO semantics via the chaining mask CSR.

``c``/``d`` stream in through SSR0/SSR1 and ``a`` streams out through
SSR2, as in the figure.  The loop can be the paper's ``bne`` form or an
``frep`` hardware loop (which removes the integer-core loop overhead, as
SARIS kernels do).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.config import CoreConfig
from repro.kernels.build import MARK_END, MARK_START, KernelBuild
from repro.kernels.layout import DOUBLE
from repro.kernels.ssrgen import SsrPatternAsm
from repro.mem.memory import Allocator


class VecopVariant(Enum):
    BASELINE = "baseline"
    UNROLLED = "unrolled"
    CHAINING = "chaining"


def build_vecop(n: int = 256, variant: VecopVariant = VecopVariant.BASELINE,
                scalar: float = 3.25, loop_mode: str = "frep",
                cfg: CoreConfig | None = None, seed: int = 7) -> KernelBuild:
    """Generate one Fig. 1 kernel build for ``n`` elements."""
    cfg = cfg or CoreConfig()
    depth = cfg.fpu_pipe_depth
    unroll = depth + 1
    if variant is not VecopVariant.BASELINE and n % unroll:
        raise ValueError(f"n={n} must be a multiple of {unroll}")
    if loop_mode not in ("bne", "frep"):
        raise ValueError(f"loop_mode must be 'bne' or 'frep', got "
                         f"{loop_mode!r}")

    alloc = Allocator(0x1000)
    a_a = alloc.alloc_f64(n)
    a_b = alloc.alloc_f64(1)
    a_c = alloc.alloc_f64(n)
    a_d = alloc.alloc_f64(n)

    rng = np.random.default_rng(seed)
    c = rng.uniform(-1.0, 1.0, n)
    d = rng.uniform(-1.0, 1.0, n)
    golden = (c + d) * scalar

    streams = "\n".join(
        SsrPatternAsm(ssr=i, base=base, bounds=[n], strides=[DOUBLE],
                      write=(i == 2)).emit()
        for i, base in enumerate((a_c, a_d, a_a))
    )

    if variant is VecopVariant.BASELINE:
        body = ["    fadd.d ft3, ft0, ft1",
                "    fmul.d ft2, ft3, fa0"]
        iters = n
    elif variant is VecopVariant.UNROLLED:
        accs = [f"ft{3 + i}" for i in range(unroll)]
        body = [f"    fadd.d {acc}, ft0, ft1" for acc in accs] \
            + [f"    fmul.d ft2, {acc}, fa0" for acc in accs]
        iters = n // unroll
    else:
        body = ["    fadd.d ft3, ft0, ft1"] * unroll \
            + ["    fmul.d ft2, ft3, fa0"] * unroll
        iters = n // unroll

    if loop_mode == "frep":
        loop = [f"    li t2, {iters - 1}",
                f"    frep.o t2, {len(body) - 1}"] + body
    else:
        loop = ["    li t3, 0", f"    li t4, {iters}", "loop:"] + body + [
            "    addi t3, t3, 1",
            "    bne t3, t4, loop",
        ]

    chain_on = ["    csrrwi x0, chain_mask, 8"] \
        if variant is VecopVariant.CHAINING else []
    chain_off = ["    csrrwi x0, chain_mask, 0"] \
        if variant is VecopVariant.CHAINING else []

    asm = "\n".join(
        [f"    # vecop a = b*(c+d), {variant.value}, n={n}",
         f"    li a0, {a_b}",
         "    fld fa0, 0(a0)",
         streams]
        + chain_on
        + ["    csrrsi x0, ssr_enable, 1",
           f"    csrrwi x0, sim_mark, {MARK_START}"]
        + loop
        + ["    csrr t5, ssr_enable      # FP-subsystem sync barrier",
           f"    csrrwi x0, sim_mark, {MARK_END}"]
        + chain_off
        + ["    csrrci x0, ssr_enable, 1",
           "    ebreak"]
    ) + "\n"

    return KernelBuild(
        name=f"vecop/{variant.value}",
        asm=asm,
        symbols={},
        arrays=[(a_b, np.array([scalar])), (a_c, c), (a_d, d),
                (a_a, np.zeros(n))],
        output_addr=a_a,
        output_shape=(n,),
        golden=golden,
        meta={
            "kernel": "vecop",
            "variant": variant.value,
            "n": n,
            "loop_mode": loop_mode,
            "unroll": 1 if variant is VecopVariant.BASELINE else unroll,
            "flops": 2 * n,
            "points": n,
            "expected_compute_ops": 2 * n,
            "arch_accumulators": {
                VecopVariant.BASELINE: 1,
                VecopVariant.UNROLLED: unroll,
                VecopVariant.CHAINING: 1,
            }[variant],
        },
    )
