"""FP instruction queue and the FREP (Xfrep) micro-loop sequencer.

The integer core dispatches FP instructions into a small queue -- the
"pseudo dual-issue" mechanism of Snitch.  The sequencer sits between the
queue and the FPU: it normally forwards instructions in order, but a
``frep`` instruction turns the following ``max_inst + 1`` FP instructions
into a hardware loop body that is replayed ``rs1 + 1`` times without any
further fetch/dispatch work by the integer core.

``frep.o`` ("outer") repeats the whole body in sequence; ``frep.i``
("inner") repeats each body instruction individually.  Register
*staggering* optionally rotates FP register numbers per iteration --
Snitch's software-unrolling aid, retained here both for fidelity and as a
baseline to compare chaining against in the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import CoreConfig
from repro.isa.encoding import unpack_frep
from repro.isa.instructions import Instr, InstrClass


@dataclass
class DispatchedEntry:
    """One FP-subsystem instruction with its captured integer operands.

    The integer core resolves everything it knows at dispatch time (memory
    addresses, CSR/scfg operand values, frep repetition counts) so the FP
    subsystem never reads the integer register file.
    """

    instr: Instr
    vals: dict[str, int] = field(default_factory=dict)
    #: Set for instructions whose result must return to the integer core
    #: (FP compares, fp->int conversions, CSR/config reads).
    sync: bool = False
    #: Pre-lowered issue micro-op (:func:`repro.core.uops.lower_fp`),
    #: attached at dispatch by the scalar-v2 engine and lazily filled in
    #: for entries that arrive without one.  Unused by the seed engine.
    uop: Any = None


class Sequencer:
    """FIFO queue + FREP replay engine in front of the FPU."""

    def __init__(self, cfg: CoreConfig):
        self.cfg = cfg
        self.queue: deque[DispatchedEntry] = deque()
        # Active frep state.
        self._body_len = 0
        self._iters = 0
        self._pos = 0
        self._inner = False
        self._stagger_max = 0
        self._stagger_mask = 0
        self._buffer: list[DispatchedEntry] = []
        self._active = False
        #: Staggered entry copies, memoized by (body index, register
        #: offset): the rewrite depends only on those two, and offsets
        #: cycle with period ``stagger_max + 1``, so each distinct copy
        #: is built once per FREP instead of once per replay.
        self._stagger_cache: dict[tuple[int, int], DispatchedEntry] = {}
        # Statistics.
        self.replayed_instrs = 0

    # -- queue (integer-core side) -----------------------------------------

    def space(self) -> int:
        """Free slots in the dispatch queue."""
        return self.cfg.fp_queue_depth - len(self.queue)

    def dispatch(self, entry: DispatchedEntry) -> None:
        if self.space() <= 0:
            raise RuntimeError("FP queue overflow")
        self.queue.append(entry)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    # -- frep --------------------------------------------------------------

    @property
    def frep_active(self) -> bool:
        return self._active

    @property
    def body_len(self) -> int:
        """Instructions in the active FREP body."""
        return self._body_len

    @property
    def iters(self) -> int:
        """Repetition count of the active FREP."""
        return self._iters

    @property
    def position(self) -> int:
        """Body-instruction instances issued since the FREP began."""
        return self._pos

    @property
    def inner(self) -> bool:
        """True for ``frep.i`` (per-instruction repetition)."""
        return self._inner

    @property
    def staggered(self) -> bool:
        """True when register staggering is in effect."""
        return bool(self._stagger_mask and self._stagger_max)

    @property
    def body_buffered(self) -> bool:
        """True once the whole body sits in the replay buffer."""
        return self._active and len(self._buffer) == self._body_len

    def body_entries(self) -> list[DispatchedEntry]:
        """The buffered body (fast-path analysis hook)."""
        return list(self._buffer)

    def jump_to(self, position: int) -> None:
        """Teleport the replay engine (fast-path hook).

        Only forward jumps within the active region are meaningful; the
        caller is responsible for having advanced all dependent state
        (FPU pipe, streams, counters) consistently.
        """
        if not self._active:
            raise RuntimeError("jump_to without an active frep")
        if not self._pos <= position < self._body_len * self._iters:
            raise ValueError(
                f"jump_to({position}) outside active frep of "
                f"{self._body_len * self._iters} instances")
        self._pos = position

    def begin_frep(self, entry: DispatchedEntry) -> None:
        """Consume a ``frep`` instruction and arm the replay engine."""
        if self._active:
            raise RuntimeError("nested frep is not supported")
        max_inst, stagger_max, stagger_mask = unpack_frep(entry.instr.imm)
        body_len = max_inst + 1
        if body_len > self.cfg.frep_buffer_depth:
            raise RuntimeError(
                f"frep body of {body_len} exceeds sequencer buffer "
                f"({self.cfg.frep_buffer_depth})"
            )
        iters = entry.vals.get("rs1", 0) + 1
        self._body_len = body_len
        self._iters = iters
        self._pos = 0
        self._inner = entry.instr.mnemonic == "frep.i"
        self._stagger_max = stagger_max
        self._stagger_mask = stagger_mask
        self._buffer = []
        self._stagger_cache = {}
        self._active = True

    def _indices(self) -> tuple[int, int]:
        """(body index, iteration index) for the current position."""
        if self._inner:
            return self._pos // self._iters, self._pos % self._iters
        return self._pos % self._body_len, self._pos // self._body_len

    # -- FPU side -------------------------------------------------------------

    def peek(self) -> DispatchedEntry | None:
        """The entry the FPU would issue this cycle, or None."""
        if not self._active:
            return self.queue[0] if self.queue else None
        body_idx, iter_idx = self._indices()
        if body_idx < len(self._buffer):
            entry = self._buffer[body_idx]
        elif self.queue:
            entry = self.queue[0]
        else:
            return None  # body instruction not yet dispatched
        if iter_idx and (self._stagger_mask and self._stagger_max):
            offset = iter_idx % (self._stagger_max + 1)
            if offset:
                key = (body_idx, offset)
                staggered = self._stagger_cache.get(key)
                if staggered is None:
                    staggered = self._staggered(entry, iter_idx)
                    self._stagger_cache[key] = staggered
                entry = staggered
        return entry

    def advance(self) -> None:
        """Consume the entry returned by the last :meth:`peek`."""
        if not self._active:
            self.queue.popleft()
            return
        body_idx, iter_idx = self._indices()
        if body_idx == len(self._buffer):
            self._buffer.append(self.queue.popleft())
        if iter_idx > 0:
            self.replayed_instrs += 1
        self._pos += 1
        if self._pos >= self._body_len * self._iters:
            self._active = False
            self._buffer = []
            self._stagger_cache = {}

    def _staggered(self, entry: DispatchedEntry,
                   iter_idx: int) -> DispatchedEntry:
        """Apply register staggering for iteration ``iter_idx``."""
        offset = iter_idx % (self._stagger_max + 1)
        if offset == 0:
            return entry
        instr = entry.instr
        spec = instr.spec
        copy = Instr(instr.mnemonic, instr.rd, instr.rs1, instr.rs2,
                     instr.rs3, instr.imm, instr.csr, instr.addr)
        if self._stagger_mask & 1 and spec.rd_domain == "f":
            copy.rd = (instr.rd + offset) % 32
        if self._stagger_mask & 2 and spec.rs1_domain == "f":
            copy.rs1 = (instr.rs1 + offset) % 32
        if self._stagger_mask & 4 and spec.rs2_domain == "f":
            copy.rs2 = (instr.rs2 + offset) % 32
        if self._stagger_mask & 8 and spec.rs3_domain == "f":
            copy.rs3 = (instr.rs3 + offset) % 32
        return DispatchedEntry(copy, entry.vals, entry.sync)

    @property
    def idle(self) -> bool:
        """True when neither queued work nor an active frep remains."""
        return not self.queue and not self._active


def is_frep(instr: Instr) -> bool:
    return instr.iclass is InstrClass.FREP
