"""Scalar chaining -- the paper's ISA extension (section II).

A 32-bit mask CSR (``0x7C3``, :data:`repro.isa.csr.CSR.CHAIN_MASK`) selects
which architectural FP registers carry *FIFO semantics*:

* a **read** of a chaining-enabled register at instruction issue *pops*:
  it stalls while the register's valid bit is clear, then consumes the
  value and clears the bit;
* a **write** is decoupled from issue: there is no WAW hazard between
  successive writers; the result travels through the FPU pipeline and
  *pushes* into the architectural register at writeback, setting the valid
  bit;
* if the valid bit is still set when a result reaches writeback, the
  writeback is refused and the (rigid, in-order) FPU pipeline stalls --
  the backpressure mechanism that keeps unconsumed elements from being
  overwritten (the orange issue slot of the paper's Fig. 1c).

The logical FIFO is therefore the FPU pipeline registers concatenated with
the architectural register: capacity ``fpu_pipe_depth + 1``, with no
additional storage -- which is the entire point of the technique.
"""

from __future__ import annotations

from repro.isa.registers import NUM_FP_REGS


class ChainController:
    """Mask CSR, valid bits, and push/pop rules for chaining registers."""

    def __init__(self, num_regs: int = NUM_FP_REGS,
                 concurrent_push_pop: bool = True):
        self.num_regs = num_regs
        self.mask = 0
        self.valid = [False] * num_regs
        self.concurrent_push_pop = concurrent_push_pop
        #: Registers popped in the current cycle (cleared by
        #: :meth:`begin_cycle`); enables same-cycle pop+push when
        #: ``concurrent_push_pop`` is set.
        self._popped_this_cycle: set[int] = set()
        #: Valid bits as of the top of the cycle; the conservative mode
        #: bases push acceptance on these, refusing pushes into a register
        #: that was still occupied when the cycle began.
        self._valid_at_start = [False] * num_regs
        # Statistics.
        self.pushes = 0
        self.pops = 0
        self.backpressure_events = 0

    # -- CSR interface -------------------------------------------------------

    def write_mask(self, mask: int) -> None:
        """Install a new chaining mask (CSR write side effect).

        Newly enabled registers start with an *empty* FIFO (valid clear);
        registers leaving chaining mode keep their last value and revert to
        plain semantics.  Software must drain a chaining register before
        disabling it, as in the paper's listings.
        """
        mask &= (1 << self.num_regs) - 1
        newly_enabled = mask & ~self.mask
        for reg in range(self.num_regs):
            if newly_enabled >> reg & 1:
                self.valid[reg] = False
        self.mask = mask

    def read_mask(self) -> int:
        return self.mask

    def status(self) -> int:
        """Valid bits packed into an int (the ``chain_status`` CSR)."""
        out = 0
        for reg in range(self.num_regs):
            if self.valid[reg]:
                out |= 1 << reg
        return out

    # -- queries -------------------------------------------------------------

    def enabled(self, reg: int) -> bool:
        """True when register ``reg`` currently has FIFO semantics."""
        return bool(self.mask >> reg & 1)

    def can_pop(self, reg: int) -> bool:
        """True when a read of chaining register ``reg`` would not stall."""
        return self.valid[reg]

    def can_push(self, reg: int) -> bool:
        """True when a writeback to ``reg`` would be accepted this cycle.

        In the default (concurrent) mode a push is accepted when the
        register is empty or was popped earlier in this cycle.  In the
        conservative mode the register must already have been empty at
        the top of the cycle -- each wrap-around then costs a bubble, and
        the sustainable unroll drops to the pipe depth (see the ablation
        benchmarks).
        """
        if self.concurrent_push_pop:
            if not self.valid[reg]:
                return True
            return reg in self._popped_this_cycle
        return not self._valid_at_start[reg] and not self.valid[reg]

    # -- datapath ------------------------------------------------------------

    def begin_cycle(self) -> None:
        """Reset per-cycle pop tracking (call once at the top of a cycle)."""
        if self._popped_this_cycle:
            self._popped_this_cycle.clear()
        if not self.concurrent_push_pop:
            # ``_valid_at_start`` is only consulted by the conservative
            # push rule, so the copy is skipped in concurrent mode.
            self._valid_at_start = list(self.valid)

    def note_pop(self, reg: int) -> None:
        """Record that ``reg`` was popped at issue; clears the valid bit."""
        self.valid[reg] = False
        self._popped_this_cycle.add(reg)
        self.pops += 1

    def note_push(self, reg: int) -> None:
        """Record a successful writeback push into ``reg``."""
        self.valid[reg] = True
        self.pushes += 1

    def note_backpressure(self) -> None:
        self.backpressure_events += 1
