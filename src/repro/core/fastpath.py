"""Vectorized FREP/SSR steady-state execution engine (the fast path).

In the paper's kernels the hot region is an ``frep`` hardware loop whose
operands stream in through SSRs and whose results leave through an SSR
or accumulate in (chaining) registers.  In steady state the cycle-level
simulator performs *exactly the same* sequence of micro-events every few
iterations -- yet the scalar model pays full Python dispatch for each of
them.  This module removes that cost without giving up a single bit of
fidelity:

1. **Eligibility** -- when the sequencer's FREP buffer fills, the body is
   analyzed once.  It is eligible when every instruction is a plain FP
   compute op (no loads/stores, no CSR/SCFG, nothing returning a value
   to the integer core), every source is an affine read-stream register,
   a loop-invariant register, or a value produced earlier in the *same*
   iteration (through a plain or chaining register), and every
   destination is an affine write-stream register or a register.  Bodies
   the analyzer cannot prove safe -- indirect streams, ``frep.i``,
   register staggering, cross-iteration register carries, FP loads --
   fall back to the scalar model, which remains the reference.

2. **Period detection** -- while the region is eligible and the rest of
   the cluster is quiescent, a structural fingerprint of all
   timing-relevant state (pipe occupancy and relative completion times,
   FIFO fill levels, chaining valid bits, TCDM port states, stream
   walker phase modulo the bank interleave) is taken each cycle,
   together with a snapshot of every counter in the machine.  Since the
   micro-architecture's timing is value-independent, two instants with
   equal fingerprints bracket one steady-state period: everything the
   window changed, later windows change identically.  The per-window
   counter deltas are additionally screened for one-shot events (an
   in-flight load landing, an integer instruction retiring) which mark
   the window as non-replayable.

3. **Batch execution** -- the remaining whole periods are then applied at
   once: every counter advances by ``N x`` its measured per-period
   delta, the stream walkers jump ahead, and all data values (register
   file, in-flight pipe results, stream FIFOs, memory written by write
   streams) are reconstructed from a *vectorized numpy evaluation* of
   the body dataflow over the batched iterations.  The numpy operators
   are chosen to be bit-identical to the scalar executors (including
   Python's ``min``/``max`` tie and NaN behavior), so results, cycle
   counts, perf counters, stall breakdowns, SSR generator state and
   TCDM traffic all land exactly where the scalar model would have put
   them -- the loop tail then drains through the scalar path.

The engine is selected by ``CoreConfig.engine`` (``"auto"``/``"fast"``/
``"scalar"``) and is attached per cluster to compute core 0; it only
engages while every other core is halted and drained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import spans as _obs
from repro.ssr.config import SsrMode


def _np_min(a, b):
    """Bit-identical to Python's ``min(a, b)`` (ties and NaNs included)."""
    return np.where(b < a, b, a)


def _np_max(a, b):
    return np.where(b > a, b, a)


def _np_fsgnj(a, b):
    return np.copysign(np.abs(a), b)


def _np_fsgnjn(a, b):
    return np.copysign(np.abs(a), -b)


def _np_fsgnjx(a, b):
    return np.copysign(np.abs(a), np.copysign(1.0, a) * np.copysign(1.0, b))


def _guard_div(a, b):
    return not np.any(b == 0.0)


def _guard_sqrt(a):
    return not np.any(np.signbit(a) & (a != 0.0)) and not np.any(np.isnan(a))


#: mnemonic -> (vectorized fn, guard).  The guard returns False when the
#: scalar executor would *raise* for some operand in the batch (divide by
#: zero, sqrt of a negative); the region then stays on the scalar path so
#: the error surfaces exactly where the reference model produces it.
_VECTOR_OPS: dict[str, tuple] = {
    "fadd.d": (np.add, None),
    "fsub.d": (np.subtract, None),
    "fmul.d": (np.multiply, None),
    "fdiv.d": (np.divide, _guard_div),
    "fsqrt.d": (np.sqrt, _guard_sqrt),
    "fmadd.d": (lambda a, b, c: a * b + c, None),
    "fmsub.d": (lambda a, b, c: a * b - c, None),
    "fnmsub.d": (lambda a, b, c: -(a * b) + c, None),
    "fnmadd.d": (lambda a, b, c: -(a * b) - c, None),
    "fsgnj.d": (_np_fsgnj, None),
    "fsgnjn.d": (_np_fsgnjn, None),
    "fsgnjx.d": (_np_fsgnjx, None),
    "fmin.d": (_np_min, None),
    "fmax.d": (_np_max, None),
    "fcvt.d.w": (lambda a: a, None),
}

#: Counters allowed to advance during a steady-state period.  Any other
#: counter moving inside the measured window marks a one-shot event (an
#: in-flight FP load landing, an integer instruction retiring, ...) that
#: must not be replayed, so the engine refuses to fast-forward.
_PERIODIC_COUNTERS = frozenset({
    "fpu_compute_ops", "fpu_fp_add", "fpu_fp_mul", "fpu_fp_fma",
    "fpu_fp_div", "fpu_fp_sqrt", "fpu_fp_minmax", "fpu_fp_sgnj",
    "fpu_fp_cvt", "ssr_reg_reads", "ssr_reg_writes", "chain_pops",
    "chain_pushes", "fp_rf_reads", "fp_rf_writes", "int_sync_stalls",
    "int_dispatch_stalls",
})

_HISTORY_CAP = 4096

_IDLE, _ARMED, _DONE, _REJECTED = range(4)


@dataclass
class _SlotPlan:
    """Dataflow of one body instruction.

    ``operands`` entries are ``("const", v)``, ``("reg", reg)`` (loop
    invariant), ``("slot", j)`` (produced earlier this iteration) or
    ``("stream", r, off)`` (the ``off``-th pop of streamer ``r`` within
    one iteration).
    """

    mnemonic: str
    operands: list
    dest: tuple  # ("stream", r) | ("reg", reg)


@dataclass
class _BodyPlan:
    """Static analysis of an eligible FREP body."""

    slots: list[_SlotPlan]
    slot_of: dict[int, int]              # id(instr) -> slot index
    read_ppi: dict[int, int]             # streamer -> pops / iteration
    read_prefix: dict[int, list[int]]    # streamer -> pops in slots < k
    write_slots: dict[int, list[int]]    # streamer -> pushing slots
    write_prefix: dict[int, list[int]]
    chain_pops: dict[int, tuple]         # reg -> (per_iter, prefix)
    chain_pushes: dict[int, tuple]
    reg_writers: dict[int, list[int]]    # non-stream dest -> writer slots


def _prefix_f(pos: int, per_iter: int, prefix: list[int], body_len: int
              ) -> int:
    """Events in instruction instances ``[0, pos)`` given per-slot
    prefix counts within one iteration."""
    return (pos // body_len) * per_iter + prefix[pos % body_len]


def _last_instance(slots: list[int], bound: int, body_len: int) -> int:
    """Largest instance index ``g < bound`` whose body slot is in
    ``slots``, or -1."""
    best = -1
    for s in slots:
        if bound - 1 - s < 0:
            continue
        g = (bound - 1 - s) // body_len * body_len + s
        if g > best:
            best = g
    return best


class FastPathEngine:
    """Steady-state detector and batch executor for one compute core."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.core = cluster.core
        self.fp = cluster.fp
        self._state = _IDLE
        self._plan: _BodyPlan | None = None
        self._history: dict[tuple, tuple[int, int, dict]] = {}
        self.stats = {
            "regions_seen": 0,
            "regions_eligible": 0,
            "applications": 0,
            "fast_forwarded_cycles": 0,
            "fast_forwarded_instrs": 0,
            "reject_reasons": {},
        }
        #: Why the most recent region analysis bailed (``None`` while
        #: the last region was eligible).
        self.reject_reason: str | None = None

    # -- per-cycle hook (end of Cluster.step) --------------------------------

    def observe(self) -> None:
        seq = self.fp.sequencer
        if not seq.frep_active:
            if self._state != _IDLE:
                self._reset()
            return
        if self._state in (_DONE, _REJECTED):
            return
        if self._state == _IDLE:
            if not seq.body_buffered:
                return
            self.stats["regions_seen"] += 1
            self.reject_reason = None
            self._plan = self._analyze()
            if self._plan is None:
                self._state = _REJECTED
                if _obs.ENABLED:
                    _obs.tracer().sim_instant(
                        "fastpath.reject", "engine", self.cluster.cycle,
                        lane=getattr(self.cluster, "obs_lane", "cluster"),
                        args={"reason": self.reject_reason})
                return
            self.stats["regions_eligible"] += 1
            if _obs.ENABLED:
                _obs.tracer().sim_instant(
                    "fastpath.accept", "engine", self.cluster.cycle,
                    lane=getattr(self.cluster, "obs_lane", "cluster"),
                    args={"body_len": seq.body_len, "iters": seq.iters})
            self._state = _ARMED
            self._history = {}
        if not self._gate():
            # The steady state is only replayable when the whole window
            # is; any non-quiescent cycle poisons collected evidence.
            self._history.clear()
            return
        if seq.position % seq.body_len:
            # Sample only at iteration boundaries: a periodic steady
            # state recurs at every phase, so matching at one phase
            # loses nothing and divides the bookkeeping cost by the
            # body length.
            return
        fingerprint = self._fingerprint()
        if fingerprint is None:
            self._history.clear()
            return
        cycle, pos = self.cluster.cycle, seq.position
        prev = self._history.get(fingerprint)
        if prev is not None and pos > prev[1]:
            period, dpos = cycle - prev[0], pos - prev[1]
            delta = self._diff(prev[2], self._snapshot())
            if not self._delta_ok(delta):
                self._state = _REJECTED
                return
            periods = self._max_periods(delta)
            if periods >= 1 and self._apply(period, delta, periods):
                self.stats["applications"] += 1
                self.stats["fast_forwarded_cycles"] += periods * period
                self.stats["fast_forwarded_instrs"] += periods * dpos
            self._state = _DONE
            self._history.clear()
            return
        if len(self._history) >= _HISTORY_CAP:
            self._state = _REJECTED
            self._history.clear()
            return
        self._history[fingerprint] = (cycle, pos, self._snapshot())

    def _reset(self) -> None:
        self._state = _IDLE
        self._plan = None
        self._history = {}

    # -- quiescence gate -----------------------------------------------------

    def _gate(self) -> bool:
        """True when everything but the FREP region itself is static."""
        cl = self.cluster
        core, fp = self.core, self.fp
        quiescent = (
            core.halted
            or (core.waiting_sync is not None and not fp.sync_ready)
            or fp.queue_space() == 0
        )
        if not quiescent or core.barrier_wait:
            return False
        if core._pending_load_rd is not None or core.port.busy:
            return False
        if not core.halted and core.waiting_sync is None \
                and core.stall_until > cl.cycle:
            return False
        if fp.lsu.busy or not cl.dma.idle:
            return False
        for i, other in enumerate(cl.cores):
            if other is core:
                continue
            ofp = cl.fps[i]
            if not other.halted or other.port.busy \
                    or other._pending_load_rd is not None:
                return False
            if not ofp.idle or not ofp.streamers_done():
                return False
        return True

    # -- eligibility ---------------------------------------------------------

    def _is_stream(self, reg: int) -> bool:
        return self.fp.ssr_enable and reg < len(self.fp.streamers)

    def _affine_ok(self, streamer, mode: SsrMode) -> bool:
        cfg = streamer.cfg
        if cfg is None or cfg.mode != mode or cfg.indirect \
                or streamer._gen is None:
            return False
        if cfg.base % 8:
            return False
        return all(cfg.strides[d] % 8 == 0 for d in range(cfg.ndims))

    def _reject(self, reason: str) -> None:
        """Record why this region falls back to the scalar path."""
        self.reject_reason = reason
        reasons = self.stats["reject_reasons"]
        reasons[reason] = reasons.get(reason, 0) + 1
        return None

    def _analyze(self) -> _BodyPlan | None:
        from collections import deque

        fp = self.fp
        seq = fp.sequencer
        chain = fp.chain
        if seq.inner or seq.staggered:
            return self._reject("nested-or-staggered-frep")

        body = seq.body_entries()
        slots: list[_SlotPlan] = []
        slot_of: dict[int, int] = {}
        read_ppi: dict[int, int] = {}
        read_prefix: dict[int, list[int]] = {}
        write_slots: dict[int, list[int]] = {}
        chain_fifos: dict[int, deque] = {}
        chain_pop_slots: dict[int, list[int]] = {}
        chain_push_slots: dict[int, list[int]] = {}
        reg_writers: dict[int, list[int]] = {}
        invariant_reads: set[int] = set()
        last_writer: dict[int, int] = {}

        for j, entry in enumerate(body):
            instr = entry.instr
            spec = instr.spec
            if entry.sync or spec.rd_domain != "f" \
                    or instr.mnemonic not in _VECTOR_OPS:
                return self._reject("non-vector-op")
            operands = []
            chain_seen: dict[int, tuple] = {}

            def classify(reg: int):
                if self._is_stream(reg):
                    s = fp.streamers[reg]
                    if not self._affine_ok(s, SsrMode.READ):
                        return None
                    off = read_ppi.get(reg, 0)
                    read_ppi[reg] = off + 1
                    return ("stream", reg, off)
                if chain.enabled(reg):
                    if reg in chain_seen:
                        return chain_seen[reg]
                    fifo = chain_fifos.setdefault(reg, deque())
                    if not fifo:
                        return None  # would pop a pre-iteration value
                    src = ("slot", fifo.popleft())
                    chain_pop_slots.setdefault(reg, []).append(j)
                    chain_seen[reg] = src
                    return src
                if reg in last_writer:
                    return ("slot", last_writer[reg])
                invariant_reads.add(reg)
                return ("reg", reg)

            if spec.rs1_domain == "x":
                operands.append(("const", float(entry.vals.get("rs1", 0))))
            elif spec.rs1_domain == "f":
                operands.append(classify(instr.rs1))
            if spec.rs2_domain == "f":
                operands.append(classify(instr.rs2))
            if spec.rs3_domain == "f":
                operands.append(classify(instr.rs3))
            if any(op is None for op in operands):
                return self._reject("ineligible-operand")

            dest = instr.rd
            if self._is_stream(dest):
                s = fp.streamers[dest]
                if not self._affine_ok(s, SsrMode.WRITE):
                    return self._reject("non-affine-write-stream")
                write_slots.setdefault(dest, []).append(j)
                dest_desc = ("stream", dest)
            else:
                if chain.enabled(dest):
                    chain_fifos.setdefault(dest, deque()).append(j)
                    chain_push_slots.setdefault(dest, []).append(j)
                else:
                    last_writer[dest] = j
                reg_writers.setdefault(dest, []).append(j)
                dest_desc = ("reg", dest)
            slots.append(_SlotPlan(instr.mnemonic, operands, dest_desc))
            slot_of[id(instr)] = j

        # A chaining push left unmatched would be popped next iteration:
        # a cross-iteration carry the vectorized evaluation cannot model.
        if any(fifo for fifo in chain_fifos.values()):
            return self._reject("cross-iteration-chain-carry")
        # A register read before any write in the same iteration carries
        # the previous iteration's value.
        if any(reg in reg_writers for reg in invariant_reads):
            return self._reject("cross-iteration-register-carry")

        # Build per-slot prefix counts (events in slots < k).
        L = len(body)

        def prefixes(positions: dict[int, list[int]]) -> dict:
            out = {}
            for key, where in positions.items():
                pref = [0] * L
                count = 0
                marks = set(where)
                for k in range(L):
                    pref[k] = count
                    if k in marks:
                        count += 1
                out[key] = pref
            return out

        stream_pop_positions: dict[int, list[int]] = {}
        for j, sp in enumerate(slots):
            for op in sp.operands:
                if op[0] == "stream":
                    stream_pop_positions.setdefault(op[1], []).append(j)
        read_prefix = {}
        for r, where in stream_pop_positions.items():
            pref = [0] * L
            count = 0
            for k in range(L):
                pref[k] = count
                count += where.count(k)
            read_prefix[r] = pref

        chain_pops = {c: (len(w), prefixes({c: w})[c])
                      for c, w in chain_pop_slots.items()}
        chain_pushes = {c: (len(w), prefixes({c: w})[c])
                        for c, w in chain_push_slots.items()}
        write_prefix = prefixes(write_slots)

        # The streams the body writes must not alias anything the body
        # reads (bulk gathers assume stable inputs) or another write
        # stream (bulk scatters assume a single in-order writer).
        from repro.ssr.address_gen import affine_addr_range
        mem_size = self.cluster.mem.size
        wranges = [affine_addr_range(fp.streamers[r].cfg)
                   for r in write_slots]
        rranges = [affine_addr_range(fp.streamers[r].cfg)
                   for r in read_ppi]
        for i, (wlo, whi) in enumerate(wranges):
            if wlo < 0 or whi >= mem_size:
                # Scalar path must surface the fault.
                return self._reject("write-stream-out-of-range")
            for rlo, rhi in rranges:
                if wlo <= rhi and rlo <= whi:
                    return self._reject("write-stream-alias")
            for wlo2, whi2 in wranges[i + 1:]:
                if wlo <= whi2 and wlo2 <= whi:
                    return self._reject("write-stream-alias")

        return _BodyPlan(
            slots=slots, slot_of=slot_of, read_ppi=read_ppi,
            read_prefix=read_prefix, write_slots=write_slots,
            write_prefix=write_prefix, chain_pops=chain_pops,
            chain_pushes=chain_pushes, reg_writers=reg_writers)

    # -- structural fingerprint ----------------------------------------------

    def _fingerprint(self) -> tuple | None:
        cl, fp, core = self.cluster, self.fp, self.core
        seq = fp.sequencer
        plan = self._plan
        cycle = cl.cycle
        interleave = cl.tcdm.interleave_bytes

        pipe_part = []
        for op in fp.pipe.in_flight:
            slot = plan.slot_of.get(id(op.instr))
            if slot is None:
                return None  # a pre-loop op is still in flight
            pipe_part.append((slot, op.completes_at - cycle))

        stream_part = []
        for s in fp.streamers:
            if s._igen is not None and not s.done:
                return None  # data-dependent addresses: never periodic
            if s.cfg is None:
                stream_part.append(None)
                continue
            gen = s._gen
            if gen is None:
                stream_part.append(("idone", len(s._fifo)))
                continue
            digits = tuple(gen._idx[d] for d in range(gen.cfg.ndims - 1))
            next_mod = None if gen.exhausted else gen.peek() % interleave
            port = s.data_port
            pending = port._pending
            stream_part.append((
                s.cfg.mode, len(s._fifo), s._rep_count, s._data_requested,
                None if s._pending_write_addr is None
                else s._pending_write_addr % interleave,
                len(s._idx_fifo), digits, next_mod, gen.exhausted,
                pending is not None,
                None if pending is None else pending.addr % interleave,
                port._response_ready,
            ))

        return (
            seq.position % seq.body_len,
            tuple(pipe_part),
            max(fp.pipe._last_completion - cycle, 0),
            fp.chain.mask,
            tuple(fp.chain.valid),
            tuple(fp.fpregs.busy),
            fp.sync_ready,
            len(seq.queue),
            core.halted, core.waiting_sync is not None, core.pc,
            tuple(stream_part),
            cl.tcdm._rr_offset,
        )

    # -- counter snapshots ---------------------------------------------------

    def _snapshot(self) -> dict:
        cl = self.cluster
        perf = cl.perf
        streamers = {}
        for fi, ofp in enumerate(cl.fps):
            for si, s in enumerate(ofp.streamers):
                streamers[(fi, si)] = (
                    s.active_cycles, s.elements_moved,
                    s._to_consume, s._to_produce,
                    s._gen.position if s._gen is not None else 0)
        counters, stalls = perf.counter_state()
        return {
            "counters": counters,
            "stalls": stalls,
            "pos": self.fp.sequencer.position,
            "replayed": self.fp.sequencer.replayed_instrs,
            "chain": (self.fp.chain.pushes, self.fp.chain.pops,
                      self.fp.chain.backpressure_events),
            "tcdm": (cl.tcdm.total_accesses, cl.tcdm.total_conflicts,
                     cl.tcdm.busy_bank_cycles),
            "ports": [(p.reads, p.writes, p.conflicts)
                      for p in cl.tcdm.ports],
            "streamers": streamers,
            "lsu": tuple((fp.lsu.loads, fp.lsu.stores) for fp in cl.fps),
            "dma": cl.dma.bytes_moved,
            "int_instrs": perf.counters.get("int_instrs", 0),
        }

    @staticmethod
    def _diff(a: dict, b: dict) -> dict:
        """Per-entry ``b - a`` over two snapshots."""
        delta: dict = {"counters": {}, "stalls": {}, "ports": {},
                       "streamers": {}}
        for key in ("counters", "stalls"):
            for name in b[key].keys() | a[key].keys():
                d = b[key].get(name, 0) - a[key].get(name, 0)
                if d:
                    delta[key][name] = d
        delta["ports"] = [tuple(y - x for x, y in zip(pa, pb))
                          for pa, pb in zip(a["ports"], b["ports"])]
        for key in b["streamers"]:
            delta["streamers"][key] = tuple(
                y - x for x, y in zip(a["streamers"][key],
                                      b["streamers"][key]))
        for key in ("pos", "replayed", "dma", "int_instrs"):
            delta[key] = b[key] - a[key]
        for key in ("chain", "tcdm"):
            delta[key] = tuple(y - x for x, y in zip(a[key], b[key]))
        delta["lsu"] = tuple(
            tuple(y - x for x, y in zip(la, lb))
            for la, lb in zip(a["lsu"], b["lsu"]))
        return delta

    def _delta_ok(self, delta: dict) -> bool:
        """Refuse windows containing any non-periodic (one-shot) event."""
        if delta["int_instrs"] or delta["dma"]:
            return False
        if any(any(pair) for pair in delta["lsu"]):
            return False
        for name, d in delta["counters"].items():
            if d and name not in _PERIODIC_COUNTERS:
                return False
        plan = self._plan
        ports = self.cluster.tcdm.ports
        used_ports = {self.fp.streamers[r].data_port
                      for r in (*plan.read_ppi, *plan.write_slots)}
        for index, d in enumerate(delta["ports"]):
            if ports[index] not in used_ports and any(d):
                return False
        core_index = self.cluster.cores.index(self.core)
        used_idx = set(plan.read_ppi) | set(plan.write_slots)
        for (fi, si), d in delta["streamers"].items():
            if (fi != core_index or si not in used_idx) and any(d):
                return False
        return True

    def _max_periods(self, delta: dict) -> int:
        seq = self.fp.sequencer
        dpos = delta["pos"]
        if dpos <= 0:
            return 0
        total_pos = seq.body_len * seq.iters
        n = (total_pos - seq.position - 1) // dpos
        core_index = self.cluster.cores.index(self.core)
        for si, s in enumerate(self.fp.streamers):
            d = delta["streamers"].get((core_index, si))
            if d is None or s._gen is None:
                continue
            dact, dmov, dcons, dprod, dgen = d
            if dgen > 0:
                n = min(n, (s._gen.cfg.total_elements()
                            - s._gen.position) // dgen)
            if dcons < 0:
                n = min(n, s._to_consume // -dcons)
            if dprod < 0:
                n = min(n, s._to_produce // -dprod)
        return max(n, 0)

    # -- batch application ---------------------------------------------------

    def _apply(self, period: int, delta: dict, n: int) -> bool:
        """Advance the cluster by ``n`` whole periods.  All consistency
        checks run before the first mutation; on any doubt the method
        returns False and the scalar path simply keeps stepping."""
        cl, fp, plan = self.cluster, self.fp, self._plan
        seq = fp.sequencer
        mem = cl.mem
        L = seq.body_len
        pipe_ops = fp.pipe.in_flight
        core_index = cl.cores.index(self.core)

        pos0 = seq.position
        pos1 = pos0 + n * delta["pos"]
        retired0 = pos0 - len(pipe_ops)
        retired1 = pos1 - len(pipe_ops)
        if retired0 < 0:
            return False

        # Chaining alignment: every pop must match a push from the same
        # iteration.  A pre-loop seeded FIFO would shift the pairing.
        for c, (per_pop, pop_pref) in plan.chain_pops.items():
            per_push, push_pref = plan.chain_pushes.get(c, (0, [0] * L))
            pops = _prefix_f(pos0, per_pop, pop_pref, L)
            pushes = _prefix_f(retired0, per_push, push_pref, L)
            if int(fp.chain.valid[c]) - (pushes - pops) != 0:
                return False

        # Per-stream alignment of pop/push indices with iteration count.
        sdelta = {si: delta["streamers"][(core_index, si)]
                  for si in range(len(fp.streamers))
                  if (core_index, si) in delta["streamers"]}
        pre_pops: dict[int, int] = {}
        for r, ppi in plan.read_ppi.items():
            s = fp.streamers[r]
            init_c = s.cfg.total_elements() * (s.cfg.repeat + 1)
            pre = (init_c - s._to_consume) \
                - _prefix_f(pos0, ppi, plan.read_prefix[r], L)
            if pre < 0:
                return False
            pre_pops[r] = pre
        pre_push: dict[int, int] = {}
        for r, wslots in plan.write_slots.items():
            s = fp.streamers[r]
            pre = (s.cfg.total_elements() - s._to_produce) \
                - _prefix_f(retired0, len(wslots), plan.write_prefix[r], L)
            if pre < 0:
                return False
            pre_push[r] = pre
            rflag = 1 if s.data_port._response_ready else 0
            if s.elements_moved + rflag < pre:
                return False

        # How many iterations the vectorized evaluation must cover.
        iters = seq.iters
        eval_iters = iters
        for r, ppi in plan.read_ppi.items():
            s = fp.streamers[r]
            init_c = s.cfg.total_elements() * (s.cfg.repeat + 1)
            eval_iters = min(eval_iters,
                             (init_c - pre_pops[r]) // ppi + 1)
        for r, wslots in plan.write_slots.items():
            s = fp.streamers[r]
            eval_iters = min(
                eval_iters,
                (s.cfg.total_elements() - pre_push[r]) // len(wslots) + 1)
        if (pos1 - 1) // L >= eval_iters:
            return False

        # Gather stream inputs and evaluate the body over the batch.
        from repro.ssr.address_gen import affine_addresses

        elems: dict[int, np.ndarray] = {}
        for r, ppi in plan.read_ppi.items():
            s = fp.streamers[r]
            rep = s.cfg.repeat
            dgen = sdelta.get(r, (0,) * 5)[4]
            dmov = sdelta.get(r, (0,) * 5)[1]
            total_r = s.cfg.total_elements()
            needed = max(
                (pre_pops[r] + eval_iters * ppi + rep) // (rep + 1) + 1,
                s._gen.position + n * dgen,
                s.elements_moved + n * dmov)
            needed = min(needed, total_r)
            addrs = affine_addresses(s.cfg, np.arange(needed))
            try:
                elems[r] = mem.gather_f64(addrs)
            except Exception:
                return False

        results: dict[int, np.ndarray] = {}
        it = np.arange(eval_iters, dtype=np.int64)
        with np.errstate(all="ignore"):
            for j, sp in enumerate(plan.slots):
                ops = []
                for od in sp.operands:
                    if od[0] == "const":
                        ops.append(np.full(eval_iters, od[1]))
                    elif od[0] == "reg":
                        ops.append(np.full(eval_iters,
                                           fp.fpregs.values[od[1]]))
                    elif od[0] == "slot":
                        ops.append(results[od[1]])
                    else:
                        r, off = od[1], od[2]
                        rep = fp.streamers[r].cfg.repeat
                        idx = (pre_pops[r] + it * plan.read_ppi[r] + off) \
                            // (rep + 1)
                        np.minimum(idx, len(elems[r]) - 1, out=idx)
                        ops.append(elems[r][idx])
                fn, guard = _VECTOR_OPS[sp.mnemonic]
                if guard is not None and not guard(*ops):
                    return False
                results[j] = fn(*ops)

        def value(g: int) -> float:
            return float(results[g % L][g // L])

        wmat = {r: np.stack([results[j] for j in wslots])
                for r, wslots in plan.write_slots.items()}

        def wvals(r: int, q: np.ndarray) -> np.ndarray:
            p = q - pre_push[r]
            nw = len(plan.write_slots[r])
            return wmat[r][p % nw, p // nw]

        # ---- no more failure paths: mutate ---------------------------------
        dt = n * period

        perf = cl.perf
        perf.add_scaled(delta["counters"], delta["stalls"], n)
        cp, cpop, cbp = delta["chain"]
        fp.chain.pushes += n * cp
        fp.chain.pops += n * cpop
        fp.chain.backpressure_events += n * cbp
        ta, tc, tb = delta["tcdm"]
        cl.tcdm.total_accesses += n * ta
        cl.tcdm.total_conflicts += n * tc
        cl.tcdm.busy_bank_cycles += n * tb
        for port, (dr, dw, dc) in zip(cl.tcdm.ports, delta["ports"]):
            port.reads += n * dr
            port.writes += n * dw
            port.conflicts += n * dc

        seq.jump_to(pos1)
        seq.replayed_instrs += n * delta["replayed"]

        for i, op in enumerate(pipe_ops):
            op.value = value(retired1 + i)
        fp.pipe.shift_time(dt)

        for reg, writers in plan.reg_writers.items():
            g = _last_instance(writers, retired1, L)
            if g >= 0:
                fp.fpregs.values[reg] = value(g)

        from collections import deque as _deque
        for si, d in sdelta.items():
            s = fp.streamers[si]
            dact, dmov, dcons, dprod, dgen = d
            s.active_cycles += n * dact
            s.elements_moved += n * dmov
            s._to_consume += n * dcons
            s._to_produce += n * dprod
            if s._gen is None or (not dgen and not dmov
                                  and not dcons and not dprod):
                continue
            if si in plan.read_ppi:
                s._gen.jump_to(s._gen.position + n * dgen)
                fill = len(s._fifo)
                end = s.elements_moved
                s._fifo = _deque(
                    float(v) for v in elems[si][end - fill:end])
                port = s.data_port
                if port._pending is not None:
                    port._pending.addr = int(affine_addresses(
                        s.cfg, [s._gen.position - 1])[0])
                if port._response_ready:
                    port._response = float(elems[si][s._gen.position - 1])
            elif si in plan.write_slots:
                rflag = 1 if s.data_port._response_ready else 0
                w0 = s.elements_moved - n * dmov
                w1 = s.elements_moved
                q = np.arange(w0 + rflag, w1 + rflag, dtype=np.int64)
                if q.size:
                    mem.scatter_f64(affine_addresses(s.cfg, q),
                                    wvals(si, q))
                s._gen.jump_to(s._gen.position + n * dgen)
                pushes = s.cfg.total_elements() - s._to_produce
                fill = len(s._fifo)
                window = np.arange(pushes - fill, pushes, dtype=np.int64)
                s._fifo = _deque(float(v) for v in wvals(si, window))
                if s._pending_write_addr is not None:
                    s._pending_write_addr = int(affine_addresses(
                        s.cfg, [w1])[0])
                port = s.data_port
                if port._pending is not None:
                    port._pending.addr = int(affine_addresses(
                        s.cfg, [w1])[0])
                    port._pending.data = float(wvals(
                        si, np.array([w1]))[0])

        cl.cycle += dt
        perf.cycles = cl.cycle
        return True
