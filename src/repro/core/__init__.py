"""The Snitch-like core model with the scalar-chaining extension.

The package implements a cycle-level, hazard-faithful model of a scalar
in-order RISC-V core in the style of Snitch (Zaruba et al., IEEE TC 2021):
a single-issue integer pipeline that dispatches floating-point work into a
decoupled FP subsystem ("pseudo dual-issue"), an in-order FPU pipeline with
per-class latencies, the FREP hardware loop, SSR streamers, and the paper's
contribution — *scalar chaining* — in :mod:`repro.core.chaining`.
"""

from repro.core.config import CoreConfig, SystemConfig
from repro.core.chaining import ChainController
from repro.core.cluster import Cluster
from repro.core.perf import PerfCounters, StallReason

__all__ = [
    "ChainController",
    "Cluster",
    "CoreConfig",
    "PerfCounters",
    "StallReason",
    "SystemConfig",
]
