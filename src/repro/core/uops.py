"""Micro-op lowering: pre-decoded dispatch for the scalar-v2 engine.

The seed interpreter re-discovers the same facts about an instruction on
every cycle it executes: its timing class (an enum property chain), its
operand domains, the ALU/branch callable behind its mnemonic, the perf
counter names it bumps.  This module lowers each decoded
:class:`~repro.isa.instructions.Instr` *once* into a bound handler
closure -- a micro-op -- with every per-cycle decision that is static
resolved at lowering time:

* register indices, immediates and operator callables are captured as
  closure cells;
* perf counters are pre-interned to integer slots of the flat
  :class:`~repro.core.perf.PerfCounters` storage, so a bump is a plain
  list-index increment;
* ``x0`` reads need no special case (the register file never writes
  slot 0, so ``values[0]``/``ready_cycle[0]`` are constant) and ``x0``
  writes are compiled out;
* tracing is compiled in only when a recorder is attached.

Integer micro-ops are lowered per core (:func:`lower_int`) and capture
the core's register file and perf slots directly.  FP micro-ops
(:func:`lower_fp`) are attached to :class:`DispatchedEntry` objects and
shared across FP subsystems (the SPMD program is shared), so they take
the subsystem as an argument and use its pre-resolved slot attributes.

Behaviour contract: a micro-op performs *exactly* the state transitions
and counter bumps of the seed interpreter for the same machine state --
the differential test suite steps both engines in lockstep to enforce
this.
"""

from __future__ import annotations

from repro.core.fpu import EXECUTORS, UNPIPELINED_CLASSES, InFlightOp
from repro.core.perf import SLOT, StallReason
from repro.core.sequencer import DispatchedEntry
from repro.isa.csr import is_fp_csr
from repro.isa.instructions import Instr, InstrClass

_NEVER = 1 << 60
_MASK = 0xFFFFFFFF

#: Shared empty operand dict for FP entries that capture no integer
#: operands at dispatch; entries never mutate ``vals``, so one immutable
#: mapping serves every dispatch of every such instruction.
_NO_VALS: dict[str, int] = {}


# -- integer-side lowering ---------------------------------------------------

def lower_int(core, instr: Instr):
    """Lower ``instr`` into a ``handler(cycle)`` closure bound to ``core``."""
    iclass = instr.iclass
    if instr.is_fp or (iclass is InstrClass.CSR and is_fp_csr(instr.csr)):
        return _lower_dispatch(core, instr)
    if iclass in (InstrClass.INT_ALU, InstrClass.INT_MUL,
                  InstrClass.INT_DIV):
        return _lower_alu(core, instr)
    if iclass is InstrClass.LOAD:
        return _lower_load(core, instr)
    if iclass is InstrClass.STORE:
        return _lower_store(core, instr)
    if iclass is InstrClass.BRANCH:
        return _lower_branch(core, instr)
    if iclass is InstrClass.JUMP:
        return _lower_jump(core, instr)
    if iclass in (InstrClass.CSR, InstrClass.DMA, InstrClass.SYS):
        return _lower_slow(core, instr)
    raise RuntimeError(f"integer core cannot execute {instr.mnemonic}")


_S_INT_INSTRS = SLOT["int_instrs"]
_S_HAZ = SLOT["int_hazard_stalls"]
_S_LSU = SLOT["int_lsu_stalls"]
_S_DISP = SLOT["int_dispatch_stalls"]
_S_TAKEN = SLOT["branches_taken"]
_S_NOT_TAKEN = SLOT["branches_not_taken"]
_S_FP_DISPATCHES = SLOT["fp_dispatches"]
_S_FREP_OPS = SLOT["frep_ops"]
_S_FP_CSR_OPS = SLOT["fp_csr_ops"]
_S_SCFG_OPS = SLOT["scfg_ops"]
_S_FP_LSU_OPS = SLOT["fp_lsu_ops"]
_S_FP_LOADS = SLOT["fp_loads"]
_S_FP_STORES = SLOT["fp_stores"]
_S_COMPUTE = SLOT["fpu_compute_ops"]
_S_SSR_READS = SLOT["ssr_reg_reads"]
_S_CHAIN_POPS = SLOT["chain_pops"]
_S_RF_READS = SLOT["fp_rf_reads"]


def _finish(core, instr, dispatched):
    """Shared epilogue: instruction-count bump plus optional trace."""
    vals = core.perf.values
    s_instrs = _S_INT_INSTRS
    trace = core.trace
    if trace is None:
        def finish(cycle):
            vals[s_instrs] += 1
    else:
        def finish(cycle):
            vals[s_instrs] += 1
            trace.int_issue(cycle, instr, dispatched)
    return finish


def _lower_alu(core, instr: Instr):
    from repro.core.int_core import _ALU_OPS, _IMM_TO_ALU, IntCore

    mn = instr.mnemonic
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    vals = core.perf.values
    s_haz = _S_HAZ
    finish = _finish(core, instr, False)

    if mn in ("lui", "auipc"):
        upper = (imm << 12) & _MASK
        is_auipc = mn == "auipc"

        def uop(cycle):
            value = (upper + core.pc) & _MASK if is_auipc else upper
            if rd:
                rvals[rd] = value
                rready[rd] = cycle + 1
            core.pc += 4
            finish(cycle)
        return uop

    imm_form = mn in _IMM_TO_ALU
    base_mn = _IMM_TO_ALU.get(mn, mn)
    iclass = instr.iclass
    if iclass is InstrClass.INT_MUL:
        latency = core.cfg.int_mul_latency
        op = lambda a, b: IntCore._mul(base_mn, a, b)    # noqa: E731
    elif iclass is InstrClass.INT_DIV:
        latency = core.cfg.int_div_latency
        op = lambda a, b: IntCore._div(base_mn, a, b)    # noqa: E731
    else:
        latency = 1
        op = _ALU_OPS[base_mn]

    if imm_form:
        def uop(cycle):
            if rready[rs1] > cycle:
                vals[s_haz] += 1
                return
            if rd:
                rvals[rd] = op(rvals[rs1], imm) & _MASK
                rready[rd] = cycle + latency
            core.pc += 4
            finish(cycle)
    else:
        def uop(cycle):
            if rready[rs1] > cycle or rready[rs2] > cycle:
                vals[s_haz] += 1
                return
            if rd:
                rvals[rd] = op(rvals[rs1], rvals[rs2]) & _MASK
                rready[rd] = cycle + latency
            core.pc += 4
            finish(cycle)
    return uop


def _lower_load(core, instr: Instr):
    mn = instr.mnemonic
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mn]
    port = core.port
    vals = core.perf.values
    s_haz = _S_HAZ
    s_lsu = _S_LSU
    finish = _finish(core, instr, False)

    def uop(cycle):
        if rready[rs1] > cycle:
            vals[s_haz] += 1
            return
        if port._pending is not None or port._response_ready \
                or core._pending_load_rd is not None:
            vals[s_lsu] += 1
            return
        port.request((rvals[rs1] + imm) & _MASK, width=width)
        core._pending_load_rd = rd
        core._pending_load_mn = mn
        if rd:
            rready[rd] = _NEVER
        core.pc += 4
        finish(cycle)
    return uop


def _lower_store(core, instr: Instr):
    mn = instr.mnemonic
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rs1, rs2, imm = instr.rs1, instr.rs2, instr.imm
    width = {"sb": 1, "sh": 2, "sw": 4}[mn]
    port = core.port
    vals = core.perf.values
    s_haz = _S_HAZ
    s_lsu = _S_LSU
    finish = _finish(core, instr, False)

    def uop(cycle):
        if rready[rs1] > cycle or rready[rs2] > cycle:
            vals[s_haz] += 1
            return
        if port._pending is not None or port._response_ready \
                or core._pending_load_rd is not None:
            vals[s_lsu] += 1
            return
        port.request((rvals[rs1] + imm) & _MASK, is_write=True,
                     data=rvals[rs2], width=width)
        core.pc += 4
        finish(cycle)
    return uop


def _lower_branch(core, instr: Instr):
    from repro.core.int_core import _BRANCH_OPS

    op = _BRANCH_OPS[instr.mnemonic]
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rs1, rs2, imm = instr.rs1, instr.rs2, instr.imm
    penalty_plus_one = 1 + core.cfg.branch_penalty
    vals = core.perf.values
    s_haz = _S_HAZ
    s_taken = _S_TAKEN
    s_not = _S_NOT_TAKEN
    finish = _finish(core, instr, False)

    def uop(cycle):
        if rready[rs1] > cycle or rready[rs2] > cycle:
            vals[s_haz] += 1
            return
        if op(rvals[rs1], rvals[rs2]):
            core.pc += imm
            core.stall_until = cycle + penalty_plus_one
            vals[s_taken] += 1
        else:
            core.pc += 4
            vals[s_not] += 1
        finish(cycle)
    return uop


def _lower_jump(core, instr: Instr):
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rd, rs1, imm = instr.rd, instr.rs1, instr.imm
    penalty_plus_one = 1 + core.cfg.jump_penalty
    vals = core.perf.values
    s_haz = _S_HAZ
    finish = _finish(core, instr, False)

    if instr.mnemonic == "jal":
        def uop(cycle):
            if rd:
                rvals[rd] = (core.pc + 4) & _MASK
                rready[rd] = cycle + 1
            core.pc += imm
            core.stall_until = cycle + penalty_plus_one
            finish(cycle)
    else:  # jalr
        def uop(cycle):
            if rready[rs1] > cycle:
                vals[s_haz] += 1
                return
            target = (rvals[rs1] + imm) & ~1
            if rd:
                rvals[rd] = (core.pc + 4) & _MASK
                rready[rd] = cycle + 1
            core.pc = target
            core.stall_until = cycle + penalty_plus_one
            finish(cycle)
    return uop


def _lower_slow(core, instr: Instr):
    """CSR / Xdma / SYS: rare enough to reuse the seed executors."""
    iclass = instr.iclass
    finish = _finish(core, instr, False)

    if iclass is InstrClass.SYS:
        def uop(cycle):
            core.halted = True
            core.pc += 4
            finish(cycle)
    elif iclass is InstrClass.CSR:
        def uop(cycle):
            core._execute_csr(cycle, instr)
            core.pc += 4
            finish(cycle)
    else:  # DMA
        def uop(cycle):
            if not core._execute_dma(cycle, instr):
                return
            core.pc += 4
            finish(cycle)
    return uop


def _lower_dispatch(core, instr: Instr):
    """FP-subsystem instructions: resolve operands, enqueue, move on."""
    fp = core.fp
    queue = fp.sequencer.queue
    qdepth = core.cfg.fp_queue_depth
    regs = core.regs
    rvals, rready = regs.values, regs.ready_cycle
    rs1, rs2, imm = instr.rs1, instr.rs2, instr.imm
    vals = core.perf.values
    s_haz = _S_HAZ
    s_disp = _S_DISP
    s_fpdisp = _S_FP_DISPATCHES
    finish = _finish(core, instr, True)
    fp_uop = lower_fp(instr, core.cfg)
    iclass = instr.iclass
    spec = instr.spec

    if iclass in (InstrClass.FP_LOAD, InstrClass.FP_STORE):
        def uop(cycle):
            if len(queue) >= qdepth:
                vals[s_disp] += 1
                return
            if rready[rs1] > cycle:
                vals[s_haz] += 1
                return
            entry = DispatchedEntry(
                instr, {"addr": (rvals[rs1] + imm) & _MASK}, False)
            entry.uop = fp_uop
            queue.append(entry)
            vals[s_fpdisp] += 1
            core.pc += 4
            finish(cycle)
        return uop

    if iclass is InstrClass.FREP:
        def uop(cycle):
            if len(queue) >= qdepth:
                vals[s_disp] += 1
                return
            if rready[rs1] > cycle:
                vals[s_haz] += 1
                return
            entry = DispatchedEntry(instr, {"rs1": rvals[rs1]}, False)
            entry.uop = fp_uop
            queue.append(entry)
            vals[s_fpdisp] += 1
            core.pc += 4
            finish(cycle)
        return uop

    if iclass is InstrClass.SCFG:
        if instr.mnemonic == "scfgw":
            def uop(cycle):
                if len(queue) >= qdepth:
                    vals[s_disp] += 1
                    return
                if rready[rs1] > cycle or rready[rs2] > cycle:
                    vals[s_haz] += 1
                    return
                entry = DispatchedEntry(
                    instr, {"rs1": rvals[rs1], "rs2": rvals[rs2]}, False)
                entry.uop = fp_uop
                queue.append(entry)
                vals[s_fpdisp] += 1
                core.pc += 4
                finish(cycle)
        else:  # scfgr: result returns to the integer core
            def uop(cycle):
                if len(queue) >= qdepth:
                    vals[s_disp] += 1
                    return
                if rready[rs1] > cycle:
                    vals[s_haz] += 1
                    return
                entry = DispatchedEntry(instr, {"rs1": rvals[rs1]}, True)
                entry.uop = fp_uop
                queue.append(entry)
                vals[s_fpdisp] += 1
                core.pc += 4
                finish(cycle)
                core.waiting_sync = instr
        return uop

    if iclass is InstrClass.CSR:
        reads_rs1 = spec.rs1_domain == "x" and instr.mnemonic in (
            "csrrw", "csrrs", "csrrc")
        sync = instr.rd != 0

        def uop(cycle):
            if len(queue) >= qdepth:
                vals[s_disp] += 1
                return
            if reads_rs1:
                if rready[rs1] > cycle:
                    vals[s_haz] += 1
                    return
                entry = DispatchedEntry(instr, {"rs1": rvals[rs1]}, sync)
            else:
                entry = DispatchedEntry(instr, _NO_VALS, sync)
            entry.uop = fp_uop
            queue.append(entry)
            vals[s_fpdisp] += 1
            core.pc += 4
            finish(cycle)
            if sync:
                core.waiting_sync = instr
        return uop

    if spec.rd_domain == "x":
        # FP compare / fcvt.w.d: result returns to the integer core.
        def uop(cycle):
            if len(queue) >= qdepth:
                vals[s_disp] += 1
                return
            entry = DispatchedEntry(instr, _NO_VALS, True)
            entry.uop = fp_uop
            queue.append(entry)
            vals[s_fpdisp] += 1
            core.pc += 4
            finish(cycle)
            core.waiting_sync = instr
        return uop

    if spec.rs1_domain == "x":
        # fcvt.d.w: signed integer operand captured at dispatch.
        def uop(cycle):
            if len(queue) >= qdepth:
                vals[s_disp] += 1
                return
            if rready[rs1] > cycle:
                vals[s_haz] += 1
                return
            value = rvals[rs1]
            if value & 0x80000000:
                value -= 1 << 32
            entry = DispatchedEntry(instr, {"rs1": value}, False)
            entry.uop = fp_uop
            queue.append(entry)
            vals[s_fpdisp] += 1
            core.pc += 4
            finish(cycle)
        return uop

    # Plain FP compute: no integer operands, so one immutable entry
    # serves every dispatch of this instruction.
    shared_entry = DispatchedEntry(instr, _NO_VALS, False)
    shared_entry.uop = fp_uop

    def uop(cycle):
        if len(queue) >= qdepth:
            vals[s_disp] += 1
            return
        queue.append(shared_entry)
        vals[s_fpdisp] += 1
        core.pc += 4
        finish(cycle)
    return uop


# -- FP-side lowering --------------------------------------------------------

def lower_fp(instr: Instr, cfg):
    """Lower ``instr`` into an ``issue(fp, entry, cycle)`` closure.

    The closure performs one issue attempt -- stall classification and
    accounting included -- exactly as the seed
    :meth:`FpSubsystem._issue` would.  It is shared across FP
    subsystems, so per-cluster state (perf slots, streamers, chaining)
    is reached through pre-resolved attributes on ``fp``.
    """
    iclass = instr.iclass

    if iclass is InstrClass.FREP:
        def issue(fp, entry, cycle):
            seq = fp.sequencer
            seq.begin_frep(entry)
            seq.queue.popleft()
            fp._pvals[_S_FREP_OPS] += 1
            if fp.trace is not None:
                fp.trace.fp_issue(cycle, instr, "frep")
        return issue

    if iclass is InstrClass.CSR:
        def issue(fp, entry, cycle):
            fp._apply_csr(entry)
            fp.sequencer.advance()
            fp._pvals[_S_FP_CSR_OPS] += 1
            if fp.trace is not None:
                fp.trace.fp_issue(cycle, instr, "csr")
        return issue

    if iclass is InstrClass.SCFG:
        def issue(fp, entry, cycle):
            fp._apply_scfg(entry)
            fp.sequencer.advance()
            fp._pvals[_S_SCFG_OPS] += 1
            if fp.trace is not None:
                fp.trace.fp_issue(cycle, instr, "scfg")
        return issue

    if iclass is InstrClass.FP_LOAD:
        return _lower_fp_load(instr)
    if iclass is InstrClass.FP_STORE:
        return _lower_fp_store(instr)
    return _lower_fp_compute(instr, cfg)


def _lower_fp_load(instr: Instr):
    dest = instr.rd

    def issue(fp, entry, cycle):
        lsu = fp.lsu
        port = lsu.port
        if lsu._pending_load is not None or lsu._pending_store \
                or lsu._blocked_value is not None \
                or port._pending is not None or port._response_ready:
            fp.perf.stall(StallReason.LSU_BUSY)
            return
        if fp.ssr_enable and dest < fp._num_streamers:
            raise RuntimeError(
                f"fld into stream register f{dest} while SSRs are enabled")
        regs = fp.fpregs
        chain_on = fp.chain.mask >> dest & 1
        if not chain_on and regs.busy[dest]:
            fp.perf.stall(StallReason.WAW)
            return
        if not chain_on:
            regs.busy[dest] = True
        lsu.issue_load(entry.vals["addr"], dest)
        fp._advance()
        pvals = fp._pvals
        pvals[_S_FP_LSU_OPS] += 1
        pvals[_S_FP_LOADS] += 1
        if fp.trace is not None:
            fp.trace.fp_issue(cycle, instr, "load")
    return issue


def _lower_fp_store(instr: Instr):
    src = instr.rs2

    def issue(fp, entry, cycle):
        lsu = fp.lsu
        port = lsu.port
        if lsu._pending_load is not None or lsu._pending_store \
                or lsu._blocked_value is not None \
                or port._pending is not None or port._response_ready:
            fp.perf.stall(StallReason.LSU_BUSY)
            return
        chain = fp.chain
        pvals = fp._pvals
        if fp.ssr_enable and src < fp._num_streamers:
            streamer = fp.streamers[src]
            if not streamer._fifo:
                fp.perf.stall(StallReason.SSR_EMPTY)
                return
            value = streamer.pop()
            pvals[_S_SSR_READS] += 1
        elif chain.mask >> src & 1:
            if not chain.valid[src]:
                fp.perf.stall(StallReason.CHAIN_EMPTY)
                return
            value = fp.fpregs.values[src]
            chain.note_pop(src)
            pvals[_S_CHAIN_POPS] += 1
        else:
            if fp.fpregs.busy[src]:
                fp.perf.stall(StallReason.RAW)
                return
            value = fp.fpregs.values[src]
            pvals[_S_RF_READS] += 1
        lsu.issue_store(entry.vals["addr"], value)
        fp._advance()
        pvals[_S_FP_LSU_OPS] += 1
        pvals[_S_FP_STORES] += 1
        if fp.trace is not None:
            fp.trace.fp_issue(cycle, instr, "store")
    return issue


def _lower_fp_compute(instr: Instr, cfg):
    spec = instr.spec
    mnemonic = instr.mnemonic
    arity, fn = EXECUTORS[mnemonic]
    iclass = instr.iclass
    latency = cfg.fpu_latency[iclass]
    unpipelined = iclass in UNPIPELINED_CLASSES
    s_class = SLOT[f"fpu_{iclass.name.lower()}"]
    sync = spec.rd_domain == "x"       # feq/flt/fle, fcvt.w.d
    dest = None if sync else instr.rd
    rs1_is_x = spec.rs1_domain == "x"  # fcvt.d.w reads an int operand

    sources: list[int] = []
    if spec.rs1_domain == "f":
        sources.append(instr.rs1)
    if spec.rs2_domain == "f":
        sources.append(instr.rs2)
    if spec.rs3_domain == "f":
        sources.append(instr.rs3)
    srcs = tuple(sources)
    nsrc = len(srcs)
    #: A register named in several operand positions needs the seed's
    #: pop-once (chain) / pop-per-position (stream) bookkeeping; the
    #: common duplicate-free case compiles to a leaner loop.
    has_dup = nsrc != len(set(srcs))
    n_operands = nsrc + (1 if rs1_is_x else 0)
    if n_operands != arity:  # pragma: no cover - spec table is consistent
        raise ValueError(f"{mnemonic} expects {arity} operands, got "
                         f"{n_operands}")

    def issue(fp, entry, cycle):
        chain = fp.chain
        mask = chain.mask
        valid = chain.valid
        regs = fp.fpregs
        busy = regs.busy
        nstream = fp._num_streamers if fp.ssr_enable else 0
        streamers = fp.streamers

        # -- operand readiness (seed _sources_ready; chain/RAW stalls are
        # reported before stream-empty, whatever the operand order) ------
        ssr_empty = False
        for reg in srcs:
            if reg < nstream:
                if not streamers[reg]._fifo:
                    ssr_empty = True
            elif mask >> reg & 1:
                if not valid[reg]:
                    fp.perf.stall(StallReason.CHAIN_EMPTY)
                    return
            elif busy[reg]:
                fp.perf.stall(StallReason.RAW)
                return
        if ssr_empty and not has_dup:
            fp.perf.stall(StallReason.SSR_EMPTY)
            return
        if has_dup:
            # One instruction reading the same stream register in
            # several operand positions consumes one element per
            # position; count the required pops per lane.
            need = None
            for reg in srcs:
                if reg < nstream:
                    if need is None:
                        need = {reg: 1}
                    else:
                        need[reg] = need.get(reg, 0) + 1
            if need is not None:
                for reg, count in need.items():
                    if streamers[reg].available_pops() < count:
                        fp.perf.stall(StallReason.SSR_EMPTY)
                        return

        # -- destination (WAW) and pipe capacity ---------------------------
        dest_is_ssr = dest is not None and dest < nstream
        dest_chain = False
        if dest is not None and not dest_is_ssr:
            dest_chain = bool(mask >> dest & 1)
            if not dest_chain and busy[dest]:
                fp.perf.stall(StallReason.WAW)
                return

        pipe = fp.pipe
        in_flight = pipe.in_flight
        head_retires = False
        head_complete = bool(in_flight) \
            and in_flight[0].completes_at <= cycle
        if head_complete:
            op = in_flight[0]
            if op.sync:
                head_retires = not fp.sync_ready
            elif op.dest_is_ssr:
                head_retires = streamers[op.dest].can_push()
            elif mask >> op.dest & 1:
                # The candidate's chain pops are exactly its non-stream
                # chain-enabled sources (all verified poppable above).
                hd = op.dest
                if chain.concurrent_push_pop:
                    head_retires = (not valid[hd]) \
                        or hd in chain._popped_this_cycle \
                        or (hd >= nstream and hd in srcs)
                else:
                    head_retires = not chain._valid_at_start[hd] \
                        and not valid[hd]
            else:
                head_retires = True
        if pipe._unpipelined or (
                len(in_flight) - (1 if head_retires else 0)
                >= fp._pipe_depth):
            if head_complete and not head_retires \
                    and not pipe._unpipelined:
                fp.perf.stall(StallReason.CHAIN_BACKPRESSURE)
            else:
                fp.perf.stall(StallReason.FPU_BUSY)
            return

        # -- commit the issue: pop/read operands and execute ---------------
        pvals = fp._pvals
        if nsrc == 0:
            operands = ()
        elif not has_dup:
            operands = []
            for reg in srcs:
                if reg < nstream:
                    s = streamers[reg]
                    fifo = s._fifo
                    value = fifo[0]
                    s._rep_count += 1
                    s._to_consume -= 1
                    if s._rep_count > s.cfg.repeat:
                        fifo.popleft()
                        s._rep_count = 0
                    operands.append(value)
                    pvals[_S_SSR_READS] += 1
                elif mask >> reg & 1:
                    operands.append(regs.values[reg])
                    valid[reg] = False
                    chain._popped_this_cycle.add(reg)
                    chain.pops += 1
                    pvals[_S_CHAIN_POPS] += 1
                else:
                    operands.append(regs.values[reg])
                    pvals[_S_RF_READS] += 1
        else:
            operands = []
            chain_seen = {}
            for reg in srcs:
                if reg < nstream:
                    s = streamers[reg]
                    fifo = s._fifo
                    value = fifo[0]
                    s._rep_count += 1
                    s._to_consume -= 1
                    if s._rep_count > s.cfg.repeat:
                        fifo.popleft()
                        s._rep_count = 0
                    operands.append(value)
                    pvals[_S_SSR_READS] += 1
                elif mask >> reg & 1:
                    if reg not in chain_seen:
                        value = regs.values[reg]
                        valid[reg] = False
                        chain._popped_this_cycle.add(reg)
                        chain.pops += 1
                        pvals[_S_CHAIN_POPS] += 1
                        chain_seen[reg] = value
                        operands.append(value)
                    else:
                        operands.append(chain_seen[reg])
                else:
                    operands.append(regs.values[reg])
                    pvals[_S_RF_READS] += 1

        if rs1_is_x:
            result = fn(float(entry.vals.get("rs1", 0)), *operands)
        else:
            result = fn(*operands)

        if dest is not None and not dest_is_ssr and not dest_chain:
            busy[dest] = True
        completes = cycle + latency
        if completes <= pipe._last_completion:
            completes = pipe._last_completion + 1
        pipe._last_completion = completes
        if unpipelined:
            pipe._unpipelined += 1
        in_flight.append(
            InFlightOp(instr, dest, dest_is_ssr, result, completes, sync,
                       unpipelined))

        seq = fp.sequencer
        if seq._active:
            pos = seq._pos
            if seq._inner:
                body_idx = pos // seq._iters
                iter_idx = pos % seq._iters
            else:
                body_idx = pos % seq._body_len
                iter_idx = pos // seq._body_len
            buffer = seq._buffer
            if body_idx == len(buffer):
                buffer.append(seq.queue.popleft())
            if iter_idx > 0:
                seq.replayed_instrs += 1
            pos += 1
            seq._pos = pos
            if pos >= seq._body_len * seq._iters:
                seq._active = False
                seq._buffer = []
                seq._stagger_cache = {}
        else:
            seq.queue.popleft()
        pvals[_S_COMPUTE] += 1
        pvals[s_class] += 1
        if fp.trace is not None:
            fp.trace.fp_issue(cycle, instr, "compute")
    return issue
