"""Integer and floating-point register files.

The FP register file integrates the three register personalities that an
architectural register number can take on this core:

* **plain** register with a scoreboard busy bit (in-order hazard checks),
* **stream** register (``ft0``-``ft2`` while SSRs are enabled) -- reads
  and writes are redirected to the SSR streamers by the FP subsystem,
* **chaining** register (bit set in the ``0x7C3`` mask) -- FIFO semantics
  implemented by :class:`repro.core.chaining.ChainController`.

The regfile itself only handles plain and chaining personalities; the FP
subsystem intercepts stream registers before they reach here.
"""

from __future__ import annotations

from repro.core.chaining import ChainController
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS


class IntRegFile:
    """32 integer registers with per-register ready cycles (load delays)."""

    def __init__(self):
        self.values = [0] * NUM_INT_REGS
        self.ready_cycle = [0] * NUM_INT_REGS

    def read(self, reg: int) -> int:
        return 0 if reg == 0 else self.values[reg]

    def write(self, reg: int, value: int, ready_cycle: int = 0) -> None:
        if reg == 0:
            return
        self.values[reg] = value & 0xFFFFFFFF
        self.ready_cycle[reg] = ready_cycle

    def read_signed(self, reg: int) -> int:
        value = self.read(reg)
        return value - (1 << 32) if value & (1 << 31) else value

    def ready(self, reg: int, cycle: int) -> bool:
        """True when ``reg`` can be read at ``cycle`` (no load-use stall)."""
        return reg == 0 or self.ready_cycle[reg] <= cycle

    def set_ready(self, reg: int, cycle: int) -> None:
        """Adjust only the ready cycle (e.g. scoreboarding a load dest)."""
        if reg != 0:
            self.ready_cycle[reg] = cycle


class FpRegFile:
    """32 FP registers with scoreboard bits and chaining integration."""

    def __init__(self, chain: ChainController):
        self.values = [0.0] * NUM_FP_REGS
        self.busy = [False] * NUM_FP_REGS
        self.chain = chain

    # -- issue-side checks ---------------------------------------------------

    def can_read(self, reg: int) -> bool:
        """Would reading ``reg`` at issue stall?"""
        if self.chain.enabled(reg):
            return self.chain.can_pop(reg)
        return not self.busy[reg]

    def can_write(self, reg: int) -> bool:
        """Would allocating ``reg`` as a destination at issue stall (WAW)?

        Chaining destinations never stall at issue: the WAW check is
        elided by design (ordering is preserved by the in-order pipe and
        backpressure happens at writeback).
        """
        if self.chain.enabled(reg):
            return True
        return not self.busy[reg]

    # -- datapath -------------------------------------------------------------

    def read(self, reg: int) -> float:
        """Read ``reg`` at issue; pops if it is a chaining register."""
        value = self.values[reg]
        if self.chain.enabled(reg):
            if not self.chain.can_pop(reg):
                raise RuntimeError(f"pop from empty chaining register f{reg}")
            self.chain.note_pop(reg)
        return value

    def allocate(self, reg: int) -> None:
        """Mark ``reg`` busy at issue (plain registers only)."""
        if not self.chain.enabled(reg):
            self.busy[reg] = True

    def try_writeback(self, reg: int, value: float) -> bool:
        """Attempt the writeback of ``value`` into ``reg``.

        Returns False when a chaining register refuses the push
        (backpressure); the caller must stall the FPU pipe and retry.
        """
        if self.chain.enabled(reg):
            if not self.chain.can_push(reg):
                self.chain.note_backpressure()
                return False
            self.values[reg] = value
            self.chain.note_push(reg)
            return True
        self.values[reg] = value
        self.busy[reg] = False
        return True

    def poke(self, reg: int, value: float) -> None:
        """Debug/testing write bypassing all semantics."""
        self.values[reg] = value
