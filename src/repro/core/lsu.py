"""Floating-point load/store unit.

Snitch's FP subsystem has its own path to the TCDM for ``fld``/``fsd``.
The unit handles one access at a time; an occupied unit stalls issue of
the next FP memory instruction (in-order).  Loads write their destination
register when the TCDM response arrives; the register stays scoreboarded
until then.  A load destined for a *chaining* register performs a FIFO
push on arrival and honors backpressure (it retries while the valid bit
is set).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.regfile import FpRegFile
from repro.mem.tcdm import TcdmPort


@dataclass
class _PendingLoad:
    dest: int


class FpLsu:
    """One-outstanding-access FP load/store unit."""

    def __init__(self, port: TcdmPort, fpregs: FpRegFile):
        self.port = port
        self.fpregs = fpregs
        self._pending_load: _PendingLoad | None = None
        self._pending_store = False
        #: A load value that arrived but was refused by a chaining
        #: destination (backpressure); retried every cycle.
        self._blocked_value: float | None = None
        # Statistics.
        self.loads = 0
        self.stores = 0

    @property
    def busy(self) -> bool:
        return (self._pending_load is not None or self._pending_store
                or self._blocked_value is not None or self.port.busy)

    def issue_load(self, addr: int, dest: int) -> None:
        """Start an ``fld``; the caller has already scoreboarded ``dest``."""
        if self.busy:
            raise RuntimeError("FP LSU busy")
        self.port.request(addr)
        self._pending_load = _PendingLoad(dest)
        self.loads += 1

    def issue_store(self, addr: int, value: float) -> None:
        """Start an ``fsd``; the caller has already read/popped the value."""
        if self.busy:
            raise RuntimeError("FP LSU busy")
        self.port.request(addr, is_write=True, data=value)
        self._pending_store = True
        self.stores += 1

    def block(self, dest: int, value: float) -> None:
        """Re-block a load commit that was refused by a chaining push."""
        self._pending_load = _PendingLoad(dest)
        self._blocked_value = value

    def step(self) -> list[tuple[int, float]]:
        """Process responses; returns load writebacks to commit this cycle.

        The returned ``(dest, value)`` pairs must be applied through the
        regfile's writeback path *after* the issue phase, so loaded values
        become readable in the next cycle.
        """
        commits: list[tuple[int, float]] = []
        if self._blocked_value is not None:
            # Retry a chaining push refused earlier.
            dest = self._pending_load.dest
            if self.fpregs.chain.can_push(dest):
                commits.append((dest, self._blocked_value))
                self._blocked_value = None
                self._pending_load = None
            return commits
        if self.port.response_ready():
            data = self.port.take_response()
            if self._pending_store:
                self._pending_store = False
            elif self._pending_load is not None:
                dest = self._pending_load.dest
                if self.fpregs.chain.enabled(dest) and \
                        not self.fpregs.chain.can_push(dest):
                    self._blocked_value = float(data)
                else:
                    commits.append((dest, float(data)))
                    self._pending_load = None
        return commits
