"""FPU execution: functional operator semantics and the pipeline model.

The pipeline is rigid and in-order with a single writeback port: an
instruction issued at cycle *t* with latency *L* completes no earlier than
``t + L`` and no earlier than one cycle after its predecessor.  In-flight
capacity is ``fpu_pipe_depth`` operations; a writeback refused by a
chaining register (backpressure) freezes the head and therefore, once the
pipe is full, stalls issue -- exactly the paper's mechanism where pipeline
registers double as FIFO storage.

Results become architecturally visible at the *end* of the writeback
cycle, so a dependent instruction can issue ``L + 1`` cycles after its
producer; for the 3-stage FMA pipe this is the "three wasted cycles" of
the paper's Fig. 1a.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.config import CoreConfig
from repro.isa.instructions import Instr, InstrClass

#: Classes that are not pipelined: while one is in flight the FPU accepts
#: nothing else (iterative divide/sqrt unit).
UNPIPELINED_CLASSES = frozenset({InstrClass.FP_DIV, InstrClass.FP_SQRT})


def _fsgnj(a: float, b: float) -> float:
    return math.copysign(abs(a), b)


def _fsgnjn(a: float, b: float) -> float:
    return math.copysign(abs(a), -b)


def _fsgnjx(a: float, b: float) -> float:
    sign = -1.0 if (math.copysign(1.0, a) * math.copysign(1.0, b)) < 0 else 1.0
    return math.copysign(abs(a), sign)


def _to_i32(value: float) -> int:
    """fcvt.w.d semantics (round toward zero, saturating)."""
    if math.isnan(value):
        return (1 << 31) - 1
    value = math.trunc(value)
    return max(-(1 << 31), min((1 << 31) - 1, int(value)))


#: mnemonic -> (arity, function).  Operands arrive as Python floats
#: (IEEE-754 binary64, the FPU's native width).  The FMA group is modelled
#: as multiply-then-add in double precision; the numpy golden models use
#: the same ordering so end-to-end comparisons are exact.
EXECUTORS: dict[str, tuple[int, callable]] = {
    "fadd.d": (2, lambda a, b: a + b),
    "fsub.d": (2, lambda a, b: a - b),
    "fmul.d": (2, lambda a, b: a * b),
    "fdiv.d": (2, lambda a, b: a / b),
    "fsqrt.d": (1, math.sqrt),
    "fmadd.d": (3, lambda a, b, c: a * b + c),
    "fmsub.d": (3, lambda a, b, c: a * b - c),
    "fnmsub.d": (3, lambda a, b, c: -(a * b) + c),
    "fnmadd.d": (3, lambda a, b, c: -(a * b) - c),
    "fsgnj.d": (2, _fsgnj),
    "fsgnjn.d": (2, _fsgnjn),
    "fsgnjx.d": (2, _fsgnjx),
    "fmin.d": (2, min),
    "fmax.d": (2, max),
    "feq.d": (2, lambda a, b: int(a == b)),
    "flt.d": (2, lambda a, b: int(a < b)),
    "fle.d": (2, lambda a, b: int(a <= b)),
    "fcvt.w.d": (1, _to_i32),
    "fcvt.d.w": (1, float),
}


def execute_fp(mnemonic: str, operands: list[float]) -> float | int:
    """Functionally execute an FP operation."""
    arity, fn = EXECUTORS[mnemonic]
    if len(operands) != arity:
        raise ValueError(f"{mnemonic} expects {arity} operands, got "
                         f"{len(operands)}")
    return fn(*operands)


@dataclass(slots=True)
class InFlightOp:
    """One operation travelling through the FPU pipe."""

    instr: Instr
    dest: int | None          # FP destination register, None for sync ops
    dest_is_ssr: bool         # destination is a stream register
    value: float | int
    completes_at: int
    sync: bool = False        # result goes back to the integer core
    #: Cached ``iclass in UNPIPELINED_CLASSES`` so retirement does not
    #: re-hash the enum.
    unpipelined: bool = False


class FpuPipe:
    """The in-order FPU pipeline."""

    def __init__(self, cfg: CoreConfig):
        self.cfg = cfg
        self.in_flight: deque[InFlightOp] = deque()
        self._last_completion = -1
        # Unpipelined ops currently in flight, tracked incrementally so
        # the per-issue capacity check is O(1).
        self._unpipelined = 0

    def __len__(self) -> int:
        return len(self.in_flight)

    @property
    def empty(self) -> bool:
        return not self.in_flight

    def head(self) -> InFlightOp | None:
        return self.in_flight[0] if self.in_flight else None

    def head_complete(self, cycle: int) -> bool:
        """True when the head op has traversed all stages by ``cycle``."""
        return bool(self.in_flight) and self.in_flight[0].completes_at <= cycle

    def has_unpipelined_in_flight(self) -> bool:
        return self._unpipelined > 0

    def can_accept(self, cycle: int, iclass: InstrClass,
                   head_will_retire: bool) -> bool:
        """Room for a new op this cycle?

        ``head_will_retire`` is the caller's prediction of whether the head
        writeback will be accepted this same cycle (it frees one slot).
        """
        if self._unpipelined:
            return False
        occupancy = len(self.in_flight) - (1 if head_will_retire else 0)
        return occupancy < self.cfg.fpu_pipe_depth

    def issue(self, op_instr: Instr, dest: int | None, dest_is_ssr: bool,
              value: float | int, cycle: int, sync: bool = False) -> None:
        """Insert an executed op; it will complete after its latency."""
        latency = self.cfg.fpu_latency_of(op_instr.iclass)
        completes = max(cycle + latency, self._last_completion + 1)
        self._last_completion = completes
        unpipelined = op_instr.iclass in UNPIPELINED_CLASSES
        if unpipelined:
            self._unpipelined += 1
        self.in_flight.append(
            InFlightOp(op_instr, dest, dest_is_ssr, value, completes, sync,
                       unpipelined))

    def retire_head(self) -> InFlightOp:
        """Remove and return the head op (after an accepted writeback)."""
        op = self.in_flight.popleft()
        if op.unpipelined:
            self._unpipelined -= 1
        return op

    def shift_time(self, cycles: int) -> None:
        """Translate every in-flight completion time by ``cycles``.

        Fast-path hook: after a batch fast-forward the pipe holds the
        same ops at the same relative depths, just ``cycles`` later (the
        caller replaces their values separately).
        """
        for op in self.in_flight:
            op.completes_at += cycles
        self._last_completion += cycles
