"""Core and cluster configuration.

The defaults model the Snitch compute core used in the paper: a three-stage
FMA pipeline at 1 GHz, three SSR lanes with four-deep FIFOs, a 16-entry FP
instruction queue and a 32-bank TCDM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import InstrClass

#: Valid execution-engine selections (see :attr:`CoreConfig.engine`).
#: The single source of truth -- the CLI, the sweep layer and
#: :mod:`repro.api.parse` all validate against this tuple.
ENGINES = ("auto", "fast", "scalar", "scalar-v2", "analytical")


def _default_fpu_latency() -> dict[InstrClass, int]:
    return {
        InstrClass.FP_ADD: 3,
        InstrClass.FP_MUL: 3,
        InstrClass.FP_FMA: 3,
        InstrClass.FP_DIV: 11,
        InstrClass.FP_SQRT: 17,
        InstrClass.FP_CMP: 1,
        InstrClass.FP_MINMAX: 1,
        InstrClass.FP_SGNJ: 1,
        InstrClass.FP_CVT: 2,
    }


@dataclass
class CoreConfig:
    """Tunable parameters of the simulated cluster."""

    #: Pipeline latency per FP op class, in cycles.  The paper's analysis
    #: hinges on the FMA-class latency being 3 (Snitch's FPU depth).
    fpu_latency: dict[InstrClass, int] = field(
        default_factory=_default_fpu_latency)

    #: In-flight capacity of the FPU pipeline.  Together with the
    #: architectural register this bounds the logical chaining FIFO:
    #: capacity = ``fpu_pipe_depth + 1``.
    fpu_pipe_depth: int = 3

    #: Depth of the FP instruction queue between the integer core and the
    #: FP subsystem (the "pseudo dual-issue" decoupling buffer).
    fp_queue_depth: int = 16

    #: Instruction capacity of the FREP sequencer's ring buffer.
    frep_buffer_depth: int = 16

    #: Number of SSR lanes (stream registers ``ft0``..).
    num_ssrs: int = 3

    #: Per-lane stream FIFO depth.
    ssr_fifo_depth: int = 4

    #: TCDM banking.
    tcdm_banks: int = 32
    tcdm_bank_width: int = 8
    mem_size: int = 1 << 21

    #: DMA engine bandwidth (bytes per cycle; Snitch's is 512-bit wide).
    dma_bytes_per_cycle: int = 64

    #: When True, the cluster places the *encoded* program into memory at
    #: ``Program.base`` and the integer core fetches and decodes 32-bit
    #: machine words (with a decoded-instruction cache, so timing is
    #: unchanged -- Snitch's L0 buffer assumption).  Exercises the binary
    #: encoder/decoder on every executed instruction.  Self-modifying
    #: code is not supported.
    fetch_from_memory: bool = False

    #: Integer-side timing.
    branch_penalty: int = 2
    jump_penalty: int = 1
    load_use_latency: int = 2
    int_mul_latency: int = 2
    int_div_latency: int = 8

    #: When True (default, matching our reading of the paper's Fig. 1c
    #: steady state), the chaining FIFO supports a pop and a push to the
    #: same register in the same cycle.  When False the writeback is
    #: conservatively delayed, costing a bubble per wrap-around.
    chain_concurrent_push_pop: bool = True

    #: Execution engine:
    #:
    #: * ``"auto"`` (default) -- compose both accelerated engines: the
    #:   vectorized FREP/SSR fast path (:mod:`repro.core.fastpath`) on
    #:   eligible hardware-loop regions, and the scalar-v2 micro-op
    #:   engine (pre-decoded dispatch plus idle-cycle fast-forwarding,
    #:   :mod:`repro.core.uops`) everywhere else.  With a trace recorder
    #:   attached the fast path silently stands down (it skips per-issue
    #:   events) while the micro-op engine keeps running -- it emits
    #:   every trace event exactly like the seed interpreter;
    #: * ``"scalar-v2"`` -- the micro-op engine alone, never the
    #:   vectorized fast path;
    #: * ``"fast"`` -- the vectorized fast path over the seed scalar
    #:   interpreter; attaching a trace recorder is an error instead of
    #:   a silent fallback;
    #: * ``"scalar"`` -- the seed cycle-by-cycle interpreter (the
    #:   reference model);
    #: * ``"analytical"`` -- no simulation at all: the closed-form
    #:   cycle/energy estimator (:mod:`repro.analytical`).  Estimates
    #:   carry ``Result.meta["fidelity"] = "analytical"`` and are only
    #:   accurate within the calibrated per-kernel-family error bounds
    #:   (see ``docs/fidelity.md``); a :class:`~repro.core.cluster.
    #:   Cluster` never sees this engine.
    #:
    #: All cycle-accurate engines (everything except ``"analytical"``)
    #: are bit-identical in every architecturally visible quantity:
    #: results, cycle counts, perf counters, stall breakdowns, SSR/TCDM
    #: traffic statistics, trace events and therefore energy.
    engine: str = "auto"

    #: Clock frequency used to convert cycles to time and energy to power.
    clock_hz: float = 1.0e9

    def fpu_latency_of(self, iclass: InstrClass) -> int:
        """Latency of ``iclass``; raises for non-FPU classes."""
        return self.fpu_latency[iclass]

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent configurations."""
        if self.fpu_pipe_depth < 1:
            raise ValueError("fpu_pipe_depth must be >= 1")
        if self.fp_queue_depth < 1:
            raise ValueError("fp_queue_depth must be >= 1")
        if not 0 <= self.num_ssrs <= 3:
            raise ValueError("num_ssrs must be in 0..3")
        if self.ssr_fifo_depth < 1:
            raise ValueError("ssr_fifo_depth must be >= 1")
        for iclass, lat in self.fpu_latency.items():
            if lat < 1:
                raise ValueError(f"latency of {iclass} must be >= 1")
        if self.engine not in ENGINES:
            choices = ", ".join(f"'{e}'" for e in ENGINES[:-1])
            raise ValueError(
                f"engine must be one of {choices} or '{ENGINES[-1]}', "
                f"got {self.engine!r}")

    @property
    def uses_uops(self) -> bool:
        """True when the micro-op (scalar-v2) engine drives the cores."""
        return self.engine in ("auto", "scalar-v2")


@dataclass
class SystemConfig:
    """A multi-cluster system: N clusters + global memory + interconnect.

    The defaults model a small Occamy-style scale-out: identical Snitch
    clusters attached through per-cluster links to a banked, HBM-like
    global memory.  Compute cores never touch global memory directly --
    all traffic goes through each cluster's DMA engine (addresses at or
    above :data:`repro.system.GLOBAL_BASE` select the global memory).
    """

    #: Number of compute clusters.
    num_clusters: int = 1

    #: Per-cluster core/cluster configuration (shared by all clusters).
    core: CoreConfig = field(default_factory=CoreConfig)

    #: Global (HBM-like) memory capacity in bytes.
    gmem_size: int = 1 << 24

    #: Global memory banking: aggregate peak bandwidth is
    #: ``gmem_banks * gmem_bank_bytes_per_cycle`` bytes per cycle,
    #: shared by all concurrently-active cluster DMAs.
    gmem_banks: int = 8
    gmem_bank_bytes_per_cycle: int = 8

    #: Access latency charged once at the start of every DMA transfer
    #: that touches global memory (row activation + interconnect
    #: traversal), in cycles.
    gmem_latency: int = 20

    #: Per-cluster interconnect link width in bytes per cycle; caps a
    #: single cluster's share of the global-memory bandwidth.
    link_bytes_per_cycle: int = 64

    @property
    def gmem_bytes_per_cycle(self) -> int:
        """Aggregate global-memory peak bandwidth (bytes per cycle)."""
        return self.gmem_banks * self.gmem_bank_bytes_per_cycle

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent configurations."""
        if self.num_clusters < 1:
            raise ValueError(
                f"num_clusters must be >= 1, got {self.num_clusters}")
        if self.gmem_size <= 0 or self.gmem_size % 8:
            raise ValueError(
                f"gmem_size must be a positive multiple of 8, got "
                f"{self.gmem_size}")
        if self.gmem_banks < 1:
            raise ValueError(f"gmem_banks must be >= 1, got "
                             f"{self.gmem_banks}")
        if self.gmem_bank_bytes_per_cycle < 8:
            raise ValueError(
                f"gmem_bank_bytes_per_cycle must be >= 8, got "
                f"{self.gmem_bank_bytes_per_cycle}")
        if self.gmem_latency < 0:
            raise ValueError(f"gmem_latency must be >= 0, got "
                             f"{self.gmem_latency}")
        if self.link_bytes_per_cycle < 8:
            raise ValueError(
                f"link_bytes_per_cycle must be >= 8, got "
                f"{self.link_bytes_per_cycle}")
        self.core.validate()
