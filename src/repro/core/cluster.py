"""Cluster top level: one Snitch-like compute core + TCDM + SSRs.

Matches the paper's experimental platform (a Snitch cluster with one
compute core).  :meth:`Cluster.run` steps the whole system cycle by cycle
until the program halts (``ebreak``) and all decoupled work -- the FP
queue, the FPU pipe, the LSUs and the SSR write streamers -- has drained.

Per-cycle component order (rationale in :mod:`repro.core.fp_subsystem`):

1. FP subsystem (issue, then writeback),
2. integer core (dispatches become visible to the FPU next cycle),
3. SSR streamers (consume TCDM grants, post new requests),
4. TCDM arbitration (grants are visible to requesters next cycle).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CoreConfig
from repro.core.fp_subsystem import FpSubsystem
from repro.core.int_core import IntCore
from repro.core.perf import SLOT, PerfCounters, StallReason
from repro.isa.assembler import Program, assemble
from repro.isa.csr import is_fp_csr
from repro.isa.instructions import InstrClass
from repro.mem.dma import DmaEngine
from repro.mem.memory import Allocator, Memory
from repro.mem.tcdm import Tcdm
from repro.obs import spans as _obs
from repro.ssr.config import SsrMode

_INF = 1 << 62
_S_FPU_COMPUTE = SLOT["fpu_compute_ops"]
_S_FP_LSU = SLOT["fp_lsu_ops"]

#: After a failed fast-forward probe (no dead span, or a span too short
#: to pay for itself), further probes are suppressed for this many
#: cycles.  Pure throughput damping: skipping is always optional.
_FF_COOLDOWN = 8


class SimulationTimeout(RuntimeError):
    """The cycle budget was exhausted before the program finished."""


class SimulationDeadlock(RuntimeError):
    """The program halted but decoupled work can make no progress."""


class Cluster:
    """One compute cluster: integer core, FP subsystem, SSRs, TCDM."""

    def __init__(self, program: Program | str,
                 cfg: CoreConfig | None = None,
                 symbols: dict[str, int] | None = None,
                 trace=None, num_cores: int = 1):
        self.cfg = cfg or CoreConfig()
        self.cfg.validate()
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if isinstance(program, str):
            program = assemble(program, symbols=symbols)
        self.program = program
        self.num_cores = num_cores
        self.mem = Memory(self.cfg.mem_size)
        self.tcdm = Tcdm(self.mem, self.cfg.tcdm_banks,
                         self.cfg.tcdm_bank_width)
        self.perf = PerfCounters()
        self.trace = trace
        if self.cfg.fetch_from_memory:
            self._install_program_image()
        self.dma = DmaEngine(self.mem, self.cfg.dma_bytes_per_cycle)
        # One FP subsystem (FPU + SSRs + LSU) per compute core, all
        # sharing the banked TCDM -- the Snitch cluster organization.
        # The SPMD program is shared; cores branch on mhartid.
        self.fps: list[FpSubsystem] = []
        self.cores: list[IntCore] = []
        for hart in range(num_cores):
            fp = FpSubsystem(self.cfg, self.tcdm, self.perf, trace
                             if hart == 0 else None)
            core = IntCore(self.cfg, program, self.tcdm, fp, self.perf,
                           trace if hart == 0 else None, dma=self.dma,
                           hart_id=hart)
            self.fps.append(fp)
            self.cores.append(core)
        # Single-core convenience aliases (the common case and the
        # entire paper evaluation).
        self.fp = self.fps[0]
        self.core = self.cores[0]
        if trace is not None and hasattr(trace, "attach"):
            trace.attach(self.fp)
        self.cycle = 0
        self._single = num_cores == 1
        #: Micro-op engine selection (pre-decoded dispatch + idle-cycle
        #: fast-forwarding); bit-identical to the seed interpreter and
        #: trace-safe, so it stays on under a trace recorder.
        self._v2 = self.cfg.uses_uops
        self._fp_qdepth = self.cfg.fp_queue_depth
        #: Idle-cycle fast-forward statistics (scalar-v2 engine).
        self.ff_stats = {"spans": 0, "cycles": 0}
        #: Track name for this cluster's simulated-cycle obs events;
        #: a surrounding System renames it per cluster index.
        self.obs_lane = "cluster"
        # Vectorized FREP/SSR fast path (repro.core.fastpath): attached
        # to core 0, engaged only when the detector proves a hardware
        # loop safe.  Tracing needs every per-issue event, so "auto"
        # silently runs without it under a trace; "fast" makes that an
        # error instead.
        self.fastpath = None
        if self.cfg.engine in ("auto", "fast"):
            if trace is not None:
                if self.cfg.engine == "fast":
                    raise ValueError(
                        "engine='fast' cannot be combined with tracing; "
                        "use engine='auto' or engine='scalar'")
            else:
                from repro.core.fastpath import FastPathEngine

                self.fastpath = FastPathEngine(self)

    def load_program(self, program: Program | str,
                     symbols: dict[str, int] | None = None) -> None:
        """Swap in a new program and restart every core at its base.

        Re-encodes the image into memory in binary-fetch mode and
        invalidates the cores' decode caches (see
        :meth:`~repro.core.int_core.IntCore.load_program`); data memory
        and cycle/statistics counters are left untouched.

        The decoupled units must have drained first: a swap with a
        buffered FREP body, queued FP work or an armed unfinished
        stream would keep executing the *old* program's work against
        the new one, so that is rejected outright.
        """
        for fp in self.fps:
            if not fp.idle or not fp.streamers_done():
                raise RuntimeError(
                    "load_program while the FP subsystem or an SSR "
                    "stream is still busy; run the old program to "
                    "completion first")
        if not self.dma.idle:
            raise RuntimeError("load_program while a DMA transfer is "
                               "in flight")
        if isinstance(program, str):
            program = assemble(program, symbols=symbols)
        self.program = program
        if self.cfg.fetch_from_memory:
            self._install_program_image()
        for core in self.cores:
            core.load_program(program)
        if self.fastpath is not None:
            self.fastpath._reset()

    def _install_program_image(self) -> None:
        """Encode the program into memory for binary-fetch mode."""
        words = self.program.encode_words()
        end = self.program.base + 4 * len(words)
        if end > 0x1000:
            raise ValueError(
                f"program image of {len(words)} instructions reaches "
                f"{end:#x}, colliding with the data region at 0x1000; "
                f"relocate via Program.base"
            )
        for i, word in enumerate(words):
            self.mem.write_u32(self.program.base + 4 * i, word)

    # -- data placement helpers ---------------------------------------------

    def allocator(self, base: int = 0x1000) -> Allocator:
        """Bump allocator for laying out arrays in the TCDM."""
        return Allocator(base)

    def load_f64(self, addr: int, array: np.ndarray) -> None:
        """Place a float64 array into memory."""
        self.mem.write_array(addr, np.asarray(array, dtype=np.float64))

    def read_f64(self, addr: int, shape: tuple[int, ...]) -> np.ndarray:
        return self.mem.read_array(addr, shape, np.float64)

    def load_u32(self, addr: int, array: np.ndarray) -> None:
        self.mem.write_array(addr, np.asarray(array, dtype=np.uint32))

    # -- simulation ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Program halted and every decoupled unit has drained."""
        return (all(core.halted for core in self.cores)
                and all(fp.idle and fp.streamers_done()
                        for fp in self.fps)
                and self.dma.idle)

    def _release_barrier(self) -> None:
        """Open the cluster barrier once every live core has arrived.

        Cores that already halted count as arrived; a single-core
        barrier opens immediately on the next cycle.  Cores parked at
        the *system* barrier are outside the cluster's authority: they
        have not arrived at the local barrier and are never released
        here (the surrounding :class:`repro.system.System` opens the
        system barrier once every cluster has arrived).
        """
        waiting = [c for c in self.cores
                   if c.barrier_wait and not c.sys_barrier_wait]
        if not waiting:
            return
        if all(c.halted or (c.barrier_wait and not c.sys_barrier_wait)
               for c in self.cores):
            for core in waiting:
                core.barrier_wait = False
            self.perf.bump("barriers")

    def step(self) -> None:
        """Advance the whole cluster by one cycle."""
        if self._v2:
            self._step_v2()
        else:
            self._step_seed()

    def _step_seed(self) -> None:
        """The seed per-cycle loop (engines ``scalar`` and ``fast``)."""
        for fp, core in zip(self.fps, self.cores):
            fp.step(self.cycle)
            core.step(self.cycle)
            for streamer in fp.streamers:
                streamer.step()
        self._release_barrier()
        self.dma.step()
        self.tcdm.arbitrate()
        self.cycle += 1
        self.perf.cycles = self.cycle
        if self.fastpath is not None:
            self.fastpath.observe()

    def _step_v2(self) -> None:
        """Micro-op per-cycle loop: same component order and semantics as
        :meth:`_step_seed`, with idle components skipped by cheap state
        tests (each skipped call is a proven no-op)."""
        cycle = self.cycle
        if self._single:
            fp = self.fp
            core = self.core
            fp.step_v2(cycle)
            core.step_v2(cycle)
            for streamer in fp.streamers:
                if streamer.cfg is not None:
                    streamer.step_v2()
            if core.barrier_wait:
                self._release_barrier()
        else:
            for fp, core in zip(self.fps, self.cores):
                fp.step_v2(cycle)
                core.step_v2(cycle)
                for streamer in fp.streamers:
                    if streamer.cfg is not None:
                        streamer.step_v2()
            self._release_barrier()
        dma = self.dma
        if dma._queue:
            dma.step()
        self.tcdm.arbitrate_v2()
        self.cycle = cycle + 1
        self.perf.cycles = self.cycle
        if self.fastpath is not None:
            self.fastpath.observe()

    def run(self, max_cycles: int = 5_000_000) -> PerfCounters:
        """Run to completion; returns the performance counters."""
        # The progress token exists purely for post-halt deadlock
        # detection, so it is only computed once the core has halted --
        # evaluating it every cycle was pure hot-loop waste.
        quiet_cycles = 0
        last_progress: tuple | None = None
        core = self.core
        cores = self.cores
        single_core = self._single
        v2 = self._v2
        fp0_queue = self.fp.sequencer.queue
        qdepth = self._fp_qdepth
        ff_cooldown = 0
        while True:
            if (core.halted if single_core
                    else all(c.halted for c in cores)) \
                    and (self._done_v2() if v2 else self.done):
                break
            if self.cycle >= max_cycles:
                raise SimulationTimeout(
                    f"no completion after {max_cycles} cycles "
                    f"(pc={self.core.pc:#x}, halted={self.core.halted})"
                )
            if v2:
                # Fast-forwarding needs every core blocked; test core 0
                # inline so active cycles pay a few comparisons at most.
                if (core.halted or core.barrier_wait
                        or core.waiting_sync is not None
                        or core.stall_until > self.cycle
                        or len(fp0_queue) >= qdepth) \
                        and self.cycle >= ff_cooldown \
                        and self._ff_candidate():
                    skipped = self._try_fast_forward(max_cycles)
                    if not skipped:
                        ff_cooldown = self.cycle + _FF_COOLDOWN
                        self._step_v2()
                else:
                    self._step_v2()
            else:
                self._step_seed()
            if core.halted:
                token = self._progress_token()
                quiet_cycles = 0 if token != last_progress else \
                    quiet_cycles + 1
                if quiet_cycles > 64:
                    raise SimulationDeadlock(
                        "halted but the FP subsystem or an SSR write "
                        "stream cannot drain (under-produced stream or "
                        "starved chaining pop?)"
                    )
                last_progress = token
        return self.perf

    def _progress_token(self) -> tuple:
        """Cheap state fingerprint for deadlock detection after halt."""
        queued = in_pipe = 0
        for fp in self.fps:
            queued += len(fp.sequencer.queue)
            in_pipe += len(fp.pipe.in_flight)
        waiting = 0
        for c in self.cores:
            waiting += c.barrier_wait
        pvals = self.perf.values
        return (
            self.tcdm.total_accesses,
            queued,
            in_pipe,
            pvals[_S_FPU_COMPUTE],
            pvals[_S_FP_LSU],
            self.dma.bytes_moved,
            waiting,
        )

    def _done_v2(self) -> bool:
        """Attribute-direct equivalent of :attr:`done` for the v2 loop."""
        if self.dma._queue:
            return False
        for core in self.cores:
            if not core.halted:
                return False
        for fp in self.fps:
            seq = fp.sequencer
            if seq.queue or seq._active or fp.pipe.in_flight \
                    or fp.sync_ready:
                return False
            lsu = fp.lsu
            if lsu._pending_load is not None or lsu._pending_store \
                    or lsu._blocked_value is not None \
                    or lsu.port._pending is not None \
                    or lsu.port._response_ready:
                return False
            for s in fp.streamers:
                if not s.done:
                    return False
        return True

    # -- idle-cycle fast-forwarding (scalar-v2) -----------------------------
    #
    # Quiescence protocol: a cycle is *dead* when every component either
    # cannot change state before a known future cycle (its horizon) or
    # is provably inert.  All dead cycles in a span are identical -- the
    # machine is deterministic and, with every threshold (FPU completion
    # times, branch-penalty ends, register ready cycles) beyond the
    # span, time itself cannot alter any decision -- so the engine steps
    # *one* of them normally, verifies that nothing but counters moved,
    # and replays the measured per-cycle counter delta over the rest of
    # the span in O(1).  An active DMA engine is the one deterministic
    # exception: it is stepped through the span in isolation (nothing
    # else can observe it while all cores are blocked), reproducing its
    # chunk-exact memory traffic and busy accounting.  Any
    # misclassification is caught by the signature check and simply
    # degrades into a normal single step.

    def _ff_candidate(self) -> bool:
        """Cheap pre-gate: every core blocked and no stream traffic."""
        cycle = self.cycle
        for core, fp in zip(self.cores, self.fps):
            if not (core.halted or core.barrier_wait
                    or core.waiting_sync is not None
                    or core.stall_until > cycle
                    or len(fp.sequencer.queue) >= self._fp_qdepth):
                return False
            for s in fp.streamers:
                port = s.data_port
                if port._pending is not None or port._response_ready:
                    return False
        return True

    def _streamer_quiescent(self, s) -> bool:
        """Would stepping this armed streamer do any work at all?"""
        port = s.data_port
        if port._pending is not None or port._response_ready:
            return False
        iport = s.idx_port
        if iport._pending is not None or iport._response_ready:
            return False
        if s.cfg.mode == SsrMode.READ:
            headroom = s.fifo_depth - len(s._fifo) \
                - (1 if s._data_requested else 0)
            if headroom > 0:
                if s._igen is not None:
                    if s._idx_fifo:
                        return False
                elif not s._gen.exhausted:
                    return False
        elif s._fifo:
            return False
        if s._igen is not None and not s._igen.exhausted \
                and len(s._idx_fifo) < s.fifo_depth:
            return False
        return True

    def _fp_stall_horizon(self, fp, entry, cycle, pipe_event):
        """When could the stalled head-of-queue entry next make progress?

        Returns None when the entry would issue (or its stall cannot be
        bounded), else a cycle that is <= the first possible change.
        Mirrors the issue-stall checks side-effect-free; the caller has
        already established an idle LSU, quiescent streamers and an
        incomplete pipe head.
        """
        instr = entry.instr
        iclass = instr.iclass
        if iclass in (InstrClass.FREP, InstrClass.CSR, InstrClass.SCFG):
            return None
        if iclass is InstrClass.FP_LOAD:
            dest = instr.rd
            if fp.ssr_enable and dest < fp._num_streamers:
                return None  # would raise; let the normal step do it
            if fp.chain.enabled(dest) or not fp.fpregs.busy[dest]:
                return None  # would issue
            return pipe_event  # WAW clears at the next writeback
        if iclass is InstrClass.FP_STORE:
            reason = fp._sources_ready([instr.rs2])
            if reason is StallReason.NONE:
                return None
            if reason is StallReason.SSR_EMPTY:
                return None  # an empty quiescent stream never refills
            return pipe_event  # RAW / CHAIN_EMPTY resolve via writeback
        sources = fp._fp_sources(instr)
        reason = fp._sources_ready(sources)
        if reason is not StallReason.NONE:
            if reason is StallReason.SSR_EMPTY:
                return None
            return pipe_event
        sync = instr.spec.rd_domain == "x"
        dest = None if sync else instr.rd
        if dest is not None and not fp._is_stream_reg(dest) \
                and not fp.fpregs.can_write(dest):
            return pipe_event  # WAW
        if not fp.pipe.can_accept(cycle, iclass, False):
            return pipe_event  # pipe full / unpipelined op in flight
        return None  # would issue

    def _core_fetch_horizon(self, core, fp, cycle):
        """Horizon of a running core: None unless it is hazard- or
        dispatch-stalled with a bounded wake-up."""
        instr = core._fetch()
        if instr is None:
            return None  # will raise in the normal step
        spec = instr.spec
        iclass = spec.iclass
        if instr.is_fp or (iclass is InstrClass.CSR
                           and is_fp_csr(instr.csr)):
            if len(fp.sequencer.queue) >= self._fp_qdepth:
                return _INF  # dispatch stall; resolves via an FP issue
            if iclass in (InstrClass.FP_LOAD, InstrClass.FP_STORE,
                          InstrClass.FREP):
                needed = (instr.rs1,)
            elif iclass is InstrClass.SCFG:
                needed = (instr.rs1, instr.rs2) \
                    if instr.mnemonic == "scfgw" else (instr.rs1,)
            elif iclass is InstrClass.CSR:
                needed = (instr.rs1,) if (
                    spec.rs1_domain == "x" and instr.mnemonic in (
                        "csrrw", "csrrs", "csrrc")) else ()
            elif spec.rd_domain == "x":
                needed = ()
            elif spec.rs1_domain == "x":
                needed = (instr.rs1,)
            else:
                needed = ()
        elif iclass in (InstrClass.INT_ALU, InstrClass.INT_MUL,
                        InstrClass.INT_DIV):
            from repro.core.int_core import _IMM_TO_ALU

            mn = instr.mnemonic
            if mn in ("lui", "auipc"):
                return None  # executes unconditionally
            needed = (instr.rs1,) if mn in _IMM_TO_ALU \
                else (instr.rs1, instr.rs2)
        elif iclass is InstrClass.LOAD:
            needed = (instr.rs1,)
        elif iclass in (InstrClass.STORE, InstrClass.BRANCH):
            needed = (instr.rs1, instr.rs2)
        elif iclass is InstrClass.JUMP:
            if instr.mnemonic == "jal":
                return None
            needed = (instr.rs1,)
        else:
            return None  # CSR / DMA / SYS: executes (or retries) now
        ready_cycle = core.regs.ready_cycle
        horizon = 0
        for reg in needed:
            r = ready_cycle[reg]
            if r > cycle and r > horizon:
                horizon = r
        return horizon if horizon else None

    def _classify_pair(self, core, fp, cycle):
        """Dead-state horizon of one core + FP subsystem, or None."""
        port = core.port
        if port._pending is not None or port._response_ready \
                or core._pending_load_rd is not None:
            return None
        lsu = fp.lsu
        if lsu._pending_load is not None or lsu._pending_store \
                or lsu._blocked_value is not None or lsu.port.busy:
            return None
        for s in fp.streamers:
            if s.cfg is not None and not self._streamer_quiescent(s):
                return None
        pipe = fp.pipe
        fp_event = _INF
        if pipe.in_flight:
            head_t = pipe.in_flight[0].completes_at
            if head_t <= cycle:
                return None  # a writeback fires this cycle
            fp_event = head_t
        entry = fp.sequencer.peek()
        if entry is not None:
            stall_h = self._fp_stall_horizon(fp, entry, cycle, fp_event)
            if stall_h is None:
                return None
            if stall_h < fp_event:
                fp_event = stall_h
        horizon = fp_event
        if core.halted or core.barrier_wait:
            pass
        elif core.waiting_sync is not None:
            if fp.sync_ready:
                return None  # the core consumes the sync next cycle
        elif core.stall_until > cycle:
            if core.stall_until < horizon:
                horizon = core.stall_until
        else:
            h = self._core_fetch_horizon(core, fp, cycle)
            if h is None:
                return None
            if h < horizon:
                horizon = h
        return horizon

    def _dead_horizon(self, external: int | None = None):
        """First cycle at which any cluster state can change, or None.

        ``external`` is an externally-known bound on the span (the next
        cycle at which the *environment* -- a sibling cluster in a
        :class:`repro.system.System` -- can interact with this cluster);
        it clamps the horizon, which also makes indefinitely-parked
        states (every core halted or waiting at the system barrier,
        horizon would be infinite) fast-forwardable up to that bound.
        """
        cycle = self.cycle
        horizon = _INF
        dma = self.dma
        if dma._queue:
            remaining = sum(t.row_bytes * t.rows - t.moved
                            for t in dma._queue)
            horizon = cycle + -(-remaining // dma.bytes_per_cycle)
        any_barrier = False
        for core, fp in zip(self.cores, self.fps):
            h = self._classify_pair(core, fp, cycle)
            if h is None:
                return None
            if h < horizon:
                horizon = h
            any_barrier = any_barrier or (core.barrier_wait
                                          and not core.sys_barrier_wait)
        # Mirror _release_barrier exactly: a core parked at the *system*
        # barrier has not arrived at the local one, so it blocks the
        # local release rather than triggering it.
        if any_barrier and all(c.halted
                               or (c.barrier_wait
                                   and not c.sys_barrier_wait)
                               for c in self.cores):
            return None  # the barrier opens this very cycle
        if external is not None and external < horizon:
            horizon = external
        if horizon >= _INF or horizon <= cycle + 1:
            return None
        return horizon

    def _quiet_signature(self, skip_dma: bool):
        """Everything a dead cycle must leave untouched (counters aside)."""
        tcdm = self.tcdm
        parts = [tcdm.total_accesses, tcdm.total_conflicts]
        if not skip_dma:
            parts.append(self.dma.bytes_moved)
            parts.append(len(self.dma._queue))
        for core, fp in zip(self.cores, self.fps):
            seq = fp.sequencer
            chain = fp.chain
            lsu = fp.lsu
            parts.append((
                core.pc, core.halted, core.barrier_wait,
                core.waiting_sync is not None, core.stall_until,
                core._pending_load_rd, core.port._pending is not None,
                core.port._response_ready,
                len(seq.queue), seq._active, seq._pos,
                len(fp.pipe.in_flight), fp.pipe._last_completion,
                fp.sync_ready,
                chain.pushes, chain.pops, chain.backpressure_events,
                lsu.loads, lsu.stores,
                lsu._pending_load is not None, lsu._pending_store,
            ))
            for s in fp.streamers:
                parts.append((
                    len(s._fifo), len(s._idx_fifo), s._rep_count,
                    s._to_consume, s._to_produce,
                    s.elements_moved, s.active_cycles))
        return parts

    def _try_fast_forward(self, max_cycles: int,
                          external: int | None = None) -> bool:
        """Jump over a provably-dead span; False when none exists."""
        horizon = self._dead_horizon(external)
        if horizon is None:
            return False
        start = self.cycle
        if horizon > max_cycles:
            horizon = max_cycles
        span = horizon - start
        if span < 2:
            return False
        dma_active = bool(self.dma._queue)
        sig0 = self._quiet_signature(dma_active)
        perf = self.perf
        vals0 = list(perf.values)
        stalls0 = dict(perf.stalls)
        self._step_v2()  # the measured dead cycle
        if self._quiet_signature(dma_active) != sig0:
            return True  # misclassified: one normal step was taken
        # Replay the measured per-cycle delta over the remaining span.
        k = span - 1
        pvals = perf.values
        n0 = len(vals0)
        for i in range(len(pvals)):
            d = pvals[i] - (vals0[i] if i < n0 else 0)
            if d:
                pvals[i] += d * k
        stalls = perf.stalls
        for reason, value in list(stalls.items()):
            d = value - stalls0.get(reason, 0)
            if d:
                stalls[reason] += d * k
        if dma_active:
            dma = self.dma
            for _ in range(k):
                dma.step()
        self.cycle += k
        perf.cycles = self.cycle
        self.ff_stats["spans"] += 1
        self.ff_stats["cycles"] += k
        if _obs.ENABLED:
            _obs.tracer().sim_span(
                "fast-forward", "engine", start, self.cycle,
                lane=self.obs_lane,
                args={"cycles_skipped": k, "dma_active": dma_active})
        return True

    # -- convenience metrics ---------------------------------------------------

    def fpu_utilization(self, start_mark: int | None = None,
                        end_mark: int | None = None) -> float:
        return self.perf.fpu_utilization(start_mark, end_mark)

    def runtime_seconds(self) -> float:
        return self.cycle / self.cfg.clock_hz
