"""Cluster top level: one Snitch-like compute core + TCDM + SSRs.

Matches the paper's experimental platform (a Snitch cluster with one
compute core).  :meth:`Cluster.run` steps the whole system cycle by cycle
until the program halts (``ebreak``) and all decoupled work -- the FP
queue, the FPU pipe, the LSUs and the SSR write streamers -- has drained.

Per-cycle component order (rationale in :mod:`repro.core.fp_subsystem`):

1. FP subsystem (issue, then writeback),
2. integer core (dispatches become visible to the FPU next cycle),
3. SSR streamers (consume TCDM grants, post new requests),
4. TCDM arbitration (grants are visible to requesters next cycle).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CoreConfig
from repro.core.fp_subsystem import FpSubsystem
from repro.core.int_core import IntCore
from repro.core.perf import PerfCounters
from repro.isa.assembler import Program, assemble
from repro.mem.dma import DmaEngine
from repro.mem.memory import Allocator, Memory
from repro.mem.tcdm import Tcdm


class SimulationTimeout(RuntimeError):
    """The cycle budget was exhausted before the program finished."""


class SimulationDeadlock(RuntimeError):
    """The program halted but decoupled work can make no progress."""


class Cluster:
    """One compute cluster: integer core, FP subsystem, SSRs, TCDM."""

    def __init__(self, program: Program | str,
                 cfg: CoreConfig | None = None,
                 symbols: dict[str, int] | None = None,
                 trace=None, num_cores: int = 1):
        self.cfg = cfg or CoreConfig()
        self.cfg.validate()
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if isinstance(program, str):
            program = assemble(program, symbols=symbols)
        self.program = program
        self.num_cores = num_cores
        self.mem = Memory(self.cfg.mem_size)
        self.tcdm = Tcdm(self.mem, self.cfg.tcdm_banks,
                         self.cfg.tcdm_bank_width)
        self.perf = PerfCounters()
        self.trace = trace
        if self.cfg.fetch_from_memory:
            self._install_program_image()
        self.dma = DmaEngine(self.mem, self.cfg.dma_bytes_per_cycle)
        # One FP subsystem (FPU + SSRs + LSU) per compute core, all
        # sharing the banked TCDM -- the Snitch cluster organization.
        # The SPMD program is shared; cores branch on mhartid.
        self.fps: list[FpSubsystem] = []
        self.cores: list[IntCore] = []
        for hart in range(num_cores):
            fp = FpSubsystem(self.cfg, self.tcdm, self.perf, trace
                             if hart == 0 else None)
            core = IntCore(self.cfg, program, self.tcdm, fp, self.perf,
                           trace if hart == 0 else None, dma=self.dma,
                           hart_id=hart)
            self.fps.append(fp)
            self.cores.append(core)
        # Single-core convenience aliases (the common case and the
        # entire paper evaluation).
        self.fp = self.fps[0]
        self.core = self.cores[0]
        if trace is not None and hasattr(trace, "attach"):
            trace.attach(self.fp)
        self.cycle = 0
        # Vectorized FREP/SSR fast path (repro.core.fastpath): attached
        # to core 0, engaged only when the detector proves a hardware
        # loop safe.  Tracing needs every per-issue event, so "auto"
        # silently stays scalar under a trace; "fast" makes that an
        # error instead.
        self.fastpath = None
        if self.cfg.engine != "scalar":
            if trace is not None:
                if self.cfg.engine == "fast":
                    raise ValueError(
                        "engine='fast' cannot be combined with tracing; "
                        "use engine='auto' or engine='scalar'")
            else:
                from repro.core.fastpath import FastPathEngine

                self.fastpath = FastPathEngine(self)

    def load_program(self, program: Program | str,
                     symbols: dict[str, int] | None = None) -> None:
        """Swap in a new program and restart every core at its base.

        Re-encodes the image into memory in binary-fetch mode and
        invalidates the cores' decode caches (see
        :meth:`~repro.core.int_core.IntCore.load_program`); data memory
        and cycle/statistics counters are left untouched.

        The decoupled units must have drained first: a swap with a
        buffered FREP body, queued FP work or an armed unfinished
        stream would keep executing the *old* program's work against
        the new one, so that is rejected outright.
        """
        for fp in self.fps:
            if not fp.idle or not fp.streamers_done():
                raise RuntimeError(
                    "load_program while the FP subsystem or an SSR "
                    "stream is still busy; run the old program to "
                    "completion first")
        if not self.dma.idle:
            raise RuntimeError("load_program while a DMA transfer is "
                               "in flight")
        if isinstance(program, str):
            program = assemble(program, symbols=symbols)
        self.program = program
        if self.cfg.fetch_from_memory:
            self._install_program_image()
        for core in self.cores:
            core.load_program(program)
        if self.fastpath is not None:
            self.fastpath._reset()

    def _install_program_image(self) -> None:
        """Encode the program into memory for binary-fetch mode."""
        words = self.program.encode_words()
        end = self.program.base + 4 * len(words)
        if end > 0x1000:
            raise ValueError(
                f"program image of {len(words)} instructions reaches "
                f"{end:#x}, colliding with the data region at 0x1000; "
                f"relocate via Program.base"
            )
        for i, word in enumerate(words):
            self.mem.write_u32(self.program.base + 4 * i, word)

    # -- data placement helpers ---------------------------------------------

    def allocator(self, base: int = 0x1000) -> Allocator:
        """Bump allocator for laying out arrays in the TCDM."""
        return Allocator(base)

    def load_f64(self, addr: int, array: np.ndarray) -> None:
        """Place a float64 array into memory."""
        self.mem.write_array(addr, np.asarray(array, dtype=np.float64))

    def read_f64(self, addr: int, shape: tuple[int, ...]) -> np.ndarray:
        return self.mem.read_array(addr, shape, np.float64)

    def load_u32(self, addr: int, array: np.ndarray) -> None:
        self.mem.write_array(addr, np.asarray(array, dtype=np.uint32))

    # -- simulation ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Program halted and every decoupled unit has drained."""
        return (all(core.halted for core in self.cores)
                and all(fp.idle and fp.streamers_done()
                        for fp in self.fps)
                and self.dma.idle)

    def _release_barrier(self) -> None:
        """Open the cluster barrier once every live core has arrived.

        Cores that already halted count as arrived; a single-core
        barrier opens immediately on the next cycle.
        """
        waiting = [c for c in self.cores if c.barrier_wait]
        if not waiting:
            return
        if all(c.halted or c.barrier_wait for c in self.cores):
            for core in waiting:
                core.barrier_wait = False
            self.perf.bump("barriers")

    def step(self) -> None:
        """Advance the whole cluster by one cycle."""
        for fp, core in zip(self.fps, self.cores):
            fp.step(self.cycle)
            core.step(self.cycle)
            for streamer in fp.streamers:
                streamer.step()
        self._release_barrier()
        self.dma.step()
        self.tcdm.arbitrate()
        self.cycle += 1
        self.perf.cycles = self.cycle
        if self.fastpath is not None:
            self.fastpath.observe()

    def run(self, max_cycles: int = 5_000_000) -> PerfCounters:
        """Run to completion; returns the performance counters."""
        quiet_cycles = 0
        last_progress = self._progress_token()
        while not self.done:
            if self.cycle >= max_cycles:
                raise SimulationTimeout(
                    f"no completion after {max_cycles} cycles "
                    f"(pc={self.core.pc:#x}, halted={self.core.halted})"
                )
            self.step()
            token = self._progress_token()
            if self.core.halted:
                quiet_cycles = 0 if token != last_progress else \
                    quiet_cycles + 1
                if quiet_cycles > 64:
                    raise SimulationDeadlock(
                        "halted but the FP subsystem or an SSR write "
                        "stream cannot drain (under-produced stream or "
                        "starved chaining pop?)"
                    )
            last_progress = token
        return self.perf

    def _progress_token(self) -> tuple:
        """Cheap state fingerprint for deadlock detection after halt."""
        return (
            self.tcdm.total_accesses,
            sum(fp.sequencer.queue_len for fp in self.fps),
            sum(len(fp.pipe) for fp in self.fps),
            self.perf.value("fpu_compute_ops"),
            self.perf.value("fp_lsu_ops"),
            self.dma.bytes_moved,
            sum(core.barrier_wait for core in self.cores),
        )

    # -- convenience metrics ---------------------------------------------------

    def fpu_utilization(self, start_mark: int | None = None,
                        end_mark: int | None = None) -> float:
        return self.perf.fpu_utilization(start_mark, end_mark)

    def runtime_seconds(self) -> float:
        return self.cycle / self.cfg.clock_hz
