"""The in-order single-issue integer core.

Fetches and executes one instruction per cycle (no icache stalls are
modelled; Snitch's L0 loop buffer covers the tight kernels used here).
Floating-point-subsystem instructions -- FP compute, FP loads/stores,
``frep``, ``scfgw``/``scfgr`` and FP-CSR accesses -- are *dispatched* into
the FP instruction queue with their integer operands resolved, and the
core moves on: this is Snitch's pseudo dual-issue.  Instructions whose
result flows back from the FP subsystem (FP compares, ``fcvt.w.d``,
``scfgr``, FP-CSR reads) block the core until the result arrives.

Hazards modelled: load-use delay via per-register ready cycles, multiply/
divide latency the same way, taken-branch and jump penalties, dispatch
stall on a full FP queue, and LSU structural stalls (one outstanding
memory access).
"""

from __future__ import annotations

from typing import Any

from repro.core.config import CoreConfig
from repro.core.fp_subsystem import FpSubsystem
from repro.core.perf import PerfCounters
from repro.core.regfile import IntRegFile
from repro.core.sequencer import DispatchedEntry
from repro.isa.assembler import Program
from repro.isa.csr import CSR, is_fp_csr
from repro.isa.instructions import Instr, InstrClass
from repro.mem.tcdm import Tcdm, TcdmPort

_NEVER = 1 << 60


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value


def _sext_width(value: int, bits: int) -> int:
    """Sign-extend a ``bits``-wide loaded value to 32 bits."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value |= ~mask
    return value & 0xFFFFFFFF


_ALU_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "sra": lambda a, b: _signed(a) >> (b & 31),
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int((a & 0xFFFFFFFF) < (b & 0xFFFFFFFF)),
}

_IMM_TO_ALU = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slti": "slt", "sltiu": "sltu", "slli": "sll", "srli": "srl",
    "srai": "sra",
}

_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF),
    "bgeu": lambda a, b: (a & 0xFFFFFFFF) >= (b & 0xFFFFFFFF),
}


class IntCore:
    """RV32IM integer pipeline front half of the Snitch core."""

    def __init__(self, cfg: CoreConfig, program: Program, tcdm: Tcdm,
                 fp: FpSubsystem, perf: PerfCounters, trace=None,
                 dma=None, hart_id: int = 0):
        self.cfg = cfg
        self.program = program
        self.fp = fp
        self.perf = perf
        self.trace = trace
        self.dma = dma
        self.hart_id = hart_id
        #: Set by a BARRIER CSR write; cleared by the cluster when every
        #: core has arrived.
        self.barrier_wait = False
        #: Set (together with ``barrier_wait``) by a SYS_BARRIER CSR
        #: write; cleared only by the surrounding System once every core
        #: of every cluster has arrived.  The cluster-local barrier
        #: release skips cores parked here.
        self.sys_barrier_wait = False
        self.regs = IntRegFile()
        self.pc = program.base
        self.halted = False
        self.stall_until = 0
        self.waiting_sync: Instr | None = None
        self.port: TcdmPort = tcdm.port("core", priority=0)
        self._pending_load_rd: int | None = None
        self._pending_load_mn: str = "lw"
        self._mem = tcdm.mem
        self._decode_cache: dict[int, Instr] = {}
        # Micro-op (scalar-v2) state: per-index lowered handlers for
        # direct fetch, a pc-keyed cache for binary fetch, and
        # pre-resolved perf slots for the blocked-state bumps.
        self._uops: list = [None] * len(program.instrs)
        self._uop_cache: dict[int, Any] = {}
        self._pc_base = program.base
        self._fetch_direct = not cfg.fetch_from_memory
        self._pvals = perf.values
        self._s_barrier = perf.slot("int_barrier_stalls")
        self._s_sync = perf.slot("int_sync_stalls")

    # -- helpers ---------------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Point the core at a (new) program and reset its control state.

        The per-PC decoded-instruction cache is keyed by address only,
        so it *must* be invalidated here: reusing a core with a new
        binary at the same addresses would otherwise execute stale
        instructions from the previous image.
        """
        self.program = program
        self.pc = program.base
        self.halted = False
        self.stall_until = 0
        self.waiting_sync = None
        self.barrier_wait = False
        self.sys_barrier_wait = False
        self._pending_load_rd = None
        self._decode_cache.clear()
        # Micro-ops capture per-instruction state, so they are keyed to
        # the program image exactly like the decode cache and must be
        # dropped with it.
        self._uops = [None] * len(program.instrs)
        self._uop_cache.clear()
        self._pc_base = program.base

    def _fetch(self) -> Instr | None:
        index = (self.pc - self.program.base) // 4
        if not 0 <= index < len(self.program.instrs):
            return None
        if not self.cfg.fetch_from_memory:
            return self.program.instrs[index]
        instr = self._decode_cache.get(self.pc)
        if instr is None:
            from repro.isa.encoding import decode

            word = self._mem.read_u32(self.pc)
            instr = decode(word)
            instr.addr = self.pc
            self._decode_cache[self.pc] = instr
        return instr

    def _ready(self, cycle: int, *regs: int) -> bool:
        return all(self.regs.ready(r, cycle) for r in regs)

    # -- the cycle ---------------------------------------------------------------

    def step(self, cycle: int) -> None:
        self._collect_load(cycle)
        if self.halted:
            return
        if self.barrier_wait:
            self.perf.bump("int_barrier_stalls")
            return
        if self.waiting_sync is not None:
            if self.fp.sync_ready:
                value = self.fp.take_sync()
                instr = self.waiting_sync
                if instr.rd:
                    self.regs.write(instr.rd, value, ready_cycle=cycle + 1)
                self.waiting_sync = None
            else:
                self.perf.bump("int_sync_stalls")
            return
        if cycle < self.stall_until:
            return
        instr = self._fetch()
        if instr is None:
            raise RuntimeError(
                f"integer core fell off the program at pc={self.pc:#x}; "
                f"terminate programs with ebreak"
            )
        if instr.is_fp or (instr.iclass is InstrClass.CSR
                           and is_fp_csr(instr.csr)):
            self._dispatch_fp(cycle, instr)
            return
        self._execute_int(cycle, instr)

    def step_v2(self, cycle: int) -> None:
        """Micro-op variant of :meth:`step`: pre-decoded dispatch through
        a per-index handler table instead of per-cycle class tests."""
        if self.port._response_ready:
            self._collect_load(cycle)
        if self.halted:
            return
        if self.barrier_wait:
            self._pvals[self._s_barrier] += 1
            return
        if self.waiting_sync is not None:
            fp = self.fp
            if fp.sync_ready:
                value = fp.take_sync()
                instr = self.waiting_sync
                if instr.rd:
                    self.regs.write(instr.rd, value, ready_cycle=cycle + 1)
                self.waiting_sync = None
            else:
                self._pvals[self._s_sync] += 1
            return
        if cycle < self.stall_until:
            return
        if self._fetch_direct:
            index = (self.pc - self._pc_base) // 4
            uops = self._uops
            if 0 <= index < len(uops):
                uop = uops[index]
                if uop is None:
                    from repro.core.uops import lower_int

                    uop = uops[index] = lower_int(
                        self, self.program.instrs[index])
                uop(cycle)
                return
            uop = None
        else:
            uop = self._fetch_uop()
        if uop is None:
            raise RuntimeError(
                f"integer core fell off the program at pc={self.pc:#x}; "
                f"terminate programs with ebreak"
            )
        uop(cycle)

    def _fetch_uop(self):
        """The lowered handler for the instruction at ``pc``, or None."""
        from repro.core.uops import lower_int  # deferred: mutual import

        if not self.cfg.fetch_from_memory:
            index = (self.pc - self._pc_base) // 4
            uops = self._uops
            if not 0 <= index < len(uops):
                return None
            uop = uops[index]
            if uop is None:
                uop = uops[index] = lower_int(
                    self, self.program.instrs[index])
            return uop
        # Binary fetch decodes at the (possibly unaligned) pc exactly as
        # the seed decode cache does, then lowers the decoded record.
        uop = self._uop_cache.get(self.pc)
        if uop is None:
            instr = self._fetch()
            if instr is None:
                return None
            uop = self._uop_cache[self.pc] = lower_int(self, instr)
        return uop

    def _collect_load(self, cycle: int) -> None:
        if self.port.response_ready():
            data = self.port.take_response()
            if self._pending_load_rd is not None:
                value = int(data)
                if self._pending_load_mn == "lb":
                    value = _sext_width(value, 8)
                elif self._pending_load_mn == "lh":
                    value = _sext_width(value, 16)
                extra = max(0, self.cfg.load_use_latency - 1)
                self.regs.write(self._pending_load_rd, value,
                                ready_cycle=cycle + extra)
                self._pending_load_rd = None

    # -- FP dispatch ---------------------------------------------------------------

    def _dispatch_fp(self, cycle: int, instr: Instr) -> None:
        if self.fp.queue_space() <= 0:
            self.perf.bump("int_dispatch_stalls")
            return
        vals: dict[str, int] = {}
        sync = False
        iclass = instr.iclass
        spec = instr.spec

        if iclass in (InstrClass.FP_LOAD, InstrClass.FP_STORE):
            if not self._ready(cycle, instr.rs1):
                self.perf.bump("int_hazard_stalls")
                return
            vals["addr"] = (self.regs.read(instr.rs1) + instr.imm) \
                & 0xFFFFFFFF
        elif iclass is InstrClass.FREP:
            if not self._ready(cycle, instr.rs1):
                self.perf.bump("int_hazard_stalls")
                return
            vals["rs1"] = self.regs.read(instr.rs1)
        elif iclass is InstrClass.SCFG:
            if instr.mnemonic == "scfgw":
                if not self._ready(cycle, instr.rs1, instr.rs2):
                    self.perf.bump("int_hazard_stalls")
                    return
                vals["rs1"] = self.regs.read(instr.rs1)
                vals["rs2"] = self.regs.read(instr.rs2)
            else:
                if not self._ready(cycle, instr.rs1):
                    self.perf.bump("int_hazard_stalls")
                    return
                vals["rs1"] = self.regs.read(instr.rs1)
                sync = True
        elif iclass is InstrClass.CSR:
            if spec.rs1_domain == "x" and instr.mnemonic in (
                    "csrrw", "csrrs", "csrrc"):
                if not self._ready(cycle, instr.rs1):
                    self.perf.bump("int_hazard_stalls")
                    return
                vals["rs1"] = self.regs.read(instr.rs1)
            sync = instr.rd != 0
        elif spec.rd_domain == "x":
            # FP compare / fcvt.w.d: result returns to the integer core.
            sync = True
        elif spec.rs1_domain == "x":
            # fcvt.d.w: signed integer operand captured at dispatch.
            if not self._ready(cycle, instr.rs1):
                self.perf.bump("int_hazard_stalls")
                return
            vals["rs1"] = self.regs.read_signed(instr.rs1)

        self.fp.dispatch(DispatchedEntry(instr, vals, sync))
        self.perf.bump("int_instrs")
        if self.trace is not None:
            self.trace.int_issue(cycle, instr, dispatched=True)
        self.pc += 4
        if sync:
            self.waiting_sync = instr

    # -- integer execution ---------------------------------------------------------

    def _execute_int(self, cycle: int, instr: Instr) -> None:
        mn = instr.mnemonic
        iclass = instr.iclass
        regs = self.regs

        if iclass in (InstrClass.INT_ALU, InstrClass.INT_MUL,
                      InstrClass.INT_DIV):
            if not self._execute_alu(cycle, instr):
                return
        elif iclass is InstrClass.LOAD:
            if not self._ready(cycle, instr.rs1):
                self.perf.bump("int_hazard_stalls")
                return
            if self.port.busy or self._pending_load_rd is not None:
                self.perf.bump("int_lsu_stalls")
                return
            addr = (regs.read(instr.rs1) + instr.imm) & 0xFFFFFFFF
            width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mn]
            self.port.request(addr, width=width)
            self._pending_load_rd = instr.rd
            self._pending_load_mn = mn
            regs.set_ready(instr.rd, _NEVER)
            self.pc += 4
        elif iclass is InstrClass.STORE:
            if not self._ready(cycle, instr.rs1, instr.rs2):
                self.perf.bump("int_hazard_stalls")
                return
            if self.port.busy or self._pending_load_rd is not None:
                self.perf.bump("int_lsu_stalls")
                return
            addr = (regs.read(instr.rs1) + instr.imm) & 0xFFFFFFFF
            width = {"sb": 1, "sh": 2, "sw": 4}[mn]
            self.port.request(addr, is_write=True, data=regs.read(instr.rs2),
                              width=width)
            self.pc += 4
        elif iclass is InstrClass.BRANCH:
            if not self._ready(cycle, instr.rs1, instr.rs2):
                self.perf.bump("int_hazard_stalls")
                return
            taken = _BRANCH_OPS[mn](regs.read(instr.rs1),
                                    regs.read(instr.rs2))
            if taken:
                self.pc += instr.imm
                self.stall_until = cycle + 1 + self.cfg.branch_penalty
                self.perf.bump("branches_taken")
            else:
                self.pc += 4
                self.perf.bump("branches_not_taken")
        elif iclass is InstrClass.JUMP:
            if mn == "jal":
                regs.write(instr.rd, self.pc + 4, ready_cycle=cycle + 1)
                self.pc += instr.imm
            else:  # jalr
                if not self._ready(cycle, instr.rs1):
                    self.perf.bump("int_hazard_stalls")
                    return
                target = (regs.read(instr.rs1) + instr.imm) & ~1
                regs.write(instr.rd, self.pc + 4, ready_cycle=cycle + 1)
                self.pc = target
            self.stall_until = cycle + 1 + self.cfg.jump_penalty
        elif iclass is InstrClass.CSR:
            self._execute_csr(cycle, instr)
            self.pc += 4
        elif iclass is InstrClass.DMA:
            if not self._execute_dma(cycle, instr):
                return
            self.pc += 4
        elif iclass is InstrClass.SYS:
            self.halted = True
            self.pc += 4
        else:  # pragma: no cover
            raise RuntimeError(f"integer core cannot execute {mn}")

        self.perf.bump("int_instrs")
        if self.trace is not None:
            self.trace.int_issue(cycle, instr, dispatched=False)

    def _execute_alu(self, cycle: int, instr: Instr) -> bool:
        mn = instr.mnemonic
        regs = self.regs
        if mn in ("lui", "auipc"):
            value = (instr.imm << 12) & 0xFFFFFFFF
            if mn == "auipc":
                value = (value + self.pc) & 0xFFFFFFFF
            regs.write(instr.rd, value, ready_cycle=cycle + 1)
            self.pc += 4
            return True
        if not self._ready(cycle, instr.rs1):
            self.perf.bump("int_hazard_stalls")
            return False
        a = regs.read(instr.rs1)
        if mn in _IMM_TO_ALU:
            b = instr.imm
            base_mn = _IMM_TO_ALU[mn]
        else:
            if not self._ready(cycle, instr.rs2):
                self.perf.bump("int_hazard_stalls")
                return False
            b = regs.read(instr.rs2)
            base_mn = mn

        latency = 1
        if instr.iclass is InstrClass.INT_MUL:
            latency = self.cfg.int_mul_latency
            result = self._mul(base_mn, a, b)
        elif instr.iclass is InstrClass.INT_DIV:
            latency = self.cfg.int_div_latency
            result = self._div(base_mn, a, b)
        else:
            result = _ALU_OPS[base_mn](a, b)
        regs.write(instr.rd, result & 0xFFFFFFFF,
                   ready_cycle=cycle + latency)
        self.pc += 4
        return True

    @staticmethod
    def _mul(mn: str, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        if mn == "mul":
            return (sa * sb) & 0xFFFFFFFF
        if mn == "mulh":
            return ((sa * sb) >> 32) & 0xFFFFFFFF
        if mn == "mulhsu":
            return ((sa * ub) >> 32) & 0xFFFFFFFF
        return ((ua * ub) >> 32) & 0xFFFFFFFF   # mulhu

    @staticmethod
    def _div(mn: str, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        if mn == "div":
            if sb == 0:
                return 0xFFFFFFFF
            q = abs(sa) // abs(sb)
            return (-q if (sa < 0) != (sb < 0) else q) & 0xFFFFFFFF
        if mn == "divu":
            return 0xFFFFFFFF if ub == 0 else (ua // ub) & 0xFFFFFFFF
        if mn == "rem":
            if sb == 0:
                return sa & 0xFFFFFFFF
            r = abs(sa) % abs(sb)
            return (-r if sa < 0 else r) & 0xFFFFFFFF
        return ua if ub == 0 else (ua % ub) & 0xFFFFFFFF   # remu

    def _execute_dma(self, cycle: int, instr: Instr) -> bool:
        """Xdma control; returns False when the instruction must retry."""
        if self.dma is None:
            raise RuntimeError("Xdma instruction but the cluster has no "
                               "DMA engine")
        regs = self.regs
        mn = instr.mnemonic
        if mn in ("dmsrc", "dmdst", "dmrep") or mn == "dmstr":
            need = (instr.rs1, instr.rs2) if mn == "dmstr" else (instr.rs1,)
            if not self._ready(cycle, *need):
                self.perf.bump("int_hazard_stalls")
                return False
        if mn == "dmsrc":
            self.dma.set_src(regs.read(instr.rs1))
        elif mn == "dmdst":
            self.dma.set_dst(regs.read(instr.rs1))
        elif mn == "dmrep":
            self.dma.set_reps(regs.read(instr.rs1))
        elif mn == "dmstr":
            self.dma.set_strides(regs.read_signed(instr.rs1),
                                 regs.read_signed(instr.rs2))
        elif mn == "dmcpy":
            if not self._ready(cycle, instr.rs1):
                self.perf.bump("int_hazard_stalls")
                return False
            if self.dma.outstanding() >= self.dma.queue_depth:
                self.perf.bump("int_dma_stalls")
                return False
            txid = self.dma.start(regs.read(instr.rs1))
            regs.write(instr.rd, txid, ready_cycle=cycle + 1)
            self.perf.bump("dma_transfers")
        elif mn == "dmstat":
            regs.write(instr.rd, self.dma.outstanding(),
                       ready_cycle=cycle + 1)
        else:  # pragma: no cover
            raise RuntimeError(f"unknown Xdma instruction {mn}")
        return True

    def _execute_csr(self, cycle: int, instr: Instr) -> None:
        regs = self.regs
        operand = regs.read(instr.rs1) if instr.mnemonic in (
            "csrrw", "csrrs", "csrrc") else instr.imm
        old = 0
        if instr.csr == CSR.MCYCLE:
            old = cycle & 0xFFFFFFFF
        elif instr.csr == CSR.MINSTRET:
            old = self.perf.value("int_instrs") & 0xFFFFFFFF
        elif instr.csr == CSR.MHARTID:
            old = self.hart_id
        elif instr.csr == CSR.SIM_MARK:
            if instr.mnemonic in ("csrrw", "csrrwi"):
                self.perf.mark(operand)
        elif instr.csr == CSR.BARRIER:
            if instr.mnemonic in ("csrrw", "csrrwi", "csrrs", "csrrsi"):
                self.barrier_wait = True
        elif instr.csr == CSR.SYS_BARRIER:
            if instr.mnemonic in ("csrrw", "csrrwi", "csrrs", "csrrsi"):
                self.barrier_wait = True
                self.sys_barrier_wait = True
        if instr.rd:
            regs.write(instr.rd, old, ready_cycle=cycle + 1)
