"""The decoupled FP subsystem: sequencer, FPU pipe, FP LSU, SSRs, chaining.

Per-cycle phase order (one :meth:`FpSubsystem.step` call):

1. ``chain.begin_cycle`` -- reset same-cycle pop bookkeeping.
2. FP LSU response handling (commits deferred to after issue).
3. **Issue**: at most one instruction from the sequencer, evaluated
   against the *start-of-cycle* register state.  Reads of chaining and
   stream registers pop here.
4. **Writeback**: the pipe head, if complete, attempts writeback.  Plain
   registers always accept (value readable next cycle); stream registers
   accept while the write FIFO has room; chaining registers accept only
   when their valid bit is clear -- possibly cleared by a pop in phase 3
   of this same cycle (``chain_concurrent_push_pop``).  A refused
   writeback freezes the in-order pipe: backpressure.

Because writeback happens after issue, a value written back in cycle *t*
is first readable in cycle *t+1*; a dependent instruction therefore issues
``latency + 1`` cycles after its producer, wasting ``latency`` issue slots
-- the three wasted cycles of the paper's Fig. 1a for Snitch's 3-stage
FMA pipeline.
"""

from __future__ import annotations

from repro.core.chaining import ChainController
from repro.core.config import CoreConfig
from repro.core.fpu import FpuPipe, execute_fp
from repro.core.lsu import FpLsu
from repro.core.perf import SLOT, PerfCounters, StallReason
from repro.core.regfile import FpRegFile
from repro.core.sequencer import DispatchedEntry, Sequencer
from repro.isa.csr import CSR
from repro.isa.instructions import Instr, InstrClass
from repro.mem.tcdm import Tcdm
from repro.ssr.config import split_cfg_addr
from repro.ssr.streamer import SsrStreamer


_S_RF_WRITES = SLOT["fp_rf_writes"]
_S_CHAIN_PUSHES = SLOT["chain_pushes"]
_S_SSR_WRITES = SLOT["ssr_reg_writes"]


class FpSubsystem:
    """Snitch's FP half: everything behind the FP instruction queue."""

    def __init__(self, cfg: CoreConfig, tcdm: Tcdm, perf: PerfCounters,
                 trace=None):
        self.cfg = cfg
        self.perf = perf
        self.trace = trace
        self.chain = ChainController(
            concurrent_push_pop=cfg.chain_concurrent_push_pop)
        self.fpregs = FpRegFile(self.chain)
        self.pipe = FpuPipe(cfg)
        self.sequencer = Sequencer(cfg)
        self.lsu = FpLsu(tcdm.port("fplsu", priority=1), self.fpregs)
        self.streamers = [
            SsrStreamer(i, tcdm, cfg.ssr_fifo_depth)
            for i in range(cfg.num_ssrs)
        ]
        self.ssr_enable = False
        self.fpmode = 0
        # Synchronization channel back to the integer core.
        self.sync_ready = False
        self._sync_value: int = 0
        # Structural constants used by the micro-op (scalar-v2) issue
        # path; the counter slots themselves are the module-level
        # ``SLOT`` constants shared by the lowered closures.
        self._pvals = perf.values
        self._num_streamers = len(self.streamers)
        self._pipe_depth = cfg.fpu_pipe_depth

    # -- int-core interface ---------------------------------------------------

    def queue_space(self) -> int:
        return self.sequencer.space()

    def dispatch(self, entry: DispatchedEntry) -> None:
        self.sequencer.dispatch(entry)
        self.perf.bump("fp_dispatches")

    def take_sync(self) -> int:
        """Consume a pending synchronization result."""
        if not self.sync_ready:
            raise RuntimeError("no sync result pending")
        self.sync_ready = False
        return self._sync_value

    def _deliver_sync(self, value: int | float) -> None:
        if isinstance(value, float):
            value = int(value) if value == int(value) else 0
        self._sync_value = value & 0xFFFFFFFF
        self.sync_ready = True

    @property
    def idle(self) -> bool:
        """No queued, in-flight or pending work remains."""
        return (self.sequencer.idle and self.pipe.empty
                and not self.lsu.busy and not self.sync_ready)

    def streamers_done(self) -> bool:
        return all(s.done for s in self.streamers)

    # -- helpers ----------------------------------------------------------------

    def _is_stream_reg(self, reg: int) -> bool:
        return self.ssr_enable and reg < len(self.streamers)

    def _fp_sources(self, instr: Instr) -> list[int]:
        """FP source register numbers of ``instr``, in operand order."""
        spec = instr.spec
        sources = []
        if spec.rs1_domain == "f":
            sources.append(instr.rs1)
        if spec.rs2_domain == "f":
            sources.append(instr.rs2)
        if spec.rs3_domain == "f":
            sources.append(instr.rs3)
        return sources

    def _sources_ready(self, sources: list[int]) -> StallReason:
        """Check operand readiness; returns NONE when all can be read."""
        ssr_needed: dict[int, int] = {}
        for reg in sources:
            if self._is_stream_reg(reg):
                ssr_needed[reg] = ssr_needed.get(reg, 0) + 1
            elif self.chain.enabled(reg):
                if not self.chain.can_pop(reg):
                    return StallReason.CHAIN_EMPTY
            elif self.fpregs.busy[reg]:
                return StallReason.RAW
        for reg, count in ssr_needed.items():
            if self.streamers[reg].available_pops() < count:
                return StallReason.SSR_EMPTY
        return StallReason.NONE

    def _read_sources(self, sources: list[int]) -> list[float]:
        """Read (and pop) the operands.

        A chaining register named in several operand positions of one
        instruction is popped *once* -- the architectural register has a
        single read port and all positions see the same value.  Stream
        registers, by contrast, pop once per operand position (each read
        port of the FPU consumes a stream element, as on Snitch).
        """
        values = []
        chain_seen: dict[int, float] = {}
        for reg in sources:
            if self._is_stream_reg(reg):
                values.append(self.streamers[reg].pop())
                self.perf.bump("ssr_reg_reads")
            elif self.chain.enabled(reg):
                if reg not in chain_seen:
                    chain_seen[reg] = self.fpregs.read(reg)
                    self.perf.bump("chain_pops")
                values.append(chain_seen[reg])
            else:
                values.append(self.fpregs.read(reg))
                self.perf.bump("fp_rf_reads")
        return values

    def _candidate_pops(self, sources: list[int]) -> set[int]:
        """Chaining registers the candidate instruction would pop."""
        return {reg for reg in sources
                if not self._is_stream_reg(reg) and self.chain.enabled(reg)}

    def _wb_would_accept(self, cycle: int,
                         candidate_pops: set[int]) -> bool:
        """Predict whether the head writeback succeeds this cycle."""
        if not self.pipe.head_complete(cycle):
            return False
        op = self.pipe.head()
        if op.sync:
            return not self.sync_ready
        if op.dest_is_ssr:
            return self.streamers[op.dest].can_push()
        if self.chain.enabled(op.dest):
            if self.chain.can_push(op.dest):
                return True
            return (self.chain.concurrent_push_pop
                    and op.dest in candidate_pops)
        return True

    # -- the cycle ------------------------------------------------------------

    def step(self, cycle: int) -> None:
        self.chain.begin_cycle()
        lsu_commits = self.lsu.step()
        self._issue(cycle)
        self._writeback(cycle)
        for dest, value in lsu_commits:
            if not self.fpregs.try_writeback(dest, value):
                self.lsu.block(dest, value)
            else:
                self.perf.bump("fp_rf_writes")

    def step_v2(self, cycle: int) -> None:
        """Micro-op variant of :meth:`step`: same phases, same semantics,
        with the per-cycle no-op calls compiled down to attribute tests."""
        chain = self.chain
        if chain._popped_this_cycle:
            chain._popped_this_cycle.clear()
        if not chain.concurrent_push_pop:
            chain._valid_at_start = list(chain.valid)
        lsu = self.lsu
        lsu_port = lsu.port
        if lsu._pending_load is not None or lsu._pending_store \
                or lsu._blocked_value is not None \
                or lsu_port._pending is not None \
                or lsu_port._response_ready:
            lsu_commits = lsu.step()
        else:
            lsu_commits = None
        # Issue phase: dispatch through the entry's lowered closure
        # (with the sequencer's FREP peek inlined, so replay cycles
        # skip the property/tuple traffic).
        seq = self.sequencer
        if not seq._active:
            queue = seq.queue
            entry = queue[0] if queue else None
        else:
            pos = seq._pos
            if seq._inner:
                body_idx = pos // seq._iters
                iter_idx = pos % seq._iters
            else:
                body_idx = pos % seq._body_len
                iter_idx = pos // seq._body_len
            buffer = seq._buffer
            if body_idx < len(buffer):
                entry = buffer[body_idx]
            elif seq.queue:
                entry = seq.queue[0]
            else:
                entry = None
            if entry is not None and iter_idx \
                    and seq._stagger_mask and seq._stagger_max:
                offset = iter_idx % (seq._stagger_max + 1)
                if offset:
                    key = (body_idx, offset)
                    staggered = seq._stagger_cache.get(key)
                    if staggered is None:
                        staggered = seq._staggered(entry, iter_idx)
                        seq._stagger_cache[key] = staggered
                    entry = staggered
        if entry is None:
            self.perf.stall(StallReason.QUEUE_EMPTY)
        else:
            uop = entry.uop
            if uop is None:
                from repro.core.uops import lower_fp

                uop = entry.uop = lower_fp(entry.instr, self.cfg)
            uop(self, entry, cycle)
        pipe = self.pipe
        if pipe.in_flight and pipe.in_flight[0].completes_at <= cycle:
            self._writeback_v2(cycle)
        if lsu_commits:
            for dest, value in lsu_commits:
                if not self.fpregs.try_writeback(dest, value):
                    self.lsu.block(dest, value)
                else:
                    self._pvals[_S_RF_WRITES] += 1

    def _advance(self) -> None:
        """Consume the entry issued by a micro-op (fast non-FREP path)."""
        seq = self.sequencer
        if seq._active:
            seq.advance()
        else:
            seq.queue.popleft()

    def _writeback_v2(self, cycle: int) -> None:
        """Micro-op writeback: the caller has established a complete
        pipe head; semantics are identical to :meth:`_writeback` with
        the regfile/chain hand-offs inlined."""
        pipe = self.pipe
        in_flight = pipe.in_flight
        op = in_flight[0]
        if op.sync:
            if self.sync_ready:
                return  # previous sync result not consumed yet
            self._deliver_sync(op.value)
        else:
            dest = op.dest
            if op.dest_is_ssr:
                streamer = self.streamers[dest]
                fifo = streamer._fifo
                if len(fifo) >= streamer.fifo_depth:
                    return  # write FIFO full: pipe stalls
                fifo.append(float(op.value))
                streamer._to_produce -= 1
                self._pvals[_S_SSR_WRITES] += 1
            else:
                chain = self.chain
                if chain.mask >> dest & 1:
                    if chain.valid[dest] and not (
                            chain.concurrent_push_pop
                            and dest in chain._popped_this_cycle) \
                            or (not chain.concurrent_push_pop
                                and chain._valid_at_start[dest]):
                        chain.backpressure_events += 1
                        return  # chaining backpressure: pipe stalls
                    self.fpregs.values[dest] = float(op.value)
                    chain.valid[dest] = True
                    chain.pushes += 1
                    self._pvals[_S_CHAIN_PUSHES] += 1
                else:
                    self.fpregs.values[dest] = float(op.value)
                    self.fpregs.busy[dest] = False
                    self._pvals[_S_RF_WRITES] += 1
        in_flight.popleft()
        if op.unpipelined:
            pipe._unpipelined -= 1

    # -- issue phase -------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        entry = self.sequencer.peek()
        if entry is None:
            self.perf.stall(StallReason.QUEUE_EMPTY)
            return
        instr = entry.instr
        iclass = instr.iclass

        if iclass is InstrClass.FREP:
            # Arm the replay engine, then drop the frep instruction itself
            # (begin_frep only reads it; the body follows in the queue).
            self.sequencer.begin_frep(entry)
            self.sequencer.queue.popleft()
            self.perf.bump("frep_ops")
            self._trace_issue(cycle, instr, "frep")
            return

        if iclass is InstrClass.CSR:
            self._apply_csr(entry)
            self.sequencer.advance()
            self.perf.bump("fp_csr_ops")
            self._trace_issue(cycle, instr, "csr")
            return

        if iclass is InstrClass.SCFG:
            self._apply_scfg(entry)
            self.sequencer.advance()
            self.perf.bump("scfg_ops")
            self._trace_issue(cycle, instr, "scfg")
            return

        if iclass is InstrClass.FP_LOAD:
            self._issue_load(cycle, entry)
            return

        if iclass is InstrClass.FP_STORE:
            self._issue_store(cycle, entry)
            return

        self._issue_compute(cycle, entry)

    def _issue_load(self, cycle: int, entry: DispatchedEntry) -> None:
        instr = entry.instr
        if self.lsu.busy:
            self.perf.stall(StallReason.LSU_BUSY)
            return
        dest = instr.rd
        if self._is_stream_reg(dest):
            raise RuntimeError(
                f"fld into stream register f{dest} while SSRs are enabled")
        if not self.fpregs.can_write(dest):
            self.perf.stall(StallReason.WAW)
            return
        self.fpregs.allocate(dest)
        self.lsu.issue_load(entry.vals["addr"], dest)
        self.sequencer.advance()
        self.perf.bump("fp_lsu_ops")
        self.perf.bump("fp_loads")
        self._trace_issue(cycle, instr, "load")

    def _issue_store(self, cycle: int, entry: DispatchedEntry) -> None:
        instr = entry.instr
        if self.lsu.busy:
            self.perf.stall(StallReason.LSU_BUSY)
            return
        src = instr.rs2
        reason = self._sources_ready([src])
        if reason is not StallReason.NONE:
            self.perf.stall(reason)
            return
        value = self._read_sources([src])[0]
        self.lsu.issue_store(entry.vals["addr"], value)
        self.sequencer.advance()
        self.perf.bump("fp_lsu_ops")
        self.perf.bump("fp_stores")
        self._trace_issue(cycle, instr, "store")

    def _issue_compute(self, cycle: int, entry: DispatchedEntry) -> None:
        instr = entry.instr
        spec = instr.spec
        sources = self._fp_sources(instr)
        reason = self._sources_ready(sources)
        if reason is not StallReason.NONE:
            self.perf.stall(reason)
            return

        sync = spec.rd_domain == "x"       # feq/flt/fle, fcvt.w.d
        dest = None if sync else instr.rd
        dest_is_ssr = dest is not None and self._is_stream_reg(dest)
        if dest is not None and not dest_is_ssr:
            if not self.fpregs.can_write(dest):
                self.perf.stall(StallReason.WAW)
                return

        candidate_pops = self._candidate_pops(sources)
        head_retires = self._wb_would_accept(cycle, candidate_pops)
        if not self.pipe.can_accept(cycle, instr.iclass, head_retires):
            if (self.pipe.head_complete(cycle) and not head_retires
                    and not self.pipe.has_unpipelined_in_flight()):
                self.perf.stall(StallReason.CHAIN_BACKPRESSURE)
            else:
                self.perf.stall(StallReason.FPU_BUSY)
            return

        # Commit the issue: pop/read operands and execute.
        operand_values: list[float] = []
        source_iter = iter(self._read_sources(sources))
        if spec.rs1_domain == "x":          # fcvt.d.w reads an int operand
            operand_values.append(float(entry.vals.get("rs1", 0)))
        elif spec.rs1_domain == "f":
            operand_values.append(next(source_iter))
        if spec.rs2_domain == "f":
            operand_values.append(next(source_iter))
        if spec.rs3_domain == "f":
            operand_values.append(next(source_iter))

        result = execute_fp(instr.mnemonic, operand_values)
        if dest is not None and not dest_is_ssr:
            self.fpregs.allocate(dest)
        self.pipe.issue(instr, dest, dest_is_ssr, result, cycle, sync)
        self.sequencer.advance()
        self.perf.bump("fpu_compute_ops")
        self.perf.bump(f"fpu_{instr.iclass.name.lower()}")
        self._trace_issue(cycle, instr, "compute")

    # -- writeback phase -----------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        if not self.pipe.head_complete(cycle):
            return
        op = self.pipe.head()
        if op.sync:
            if self.sync_ready:
                return  # previous sync result not consumed yet
            self._deliver_sync(op.value)
            self.pipe.retire_head()
            return
        if op.dest_is_ssr:
            streamer = self.streamers[op.dest]
            if not streamer.can_push():
                return  # write FIFO full: pipe stalls
            streamer.push(float(op.value))
            self.perf.bump("ssr_reg_writes")
            self.pipe.retire_head()
            return
        if not self.fpregs.try_writeback(op.dest, float(op.value)):
            return  # chaining backpressure: pipe stalls
        if self.chain.enabled(op.dest):
            self.perf.bump("chain_pushes")
        else:
            self.perf.bump("fp_rf_writes")
        self.pipe.retire_head()

    # -- CSR / SCFG side effects --------------------------------------------

    def _read_csr(self, addr: int) -> int:
        if addr == CSR.CHAIN_MASK:
            return self.chain.read_mask()
        if addr == CSR.CHAIN_STATUS:
            return self.chain.status()
        if addr == CSR.SSR_ENABLE:
            return int(self.ssr_enable)
        if addr == CSR.FPMODE:
            return self.fpmode
        return 0

    def _write_csr(self, addr: int, value: int) -> None:
        if addr == CSR.CHAIN_MASK:
            self.chain.write_mask(value)
        elif addr == CSR.SSR_ENABLE:
            self.ssr_enable = bool(value & 1)
        elif addr == CSR.FPMODE:
            self.fpmode = value

    def _apply_csr(self, entry: DispatchedEntry) -> None:
        instr = entry.instr
        old = self._read_csr(instr.csr)
        if instr.mnemonic in ("csrrw", "csrrs", "csrrc"):
            operand = entry.vals.get("rs1", 0)
        else:
            operand = instr.imm
        if instr.mnemonic in ("csrrw", "csrrwi"):
            new = operand
            write = True
        elif instr.mnemonic in ("csrrs", "csrrsi"):
            new = old | operand
            write = operand != 0
        else:
            new = old & ~operand
            write = operand != 0
        if write:
            self._write_csr(instr.csr, new)
        if entry.sync:
            self._deliver_sync(old)

    def _apply_scfg(self, entry: DispatchedEntry) -> None:
        instr = entry.instr
        if instr.mnemonic == "scfgw":
            ssr, cfg_field = split_cfg_addr(entry.vals["rs2"])
            self._check_ssr_index(ssr)
            self.streamers[ssr].write_cfg(cfg_field, entry.vals["rs1"])
        else:  # scfgr
            ssr, cfg_field = split_cfg_addr(entry.vals["rs1"])
            self._check_ssr_index(ssr)
            self._deliver_sync(self.streamers[ssr].read_cfg(cfg_field))

    def _check_ssr_index(self, ssr: int) -> None:
        if not 0 <= ssr < len(self.streamers):
            raise RuntimeError(f"scfg access to nonexistent ssr{ssr}")

    def _trace_issue(self, cycle: int, instr: Instr, kind: str) -> None:
        if self.trace is not None:
            self.trace.fp_issue(cycle, instr, kind)
