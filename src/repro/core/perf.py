"""Performance counters and stall attribution.

The FP subsystem classifies every cycle it fails to issue into a
:class:`StallReason`; together with the per-class op counts this yields the
FPU-utilization figures of the paper and a stall breakdown that the report
harness prints alongside.

Region markers (written through the ``sim_mark`` mechanism or directly by
the harness) snapshot all counters, so metrics can be computed over a
kernel's steady-state region excluding setup code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum, auto


class StallReason(Enum):
    """Why the FP subsystem could not issue in a given cycle."""

    NONE = auto()              # issued
    QUEUE_EMPTY = auto()       # nothing dispatched by the integer core
    RAW = auto()               # scoreboard operand not ready
    WAW = auto()               # scoreboard destination busy
    CHAIN_EMPTY = auto()       # chaining FIFO pop with valid bit clear
    CHAIN_BACKPRESSURE = auto()  # FPU pipe frozen by a blocked writeback
    SSR_EMPTY = auto()         # read stream FIFO empty
    SSR_FULL = auto()          # write stream FIFO full
    FPU_BUSY = auto()          # pipe at capacity (or unpipelined op)
    LSU_BUSY = auto()          # FP load/store unit occupied


@dataclass
class Snapshot:
    """Counter values at a region marker."""

    cycle: int
    counters: dict[str, int] = field(default_factory=dict)


class PerfCounters:
    """Cycle, instruction and stall accounting for one cluster."""

    def __init__(self):
        self.cycles = 0
        self.counters: Counter[str] = Counter()
        self.stalls: Counter[StallReason] = Counter()
        self.marks: dict[int, Snapshot] = {}

    # -- accumulation ------------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def stall(self, reason: StallReason) -> None:
        self.stalls[reason] += 1

    def counter_state(self) -> tuple[dict[str, int], dict[StallReason, int]]:
        """Plain-dict copies of all counters and stall buckets.

        Used by the fast path to measure per-period deltas; cheap enough
        to take once per candidate steady-state sample.
        """
        return dict(self.counters), dict(self.stalls)

    def add_scaled(self, counter_delta: dict[str, int],
                   stall_delta: dict[StallReason, int], times: int) -> None:
        """Apply ``times`` repetitions of a measured per-period delta."""
        for name, amount in counter_delta.items():
            self.counters[name] += times * amount
        for reason, amount in stall_delta.items():
            self.stalls[reason] += times * amount

    def mark(self, mark_id: int) -> None:
        """Snapshot all counters under ``mark_id``."""
        snap = Snapshot(self.cycles, dict(self.counters))
        for reason, count in self.stalls.items():
            snap.counters[f"stall_{reason.name.lower()}"] = count
        self.marks[mark_id] = snap

    # -- queries -----------------------------------------------------------

    def value(self, name: str) -> int:
        return self.counters.get(name, 0)

    def delta(self, name: str, start_mark: int, end_mark: int) -> int:
        """Counter difference between two marks."""
        a = self.marks[start_mark].counters.get(name, 0)
        b = self.marks[end_mark].counters.get(name, 0)
        return b - a

    def region_cycles(self, start_mark: int, end_mark: int) -> int:
        return self.marks[end_mark].cycle - self.marks[start_mark].cycle

    def fpu_utilization(self, start_mark: int | None = None,
                        end_mark: int | None = None) -> float:
        """Fraction of cycles in which the FPU accepted a compute op.

        Without marks, computed over the whole run.
        """
        if start_mark is None or end_mark is None:
            cycles = self.cycles
            ops = self.value("fpu_compute_ops")
        else:
            cycles = self.region_cycles(start_mark, end_mark)
            ops = self.delta("fpu_compute_ops", start_mark, end_mark)
        if cycles == 0:
            return 0.0
        return ops / cycles

    def stall_breakdown(self) -> dict[str, int]:
        """Stall cycles by reason, most frequent first."""
        items = sorted(self.stalls.items(), key=lambda kv: -kv[1])
        return {reason.name.lower(): count for reason, count in items
                if reason is not StallReason.NONE}

    def summary(self) -> dict[str, float | int]:
        """Flat summary used by the report harness."""
        out: dict[str, float | int] = {
            "cycles": self.cycles,
            "fpu_utilization": round(self.fpu_utilization(), 4),
        }
        out.update(sorted(self.counters.items()))
        for reason, count in self.stalls.items():
            if reason is not StallReason.NONE:
                out[f"stall_{reason.name.lower()}"] = count
        return out
