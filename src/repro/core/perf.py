"""Performance counters and stall attribution.

The FP subsystem classifies every cycle it fails to issue into a
:class:`StallReason`; together with the per-class op counts this yields the
FPU-utilization figures of the paper and a stall breakdown that the report
harness prints alongside.

Region markers (written through the ``sim_mark`` mechanism or directly by
the harness) snapshot all counters, so metrics can be computed over a
kernel's steady-state region excluding setup code.

Counter storage is *slotted*: each name is interned once into an integer
index of a flat list, so the hot path is a list-index increment rather
than a string-keyed hash update.  The pre-decoded micro-op engine binds
``(values list, slot)`` pairs at lowering time and bypasses :meth:`bump`
entirely; everything name-based (``bump``/``value``/``marks``/``summary``)
keeps its seed behaviour, and the :attr:`counters` view reproduces the
seed's ``Counter`` contents exactly (entries appear once bumped to a
nonzero value).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum, auto


class StallReason(Enum):
    """Why the FP subsystem could not issue in a given cycle."""

    NONE = auto()              # issued
    QUEUE_EMPTY = auto()       # nothing dispatched by the integer core
    RAW = auto()               # scoreboard operand not ready
    WAW = auto()               # scoreboard destination busy
    CHAIN_EMPTY = auto()       # chaining FIFO pop with valid bit clear
    CHAIN_BACKPRESSURE = auto()  # FPU pipe frozen by a blocked writeback
    SSR_EMPTY = auto()         # read stream FIFO empty
    SSR_FULL = auto()          # write stream FIFO full
    FPU_BUSY = auto()          # pipe at capacity (or unpipelined op)
    LSU_BUSY = auto()          # FP load/store unit occupied


@dataclass
class Snapshot:
    """Counter values at a region marker."""

    cycle: int
    counters: dict[str, int] = field(default_factory=dict)


#: Hot counters interned at fixed indices in every :class:`PerfCounters`
#: instance, so micro-op lowering can capture plain ints instead of
#: resolving per-instance slots.  Order is frozen: appending is fine,
#: reordering would silently corrupt lowered code.
_PREREGISTERED = (
    "int_instrs", "int_hazard_stalls", "int_lsu_stalls",
    "int_dispatch_stalls", "int_sync_stalls", "int_barrier_stalls",
    "branches_taken", "branches_not_taken",
    "fp_dispatches", "frep_ops", "fp_csr_ops", "scfg_ops",
    "fp_lsu_ops", "fp_loads", "fp_stores",
    "fpu_compute_ops", "ssr_reg_reads", "ssr_reg_writes",
    "chain_pops", "chain_pushes", "fp_rf_reads", "fp_rf_writes",
    "fpu_fp_add", "fpu_fp_mul", "fpu_fp_fma", "fpu_fp_div",
    "fpu_fp_sqrt", "fpu_fp_cmp", "fpu_fp_minmax", "fpu_fp_sgnj",
    "fpu_fp_cvt",
)

#: name -> fixed slot index for every pre-registered counter.
SLOT = {name: index for index, name in enumerate(_PREREGISTERED)}


class PerfCounters:
    """Cycle, instruction and stall accounting for one cluster."""

    def __init__(self):
        self.cycles = 0
        #: name -> index into :attr:`values` (interned on first use).
        self._slot_of: dict[str, int] = dict(SLOT)
        #: Flat counter storage; the micro-op engine indexes this
        #: directly with slots obtained from :meth:`slot`.
        self.values: list[int] = [0] * len(SLOT)
        self.stalls: Counter[StallReason] = Counter()
        self.marks: dict[int, Snapshot] = {}

    # -- accumulation ------------------------------------------------------

    def slot(self, name: str) -> int:
        """Intern ``name`` and return its index into :attr:`values`.

        Micro-op lowering resolves the slot once and increments
        ``perf.values[slot]`` inline on the hot path.
        """
        index = self._slot_of.get(name)
        if index is None:
            index = len(self.values)
            self._slot_of[name] = index
            self.values.append(0)
        return index

    def bump(self, name: str, amount: int = 1) -> None:
        self.values[self.slot(name)] += amount

    def stall(self, reason: StallReason) -> None:
        self.stalls[reason] += 1

    @property
    def counters(self) -> Counter[str]:
        """Name-keyed view of the slotted storage (nonzero entries only,
        matching the seed ``Counter`` which held a key only once bumped)."""
        values = self.values
        return Counter({name: values[index]
                        for name, index in self._slot_of.items()
                        if values[index]})

    def counter_state(self) -> tuple[dict[str, int], dict[StallReason, int]]:
        """Plain-dict copies of all counters and stall buckets.

        Used by the fast path to measure per-period deltas; cheap enough
        to take once per candidate steady-state sample.
        """
        values = self.values
        counters = {name: values[index]
                    for name, index in self._slot_of.items()
                    if values[index]}
        return counters, dict(self.stalls)

    def add_scaled(self, counter_delta: dict[str, int],
                   stall_delta: dict[StallReason, int], times: int) -> None:
        """Apply ``times`` repetitions of a measured per-period delta."""
        for name, amount in counter_delta.items():
            self.values[self.slot(name)] += times * amount
        for reason, amount in stall_delta.items():
            self.stalls[reason] += times * amount

    def mark(self, mark_id: int) -> None:
        """Snapshot all counters under ``mark_id``."""
        snap = Snapshot(self.cycles, dict(self.counters))
        for reason, count in self.stalls.items():
            snap.counters[f"stall_{reason.name.lower()}"] = count
        self.marks[mark_id] = snap

    # -- queries -----------------------------------------------------------

    def value(self, name: str) -> int:
        index = self._slot_of.get(name)
        return 0 if index is None else self.values[index]

    def delta(self, name: str, start_mark: int, end_mark: int) -> int:
        """Counter difference between two marks."""
        a = self.marks[start_mark].counters.get(name, 0)
        b = self.marks[end_mark].counters.get(name, 0)
        return b - a

    def region_cycles(self, start_mark: int, end_mark: int) -> int:
        return self.marks[end_mark].cycle - self.marks[start_mark].cycle

    def fpu_utilization(self, start_mark: int | None = None,
                        end_mark: int | None = None) -> float:
        """Fraction of cycles in which the FPU accepted a compute op.

        Without marks, computed over the whole run.
        """
        if start_mark is None or end_mark is None:
            cycles = self.cycles
            ops = self.value("fpu_compute_ops")
        else:
            cycles = self.region_cycles(start_mark, end_mark)
            ops = self.delta("fpu_compute_ops", start_mark, end_mark)
        if cycles == 0:
            return 0.0
        return ops / cycles

    def stall_breakdown(self) -> dict[str, int]:
        """Stall cycles by reason, most frequent first."""
        items = sorted(self.stalls.items(), key=lambda kv: -kv[1])
        return {reason.name.lower(): count for reason, count in items
                if reason is not StallReason.NONE}

    def summary(self) -> dict[str, float | int]:
        """Flat summary used by the report harness."""
        out: dict[str, float | int] = {
            "cycles": self.cycles,
            "fpu_utilization": round(self.fpu_utilization(), 4),
        }
        out.update(sorted(self.counters.items()))
        for reason, count in self.stalls.items():
            if reason is not StallReason.NONE:
                out[f"stall_{reason.name.lower()}"] = count
        return out
