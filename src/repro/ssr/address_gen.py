"""Stream address generation.

Two generators are provided, matching the Snitch/SARIS hardware:

* :class:`AffineGenerator` walks an up-to-:data:`~repro.ssr.config.MAX_DIMS`
  dimensional loop nest and yields ``base + sum(idx_d * stride_d)``.
* :class:`IndirectGenerator` yields the addresses of *index* elements; the
  streamer resolves each fetched index into a data address via
  :meth:`IndirectGenerator.data_addr` (``base + (index << shift)``).

Both are pure, deterministic iterators, which makes them easy to check
against numpy index arithmetic in the property tests.
"""

from __future__ import annotations

from repro.ssr.config import SsrConfig


class AffineGenerator:
    """Walks the affine loop nest of a committed :class:`SsrConfig`."""

    def __init__(self, cfg: SsrConfig):
        cfg.validate()
        self.cfg = cfg
        self._idx = [0] * cfg.ndims
        self._remaining = cfg.total_elements()

    @property
    def exhausted(self) -> bool:
        return self._remaining == 0

    @property
    def remaining(self) -> int:
        return self._remaining

    def peek(self) -> int:
        """Current element address, without advancing."""
        if self.exhausted:
            raise RuntimeError("address generator exhausted")
        cfg = self.cfg
        addr = cfg.base
        for d in range(cfg.ndims):
            addr += self._idx[d] * cfg.strides[d]
        return addr

    def next(self) -> int:
        """Return the current address and advance the loop nest."""
        addr = self.peek()
        self._remaining -= 1
        cfg = self.cfg
        for d in range(cfg.ndims):
            self._idx[d] += 1
            if self._idx[d] < cfg.bounds[d]:
                break
            self._idx[d] = 0
        return addr

    def all_addresses(self) -> list[int]:
        """Exhaust the generator and return every address (testing aid)."""
        out = []
        while not self.exhausted:
            out.append(self.next())
        return out


class IndirectGenerator:
    """Index-stream walker for SARIS-style indirect streams.

    The *index array* is itself walked with the affine loop nest (usually a
    simple 1-D contiguous pattern); each fetched index is scaled into a
    data address.  The streamer performs two memory accesses per element:
    one for the index and one for the datum, which is faithfully reflected
    in the TCDM traffic and hence the energy model.
    """

    def __init__(self, cfg: SsrConfig):
        cfg.validate()
        if not cfg.indirect:
            raise ValueError("IndirectGenerator requires an indirect config")
        self.cfg = cfg
        self._count = cfg.total_elements()
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._count

    @property
    def remaining(self) -> int:
        return self._count - self._pos

    def next_index_addr(self) -> int:
        """Address of the next index element; advances the walker."""
        if self.exhausted:
            raise RuntimeError("index stream exhausted")
        addr = self.cfg.idx_base + self._pos * self.cfg.idx_size
        self._pos += 1
        return addr

    def data_addr(self, index: int) -> int:
        """Data address for a fetched ``index`` value."""
        return self.cfg.base + (index << self.cfg.idx_shift)
