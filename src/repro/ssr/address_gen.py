"""Stream address generation.

Two generators are provided, matching the Snitch/SARIS hardware:

* :class:`AffineGenerator` walks an up-to-:data:`~repro.ssr.config.MAX_DIMS`
  dimensional loop nest and yields ``base + sum(idx_d * stride_d)``.
* :class:`IndirectGenerator` yields the addresses of *index* elements; the
  streamer resolves each fetched index into a data address via
  :meth:`IndirectGenerator.data_addr` (``base + (index << shift)``).

Both are pure, deterministic iterators, which makes them easy to check
against numpy index arithmetic in the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.ssr.config import SsrConfig


def affine_addresses(cfg: SsrConfig, indices) -> np.ndarray:
    """Addresses of stream elements ``indices`` (vectorized, no state).

    Element ``i`` of an affine stream sits at
    ``base + sum_d digit_d(i) * stride_d`` where the digits are ``i``
    decomposed in the mixed radix of the loop-nest bounds (dimension 0
    innermost) -- exactly the address :class:`AffineGenerator` yields on
    its ``i``-th :meth:`~AffineGenerator.next`.
    """
    idx = np.asarray(indices, dtype=np.int64)
    addr = np.full(idx.shape, cfg.base, dtype=np.int64)
    radix = 1
    for d in range(cfg.ndims):
        addr += (idx // radix) % cfg.bounds[d] * cfg.strides[d]
        radix *= cfg.bounds[d]
    return addr


def affine_addr_range(cfg: SsrConfig) -> tuple[int, int]:
    """Inclusive ``[lo, hi]`` byte range the whole affine stream touches.

    Each dimension contributes ``(bound - 1) * stride`` at its extreme;
    negative strides extend the range downward.  ``hi`` covers the full
    64-bit element at the highest base address.
    """
    lo = hi = cfg.base
    for d in range(cfg.ndims):
        extent = (cfg.bounds[d] - 1) * cfg.strides[d]
        if extent >= 0:
            hi += extent
        else:
            lo += extent
    return lo, hi + 7


class AffineGenerator:
    """Walks the affine loop nest of a committed :class:`SsrConfig`."""

    def __init__(self, cfg: SsrConfig):
        cfg.validate()
        self.cfg = cfg
        self._idx = [0] * cfg.ndims
        self._remaining = cfg.total_elements()

    @property
    def exhausted(self) -> bool:
        return self._remaining == 0

    @property
    def remaining(self) -> int:
        return self._remaining

    def peek(self) -> int:
        """Current element address, without advancing."""
        if self.exhausted:
            raise RuntimeError("address generator exhausted")
        cfg = self.cfg
        addr = cfg.base
        for d in range(cfg.ndims):
            addr += self._idx[d] * cfg.strides[d]
        return addr

    def next(self) -> int:
        """Return the current address and advance the loop nest."""
        addr = self.peek()
        self._remaining -= 1
        cfg = self.cfg
        for d in range(cfg.ndims):
            self._idx[d] += 1
            if self._idx[d] < cfg.bounds[d]:
                break
            self._idx[d] = 0
        return addr

    @property
    def position(self) -> int:
        """Elements yielded so far (0 .. total_elements)."""
        return self.cfg.total_elements() - self._remaining

    def jump_to(self, position: int) -> None:
        """Teleport the walker so the next element is ``position``.

        Used by the fast path to retire a whole batch of elements at
        once; the resulting state is exactly what ``position`` calls of
        :meth:`next` would have left behind (including the all-zeros
        digit wrap at exhaustion).
        """
        total = self.cfg.total_elements()
        if not 0 <= position <= total:
            raise ValueError(
                f"jump_to({position}) outside stream of {total} elements")
        self._remaining = total - position
        rem = position
        for d in range(self.cfg.ndims):
            self._idx[d] = rem % self.cfg.bounds[d]
            rem //= self.cfg.bounds[d]

    def all_addresses(self) -> list[int]:
        """Exhaust the generator and return every address (testing aid)."""
        out = []
        while not self.exhausted:
            out.append(self.next())
        return out


class IndirectGenerator:
    """Index-stream walker for SARIS-style indirect streams.

    The *index array* is itself walked with the affine loop nest (usually a
    simple 1-D contiguous pattern); each fetched index is scaled into a
    data address.  The streamer performs two memory accesses per element:
    one for the index and one for the datum, which is faithfully reflected
    in the TCDM traffic and hence the energy model.
    """

    def __init__(self, cfg: SsrConfig):
        cfg.validate()
        if not cfg.indirect:
            raise ValueError("IndirectGenerator requires an indirect config")
        self.cfg = cfg
        self._count = cfg.total_elements()
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._count

    @property
    def remaining(self) -> int:
        return self._count - self._pos

    def next_index_addr(self) -> int:
        """Address of the next index element; advances the walker."""
        if self.exhausted:
            raise RuntimeError("index stream exhausted")
        addr = self.cfg.idx_base + self._pos * self.cfg.idx_size
        self._pos += 1
        return addr

    def data_addr(self, index: int) -> int:
        """Data address for a fetched ``index`` value."""
        return self.cfg.base + (index << self.cfg.idx_shift)
