"""SSR data movers (streamers).

One :class:`SsrStreamer` per lane.  A read streamer prefetches elements
along its address pattern into a small FIFO ahead of the FPU; a write
streamer drains values pushed by the FPU back to memory.  Indirect streams
additionally fetch an index element per datum through a dedicated index
port (as in the SARIS microarchitecture, where the index fetcher has its
own TCDM connection).

The register-port interface (``can_pop``/``pop``/``can_push``/``push``) is
what the FP subsystem uses at instruction issue; the FIFO being empty (or
full, for writes) is exactly the stall condition the core observes.
"""

from __future__ import annotations

from collections import deque

from repro.mem.tcdm import Tcdm, TcdmPort, _Request
from repro.ssr.address_gen import AffineGenerator, IndirectGenerator
from repro.ssr.config import SsrConfig, SsrConfigSpace, SsrMode


class SsrStreamer:
    """Data mover for one SSR lane."""

    def __init__(self, ssr_id: int, tcdm: Tcdm, fifo_depth: int = 4,
                 port_priority: int = 10):
        self.ssr_id = ssr_id
        self.fifo_depth = fifo_depth
        self.cfgspace = SsrConfigSpace(ssr_id)
        self.data_port: TcdmPort = tcdm.port(
            f"ssr{ssr_id}", port_priority, is_streamer=True)
        self.idx_port: TcdmPort = tcdm.port(
            f"ssr{ssr_id}_idx", port_priority, is_streamer=True)

        self.cfg: SsrConfig | None = None
        self._gen: AffineGenerator | None = None
        self._igen: IndirectGenerator | None = None
        self._fifo: deque[float] = deque()
        self._idx_fifo: deque[int] = deque()
        self._rep_count = 0
        self._to_consume = 0     # reads the FPU still owes us (incl. repeat)
        self._to_produce = 0     # writes the FPU still owes us
        self._data_requested = False
        self._pending_write_addr: int | None = None
        # Statistics (energy model inputs).
        self.active_cycles = 0
        self.elements_moved = 0

    # -- configuration ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while an armed stream has work left."""
        if self.cfg is None:
            return False
        return not self.done

    @property
    def done(self) -> bool:
        """True when the armed stream has fully completed."""
        if self.cfg is None:
            return True
        if self.cfg.mode == SsrMode.READ:
            return self._to_consume == 0
        return (self._to_produce == 0 and not self._fifo
                and not self.data_port.busy
                and self._pending_write_addr is None)

    def write_cfg(self, field: int, value: int) -> None:
        """Handle a ``scfgw`` targeting this lane."""
        self.cfgspace.write(field, value, active=self.active)
        if self.cfgspace.committed is not None:
            self._arm(self.cfgspace.committed)
            self.cfgspace.committed = None

    def read_cfg(self, field: int) -> int:
        """Handle a ``scfgr`` targeting this lane."""
        return self.cfgspace.read(field)

    def _arm(self, cfg: SsrConfig) -> None:
        self.cfg = cfg
        self._fifo.clear()
        self._idx_fifo.clear()
        self._rep_count = 0
        self._data_requested = False
        self._pending_write_addr = None
        total = cfg.total_elements()
        if cfg.indirect:
            self._igen = IndirectGenerator(cfg)
            self._gen = None
        else:
            self._gen = AffineGenerator(cfg)
            self._igen = None
        if cfg.mode == SsrMode.READ:
            self._to_consume = total * (cfg.repeat + 1)
            self._to_produce = 0
        else:
            self._to_produce = total
            self._to_consume = 0

    # -- register-port interface (used at FP instruction issue) -----------

    def can_pop(self) -> bool:
        """True when a read of the stream register would not stall."""
        return bool(self._fifo)

    def available_pops(self) -> int:
        """How many register reads could be served right now.

        Accounts for the repeat feature: the FIFO head still serves
        ``repeat + 1 - rep_count`` reads.  Needed when one instruction
        reads the same stream register in two operand positions.
        """
        if not self._fifo:
            return 0
        head_left = self.cfg.repeat + 1 - self._rep_count
        return head_left + (len(self._fifo) - 1) * (self.cfg.repeat + 1)

    def pop(self) -> float:
        """Consume one element (a register read).  Honors ``repeat``."""
        if not self._fifo:
            raise RuntimeError(f"ssr{self.ssr_id}: pop from empty stream")
        value = self._fifo[0]
        self._rep_count += 1
        self._to_consume -= 1
        if self._rep_count > self.cfg.repeat:
            self._fifo.popleft()
            self._rep_count = 0
        return value

    def can_push(self) -> bool:
        """True when a write to the stream register would not stall."""
        return len(self._fifo) < self.fifo_depth

    def push(self, value: float) -> None:
        """Produce one element (a register write)."""
        if len(self._fifo) >= self.fifo_depth:
            raise RuntimeError(f"ssr{self.ssr_id}: push to full stream FIFO")
        self._fifo.append(value)
        self._to_produce -= 1

    # -- per-cycle behaviour -------------------------------------------------

    def step(self) -> None:
        """Advance the data mover by one cycle."""
        if self.cfg is None:
            return
        worked = False
        if self.cfg.mode == SsrMode.READ:
            worked = self._step_read()
        else:
            worked = self._step_write()
        if worked:
            self.active_cycles += 1

    def step_v2(self) -> None:
        """Micro-op engine per-cycle path: one flattened pass over the
        same actions as :meth:`step` (the caller guarantees an armed
        stream), posting requests directly instead of through the
        checked :meth:`~repro.mem.tcdm.TcdmPort.request` interface --
        every guard the checked path enforces is established inline."""
        cfg = self.cfg
        port = self.data_port
        worked = False
        if cfg.mode == SsrMode.READ:
            fifo = self._fifo
            if port._response_ready:
                port._response_ready = False
                data = port._response
                port._response = None
                fifo.append(float(data))
                self._data_requested = False
                self.elements_moved += 1
                worked = True
            iport = self.idx_port
            if iport._response_ready:
                iport._response_ready = False
                data = iport._response
                iport._response = None
                self._idx_fifo.append(int(data))
                worked = True
            if port._pending is None and not port._response_ready \
                    and self.fifo_depth - len(fifo) \
                    - (1 if self._data_requested else 0) > 0:
                igen = self._igen
                if igen is not None:
                    addr = igen.data_addr(self._idx_fifo.popleft()) \
                        if self._idx_fifo else None
                else:
                    gen = self._gen
                    addr = None if gen._remaining == 0 else gen.next()
                if addr is not None:
                    port._pending = _Request(addr, False, None, 8)
                    self._data_requested = True
                    worked = True
            igen = self._igen
            if igen is not None and igen._pos < igen._count \
                    and iport._pending is None \
                    and not iport._response_ready \
                    and len(self._idx_fifo) < self.fifo_depth:
                idx_size = cfg.idx_size
                iport._pending = _Request(
                    cfg.idx_base + igen._pos * idx_size, False, None,
                    idx_size)
                igen._pos += 1
                worked = True
        else:
            fifo = self._fifo
            if port._response_ready:
                port._response_ready = False
                port._response = None
                fifo.popleft()
                self._pending_write_addr = None
                self.elements_moved += 1
                worked = True
            if fifo and port._pending is None and not port._response_ready:
                addr = self._pending_write_addr
                if addr is None:
                    addr = self._next_data_addr()
                    if addr is None:
                        # No resolvable address (index FIFO dry): the
                        # cycle ends here -- including the index-fetch
                        # launch below, exactly like the seed path.
                        if worked:
                            self.active_cycles += 1
                        return
                    self._pending_write_addr = addr
                port._pending = _Request(addr, True, fifo[0], 8)
                worked = True
            igen = self._igen
            if igen is not None and not igen.exhausted \
                    and not self.idx_port.busy \
                    and len(self._idx_fifo) < self.fifo_depth:
                self.idx_port.request(igen.next_index_addr(),
                                      width=cfg.idx_size)
                worked = True
        if worked:
            self.active_cycles += 1

    def _step_read(self) -> bool:
        worked = False
        # Retire a granted data fetch.
        if self.data_port.response_ready():
            self._fifo.append(float(self.data_port.take_response()))
            self._data_requested = False
            self.elements_moved += 1
            worked = True
        # Retire a granted index fetch.
        if self.idx_port.response_ready():
            self._idx_fifo.append(int(self.idx_port.take_response()))
            worked = True
        # Launch the next data fetch if there is FIFO headroom.
        headroom = self.fifo_depth - len(self._fifo) \
            - (1 if self._data_requested else 0)
        if headroom > 0 and not self.data_port.busy:
            addr = self._next_data_addr()
            if addr is not None:
                self.data_port.request(addr)
                self._data_requested = True
                worked = True
        # Launch the next index fetch (indirect mode only).
        if (self._igen is not None and not self._igen.exhausted
                and not self.idx_port.busy
                and len(self._idx_fifo) < self.fifo_depth):
            self.idx_port.request(self._igen.next_index_addr(),
                                  width=self.cfg.idx_size)
            worked = True
        return worked

    def _next_data_addr(self) -> int | None:
        if self._igen is not None:
            if not self._idx_fifo:
                return None
            return self._igen.data_addr(self._idx_fifo.popleft())
        if self._gen.exhausted:
            return None
        return self._gen.next()

    def _step_write(self) -> bool:
        worked = False
        # Retire a granted write.
        if self.data_port.response_ready():
            self.data_port.take_response()
            self._fifo.popleft()
            self._pending_write_addr = None
            self.elements_moved += 1
            worked = True
        # Launch the next write.
        if self._fifo and not self.data_port.busy:
            if self._pending_write_addr is None:
                addr = self._next_data_addr()
                if addr is None:
                    return worked
                self._pending_write_addr = addr
            self.data_port.request(self._pending_write_addr, is_write=True,
                                   data=self._fifo[0])
            worked = True
        # Indirect scatter: keep the index FIFO fed.
        if (self._igen is not None and not self._igen.exhausted
                and not self.idx_port.busy
                and len(self._idx_fifo) < self.fifo_depth):
            self.idx_port.request(self._igen.next_index_addr(),
                                  width=self.cfg.idx_size)
            worked = True
        return worked
