"""Stream semantic registers (SSRs), including SARIS-style indirection.

SSRs map the FP registers ``ft0``-``ft2`` to memory streams: while the
``ssr_enable`` CSR bit is set, reading such a register implicitly pops the
next element of a read stream and writing it pushes onto a write stream.
Address patterns are programmed through the ``scfgw`` instruction: affine
multi-dimensional loop nests with an element-repetition count, or indirect
(gather/scatter) patterns where a second index stream supplies offsets, as
introduced by SARIS (Scheffler et al., DAC 2024).
"""

from repro.ssr.config import SsrConfig, SsrMode, cfg_addr, CfgField
from repro.ssr.address_gen import AffineGenerator, IndirectGenerator
from repro.ssr.streamer import SsrStreamer

__all__ = [
    "AffineGenerator",
    "CfgField",
    "IndirectGenerator",
    "SsrConfig",
    "SsrMode",
    "SsrStreamer",
    "cfg_addr",
]
