"""SSR configuration space.

Each SSR lane exposes a small register file written through the ``scfgw``
instruction (and readable through ``scfgr``).  The config address encodes
``(ssr, field)`` as ``addr = ssr * 64 + field``.  Field map:

====  ===========  =====================================================
idx   name         meaning
====  ===========  =====================================================
0     CTRL         commit/start; bit0 = write mode, bit1 = indirect,
                   bits 4:2 = ndims - 1
1     REPEAT       each element is served ``REPEAT + 1`` times
2-7   BOUND0-5     iterations per dimension (dimension 0 innermost)
8-13  STRIDE0-5    byte stride per dimension
14    BASE         stream base byte address
15    IDX_BASE     base address of the index array (indirect mode)
16    IDX_CFG      bits 1:0 = log2(index element bytes), bits 7:4 =
                   left-shift applied to each index (scale)
====  ===========  =====================================================

Writing CTRL *arms* the lane: the shadow registers are committed and the
streamer starts fetching on the next cycle.  Reconfiguring an active lane
is a programming error and raises, mirroring the RTL assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from enum import IntEnum


#: Maximum loop-nest depth.  Snitch ships 4 dimensions; SARIS extends the
#: generator — we provide 6 and document the extension.
MAX_DIMS = 6


class CfgField(IntEnum):
    """Field indices within one SSR's config space."""

    CTRL = 0
    REPEAT = 1
    BOUND0 = 2
    STRIDE0 = 8
    BASE = 14
    IDX_BASE = 15
    IDX_CFG = 16


class SsrMode(IntEnum):
    READ = 0
    WRITE = 1


def cfg_addr(ssr: int, field: int) -> int:
    """Config-space address of ``field`` of lane ``ssr`` (for ``scfgw``)."""
    return ssr * 64 + field


def split_cfg_addr(addr: int) -> tuple[int, int]:
    """Inverse of :func:`cfg_addr`."""
    return addr // 64, addr % 64


@dataclass
class SsrConfig:
    """Committed configuration of one SSR lane."""

    base: int = 0
    bounds: list[int] = dataclass_field(default_factory=lambda: [1] * MAX_DIMS)
    strides: list[int] = dataclass_field(default_factory=lambda: [0] * MAX_DIMS)
    ndims: int = 1
    repeat: int = 0
    mode: SsrMode = SsrMode.READ
    indirect: bool = False
    idx_base: int = 0
    idx_size: int = 4      # bytes per index element
    idx_shift: int = 3     # scale: data addr = base + (index << shift)

    def total_elements(self) -> int:
        """Number of stream elements described by the loop nest."""
        count = 1
        for d in range(self.ndims):
            count *= self.bounds[d]
        return count

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed configurations."""
        if not 1 <= self.ndims <= MAX_DIMS:
            raise ValueError(f"ndims {self.ndims} out of range 1..{MAX_DIMS}")
        for d in range(self.ndims):
            if self.bounds[d] <= 0:
                raise ValueError(f"bound{d} must be positive, got "
                                 f"{self.bounds[d]}")
        if self.repeat < 0:
            raise ValueError(f"repeat must be non-negative, got {self.repeat}")
        if self.indirect and self.idx_size not in (2, 4):
            raise ValueError(f"index element size must be 2 or 4 bytes, got "
                             f"{self.idx_size}")
        if self.indirect and self.mode == SsrMode.WRITE and self.repeat:
            raise ValueError("indirect write streams cannot use repeat")


class SsrConfigSpace:
    """Shadow config registers + commit logic for one lane."""

    def __init__(self, ssr_id: int):
        self.ssr_id = ssr_id
        self._shadow = SsrConfig()
        self.committed: SsrConfig | None = None

    def write(self, field: int, value: int, active: bool) -> None:
        """Handle one ``scfgw`` to this lane."""
        if active:
            raise RuntimeError(
                f"ssr{self.ssr_id}: config write while stream active"
            )
        s = self._shadow
        if field == CfgField.CTRL:
            s.mode = SsrMode(value & 1)
            s.indirect = bool(value & 2)
            s.ndims = ((value >> 2) & 0x7) + 1
            s.validate()
            # Commit a copy so later shadow writes don't disturb the
            # running stream.
            self.committed = SsrConfig(
                base=s.base, bounds=list(s.bounds), strides=list(s.strides),
                ndims=s.ndims, repeat=s.repeat, mode=s.mode,
                indirect=s.indirect, idx_base=s.idx_base,
                idx_size=s.idx_size, idx_shift=s.idx_shift,
            )
        elif field == CfgField.REPEAT:
            s.repeat = value
        elif CfgField.BOUND0 <= field < CfgField.BOUND0 + MAX_DIMS:
            s.bounds[field - CfgField.BOUND0] = value
        elif CfgField.STRIDE0 <= field < CfgField.STRIDE0 + MAX_DIMS:
            # Strides are signed; scfgw carries a 32-bit two's complement.
            if value >= 1 << 31:
                value -= 1 << 32
            s.strides[field - CfgField.STRIDE0] = value
        elif field == CfgField.BASE:
            s.base = value
        elif field == CfgField.IDX_BASE:
            s.idx_base = value
        elif field == CfgField.IDX_CFG:
            s.idx_size = 1 << (value & 0x3)
            s.idx_shift = (value >> 4) & 0xF
        else:
            raise ValueError(f"ssr{self.ssr_id}: unknown config field "
                             f"{field}")

    def read(self, field: int) -> int:
        """Handle one ``scfgr`` from this lane (shadow registers)."""
        s = self._shadow
        if field == CfgField.REPEAT:
            return s.repeat
        if CfgField.BOUND0 <= field < CfgField.BOUND0 + MAX_DIMS:
            return s.bounds[field - CfgField.BOUND0]
        if CfgField.STRIDE0 <= field < CfgField.STRIDE0 + MAX_DIMS:
            return s.strides[field - CfgField.STRIDE0]
        if field == CfgField.BASE:
            return s.base
        if field == CfgField.IDX_BASE:
            return s.idx_base
        raise ValueError(f"ssr{self.ssr_id}: unreadable config field {field}")
