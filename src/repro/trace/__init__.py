"""Issue-slot tracing and the textual reproductions of Figs. 1c and 2."""

from repro.trace.events import TraceRecorder
from repro.trace.render import render_issue_trace, render_dataflow

__all__ = ["TraceRecorder", "render_dataflow", "render_issue_trace"]
