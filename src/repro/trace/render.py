"""Textual renderings of the paper's trace figures.

* :func:`render_issue_trace` reproduces Fig. 1c: a numbered FP issue-slot
  listing where empty slots are stall bubbles, annotated with the stall
  that caused them.
* :func:`render_dataflow` reproduces the spirit of Fig. 2: per issue slot,
  the FPU pipe occupancy and the chaining registers' valid bits, i.e. the
  logical FIFO formed by "pipeline registers + architectural register".
"""

from __future__ import annotations

from repro.trace.events import TraceRecorder


def render_issue_trace(trace: TraceRecorder, start_cycle: int = 0,
                       max_slots: int = 40, show_int: bool = False) -> str:
    """Fig. 1c style: one line per cycle on the FP issue port."""
    events = {e.cycle: e for e in trace.fp_events}
    int_events = {e.cycle: e for e in trace.int_events}
    if not events:
        return "(no FP issue events)"
    first = max(start_cycle, min(events))
    lines = ["slot  fp issue", "----  --------"]
    for slot, cycle in enumerate(range(first, first + max_slots), start=1):
        event = events.get(cycle)
        text = event.text if event else ""
        line = f"{slot:>4}  {text}"
        if show_int and cycle in int_events:
            pad = max(1, 34 - len(line))
            line += " " * pad + f"| int: {int_events[cycle].text}"
        lines.append(line.rstrip())
    return "\n".join(lines)


def render_dataflow(trace: TraceRecorder, chain_reg: int = 3,
                    start_cycle: int = 0, max_slots: int = 32) -> str:
    """Fig. 2 style: FIFO state (pipe occupancy + valid bit) per slot.

    The column ``fifo`` draws the logical chaining FIFO: ``#`` for each
    occupied FPU pipeline register and ``V``/``.`` for the architectural
    register's valid bit.
    """
    events = {e.cycle: e for e in trace.fp_events}
    if not events:
        return "(no FP issue events)"
    first = max(start_cycle, min(events))
    lines = [f"slot  fifo(pipe+f{chain_reg})  fp issue",
             "----  -------------  --------"]
    for slot, cycle in enumerate(range(first, first + max_slots), start=1):
        event = events.get(cycle)
        if event is not None:
            pipe = "#" * event.pipe_occupancy
            valid = "V" if (event.chain_valid >> chain_reg) & 1 else "."
            fifo = f"[{pipe:<3}|{valid}]"
            text = event.text
        else:
            fifo = "  ...  "
            text = ""
        lines.append(f"{slot:>4}  {fifo:<13}  {text}".rstrip())
    return "\n".join(lines)
