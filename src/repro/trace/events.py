"""Trace event recording.

A :class:`TraceRecorder` can be handed to :class:`repro.core.Cluster`; the
FP subsystem and integer core then log one event per issue slot.  The
recorder also snapshots the chaining valid bits and FPU-pipe occupancy
each FP event, which is what the Fig. 2-style dataflow rendering shows.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.isa.instructions import Instr


@dataclass
class FpIssueEvent:
    cycle: int
    text: str
    kind: str               # compute / load / store / csr / scfg / frep
    chain_valid: int = 0    # packed valid bits at issue time
    pipe_occupancy: int = 0


@dataclass
class IntIssueEvent:
    cycle: int
    text: str
    dispatched: bool        # True when this was an FP dispatch


@dataclass
class TraceRecorder:
    """Collects issue events from both halves of the core."""

    fp_events: list[FpIssueEvent] = field(default_factory=list)
    int_events: list[IntIssueEvent] = field(default_factory=list)
    #: Attached by the cluster; used to snapshot chaining/pipe state.
    _fp_subsystem = None

    def attach(self, fp_subsystem) -> None:
        self._fp_subsystem = fp_subsystem

    def fp_issue(self, cycle: int, instr: Instr, kind: str) -> None:
        chain_valid = 0
        occupancy = 0
        if self._fp_subsystem is not None:
            chain_valid = self._fp_subsystem.chain.status()
            occupancy = len(self._fp_subsystem.pipe)
        self.fp_events.append(
            FpIssueEvent(cycle, str(instr), kind, chain_valid, occupancy))

    def int_issue(self, cycle: int, instr: Instr, dispatched: bool) -> None:
        self.int_events.append(IntIssueEvent(cycle, str(instr), dispatched))

    def fp_events_between(self, start: int, end: int) -> list[FpIssueEvent]:
        return _events_between(self.fp_events, start, end)

    def int_events_between(self, start: int, end: int) -> list[IntIssueEvent]:
        return _events_between(self.int_events, start, end)


def _events_between(events, start: int, end: int):
    # Events are appended in issue order, so cycles are non-decreasing
    # and the window is a contiguous slice.
    lo = bisect_left(events, start, key=lambda e: e.cycle)
    hi = bisect_left(events, end, lo=lo, key=lambda e: e.cycle)
    return events[lo:hi]
