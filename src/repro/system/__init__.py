"""Multi-cluster scale-out: clusters + global memory + interconnect.

The paper's evaluation stops at one Snitch cluster; this package scales
it out.  A :class:`System` instantiates N :class:`~repro.core.cluster
.Cluster`\\ s, a shared banked :class:`GlobalMemory` (HBM-like: aggregate
bandwidth plus a per-transfer access latency), and an
:class:`Interconnect` that arbitrates concurrent inter-cluster DMA
transfers.  Compute cores never touch global memory directly -- all
traffic flows through each cluster's DMA engine, with byte addresses at
or above :data:`GLOBAL_BASE` selecting the global memory -- and clusters
synchronize through the system barrier CSR (``0x7C7``).

See ``docs/system.md`` for the architecture, the halo-exchange protocol
built on top of it (:mod:`repro.kernels.partition`), and the
scaling-sweep recipe.
"""

from repro.core.config import SystemConfig
from repro.system.system import (
    GLOBAL_BASE,
    ClusterDma,
    GlobalMemory,
    Interconnect,
    System,
    SystemDeadlock,
    SystemTimeout,
)

__all__ = [
    "GLOBAL_BASE",
    "ClusterDma",
    "GlobalMemory",
    "Interconnect",
    "System",
    "SystemConfig",
    "SystemDeadlock",
    "SystemTimeout",
]
