"""The multi-cluster system model.

Address map
-----------

Every cluster keeps its private flat memory (TCDM + local "L2" staging
regions) at byte addresses below :data:`GLOBAL_BASE`; addresses at or
above it select the shared :class:`GlobalMemory`.  Only the per-cluster
DMA engines (:class:`ClusterDma`) decode global addresses -- compute
cores and SSR streamers are confined to cluster-local memory, matching
the Snitch/Occamy organization where bulk data is staged into the TCDM
before compute touches it.

Timing model
------------

* :class:`GlobalMemory` -- aggregate peak bandwidth ``gmem_banks *
  gmem_bank_bytes_per_cycle`` bytes/cycle (a banked-SRAM/HBM-channel
  abstraction: banking is modelled as aggregate bandwidth, not per-bank
  conflicts) plus ``gmem_latency`` cycles charged once at the start of
  every transfer that touches it.
* :class:`Interconnect` -- when several clusters' DMAs move
  global-memory data in the same cycle, each receives an equal
  ``gmem_bytes_per_cycle // n`` share (ID-agnostic, so per-cluster
  timing is invariant under cluster renumbering); a single requester
  gets the full global-memory bandwidth, always capped by its
  ``link_bytes_per_cycle`` port.
* :class:`ClusterDma` -- serves one transfer per cycle head-of-queue,
  in order; a transfer finishing mid-cycle forfeits the cycle's
  remaining budget (turnaround).

Scheduling
----------

:meth:`System.run` drives the clusters with a conservative min-cycle
scheduler: each iteration steps exactly the clusters whose local clock
equals the global minimum.  Clusters can run *ahead* of that minimum
(the vectorized FREP/SSR fast path applies whole steady-state regions
in one step); they simply wait until the others catch up, which is
exactly event-order-correct because the only inter-cluster couplings --
global-memory DMA bandwidth and the system barrier -- are arbitrated at
the minimum clock.  The scalar-v2 idle-cycle fast-forward is preserved
at system level: when every minimum-clock cluster is provably dead (and
no DMA contention is possible), all of them jump over the common dead
span in O(1).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.cluster import (
    Cluster,
    SimulationDeadlock,
    SimulationTimeout,
)
from repro.core.config import SystemConfig
from repro.isa.assembler import Program
from repro.mem.dma import DmaEngine
from repro.mem.memory import Memory
from repro.obs import spans as _obs

#: First byte address decoded as global memory (by the DMA engines only).
GLOBAL_BASE = 0x4000_0000

_INF = 1 << 62


class SystemTimeout(SimulationTimeout):
    """The cycle budget was exhausted before every cluster finished."""


class SystemDeadlock(SimulationDeadlock):
    """No cluster can make progress and the system barrier cannot open."""


class GlobalMemory:
    """Shared HBM-like memory: flat storage + bandwidth/latency params."""

    def __init__(self, cfg: SystemConfig):
        self.mem = Memory(cfg.gmem_size)
        self.size = cfg.gmem_size
        self.banks = cfg.gmem_banks
        self.bytes_per_cycle = cfg.gmem_bytes_per_cycle
        self.latency = cfg.gmem_latency
        # Statistics (energy-model and report inputs).
        self.bytes_read = 0
        self.bytes_written = 0
        self.transfer_latency_cycles = 0

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    # -- harness helpers (absolute global addresses) ------------------------

    def _offset(self, addr: int, nbytes: int) -> int:
        off = addr - GLOBAL_BASE
        if off < 0 or off + nbytes > self.size:
            raise ValueError(
                f"global access of {nbytes} bytes at {addr:#x} outside "
                f"[{GLOBAL_BASE:#x}, {GLOBAL_BASE + self.size:#x})")
        return off

    def write_array(self, addr: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array)
        self._offset(addr, raw.nbytes)
        self.mem.write_array(addr - GLOBAL_BASE, raw)

    def read_array(self, addr: int, shape: tuple[int, ...],
                   dtype=np.float64) -> np.ndarray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._offset(addr, nbytes)
        return self.mem.read_array(addr - GLOBAL_BASE, shape, dtype)


class Interconnect:
    """Per-cycle arbitration of concurrent global-memory DMA traffic.

    The share each requester receives is a pure function of the *number*
    of requesters (never their identities), which keeps per-cluster
    cycle counts invariant under cluster ID permutation.  The floor of 8
    bytes guarantees forward progress even when more clusters than
    bandwidth lanes contend.
    """

    def __init__(self, cfg: SystemConfig):
        self.gmem_bytes_per_cycle = cfg.gmem_bytes_per_cycle
        self.contended_cycles = 0
        self.busy_cycles = 0

    def arbitrate(self, dmas: list["ClusterDma"]) -> None:
        """Assign this cycle's global-memory bandwidth shares."""
        wanting = [dma for dma in dmas if dma.wants_gmem()]
        for dma in dmas:
            dma.shared_grant = None
        if not wanting:
            return
        self.busy_cycles += 1
        if len(wanting) > 1:
            self.contended_cycles += 1
            share = max(8, self.gmem_bytes_per_cycle // len(wanting))
            for dma in wanting:
                dma.shared_grant = share


class ClusterDma(DmaEngine):
    """Cluster DMA engine with a port into the global memory.

    Extends the cluster-local :class:`~repro.mem.dma.DmaEngine` (same
    ``dmsrc``/``dmdst``/``dmstr``/``dmrep``/``dmcpy``/``dmstat``
    software interface) with:

    * address decoding -- bytes at or above :data:`GLOBAL_BASE` read or
      write the shared :class:`GlobalMemory`;
    * a per-transfer start latency for transfers touching global memory;
    * bandwidth caps: the cluster link width and (via
      :attr:`shared_grant`, written by the :class:`Interconnect` each
      contended cycle) an equal share of the global-memory bandwidth.
    """

    def __init__(self, mem: Memory, gmem: GlobalMemory,
                 cfg: SystemConfig):
        super().__init__(mem, cfg.core.dma_bytes_per_cycle)
        self.gmem = gmem
        self.link_bytes_per_cycle = cfg.link_bytes_per_cycle
        #: Equal-share grant for this cycle; ``None`` outside contention
        #: (then the full global-memory bandwidth applies).
        self.shared_grant: int | None = None
        self.gmem_bytes_moved = 0
        self._latency_tx = None
        self._latency_left = 0
        # Observability backrefs, filled in by System.__init__: the
        # owning cluster supplies the simulated clock and track name
        # for per-transfer DMA events.
        self._obs_cluster: "Cluster | None" = None
        self._obs_lane = "cluster"
        self._obs_tx_start = 0

    @staticmethod
    def _touches_gmem(tx) -> bool:
        return tx.src >= GLOBAL_BASE or tx.dst >= GLOBAL_BASE

    def wants_gmem(self) -> bool:
        """True when this DMA would move global-memory bytes this cycle.

        Mirrors :meth:`step` exactly: only a bound head transfer whose
        start latency has drained moves data.  A fresh head never moves
        on its binding cycle (see :meth:`step`), so the interconnect
        always arbitrates a transfer before its first data beat.
        """
        if not self._queue:
            return False
        tx = self._queue[0]
        return (self._touches_gmem(tx) and self._latency_tx is tx
                and self._latency_left == 0)

    def step(self) -> None:
        if not self._queue:
            return
        self.busy_cycles += 1
        tx = self._queue[0]
        if self._latency_tx is not tx:
            # A transfer touching global memory pays the access latency
            # once, up front -- at least one cycle, so that a dmcpy
            # issued mid-cycle (after the interconnect arbitrated) can
            # never move unarbitrated bytes in its issue cycle.
            # Local-only transfers start immediately.
            self._latency_tx = tx
            self._latency_left = max(1, self.gmem.latency) \
                if self._touches_gmem(tx) else 0
            if _obs.ENABLED and self._obs_cluster is not None:
                self._obs_tx_start = self._obs_cluster.cycle
        if self._latency_left:
            self._latency_left -= 1
            self.gmem.transfer_latency_cycles += 1
            return
        uses_gmem = self._touches_gmem(tx)
        budget = self.bytes_per_cycle
        if uses_gmem:
            budget = min(budget, self.link_bytes_per_cycle,
                         self.shared_grant
                         if self.shared_grant is not None
                         else self.gmem.bytes_per_cycle)
        while budget > 0:
            row, offset = divmod(tx.moved, tx.row_bytes)
            chunk = min(budget, tx.row_bytes - offset)
            src = tx.src + row * tx.src_stride + offset
            dst = tx.dst + row * tx.dst_stride + offset
            self._copy(src, dst, chunk)
            tx.moved += chunk
            budget -= chunk
            self.bytes_moved += chunk
            if uses_gmem:
                self.gmem_bytes_moved += chunk
            if tx.moved >= tx.total_bytes:
                self._queue.popleft()
                self.transfers_completed += 1
                if _obs.ENABLED and self._obs_cluster is not None:
                    end = max(self._obs_cluster.cycle,
                              self._obs_tx_start)
                    _obs.tracer().sim_span(
                        "dma", "system", self._obs_tx_start, end,
                        lane=self._obs_lane,
                        args={"bytes": tx.total_bytes,
                              "gmem": uses_gmem})
                break  # turnaround: the next transfer starts next cycle

    # -- address decoding ---------------------------------------------------

    def _copy(self, src: int, dst: int, nbytes: int) -> None:
        self._store(dst, self._fetch(src, nbytes))

    def _fetch(self, addr: int, nbytes: int) -> bytes:
        if addr >= GLOBAL_BASE:
            gmem = self.gmem
            off = gmem._offset(addr, nbytes)
            gmem.bytes_read += nbytes
            return bytes(gmem.mem._data[off:off + nbytes])
        data = bytes(self.mem._data[addr:addr + nbytes])
        if len(data) != nbytes:
            raise ValueError(
                f"DMA read of {nbytes} bytes at {addr:#x} out of range")
        return data

    def _store(self, addr: int, data: bytes) -> None:
        if addr >= GLOBAL_BASE:
            gmem = self.gmem
            off = gmem._offset(addr, len(data))
            gmem.bytes_written += len(data)
            gmem.mem._data[off:off + len(data)] = data
            return
        if addr + len(data) > self.mem.size:
            raise ValueError(
                f"DMA write of {len(data)} bytes at {addr:#x} out of "
                f"range")
        self.mem._data[addr:addr + len(data)] = data


class System:
    """N clusters + global memory + interconnect + system barrier."""

    def __init__(self, programs, cfg: SystemConfig | None = None,
                 symbols: dict[str, int] | None = None):
        self.cfg = cfg or SystemConfig()
        self.cfg.validate()
        n = self.cfg.num_clusters
        if isinstance(programs, (str, Program)):
            programs = [programs] * n
        programs = list(programs)
        if len(programs) != n:
            raise ValueError(
                f"{len(programs)} programs for {n} clusters; pass one "
                f"program (SPMD) or exactly one per cluster")
        self.gmem = GlobalMemory(self.cfg)
        self.interconnect = Interconnect(self.cfg)
        self.clusters: list[Cluster] = []
        for index, program in enumerate(programs):
            cluster = Cluster(program, cfg=self.cfg.core, symbols=symbols)
            cluster.obs_lane = f"cluster{index}"
            # Swap the cluster-local DMA engine for the system-aware one;
            # the cores read ``self.dma`` at execution time, so the swap
            # is complete before the first cycle.
            dma = ClusterDma(cluster.mem, self.gmem, self.cfg)
            dma._obs_cluster = cluster
            dma._obs_lane = cluster.obs_lane
            cluster.dma = dma
            for core in cluster.cores:
                core.dma = dma
            self.clusters.append(cluster)
        self.cycle = 0
        self.sys_barriers = 0

    # -- data placement ------------------------------------------------------

    def load_global_f64(self, addr: int, array: np.ndarray) -> None:
        """Place a float64 array at absolute global address ``addr``."""
        self.gmem.write_array(addr, np.asarray(array, dtype=np.float64))

    def read_global_f64(self, addr: int,
                        shape: tuple[int, ...]) -> np.ndarray:
        return self.gmem.read_array(addr, shape, np.float64)

    # -- aggregate metrics ---------------------------------------------------

    def _cluster_done(self, cluster: Cluster) -> bool:
        for core in cluster.cores:
            if not core.halted:
                return False
        return cluster._done_v2() if cluster._v2 else cluster.done

    @property
    def done(self) -> bool:
        return all(self._cluster_done(cl) for cl in self.clusters)

    def total(self, counter: str) -> int:
        """Sum of one perf counter over every cluster."""
        return sum(cl.perf.value(counter) for cl in self.clusters)

    def per_cluster_cycles(self) -> list[int]:
        return [cl.cycle for cl in self.clusters]

    def fpu_utilization(self) -> float:
        """Compute-op issue rate over all FPUs and the whole run."""
        cycles = max((cl.cycle for cl in self.clusters), default=0)
        if cycles == 0:
            return 0.0
        return self.total("fpu_compute_ops") / (cycles
                                                * len(self.clusters))

    def stall_breakdown(self) -> dict[str, int]:
        """Merged stall-cycle breakdown over every cluster."""
        merged: dict[str, int] = {}
        for cluster in self.clusters:
            for reason, count in cluster.perf.stall_breakdown().items():
                merged[reason] = merged.get(reason, 0) + count
        return dict(sorted(merged.items(), key=lambda kv: -kv[1]))

    def perf_digest(self) -> str:
        """Deterministic fingerprint of every architectural counter.

        Two runs of the same system program are expected to produce the
        same digest -- the determinism contract the property suite
        enforces.
        """
        parts: list[str] = [f"sys_barriers={self.sys_barriers}"]
        for index, cluster in enumerate(self.clusters):
            perf = cluster.perf
            parts.append(f"cluster{index}:cycle={cluster.cycle}")
            parts.extend(f"{name}={perf.values[slot]}"
                         for name, slot in sorted(perf._slot_of.items()))
            parts.extend(
                f"stall:{reason}={count}"
                for reason, count in sorted(
                    perf.stall_breakdown().items()))
            parts.append(f"tcdm={cluster.tcdm.total_accesses}"
                         f"/{cluster.tcdm.total_conflicts}")
            parts.append(f"dma={cluster.dma.bytes_moved}"
                         f"/{cluster.dma.busy_cycles}")
        parts.append(f"gmem={self.gmem.bytes_read}"
                     f"/{self.gmem.bytes_written}"
                     f"/{self.gmem.transfer_latency_cycles}")
        parts.append(f"icn={self.interconnect.busy_cycles}"
                     f"/{self.interconnect.contended_cycles}")
        blob = ";".join(parts)
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- simulation ----------------------------------------------------------

    def run(self, max_cycles: int = 20_000_000) -> "System":
        """Run every cluster to completion (min-cycle scheduling)."""
        if not _obs.ENABLED:
            return self._run(max_cycles)
        tr = _obs.tracer()
        with tr.span("System.run", "system",
                     args={"num_clusters": len(self.clusters)}) as sargs:
            self._run(max_cycles)
            sargs["cycles"] = self.cycle
            sargs["sys_barriers"] = self.sys_barriers
        # One slice per cluster on the simulated timeline, so the
        # Perfetto view shows where each cluster's clock ended up.
        for cluster in self.clusters:
            tr.sim_span("cluster.run", "system", 0, cluster.cycle,
                        lane=cluster.obs_lane,
                        args={"cycles": cluster.cycle})
        return self

    def _run(self, max_cycles: int) -> "System":
        clusters = self.clusters
        single = len(clusters) == 1
        quiet = 0
        last_token = None
        while True:
            active = [cl for cl in clusters
                      if not self._cluster_done(cl)]
            if not active:
                break
            self._release_sys_barrier()
            now = min(cl.cycle for cl in active)
            if now >= max_cycles:
                raise SystemTimeout(self._diagnose(max_cycles))
            batch = [cl for cl in active if cl.cycle == now]
            if self._try_system_ff(active, batch, now, max_cycles,
                                   single):
                continue
            if not single:
                dmas = [cl.dma for cl in batch]
                if any(dma._queue for dma in dmas):
                    self.interconnect.arbitrate(dmas)
            for cluster in batch:
                cluster.step()
            # Post-halt drain watchdog: every core halted yet some
            # decoupled unit can make no progress (mirrors the
            # single-cluster deadlock detection in Cluster.run).
            if all(core.halted for cl in active for core in cl.cores):
                token = tuple(cl._progress_token() for cl in active)
                quiet = quiet + 1 if token == last_token else 0
                last_token = token
                if quiet > 64:
                    raise SystemDeadlock(
                        "every core halted but a decoupled unit cannot "
                        "drain:\n" + self._diagnose(max_cycles))
            else:
                last_token = None
                quiet = 0
        self.cycle = max(cl.cycle for cl in clusters)
        return self

    def _release_sys_barrier(self) -> None:
        """Open the system barrier once every core has arrived.

        Halted cores count as arrived (matching the cluster barrier).
        Release aligns every waiting cluster's clock to the latest
        arrival -- the cycle at which the barrier actually opens -- by
        fast-forwarding (or, for non-micro-op engines, stepping) the
        parked clusters, so barrier wait time is fully accounted.
        """
        waiting = [core for cl in self.clusters for core in cl.cores
                   if core.sys_barrier_wait]
        if not waiting:
            return
        for cluster in self.clusters:
            for core in cluster.cores:
                if not (core.halted or core.sys_barrier_wait):
                    return
        parked = [cl for cl in self.clusters
                  if any(c.sys_barrier_wait for c in cl.cores)]
        tmax = max(cl.cycle for cl in parked)
        arrived_at = [cl.cycle for cl in parked]
        for cluster in parked:
            self._advance_parked(cluster, tmax)
        for core in waiting:
            core.sys_barrier_wait = False
            core.barrier_wait = False
        self.sys_barriers += 1
        if _obs.ENABLED:
            tr = _obs.tracer()
            for cluster, arrived in zip(parked, arrived_at):
                if tmax > arrived:
                    tr.sim_span("barrier.wait", "system", arrived, tmax,
                                lane=cluster.obs_lane,
                                args={"barrier": self.sys_barriers,
                                      "wait_cycles": tmax - arrived})
            tr.sim_instant("barrier.open", "system", tmax,
                           lane="system",
                           args={"barrier": self.sys_barriers,
                                 "clusters": len(parked)})

    def _advance_parked(self, cluster: Cluster, target: int) -> None:
        """Burn a parked cluster's clock up to ``target`` cycles."""
        while cluster.cycle < target:
            if not (cluster._v2
                    and cluster._try_fast_forward(target,
                                                  external=target)):
                cluster.step()

    def _try_system_ff(self, active, batch, now, max_cycles,
                       single) -> bool:
        """Jump every minimum-clock cluster over a common dead span."""
        if not single:
            # Bandwidth shares are only constant over a span when no DMA
            # can contend; with several clusters, any active DMA forces
            # cycle-by-cycle stepping through the interconnect.
            for cluster in active:
                if cluster.dma._queue:
                    return False
        caps = [cl.cycle for cl in active if cl.cycle > now]
        target = min(min(caps) if caps else _INF - 1, max_cycles)
        horizons = []
        for cluster in batch:
            if not cluster._v2 or not cluster._ff_candidate():
                return False
            horizon = cluster._dead_horizon(external=target)
            if horizon is None:
                return False
            horizons.append(horizon)
        common = min(horizons)
        for cluster in batch:
            cluster._try_fast_forward(max_cycles, external=common)
        return True

    def _diagnose(self, max_cycles: int) -> str:
        """Human-readable per-cluster state for timeout/deadlock errors."""
        arrived = sum(1 for cl in self.clusters for c in cl.cores
                      if c.sys_barrier_wait)
        total = sum(len(cl.cores) for cl in self.clusters)
        lines = [f"system stuck after {max_cycles} cycle budget "
                 f"({arrived}/{total} cores at the system barrier, "
                 f"{self.sys_barriers} barriers opened)"]
        for index, cluster in enumerate(self.clusters):
            core = cluster.core
            if core.halted:
                state = "halted"
            elif core.sys_barrier_wait:
                state = "waiting at the system barrier"
            elif core.barrier_wait:
                state = "waiting at the cluster barrier"
            else:
                state = f"running at pc={core.pc:#x}"
            lines.append(
                f"  cluster {index}: cycle={cluster.cycle}, core "
                f"{state}, dma outstanding={cluster.dma.outstanding()}, "
                f"fp idle={cluster.fp.idle}")
        return "\n".join(lines)

    def runtime_seconds(self) -> float:
        return self.cycle / self.cfg.core.clock_hz
