"""Canned campaigns: the paper's figures and the standing ablations.

Each preset is a zero-argument factory returning ``(description,
points)`` so the CLI (and tests) can run them by name.  Presets that are
pure cartesian products are expressed as :class:`SweepSpec`; the depth
ablation couples the vecop length to the pipeline depth (``n = 24 *
(depth + 1)`` keeps the iteration count per accumulator constant), so it
builds its point list directly.
"""

from __future__ import annotations

from repro.api.workloads import make_workload
from repro.kernels.variants import VARIANT_ORDER
from repro.kernels.vecop import VecopVariant
from repro.sweep.spec import SweepSpec, VECOP_KERNEL

#: Depth 7 is the frep limit: the chaining body holds 2*(depth+1)
#: instructions and the sequencer buffer is 16 entries.
ABLATION_DEPTHS = (1, 2, 3, 4, 5, 6)


def fig3_spec() -> SweepSpec:
    """The paper's Fig. 3 evaluation: 2 kernels x 5 variants."""
    return SweepSpec(name="fig3")


def smoke_spec() -> SweepSpec:
    """Fast end-to-end exercise of both workload kinds (26 points)."""
    return SweepSpec(
        name="smoke",
        kernels=("box3d1r", "j2d5pt", VECOP_KERNEL),
        grids=((2, 4, 16), (4, 6, 32)),
        ns=(64, 128),
    )


def depth_ablation_points() -> list:
    """Chaining benefit vs. FPU pipeline depth (section II remark)."""
    points = []
    for depth in ABLATION_DEPTHS:
        for variant in (VecopVariant.BASELINE, VecopVariant.CHAINING):
            points.append(make_workload(
                VECOP_KERNEL, variant, n=24 * (depth + 1),
                overrides={"fpu_depth": depth}))
    return points


def banking_spec() -> SweepSpec:
    """TCDM banking sensitivity of the two paper kernels."""
    return SweepSpec(
        name="banking",
        variants=tuple(VARIANT_ORDER),
        grids=((2, 4, 16),),
        overrides=({"tcdm_banks": 8}, {"tcdm_banks": 16},
                   {"tcdm_banks": 32}),
    )


#: Cluster counts of the multi-cluster scaling campaign.
SCALING_CLUSTERS = (1, 2, 4)

#: Per-cluster slab of the weak-scaling series / global grid of the
#: strong-scaling series (nz, ny, nx); nz divides by every cluster count.
SCALING_GRID = (4, 4, 8)

#: Halo-exchange sweeps per scaling point (>= 2 so the system barrier
#: and the inter-sweep exchange are on the measured path).
SCALING_ITERS = 2


def scaling_points() -> list:
    """Strong- and weak-scaling of the paper stencils over 1/2/4 clusters.

    * **strong**: the global grid is fixed at :data:`SCALING_GRID`; more
      clusters mean thinner z-slabs.
    * **weak**: every cluster keeps a :data:`SCALING_GRID`-sized slab;
      the global grid grows with the cluster count.

    The ``num_clusters=1`` strong and weak points coincide and are
    emitted once.  Every point carries the system axes in its cache key,
    so scaling campaigns cache per cluster count.
    """
    nz, ny, nx = SCALING_GRID
    points = []
    for kernel in ("box3d1r", "j3d27pt"):
        for num_clusters in SCALING_CLUSTERS:
            grids = [(nz, ny, nx)]                      # strong
            if num_clusters > 1:
                grids.append((nz * num_clusters, ny, nx))   # weak
            for grid in grids:
                points.append(make_workload(
                    kernel, "Chaining+", grid=grid,
                    system={"num_clusters": num_clusters,
                            "iters": SCALING_ITERS}))
    return points


def calibration_points() -> list:
    """The analytical model's cross-validation spec (every workload
    family; linalg builds ride along inside ``repro calibrate``)."""
    from repro.analytical.calibrate import calibration_workloads
    return calibration_workloads()


PRESETS = {
    "fig3": ("Fig. 3: 2 paper kernels x 5 variants, default grids",
             fig3_spec),
    "calibration": ("analytical-model cross-validation: every workload "
                    "family at small shapes", calibration_points),
    "smoke": ("fast 26-point mixed stencil/vecop campaign", smoke_spec),
    "depth-ablation": ("chaining benefit vs. FPU pipeline depth 1..6",
                       depth_ablation_points),
    "banking": ("TCDM bank-count sensitivity, 8/16/32 banks",
                banking_spec),
    "scaling": ("strong/weak multi-cluster scaling of the paper "
                "stencils over 1/2/4 clusters", scaling_points),
}


def preset_points(name: str) -> tuple[str, list]:
    """Resolve a preset name to ``(description, points)``."""
    try:
        description, factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from: "
            f"{', '.join(sorted(PRESETS))}") from None
    produced = factory()
    points = produced.points() if isinstance(produced, SweepSpec) \
        else produced
    return description, points
