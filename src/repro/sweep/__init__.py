"""Experiment-campaign engine: declarative sweeps, parallel execution,
content-addressed result caching, and aggregation.

Quick start::

    from repro.sweep import SweepSpec, SweepRunner

    spec = SweepSpec(kernels=("box3d1r",), grids=((2, 4, 16), (4, 6, 32)),
                     overrides=({"tcdm_banks": 16}, {"tcdm_banks": 32}))
    campaign = SweepRunner(cache=".sweep-cache").run(spec)
    for outcome in campaign.ok:
        print(outcome.point.label, outcome.result.fpu_utilization)

See ``docs/sweeps.md`` for the spec format and cache layout.
"""

from repro.sweep.aggregate import (
    RESULT_METRICS,
    best_points,
    by_kernel_variant,
    group_by,
    speedup_vs_baseline,
    summary_rows,
)
from repro.sweep.cache import ResultCache, point_key, result_from_record, \
    result_to_record
from repro.sweep.presets import PRESETS, preset_points
from repro.sweep.runner import (
    Campaign,
    Outcome,
    SweepRunner,
    apply_overrides,
    execute_point,
)
from repro.sweep.spec import (
    Point,
    SweepSpec,
    VECOP_KERNEL,
    make_point,
    normalize_variant,
)

__all__ = [
    "Campaign",
    "Outcome",
    "PRESETS",
    "Point",
    "RESULT_METRICS",
    "ResultCache",
    "SweepRunner",
    "SweepSpec",
    "VECOP_KERNEL",
    "apply_overrides",
    "best_points",
    "by_kernel_variant",
    "execute_point",
    "group_by",
    "make_point",
    "normalize_variant",
    "point_key",
    "preset_points",
    "result_from_record",
    "result_to_record",
    "speedup_vs_baseline",
    "summary_rows",
]
