"""Experiment-campaign engine: declarative sweeps, parallel execution,
content-addressed result caching, and aggregation.

Quick start::

    from repro.api import Session
    from repro.sweep import SweepSpec

    spec = SweepSpec(kernels=("box3d1r",), grids=((2, 4, 16), (4, 6, 32)),
                     overrides=({"tcdm_banks": 16}, {"tcdm_banks": 32}))
    campaign = Session(cache=".sweep-cache").map(spec.points(),
                                                 parallel=True)
    for outcome in campaign.ok:
        print(outcome.point.label, outcome.result.fpu_utilization)

(The lower-level :class:`SweepRunner` remains the engine underneath
``Session.map``.)  See ``docs/sweeps.md`` for the spec format and cache
layout.  The expansion unit ``Point`` is deprecated: it is the same
class as :class:`repro.api.Workload` (identical fields, canonical form
and cache keys).
"""

from repro.api.workloads import (
    Workload,
    deprecated_point_alias,
    make_workload,
)
from repro.sweep.aggregate import (
    RESULT_METRICS,
    best_points,
    by_kernel_variant,
    group_by,
    speedup_vs_baseline,
    summary_rows,
)
from repro.sweep.audit import (
    AUDIT_AXES,
    AUDIT_SCHEMA,
    GAP_CLASSES,
    BackfillPlan,
    CampaignAudit,
    PointAudit,
    audit_campaign,
)
from repro.sweep.cache import ResultCache, point_key, result_from_record, \
    result_to_record
from repro.sweep.presets import PRESETS, preset_points
from repro.sweep.runner import (
    Campaign,
    Outcome,
    SweepRunner,
    apply_overrides,
    execute_point,
)
from repro.sweep.spec import (
    SweepSpec,
    VECOP_KERNEL,
    normalize_variant,
)

#: Deprecated alias of :func:`repro.api.workloads.make_workload` (kept
#: callable without a warning; ``Point`` warns via ``__getattr__``).
make_point = make_workload

__all__ = [
    "AUDIT_AXES",
    "AUDIT_SCHEMA",
    "BackfillPlan",
    "Campaign",
    "CampaignAudit",
    "GAP_CLASSES",
    "Outcome",
    "PRESETS",
    "PointAudit",
    "RESULT_METRICS",
    "ResultCache",
    "SweepRunner",
    "SweepSpec",
    "VECOP_KERNEL",
    "Workload",
    "apply_overrides",
    "audit_campaign",
    "best_points",
    "by_kernel_variant",
    "execute_point",
    "group_by",
    "make_point",
    "make_workload",
    "normalize_variant",
    "point_key",
    "preset_points",
    "result_from_record",
    "result_to_record",
    "speedup_vs_baseline",
    "summary_rows",
]


def __getattr__(name: str):
    # Not in __all__ on purpose: star imports stay warning-free.
    if name == "Point":
        return deprecated_point_alias(f"{__name__}.Point")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
