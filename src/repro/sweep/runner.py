"""Campaign execution: serial or process-parallel, with result caching.

Each simulation is a single-threaded pure-Python :class:`Cluster` run, so
fanning points out over a :class:`~concurrent.futures.ProcessPoolExecutor`
is a near-linear wall-clock win on multi-core hosts.  The parent process
owns the cache; workers only compute and return picklable results, so
there is exactly one writer and no lock file.

Failure isolation: a point that raises is captured as an ``"error"``
outcome with its traceback, and a broken pool marks the remaining
points instead of raising.  One bad point cannot sink a campaign.

The per-point ``timeout`` is enforced *inside* the executing process
via ``SIGALRM`` (wall-clock, measured from the point's actual execution
start -- queue wait behind slow siblings is never charged), so a
timed-out worker survives and immediately picks up the next point.  A
generous parent-side backstop still abandons workers that hang somewhere
signals cannot reach.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

from repro.api.cancel import CancelToken
from repro.api.execute import (
    DEFAULT_MAX_CYCLES,
    apply_overrides,
    execute_workload,
)
from repro.api.parse import parse_engine
from repro.api.result import Result
from repro.api.workloads import Workload
from repro.core.config import CoreConfig
from repro.obs import spans as _obs
from repro.obs.metrics import METRICS, campaign_obs
from repro.sweep.cache import ResultCache, package_version, point_key, \
    result_to_record
from repro.sweep.spec import SweepSpec

__all__ = [
    "Campaign",
    "DEFAULT_MAX_CYCLES",
    "Outcome",
    "SweepRunner",
    "apply_overrides",
    "execute_point",
    "point_worker",
]

#: Pre-1.5 name of :func:`repro.api.execute.execute_workload` (same
#: function; the unit of work was renamed Point -> Workload).
execute_point = execute_workload


class _PointTimeout(Exception):
    """Raised by the SIGALRM handler when a point's budget expires."""


class _PoolWedged(Exception):
    """A queued future can no longer start: its slot is held by an
    abandoned (signal-immune) worker."""


def _raise_point_timeout(signum, frame):
    raise _PointTimeout()


def _pool_worker_init() -> None:
    """Pool workers ignore SIGINT: a terminal Ctrl-C reaches the whole
    process group, and the *parent* owns the shutdown story (cooperative
    cancellation or a clean drain) -- a worker that dies mid-point to
    the shared signal would break the pool instead.  Workers stay bound
    by their per-point SIGALRM budgets and die with the parent."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def point_worker(point: Workload, base_cfg: CoreConfig | None,
            max_cycles: int | None,
            timeout: float | None = None,
            engine: str | None = None,
            obs_dir: str | None = None) -> tuple[str, object, float]:
    """Pool entry point: never raises, always returns a picklable triple.

    The timeout alarm only engages on platforms with ``setitimer`` and
    when running on the main thread (always true for pool workers);
    elsewhere points simply run to completion.

    ``obs_dir`` carries the parent's telemetry sink: when set, the
    worker (re-)enables observability writing its own per-process span
    segment there and wraps the point in a ``sweep.point`` span.
    """
    start = time.perf_counter()
    _obs.ensure_worker(obs_dir)
    use_alarm = (timeout is not None and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    old_handler = None
    try:
        if use_alarm:
            old_handler = signal.signal(signal.SIGALRM,
                                        _raise_point_timeout)
            signal.setitimer(signal.ITIMER_REAL, max(timeout, 1e-6))
        if _obs.ENABLED:
            with _obs.tracer().span("sweep.point", "sweep",
                                    args={"point": point.label}) as sargs:
                result = execute_point(point, base_cfg=base_cfg,
                                       max_cycles=max_cycles,
                                       engine=engine)
                sargs["status"] = "ok"
        else:
            result = execute_point(point, base_cfg=base_cfg,
                                   max_cycles=max_cycles, engine=engine)
        return "ok", result, time.perf_counter() - start
    except _PointTimeout:
        return "timeout", f"exceeded {timeout}s budget", \
            time.perf_counter() - start
    except Exception:
        return "error", traceback.format_exc(), time.perf_counter() - start
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


#: Pre-1.9 private name of :func:`point_worker` (same function; it went
#: public as the serve layer's executor-bridge entry point).
_worker = point_worker


@dataclass
class Outcome:
    """One point's fate in a campaign."""

    point: Workload
    status: str                  # "ok" | "error" | "timeout" | "cancelled"
    result: Result | None = None
    error: str | None = None
    seconds: float = 0.0
    cached: bool = False
    key: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> dict:
        """JSON-ready form (used by ``--json`` export)."""
        return {
            "point": self.point.canonical(),
            "label": self.point.label,
            "status": self.status,
            "cached": self.cached,
            "seconds": round(self.seconds, 4),
            "error": self.error,
            "result": result_to_record(self.result) if self.result else None,
        }


@dataclass
class Campaign:
    """All outcomes of one :meth:`SweepRunner.run`, in point order."""

    outcomes: list[Outcome] = field(default_factory=list)
    seconds: float = 0.0
    #: Aggregated telemetry (``repro.obs.metrics.campaign_obs``); only
    #: filled when observability was enabled during the run.
    obs: dict | None = None
    #: Triage accounting (``Session.map(fidelity="triage")``): point /
    #: estimated / selected counts.  ``None`` for ordinary campaigns.
    triage: dict | None = None
    #: True when the campaign stopped early -- a tripped
    #: :class:`~repro.api.cancel.CancelToken` or a KeyboardInterrupt --
    #: so undispatched points carry ``"cancelled"`` outcomes.
    interrupted: bool = False

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list[Outcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def error_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "error")

    @property
    def timeout_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "timeout")

    @property
    def cancelled_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cancelled")

    @property
    def cached_count(self) -> int:
        return sum(o.cached for o in self.outcomes)

    @property
    def hit_rate(self) -> float:
        return self.cached_count / len(self.outcomes) if self.outcomes \
            else 0.0

    def summary(self) -> dict:
        """JSON-ready campaign roll-up (counts, hit rate, telemetry)."""
        summary = {
            "points": len(self.outcomes),
            "ok": self.ok_count,
            "errors": self.error_count,
            "timeouts": self.timeout_count,
            "cancelled": self.cancelled_count,
            "interrupted": self.interrupted,
            "cached_count": self.cached_count,
            "hit_rate": round(self.hit_rate, 4),
            "seconds": round(self.seconds, 3),
        }
        if self.obs is not None:
            summary["obs"] = self.obs
        if self.triage is not None:
            summary["triage"] = self.triage
        return summary

    def results(self) -> dict[Workload, Result]:
        """Workload -> result for every successful outcome."""
        return {o.point: o.result for o in self.outcomes if o.ok}

    def raise_on_failure(self) -> None:
        """Propagate the first failure (legacy serial-loop semantics)."""
        for outcome in self.outcomes:
            if not outcome.ok:
                raise RuntimeError(
                    f"sweep point {outcome.point.label} "
                    f"{outcome.status}:\n{outcome.error or ''}")


class SweepRunner:
    """Executes campaigns of points with caching and process fan-out.

    ``workers=None`` sizes the pool to the host's cores; ``workers<=1``
    runs serially in-process (no pickling -- results are the very objects
    the eval runner produced, which the figure harnesses rely on for
    bit-identical reproduction).

    ``max_cycles=None`` (default) uses the per-workload backend budgets
    (5M single-cluster, 20M system) -- identical to ``Session.run``, so
    what a cache holds never depends on which front door simulated it.
    """

    def __init__(self, cache: ResultCache | str | None = None,
                 workers: int | None = None,
                 timeout: float | None = None,
                 base_cfg: CoreConfig | None = None,
                 max_cycles: int | None = None,
                 engine: str | None = None):
        cache = ResultCache.coerce(cache)
        if engine is not None:
            parse_engine(engine)
        self.cache = cache
        self.workers = workers
        self.timeout = timeout
        self.base_cfg = base_cfg
        self.max_cycles = max_cycles
        #: Campaign-wide engine selection; a per-point ``("engine", ...)``
        #: override still wins.  Part of every cache key.
        self.engine = engine

    def run(self, spec_or_points, progress=None,
            cancel: CancelToken | None = None) -> Campaign:
        """Execute a :class:`SweepSpec` or an explicit list of points.

        ``progress(outcome, done, total)`` is called as each outcome
        lands (cache hits first, then live results in completion order).

        ``cancel`` is a cooperative :class:`~repro.api.cancel.
        CancelToken`: once tripped, no further point is dispatched --
        in-flight points drain (bounded by their own timeouts, results
        kept and cached) and every undispatched point lands as a
        ``"cancelled"`` outcome.  A KeyboardInterrupt (SIGINT without a
        token) is handled the same way, except in-flight workers are
        terminated instead of drained; either way the campaign returns
        with :attr:`Campaign.interrupted` set instead of raising, the
        failure log holds everything that already failed, and no pool
        worker is orphaned.
        """
        if isinstance(spec_or_points, SweepSpec):
            points = spec_or_points.points()
        else:
            points = list(spec_or_points)
        start = time.perf_counter()
        version = package_version()

        outcomes: dict[int, Outcome] = {}
        pending: list[tuple[int, Workload, str | None]] = []
        for index, point in enumerate(points):
            key = None
            if self.cache is not None:
                key = point_key(point, version, self.base_cfg,
                                engine=self.engine)
                cached = self.cache.get(key)
                if cached is not None:
                    outcomes[index] = Outcome(
                        point=point, status="ok", result=cached,
                        cached=True, key=key)
                    if _obs.ENABLED:
                        METRICS.inc("cache.hit")
                        _obs.tracer().instant(
                            "cache.hit", "sweep",
                            args={"point": point.label})
                    continue
            pending.append((index, point, key))

        done = 0
        if progress:
            for index in sorted(outcomes):
                done += 1
                progress(outcomes[index], done, len(points))
        done = len(outcomes)

        interrupted = False
        if pending:
            serial = self.workers is not None and self.workers <= 1
            execute = self._run_serial if serial else self._run_parallel
            stream = execute(pending, cancel)
            while True:
                try:
                    index, outcome = next(stream)
                except StopIteration as stop:
                    interrupted = bool(stop.value)
                    break
                outcomes[index] = outcome
                if outcome.ok and not outcome.cached and \
                        self.cache is not None:
                    self.cache.put(outcome.key, outcome.point,
                                   outcome.result, outcome.seconds,
                                   version)
                elif outcome.status in ("error", "timeout") and \
                        self.cache is not None and \
                        outcome.key is not None:
                    # Resume hook: failures are never served as results
                    # (the next campaign still retries them), but the
                    # store remembers the last failed outcome per key so
                    # `repro audit` can classify error/timeout gaps and
                    # budget retries from the store alone.  Cancelled
                    # points never ran: they are not failures.
                    self.cache.put_failure(
                        outcome.key, outcome.point, outcome.status,
                        outcome.error, outcome.seconds, version)
                if _obs.ENABLED:
                    if outcome.key is not None:
                        METRICS.inc("cache.miss")
                    METRICS.observe("sweep.point_seconds",
                                    outcome.seconds)
                done += 1
                if progress:
                    progress(outcome, done, len(points))

        ordered = [outcomes[i] for i in sorted(outcomes)]
        campaign = Campaign(outcomes=ordered,
                            seconds=time.perf_counter() - start,
                            interrupted=interrupted)
        if _obs.ENABLED:
            campaign.obs = campaign_obs(ordered, campaign.seconds)
        return campaign

    def _run_serial(self, pending, cancel: CancelToken | None = None):
        obs_dir = _obs.sink_dir()
        interrupted = False
        for index, point, key in pending:
            if interrupted or (cancel is not None and cancel.cancelled):
                yield index, Outcome(
                    point=point, status="cancelled", key=key,
                    error="interrupted before dispatch" if interrupted
                    else "cancelled before dispatch")
                continue
            try:
                status, payload, seconds = point_worker(
                    point, self.base_cfg, self.max_cycles,
                    self.timeout, self.engine, obs_dir)
            except KeyboardInterrupt:
                interrupted = True
                yield index, Outcome(
                    point=point, status="cancelled", key=key,
                    error="interrupted mid-run (SIGINT)")
                continue
            yield index, self._outcome(point, key, status, payload, seconds)
        return interrupted

    def _run_parallel(self, pending, cancel: CancelToken | None = None):
        import os
        workers = self.workers or os.cpu_count() or 1
        workers = min(workers, len(pending))
        obs_dir = _obs.sink_dir()
        executor = ProcessPoolExecutor(max_workers=workers,
                                       initializer=_pool_worker_init)
        futures = [(index, point, key,
                    executor.submit(point_worker, point, self.base_cfg,
                                    self.max_cycles, self.timeout,
                                    self.engine, obs_dir))
                   for index, point, key in pending]
        abandoned = False
        interrupted = False
        # Eager cancellation: workers drain the executor queue in the
        # same FIFO order this loop awaits futures, so by the time the
        # loop *reaches* a position its future is usually already
        # running -- a lazy per-iteration ``future.cancel()`` loses
        # that race every time and the whole campaign drains.  A tiny
        # watcher thread reacts the moment the token trips and sweeps
        # ``cancel()`` over every still-queued future at once; the loop
        # below then just observes ``future.cancelled()``.
        watch_stop = threading.Event()
        watcher = None
        if cancel is not None:
            def _watch() -> None:
                while not watch_stop.is_set():
                    if cancel.wait(0.05):
                        for _, _, _, queued in futures:
                            queued.cancel()
                        return
            watcher = threading.Thread(
                target=_watch, name="sweep-cancel-watcher", daemon=True)
            watcher.start()
        try:
            for pos, (index, point, key, future) in enumerate(futures):
                if interrupted:
                    future.cancel()
                if future.cancelled():
                    # Never started: free to drop.  Started points keep
                    # draining (token path) so their results land.
                    yield index, Outcome(
                        point=point, status="cancelled", key=key,
                        error="cancelled before dispatch")
                    continue
                if interrupted:
                    # Its worker was terminated by the interrupt below.
                    yield index, Outcome(
                        point=point, status="cancelled", key=key,
                        error="interrupted mid-run (SIGINT)")
                    continue
                try:
                    status, payload, seconds = self._await(
                        future, pool_wedged=abandoned)
                except CancelledError:
                    # The watcher won a race against this very future.
                    yield index, Outcome(
                        point=point, status="cancelled", key=key,
                        error="cancelled before dispatch")
                    continue
                except _PoolWedged:
                    future.cancel()
                    yield index, Outcome(
                        point=point, status="timeout", key=key,
                        error="never started: pool wedged behind a hung "
                              "worker")
                    continue
                except FutureTimeout:
                    future.cancel()
                    abandoned = True
                    yield index, Outcome(
                        point=point, status="timeout", key=key,
                        seconds=self.timeout or 0.0,
                        error=f"exceeded {self.timeout}s budget")
                    continue
                except BrokenExecutor:
                    yield index, Outcome(
                        point=point, status="error", key=key,
                        error="worker pool broke (worker died?)")
                    continue
                except KeyboardInterrupt:
                    # Workers ignore SIGINT (initializer), so the pool
                    # is still intact here: cancel everything queued,
                    # terminate the in-flight workers, report the rest
                    # as cancelled.  Terminated processes join fast, so
                    # the finally-shutdown below cannot orphan them.
                    interrupted = True
                    for _, _, _, pending_future in futures[pos + 1:]:
                        pending_future.cancel()
                    for proc in list(getattr(executor, "_processes",
                                             {}).values()):
                        proc.terminate()
                    yield index, Outcome(
                        point=point, status="cancelled", key=key,
                        error="interrupted mid-run (SIGINT)")
                    continue
                yield index, self._outcome(point, key, status, payload,
                                           seconds)
        finally:
            watch_stop.set()
            if watcher is not None:
                watcher.join(timeout=1.0)
            # Abandoned workers may still be simulating; don't block on
            # them, but reap cleanly when everything completed (or was
            # terminated by an interrupt).
            executor.shutdown(wait=not abandoned,
                              cancel_futures=abandoned or interrupted)
        return interrupted

    def _await(self, future, pool_wedged: bool = False):
        """Wait for one future, with a hung-worker backstop.

        The real budget is the worker's own SIGALRM; the backstop only
        abandons workers stuck somewhere signals cannot interrupt.  The
        clock starts once the future leaves the executor's queue
        (prefetch makes that slightly early, which the 3x-plus-margin
        absorbs), so points queued behind slow siblings are never
        falsely charged.  Once a worker has been abandoned its pool slot
        may never free, so the queue wait itself is then bounded too.
        """
        if self.timeout is None:
            return future.result()
        backstop = 3.0 * self.timeout + 30.0
        start_deadline = time.monotonic() + backstop if pool_wedged \
            else None
        while not (future.running() or future.done()):
            if start_deadline is not None and \
                    time.monotonic() > start_deadline:
                raise _PoolWedged()
            time.sleep(0.005)
        return future.result(timeout=backstop)

    @staticmethod
    def _outcome(point, key, status, payload, seconds) -> Outcome:
        if status == "ok":
            return Outcome(point=point, status="ok", result=payload,
                           seconds=seconds, key=key)
        return Outcome(point=point, status=status, error=payload,
                       seconds=seconds, key=key)
