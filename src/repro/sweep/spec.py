"""Declarative sweep specifications and their expansion into workloads.

A :class:`SweepSpec` describes an experiment campaign as axes (kernels,
variants, grids, core-config overrides, ...) whose cartesian product is
expanded into :class:`~repro.api.workloads.Workload` dataclasses -- the
unit of work the runner executes and the cache keys.

Two workload kinds share one spec:

* **stencil** kernels (every name in :data:`repro.kernels.registry.STENCILS`)
  take the ``grids`` and ``unrolls`` axes;
* the **vecop** pseudo-kernel (``kernel == "vecop"``, the paper's Fig. 1
  vector op) takes the ``ns`` and ``loop_modes`` axes.

Variants that do not apply to a kernel's kind are skipped during
expansion, so one spec can mix both kinds; a variant name that matches
*neither* kind is rejected as a typo.

Config overrides are flat ``{field: value}`` dicts over the scalar
:class:`~repro.core.config.CoreConfig` fields, plus the virtual key
``fpu_depth`` which sets ``fpu_pipe_depth`` *and* the ADD/MUL/FMA
latencies together (the knob of the depth ablation).

The expansion unit used to be defined here as ``Point``; it now lives
in :mod:`repro.api.workloads` as :class:`Workload` (identical fields,
canonical form and cache keys).  ``Point`` and ``make_point`` remain as
deprecated aliases for one release.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.api.parse import (
    VECOP_KERNEL,
    normalize_variant,
    resolve_variant,
)
from repro.api.workloads import (
    FPU_DEPTH_KEY,
    OVERRIDABLE_FIELDS,
    SYSTEM_FIELDS,
    Workload,
    deprecated_point_alias,
    make_workload,
)
from repro.kernels.registry import PAPER_KERNELS
from repro.kernels.variants import VARIANT_ORDER
from repro.kernels.vecop import VecopVariant

__all__ = [
    "FPU_DEPTH_KEY",
    "OVERRIDABLE_FIELDS",
    "SYSTEM_FIELDS",
    "SweepSpec",
    "VECOP_KERNEL",
    "Workload",
    "make_point",
    "normalize_variant",
    "resolve_variant",
]

#: Deprecated alias of :func:`repro.api.workloads.make_workload`, kept
#: callable without a warning because the sweep spec format is
#: unchanged; ``Point`` (the class) warns via module ``__getattr__``.
make_point = make_workload


def __getattr__(name: str):
    if name == "Point":
        return deprecated_point_alias(f"{__name__}.Point")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


@dataclass
class SweepSpec:
    """Axes of a campaign; :meth:`points` expands the cartesian product.

    ``variants=None`` means *all* variants applicable to each kernel's
    kind.  Any ``None`` entry on the grid axis selects the kernel's
    registry default grid; ``None`` on ``unrolls`` selects the builder
    default.  The ``systems`` axis (multi-cluster ``num_clusters`` /
    ``iters`` / interconnect dicts) applies to stencil kernels only; the
    vecop pseudo-kernel ignores it (its workloads are always
    single-cluster).
    """

    name: str = "sweep"
    kernels: tuple[str, ...] = PAPER_KERNELS
    variants: tuple | None = None
    grids: tuple = (None,)
    ns: tuple = (None,)
    loop_modes: tuple = (None,)
    unrolls: tuple = (None,)
    overrides: tuple = (None,)
    systems: tuple = (None,)
    meta: dict = field(default_factory=dict)

    def _variant_labels(self, for_vecop: bool) -> list[str]:
        if self.variants is None:
            if for_vecop:
                return [v.value for v in VecopVariant]
            return [v.label for v in VARIANT_ORDER]
        labels = []
        for variant in self.variants:
            label = resolve_variant(variant, for_vecop)
            if label is not None and label not in labels:
                labels.append(label)
        return labels

    def points(self) -> list[Workload]:
        """Expand, validate, and deduplicate (order-preserving)."""
        for variant in self.variants or ():
            normalize_variant(variant)  # reject outright typos eagerly
        out: list[Workload] = []
        seen: set[Workload] = set()
        for kernel in self.kernels:
            is_vecop = kernel == VECOP_KERNEL
            labels = self._variant_labels(for_vecop=is_vecop)
            for over in self.overrides:
                for variant in labels:
                    if is_vecop:
                        for n in self.ns:
                            for loop_mode in self.loop_modes:
                                out.append(make_workload(
                                    kernel, variant, n=n,
                                    loop_mode=loop_mode, overrides=over))
                    else:
                        for grid in self.grids:
                            for unroll in self.unrolls:
                                for system in self.systems:
                                    out.append(make_workload(
                                        kernel, variant, grid=grid,
                                        unroll=unroll, overrides=over,
                                        system=system))
        unique = []
        for point in out:
            if point not in seen:
                seen.add(point)
                unique.append(point)
        return unique

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "kernels": list(self.kernels),
            "grids": [list(g) if g else None for g in self.grids],
            "ns": list(self.ns),
            "loop_modes": list(self.loop_modes),
            "unrolls": list(self.unrolls),
            "overrides": [dict(o) if o else None for o in self.overrides],
            "systems": [dict(s) if s else None for s in self.systems],
        }
        if self.variants is not None:
            data["variants"] = [normalize_variant(v) for v in self.variants]
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        known = {"name", "kernels", "variants", "grids", "ns",
                 "loop_modes", "unrolls", "overrides", "systems", "meta"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec keys {sorted(unknown)}; "
                f"allowed: {sorted(known)}")

        def axis(key, default=(None,)):
            # A JSON null (or absent key) on any axis means its default.
            value = data.get(key)
            if value is None:
                return default
            if isinstance(value, (str, bytes)):
                raise ValueError(
                    f"spec key {key!r} must be a list, got {value!r}")
            return tuple(value)

        spec = cls(
            name=data.get("name") or "sweep",
            kernels=axis("kernels", PAPER_KERNELS),
            variants=axis("variants", None),
            grids=tuple(tuple(g) if g else None
                        for g in axis("grids")),
            ns=axis("ns"),
            loop_modes=axis("loop_modes"),
            unrolls=axis("unrolls"),
            overrides=axis("overrides"),
            systems=axis("systems"),
            meta=dict(data.get("meta") or {}),
        )
        spec.points()  # validate eagerly so bad specs fail at load time
        return spec

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        if str(path).endswith(".toml"):
            import tomllib
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        else:
            with open(path) as handle:
                data = json.load(handle)
        return cls.from_dict(data)
