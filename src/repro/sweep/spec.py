"""Declarative sweep specifications and their expansion into points.

A :class:`SweepSpec` describes an experiment campaign as axes (kernels,
variants, grids, core-config overrides, ...) whose cartesian product is
expanded into hashable, canonicalizable :class:`Point` dataclasses -- the
unit of work the runner executes and the cache keys.

Two workload kinds share one spec:

* **stencil** kernels (every name in :data:`repro.kernels.registry.STENCILS`)
  take the ``grids`` and ``unrolls`` axes;
* the **vecop** pseudo-kernel (``kernel == "vecop"``, the paper's Fig. 1
  vector op) takes the ``ns`` and ``loop_modes`` axes.

Variants that do not apply to a kernel's kind are skipped during
expansion, so one spec can mix both kinds; a variant name that matches
*neither* kind is rejected as a typo.

Config overrides are flat ``{field: value}`` dicts over the scalar
:class:`~repro.core.config.CoreConfig` fields, plus the virtual key
``fpu_depth`` which sets ``fpu_pipe_depth`` *and* the ADD/MUL/FMA
latencies together (the knob of the depth ablation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields

from repro.core.config import CoreConfig
from repro.kernels.layout import Grid3d
from repro.kernels.registry import PAPER_KERNELS, STENCILS
from repro.kernels.variants import VARIANT_ORDER, Variant
from repro.kernels.vecop import VecopVariant

#: Pseudo-kernel name routing a point through the Fig. 1 vecop builder.
VECOP_KERNEL = "vecop"

#: Virtual override key: pipeline depth *and* ADD/MUL/FMA latency.
FPU_DEPTH_KEY = "fpu_depth"

#: CoreConfig fields a sweep may override (scalars only; the latency
#: dict is reached through the ``fpu_depth`` virtual key).
OVERRIDABLE_FIELDS = frozenset(
    f.name for f in dataclass_fields(CoreConfig) if f.name != "fpu_latency"
) | {FPU_DEPTH_KEY}

#: Multi-cluster system axes a (stencil) point may set: the cluster
#: count, the sweep count of the halo-exchange schedule, and the
#: interconnect/global-memory knobs of
#: :class:`~repro.core.config.SystemConfig`.  Part of every cache key.
SYSTEM_FIELDS = frozenset({
    "num_clusters", "iters", "gmem_banks", "gmem_bank_bytes_per_cycle",
    "gmem_latency", "link_bytes_per_cycle", "gmem_size",
})

_STENCIL_LABELS = {v.label.lower(): v.label for v in Variant}
_VECOP_LABELS = {v.value.lower(): v.value for v in VecopVariant}


def resolve_variant(variant, for_vecop: bool) -> str | None:
    """Canonical label of ``variant`` within one workload kind, or
    ``None`` if the spelling does not name a variant of that kind.

    Case-insensitive; enum instances resolve only in their own kind.
    Some spellings name a variant in *both* kinds (``"chaining"`` is the
    vecop variant and, case-insensitively, the stencil ``Chaining``), so
    resolution is always relative to a kernel's kind.
    """
    if isinstance(variant, Variant):
        return variant.label if not for_vecop else None
    if isinstance(variant, VecopVariant):
        return variant.value if for_vecop else None
    pool = _VECOP_LABELS if for_vecop else _STENCIL_LABELS
    return pool.get(str(variant).lower())


def normalize_variant(variant) -> str:
    """Canonical label for any accepted variant spelling, any kind.

    Ambiguous spellings resolve to the vecop label; use
    :func:`resolve_variant` when the workload kind is known (matching
    against canonical labels should be done case-insensitively).
    """
    label = resolve_variant(variant, for_vecop=True)
    if label is None:
        label = resolve_variant(variant, for_vecop=False)
    if label is None:
        options = list(_VECOP_LABELS.values()) + \
            list(_STENCIL_LABELS.values())
        raise ValueError(
            f"unknown variant {variant!r}; choose from: "
            f"{', '.join(options)}")
    return label


def _normalize_grid(grid) -> tuple[int, ...] | None:
    if grid is None:
        return None
    if isinstance(grid, Grid3d):
        dims = (grid.nz, grid.ny, grid.nx)
        return dims if grid.radius == 1 else dims + (grid.radius,)
    dims = tuple(int(d) for d in grid)
    if len(dims) not in (3, 4):
        raise ValueError(f"grid must be (nz, ny, nx[, radius]), got {grid!r}")
    return dims


def _normalize_overrides(overrides) -> tuple[tuple[str, object], ...]:
    if not overrides:
        return ()
    items = dict(overrides).items()
    for key, value in items:
        if key not in OVERRIDABLE_FIELDS:
            raise ValueError(
                f"unknown config override {key!r}; choose from: "
                f"{', '.join(sorted(OVERRIDABLE_FIELDS))}")
        if key == "engine":
            if value not in ("auto", "fast", "scalar", "scalar-v2"):
                raise ValueError(
                    f"override engine={value!r} must be 'auto', 'fast', "
                    f"'scalar' or 'scalar-v2'")
        elif not isinstance(value, (bool, int, float)):
            raise ValueError(
                f"override {key}={value!r} must be a scalar")
    return tuple(sorted(items))


def _normalize_system(system) -> tuple[tuple[str, int], ...]:
    """Validate and canonicalize a point's multi-cluster system axes."""
    if not system:
        return ()
    items = dict(system).items()
    out = []
    for key, value in items:
        if key not in SYSTEM_FIELDS:
            raise ValueError(
                f"unknown system axis {key!r}; choose from: "
                f"{', '.join(sorted(SYSTEM_FIELDS))}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"system axis {key}={value!r} must be an integer")
        out.append((key, value))
    return tuple(sorted(out))


@dataclass(frozen=True)
class Point:
    """One fully-determined experiment: hashable, orderable, cacheable.

    ``grid``/``unroll`` apply to stencil kernels, ``n``/``loop_mode`` to
    the vecop pseudo-kernel; inapplicable fields stay ``None`` so the
    canonical form is stable across spec spellings.
    """

    kernel: str
    variant: str
    grid: tuple[int, ...] | None = None
    n: int | None = None
    loop_mode: str | None = None
    unroll: int | None = None
    overrides: tuple[tuple[str, object], ...] = ()
    #: Multi-cluster axes (``num_clusters``, ``iters``, interconnect and
    #: global-memory knobs); empty for plain single-cluster points.
    #: Always part of :meth:`canonical` -- and therefore of the sweep
    #: cache key -- so a cached single-cluster result can never be
    #: served for a multi-cluster point.
    system: tuple[tuple[str, int], ...] = ()

    @property
    def is_vecop(self) -> bool:
        return self.kernel == VECOP_KERNEL

    @property
    def is_system(self) -> bool:
        """True when the point runs on a multi-cluster System."""
        return bool(self.system)

    @property
    def num_clusters(self) -> int:
        return dict(self.system).get("num_clusters", 1)

    def grid3d(self) -> Grid3d | None:
        if self.grid is None:
            return None
        nz, ny, nx = self.grid[:3]
        radius = self.grid[3] if len(self.grid) > 3 else 1
        return Grid3d(nz=nz, ny=ny, nx=nx, radius=radius)

    def stencil_variant(self) -> Variant:
        return Variant.from_label(self.variant)

    def canonical(self) -> dict:
        """Plain-type, key-sorted dict -- the content-address payload."""
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "grid": list(self.grid) if self.grid else None,
            "n": self.n,
            "loop_mode": self.loop_mode,
            "unroll": self.unroll,
            "overrides": [[k, v] for k, v in self.overrides],
            "system": [[k, v] for k, v in self.system],
        }

    @classmethod
    def from_canonical(cls, data: dict) -> "Point":
        return cls(
            kernel=data["kernel"],
            variant=data["variant"],
            grid=tuple(data["grid"]) if data.get("grid") else None,
            n=data.get("n"),
            loop_mode=data.get("loop_mode"),
            unroll=data.get("unroll"),
            overrides=tuple((k, v) for k, v in data.get("overrides", ())),
            system=tuple((k, v) for k, v in data.get("system", ())),
        )

    @property
    def label(self) -> str:
        """Short human-readable identifier for progress/tables."""
        parts = [f"{self.kernel}/{self.variant}"]
        if self.grid:
            parts.append("x".join(str(d) for d in self.grid))
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.loop_mode:
            parts.append(self.loop_mode)
        if self.unroll is not None:
            parts.append(f"unroll={self.unroll}")
        parts.extend(f"{k}={v}" for k, v in self.overrides)
        parts.extend(f"{k}={v}" for k, v in self.system)
        return " ".join(parts)


def make_point(kernel: str, variant, grid=None, n=None, loop_mode=None,
               unroll=None, overrides=None, system=None) -> Point:
    """Validating :class:`Point` constructor accepting loose input types."""
    kernel = str(kernel)
    if kernel != VECOP_KERNEL and kernel not in STENCILS:
        options = [VECOP_KERNEL, *STENCILS]
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from: {', '.join(options)}")
    is_vecop = kernel == VECOP_KERNEL
    label = resolve_variant(variant, for_vecop=is_vecop)
    if label is None:
        pool = _VECOP_LABELS if is_vecop else _STENCIL_LABELS
        raise ValueError(
            f"unknown variant {variant!r} for kernel {kernel!r}; "
            f"choose from: {', '.join(pool.values())}")
    # Inapplicable axes would create distinct cache keys (and labels)
    # for identical simulations, so they are rejected outright.
    if is_vecop and (grid is not None or unroll is not None):
        raise ValueError(
            f"kernel {kernel!r} takes n/loop_mode, not grid/unroll")
    if not is_vecop and (n is not None or loop_mode is not None):
        raise ValueError(
            f"kernel {kernel!r} takes grid/unroll, not n/loop_mode")
    if is_vecop and system:
        raise ValueError(
            f"kernel {kernel!r} cannot take system axes; domain "
            f"decomposition applies to stencil kernels only")
    return Point(
        kernel=kernel,
        variant=label,
        grid=_normalize_grid(grid),
        n=int(n) if n is not None else None,
        loop_mode=str(loop_mode) if loop_mode is not None else None,
        unroll=int(unroll) if unroll is not None else None,
        overrides=_normalize_overrides(overrides),
        system=_normalize_system(system),
    )


@dataclass
class SweepSpec:
    """Axes of a campaign; :meth:`points` expands the cartesian product.

    ``variants=None`` means *all* variants applicable to each kernel's
    kind.  Any ``None`` entry on the grid axis selects the kernel's
    registry default grid; ``None`` on ``unrolls`` selects the builder
    default.  The ``systems`` axis (multi-cluster ``num_clusters`` /
    ``iters`` / interconnect dicts) applies to stencil kernels only; the
    vecop pseudo-kernel ignores it (its points are always
    single-cluster).
    """

    name: str = "sweep"
    kernels: tuple[str, ...] = PAPER_KERNELS
    variants: tuple | None = None
    grids: tuple = (None,)
    ns: tuple = (None,)
    loop_modes: tuple = (None,)
    unrolls: tuple = (None,)
    overrides: tuple = (None,)
    systems: tuple = (None,)
    meta: dict = field(default_factory=dict)

    def _variant_labels(self, for_vecop: bool) -> list[str]:
        if self.variants is None:
            if for_vecop:
                return [v.value for v in VecopVariant]
            return [v.label for v in VARIANT_ORDER]
        labels = []
        for variant in self.variants:
            label = resolve_variant(variant, for_vecop)
            if label is not None and label not in labels:
                labels.append(label)
        return labels

    def points(self) -> list[Point]:
        """Expand, validate, and deduplicate (order-preserving)."""
        for variant in self.variants or ():
            normalize_variant(variant)  # reject outright typos eagerly
        out: list[Point] = []
        seen: set[Point] = set()
        for kernel in self.kernels:
            is_vecop = kernel == VECOP_KERNEL
            labels = self._variant_labels(for_vecop=is_vecop)
            for over in self.overrides:
                for variant in labels:
                    if is_vecop:
                        for n in self.ns:
                            for loop_mode in self.loop_modes:
                                out.append(make_point(
                                    kernel, variant, n=n,
                                    loop_mode=loop_mode, overrides=over))
                    else:
                        for grid in self.grids:
                            for unroll in self.unrolls:
                                for system in self.systems:
                                    out.append(make_point(
                                        kernel, variant, grid=grid,
                                        unroll=unroll, overrides=over,
                                        system=system))
        unique = []
        for point in out:
            if point not in seen:
                seen.add(point)
                unique.append(point)
        return unique

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "kernels": list(self.kernels),
            "grids": [list(g) if g else None for g in self.grids],
            "ns": list(self.ns),
            "loop_modes": list(self.loop_modes),
            "unrolls": list(self.unrolls),
            "overrides": [dict(o) if o else None for o in self.overrides],
            "systems": [dict(s) if s else None for s in self.systems],
        }
        if self.variants is not None:
            data["variants"] = [normalize_variant(v) for v in self.variants]
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        known = {"name", "kernels", "variants", "grids", "ns",
                 "loop_modes", "unrolls", "overrides", "systems", "meta"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec keys {sorted(unknown)}; "
                f"allowed: {sorted(known)}")

        def axis(key, default=(None,)):
            # A JSON null (or absent key) on any axis means its default.
            value = data.get(key)
            if value is None:
                return default
            if isinstance(value, (str, bytes)):
                raise ValueError(
                    f"spec key {key!r} must be a list, got {value!r}")
            return tuple(value)

        spec = cls(
            name=data.get("name") or "sweep",
            kernels=axis("kernels", PAPER_KERNELS),
            variants=axis("variants", None),
            grids=tuple(tuple(g) if g else None
                        for g in axis("grids")),
            ns=axis("ns"),
            loop_modes=axis("loop_modes"),
            unrolls=axis("unrolls"),
            overrides=axis("overrides"),
            systems=axis("systems"),
            meta=dict(data.get("meta") or {}),
        )
        spec.points()  # validate eagerly so bad specs fail at load time
        return spec

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        if str(path).endswith(".toml"):
            import tomllib
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        else:
            with open(path) as handle:
                data = json.load(handle)
        return cls.from_dict(data)
