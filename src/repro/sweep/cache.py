"""Content-addressed on-disk cache for sweep results.

Layout: one directory holding

* ``results.jsonl`` -- append-only, one JSON record per completed point:
  ``{"key", "version", "point", "seconds", "result"}``, where
  ``result`` is the one canonical schema of
  :meth:`repro.api.result.Result.to_dict`;
* nothing else -- the key is content-derived, so the file needs no
  compaction and concurrent *readers* are always safe.  Appends come
  from one process at a time: a campaign's :class:`SweepRunner` parent
  (workers return results to it) or a :meth:`repro.api.Session.run`
  call.  Two *simultaneous* writer processes on one cache directory
  are not coordinated -- an interleaved line would be dropped as torn
  on the next load.

The key is the SHA-256 of the canonicalized point, the package
``__version__``, and the canonicalized base config (when one is in
effect), so a version bump or a changed baseline configuration
invalidates every entry without any explicit flush.  Only successful
runs are cached; errors and timeouts are retried on the next campaign.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.api.result import Result
from repro.api.workloads import Workload
from repro.core.config import CoreConfig

RESULTS_FILE = "results.jsonl"


def package_version() -> str:
    """The ``repro.__version__`` baked into every cache key (lazy to
    avoid a circular import; shared by every cache-writing front door)."""
    from repro import __version__
    return __version__


def config_canonical(cfg: CoreConfig | None) -> dict | None:
    """Plain-type dict of a config, stable across processes."""
    if cfg is None:
        return None
    data = {}
    for f in dataclass_fields(cfg):
        value = getattr(cfg, f.name)
        if f.name == "fpu_latency":
            value = {ic.name: lat for ic, lat in sorted(
                value.items(), key=lambda item: item[0].name)}
        data[f.name] = value
    return data


def point_key(point: Workload, version: str,
              base_cfg: CoreConfig | None = None,
              engine: str | None = None) -> str:
    """SHA-256 content address of one (point, version, base config,
    execution engine).

    The engine never changes the simulated numbers (fast and scalar are
    bit-identical by contract), but it *is* part of the key: a cache
    entry must always say which engine produced it, so an engine-choice
    bug can be bisected from cached campaigns alone.
    """
    payload = {
        "point": point.canonical(),
        "version": version,
        "base_cfg": config_canonical(base_cfg),
        "engine": engine or (base_cfg.engine if base_cfg else "auto"),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_record(result: Result) -> dict:
    """Full-fidelity JSON form: the one canonical result schema
    (:meth:`repro.api.result.Result.to_dict`)."""
    return result.to_dict()


def result_from_record(record: dict) -> Result:
    """Inverse of :func:`result_to_record`; also lifts pre-1.5 records
    (see :meth:`repro.api.result.Result.from_dict`)."""
    return Result.from_dict(record)


class ResultCache:
    """Keyed JSONL store; loads its index once, appends as results land."""

    @classmethod
    def coerce(cls, cache: "ResultCache | str | Path | None"):
        """One shared coercion for every front door: paths open a
        cache, existing instances and ``None`` pass through, anything
        else is rejected here rather than deep inside a campaign."""
        if cache is None or isinstance(cache, cls):
            return cache
        if isinstance(cache, str) or hasattr(cache, "__fspath__"):
            return cls(cache)
        raise TypeError(
            f"cache must be a ResultCache, a path, or None, got "
            f"{type(cache).__name__}")

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.path = self.root / RESULTS_FILE
        self._index: dict[str, dict] = {}
        if self.path.exists():
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a killed run
                    self._index[record["key"]] = record

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Result | None:
        record = self._index.get(key)
        return result_from_record(record["result"]) if record else None

    def get_record(self, key: str) -> dict | None:
        return self._index.get(key)

    def put(self, key: str, point: Workload, result: Result,
            seconds: float, version: str) -> None:
        record = {
            "key": key,
            "version": version,
            "point": point.canonical(),
            "seconds": seconds,
            "result": result_to_record(result),
        }
        # Observability payloads (``meta["obs"]``) are opt-in run
        # annotations; stripping them keeps cached records bit-identical
        # whether or not the producing run had telemetry enabled.
        meta = record["result"].get("meta")
        if isinstance(meta, dict):
            meta.pop("obs", None)
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[key] = record
