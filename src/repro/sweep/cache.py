"""Content-addressed on-disk cache for sweep results.

Layout (one directory per store):

* ``shards/<pp>.jsonl`` -- the **sharded** result store, where ``<pp>``
  is the first :data:`SHARD_PREFIX_LEN` hex characters of the record's
  content-address.  Append-only, one JSON record per completed point:
  ``{"key", "version", "point", "seconds", "result"}``, where
  ``result`` is the one canonical schema of
  :meth:`repro.api.result.Result.to_dict`.  Each append is a single
  ``write`` of one line to a file opened in append mode, so cooperating
  writer processes -- a campaign parent per host -- interleave at line
  granularity without any lock file; the key is content-derived, so
  a record duplicated by two racing hosts is benign (same payload,
  last one wins on load) and :meth:`verify` can prove it.
* ``results.jsonl`` -- the pre-1.7 **flat** store.  Still read (and,
  for stores that already have one and no ``shards/``, still written)
  so existing caches keep working untouched; :meth:`migrate` moves the
  records into shards one way.
* ``failures.jsonl`` -- the most recent *failed* outcome per key
  (``status`` ``"error"``/``"timeout"``, the message, and a cumulative
  ``attempts`` counter).  Failures are never served as results --
  errors and timeouts are retried on the next campaign exactly as
  before -- but recording them makes a campaign auditable from the
  store alone (:mod:`repro.sweep.audit` classifies and budgets
  retries from this file).

The key is the SHA-256 of the canonicalized point, the package
``__version__``, and the canonicalized base config (when one is in
effect), so a version bump or a changed baseline configuration
invalidates every entry without any explicit flush.

Malformed lines (torn tail from a killed run, or bit rot) are *counted*
on load -- :attr:`ResultCache.corrupt_lines`, warned about once -- so
an audit can surface them instead of the store silently pretending the
record never existed.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Iterator

from repro.api.result import Result
from repro.api.workloads import Workload
from repro.core.config import CoreConfig

RESULTS_FILE = "results.jsonl"
FAILURES_FILE = "failures.jsonl"
SHARDS_DIR = "shards"

#: Hex characters of the key that name a record's shard file (2 -> up
#: to 256 shards, plenty of append parallelism for cooperating hosts
#: while keeping directory listings small).
SHARD_PREFIX_LEN = 2

#: Store layouts accepted by :class:`ResultCache`.  ``auto`` keeps an
#: existing flat store flat (until :meth:`ResultCache.migrate`) and
#: shards everything else, including brand-new stores.
LAYOUTS = ("auto", "flat", "sharded")


def package_version() -> str:
    """The ``repro.__version__`` baked into every cache key (lazy to
    avoid a circular import; shared by every cache-writing front door)."""
    from repro import __version__
    return __version__


def config_canonical(cfg: CoreConfig | None) -> dict | None:
    """Plain-type dict of a config, stable across processes."""
    if cfg is None:
        return None
    data = {}
    for f in dataclass_fields(cfg):
        value = getattr(cfg, f.name)
        if f.name == "fpu_latency":
            value = {ic.name: lat for ic, lat in sorted(
                value.items(), key=lambda item: item[0].name)}
        data[f.name] = value
    return data


def point_key(point: Workload, version: str,
              base_cfg: CoreConfig | None = None,
              engine: str | None = None) -> str:
    """SHA-256 content address of one (point, version, base config,
    execution engine).

    The engine never changes the simulated numbers (fast and scalar are
    bit-identical by contract), but it *is* part of the key: a cache
    entry must always say which engine produced it, so an engine-choice
    bug can be bisected from cached campaigns alone.
    """
    payload = {
        "point": point.canonical(),
        "version": version,
        "base_cfg": config_canonical(base_cfg),
        "engine": engine or (base_cfg.engine if base_cfg else "auto"),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_record(result: Result) -> dict:
    """Full-fidelity JSON form: the one canonical result schema
    (:meth:`repro.api.result.Result.to_dict`)."""
    return result.to_dict()


def result_from_record(record: dict) -> Result:
    """Inverse of :func:`result_to_record`; also lifts pre-1.5 records
    (see :meth:`repro.api.result.Result.from_dict`)."""
    return Result.from_dict(record)


class ResultCache:
    """Keyed JSONL store; loads its index once, appends as results land.

    ``layout`` picks where appends go (see :data:`LAYOUTS`); *loads*
    always read both the flat file and the shards, so a half-migrated
    or mixed-era store never loses records.
    """

    @classmethod
    def coerce(cls, cache: "ResultCache | str | Path | None"):
        """One shared coercion for every front door: paths open a
        cache, existing instances and ``None`` pass through, anything
        else is rejected here rather than deep inside a campaign."""
        if cache is None or isinstance(cache, cls):
            return cache
        if isinstance(cache, str) or hasattr(cache, "__fspath__"):
            return cls(cache)
        raise TypeError(
            f"cache must be a ResultCache, a path, or None, got "
            f"{type(cache).__name__}")

    def __init__(self, root: str | Path, layout: str = "auto"):
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown cache layout {layout!r}; choose from: "
                f"{', '.join(LAYOUTS)}")
        self.root = Path(root)
        self.path = self.root / RESULTS_FILE
        self.shards_dir = self.root / SHARDS_DIR
        self.failures_path = self.root / FAILURES_FILE
        if layout == "auto":
            # An existing flat store (and no shards yet) stays flat
            # until migrated; everything else -- including a brand-new
            # store -- shards.
            layout = "flat" if (self.path.exists()
                                and not self.shards_dir.is_dir()) \
                else "sharded"
        self.layout = layout
        #: Malformed JSONL lines skipped while loading (torn tail from
        #: a killed run, bit rot); surfaced by audits.
        self.corrupt_lines = 0
        self._index: dict[str, dict] = {}
        self._failures: dict[str, dict] = {}
        self._load()

    # -- loading ----------------------------------------------------------

    def _record_files(self) -> list[Path]:
        """Every result file of the store, flat first (shards are the
        newer layout, so on a duplicated key the sharded record wins)."""
        files = []
        if self.path.exists():
            files.append(self.path)
        if self.shards_dir.is_dir():
            files.extend(sorted(self.shards_dir.glob("*.jsonl")))
        return files

    def _load(self) -> None:
        for path in self._record_files():
            for record in self._parse_lines(path):
                self._index[record["key"]] = record
        if self.failures_path.exists():
            for record in self._parse_lines(self.failures_path):
                self._failures[record["key"]] = record
        if self.corrupt_lines:
            warnings.warn(
                f"result cache {self.root}: skipped "
                f"{self.corrupt_lines} malformed JSONL line(s); run "
                f"`repro audit --verify-store` for a full report",
                stacklevel=2)

    def _parse_lines(self, path: Path) -> Iterator[dict]:
        """Yield well-formed records of one JSONL file, counting (not
        silently dropping) every malformed line."""
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    record["key"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    self.corrupt_lines += 1
                    continue
                yield record

    # -- lookups ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> Result | None:
        record = self._index.get(key)
        return result_from_record(record["result"]) if record else None

    def get_record(self, key: str) -> dict | None:
        return self._index.get(key)

    def records(self) -> Iterator[dict]:
        """Every loaded result record (the audit walks these to match
        stale entries by canonical point)."""
        return iter(self._index.values())

    def get_failure(self, key: str) -> dict | None:
        """Most recent failure record for ``key`` (``None`` if the key
        never failed, or succeeded since)."""
        if key in self._index:
            return None
        return self._failures.get(key)

    # -- writes -----------------------------------------------------------

    def _shard_path(self, key: str) -> Path:
        return self.shards_dir / f"{key[:SHARD_PREFIX_LEN]}.jsonl"

    def _append(self, path: Path, record: dict) -> None:
        # One write() of one whole line: appends from cooperating
        # processes interleave at line granularity on local filesystems.
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(path, "a") as handle:
            handle.write(line)

    def put(self, key: str, point: Workload, result: Result,
            seconds: float, version: str) -> None:
        record = {
            "key": key,
            "version": version,
            "point": point.canonical(),
            "seconds": seconds,
            "result": result_to_record(result),
        }
        # Observability payloads (``meta["obs"]``) are opt-in run
        # annotations; stripping them keeps cached records bit-identical
        # whether or not the producing run had telemetry enabled.
        meta = record["result"].get("meta")
        if isinstance(meta, dict):
            meta.pop("obs", None)
        target = self.path if self.layout == "flat" \
            else self._shard_path(key)
        self._append(target, record)
        self._index[key] = record
        self._failures.pop(key, None)

    def put_failure(self, key: str, point: Workload, status: str,
                    error: str | None, seconds: float,
                    version: str) -> None:
        """Record a failed outcome (``"error"``/``"timeout"``) so audits
        can classify and retry-budget it from the store alone.  The
        ``attempts`` counter accumulates across campaigns; a later
        success supersedes the failure entirely."""
        previous = self._failures.get(key)
        record = {
            "key": key,
            "version": version,
            "point": point.canonical(),
            "status": status,
            "error": (error or "")[:2000],  # keep the store line-sized
            "seconds": seconds,
            "attempts": (previous["attempts"] if previous else 0) + 1,
        }
        self._append(self.failures_path, record)
        self._failures[key] = record

    # -- maintenance ------------------------------------------------------

    def migrate(self) -> dict:
        """Move every flat-file record into the sharded layout (one
        way).  Idempotent: a store without a flat file is a no-op.

        Returns ``{"migrated", "shards", "corrupt_lines"}``.  The flat
        file is deleted only after every record has been re-appended to
        its shard, so a crash mid-migration at worst duplicates records
        (benign: identical payloads under identical keys).
        """
        if not self.path.exists():
            return {"migrated": 0,
                    "shards": len(list(self.shards_dir.glob("*.jsonl")))
                    if self.shards_dir.is_dir() else 0,
                    "corrupt_lines": 0}
        migrated = 0
        corrupt_before = self.corrupt_lines
        for record in self._parse_lines(self.path):
            self._append(self._shard_path(record["key"]), record)
            self._index[record["key"]] = record
            migrated += 1
        self.path.unlink()
        self.layout = "sharded"
        return {"migrated": migrated,
                "shards": len(list(self.shards_dir.glob("*.jsonl"))),
                "corrupt_lines": self.corrupt_lines - corrupt_before}

    def prune(self, max_bytes: int | None = None,
              max_age_days: float | None = None, *,
              dry_run: bool = False) -> dict:
        """Evict cold shards until the store fits its budgets.

        Eviction is LRU at *shard-file* granularity, ordered by shard
        mtime (appends touch the mtime, so recently-written shards are
        the warm ones; in-memory reads deliberately do not count).
        Two independent budgets, either or both:

        * ``max_age_days`` -- drop every shard untouched for longer;
        * ``max_bytes`` -- then drop oldest-first until the remaining
          shard bytes fit.

        **Failure-log awareness**: a success record supersedes any
        older failure under the same key (:meth:`get_failure` hides
        it).  Evicting that success would resurface the phantom
        failure, so prune rewrites ``failures.jsonl`` dropping every
        record whose key loses its success here -- those points return
        to plain cache misses, not to bogus retry-budget debt.

        ``dry_run`` computes the full report without touching disk.
        Returns ``{"evicted_shards", "evicted_records",
        "evicted_bytes", "kept_shards", "kept_bytes",
        "dropped_failures", "dry_run"}``.

        Prune assumes cooperating writers are quiescent (the serving
        process owns its store); racing an append against an eviction
        loses the appended record with the shard.
        """
        if max_bytes is None and max_age_days is None:
            raise ValueError(
                "prune needs max_bytes= and/or max_age_days=")
        if self.path.exists():
            raise ValueError(
                "prune requires the sharded layout; run migrate() "
                "(`repro audit --migrate-store`) first")
        shards = []
        if self.shards_dir.is_dir():
            for path in sorted(self.shards_dir.glob("*.jsonl")):
                stat = path.stat()
                shards.append((stat.st_mtime, stat.st_size, path))
        shards.sort()  # oldest first
        now = time.time()
        evict: list[tuple[float, int, Path]] = []
        kept = list(shards)
        if max_age_days is not None:
            horizon = now - max_age_days * 86400.0
            evict = [s for s in kept if s[0] < horizon]
            kept = [s for s in kept if s[0] >= horizon]
        if max_bytes is not None:
            total = sum(size for _, size, _ in kept)
            while kept and total > max_bytes:
                oldest = kept.pop(0)
                evict.append(oldest)
                total -= oldest[1]
        evicted_keys = set()
        for _, _, path in evict:
            stem = path.stem
            evicted_keys.update(
                k for k in self._index if k.startswith(stem))
        # Walk the on-disk failure log, not the in-memory dict: a
        # success superseded its failure in memory at put() time, but
        # the line is still on disk and would resurface on reload once
        # the success is gone.
        dropped_failures: set[str] = set()
        kept_failures: list[dict] = []
        if evicted_keys and self.failures_path.exists():
            for record in self._parse_lines(self.failures_path):
                if record["key"] in evicted_keys:
                    dropped_failures.add(record["key"])
                else:
                    kept_failures.append(record)
        report = {
            "evicted_shards": sorted(p.name for _, _, p in evict),
            "evicted_records": len(evicted_keys),
            "evicted_bytes": sum(size for _, size, _ in evict),
            "kept_shards": len(kept),
            "kept_bytes": sum(size for _, size, _ in kept),
            "dropped_failures": len(dropped_failures),
            "dry_run": dry_run,
        }
        if dry_run or not evict:
            return report
        if dropped_failures:
            # Atomic rewrite: the log shrinks or the old one survives.
            tmp = self.failures_path.with_suffix(".jsonl.tmp")
            with open(tmp, "w") as sink:
                for record in kept_failures:
                    sink.write(json.dumps(record, sort_keys=True)
                               + "\n")
            os.replace(tmp, self.failures_path)
        for _, _, path in evict:
            path.unlink(missing_ok=True)
        for key in evicted_keys:
            self._index.pop(key, None)
            self._failures.pop(key, None)
        return report

    def verify(self) -> dict:
        """Re-parse every record file against the result schema.

        Returns a report::

            {"files", "records", "corrupt": [...], "invalid": [...],
             "duplicates": [...], "conflicts": [...], "orphans": [...],
             "failure_records", "ok": bool}

        * **corrupt** -- lines that are not JSON (file, line number);
        * **invalid** -- records whose ``result`` payload does not parse
          as the canonical :class:`~repro.api.result.Result` schema;
        * **duplicates** -- keys appearing more than once with
          *identical* payloads (benign: racing cooperating writers);
        * **conflicts** -- keys appearing more than once with
          *differing* payloads (a real integrity violation);
        * **orphans** -- records filed in a shard whose name does not
          match their key prefix (a mis-filed append).

        ``ok`` is true when nothing but benign duplicates was found.
        """
        seen: dict[str, str] = {}
        report: dict = {"files": 0, "records": 0, "corrupt": [],
                        "invalid": [], "duplicates": [], "conflicts": [],
                        "orphans": [], "failure_records": 0}
        for path in self._record_files():
            report["files"] += 1
            in_shard = path.parent == self.shards_dir
            with open(path) as handle:
                for lineno, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    where = {"file": str(path.relative_to(self.root)),
                             "line": lineno}
                    try:
                        record = json.loads(line)
                        key = record["key"]
                    except (json.JSONDecodeError, TypeError, KeyError):
                        report["corrupt"].append(where)
                        continue
                    report["records"] += 1
                    where["key"] = key
                    try:
                        result_from_record(record["result"])
                    except Exception as exc:
                        report["invalid"].append(
                            dict(where, error=f"{type(exc).__name__}: "
                                              f"{exc}"))
                    if in_shard and \
                            not key.startswith(path.stem):
                        report["orphans"].append(where)
                    if key in seen:
                        bucket = "duplicates" if seen[key] == line \
                            else "conflicts"
                        report[bucket].append(where)
                    else:
                        seen[key] = line
        if self.failures_path.exists():
            with open(self.failures_path) as handle:
                for lineno, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        record["key"], record["status"]
                        report["failure_records"] += 1
                    except (json.JSONDecodeError, TypeError, KeyError):
                        report["corrupt"].append(
                            {"file": FAILURES_FILE, "line": lineno})
        report["ok"] = not (report["corrupt"] or report["invalid"]
                            or report["conflicts"] or report["orphans"])
        return report
