"""Aggregation over campaign outcomes: group-by, speedups, best configs.

Everything here consumes the ``Outcome`` list a :class:`SweepRunner`
returns and produces plain dicts/rows, reusing the evaluation layer's
:func:`~repro.eval.report.geomean` (the same helper behind the paper's
section III claims) so sweep-derived geomeans are computed identically
to the figure harnesses.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.api.result import RESULT_METRICS as RESULT_METRICS  # re-export
from repro.api.result import Result
from repro.eval.report import geomean

#: Metrics where smaller is better (everything else is maximized).
LOWER_IS_BETTER = frozenset({"region_cycles", "cycles", "power_mw",
                             "cycles_per_point"})


def metric_of(result: Result, metric: str) -> float:
    """Read a named metric off a result (attribute or property)."""
    return float(getattr(result, metric))


def group_by(outcomes: Iterable, key: Callable) -> dict:
    """Group *successful* outcomes by ``key(outcome)``, order-preserving."""
    groups: dict = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        groups.setdefault(key(outcome), []).append(outcome)
    return groups


def by_kernel_variant(outcomes: Iterable) -> dict[tuple[str, str], list]:
    return group_by(outcomes, lambda o: (o.point.kernel, o.point.variant))


def speedup_vs_baseline(outcomes: Iterable, baseline: str,
                        metric: str = "region_cycles") -> dict[str, dict]:
    """Per-variant ratios vs. ``baseline`` and their geomean over kernels.

    Points are matched on everything except the variant (same kernel,
    grid, overrides, ...), so ablation axes stay separated.  The
    baseline label is matched case-insensitively (variant labels are
    kind-ambiguous: ``"chaining"`` names both the vecop variant and the
    stencil ``Chaining``).  For lower-is-better metrics the ratio is
    baseline/variant (>1 means the variant wins), for higher-is-better
    metrics variant/baseline.
    """
    invert = metric in LOWER_IS_BETTER
    baseline = str(baseline).lower()

    def is_baseline(outcome):
        return outcome.point.variant.lower() == baseline

    def match_key(outcome):
        p = outcome.point
        return (p.kernel, p.grid, p.n, p.loop_mode, p.unroll,
                p.overrides, p.system)

    base_values = {
        match_key(o): metric_of(o.result, metric)
        for o in outcomes if o.ok and is_baseline(o)
    }
    table: dict[str, dict] = {}
    for outcome in outcomes:
        if not outcome.ok or is_baseline(outcome):
            continue
        base = base_values.get(match_key(outcome))
        if base is None:
            continue
        value = metric_of(outcome.result, metric)
        ratio = base / value if invert else value / base
        entry = table.setdefault(outcome.point.variant, {"ratios": {}})
        entry["ratios"][outcome.point.label] = ratio
    for entry in table.values():
        entry["geomean"] = geomean(entry["ratios"].values())
        entry["geomean_pct"] = 100.0 * (entry["geomean"] - 1.0)
    return table


def best_points(outcomes: Iterable, metric: str = "fpu_utilization",
                key: Callable | None = None) -> dict:
    """Best outcome per group (default: per kernel) under ``metric``."""
    key = key or (lambda o: o.point.kernel)
    better = min if metric in LOWER_IS_BETTER else max
    best: dict = {}
    for group, members in group_by(outcomes, key).items():
        best[group] = better(
            members, key=lambda o: metric_of(o.result, metric))
    return best


def summary_rows(outcomes: Iterable) -> list[list]:
    """Table rows (label, status, util, cycles, mW, Gflop/s/W, cached)."""
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            res = outcome.result  # attrs == the schema's scalar fields
            rows.append([
                outcome.point.label, outcome.status,
                round(res.fpu_utilization, 3), res.region_cycles,
                round(res.power_mw, 1), round(res.gflops_per_watt, 2),
                "hit" if outcome.cached else "run",
            ])
        else:
            rows.append([outcome.point.label, outcome.status,
                         "-", "-", "-", "-", "-"])
    return rows
