"""Campaign completeness: audit a sweep against the result store.

The content-addressed cache makes re-runs cheap, but by itself nothing
says whether a campaign is *complete*.  This module diffs a
:class:`~repro.sweep.spec.SweepSpec` (or an explicit workload list)
against a :class:`~repro.sweep.cache.ResultCache` and classifies every
point into one of :data:`GAP_CLASSES`:

``ok``
    a schema-valid record exists under the point's current key;
``missing``
    the store has never seen the point (in this campaign context);
``error`` / ``timeout``
    the store's failure log records the point's last outcome (with a
    cumulative attempt count, so retries can be budgeted);
``stale-version``
    a record for the *same canonical point* exists, but was computed
    under a different package version -- its key no longer matches, so
    the point must be re-simulated (re-keyed) to count;
``stale-schema``
    a record exists but its ``result`` payload is not the current
    canonical schema (a pre-1.5 record, or an unparseable payload);
``stale-fidelity``
    a schema-valid record exists under the point's key, but its
    fidelity does not match the audit context: an analytical estimate
    (``meta["fidelity"] == "analytical"``) where the campaign expects a
    cycle-accurate record, or the reverse.  A campaign audited at cycle
    fidelity therefore never counts an analytical record as ``ok``.

:class:`CampaignAudit` carries the per-point classification, the
coverage fraction, per-axis breakdowns (kernel, variant, engine,
num_clusters) and a machine-readable gap report
(:meth:`CampaignAudit.to_dict`, schema :data:`AUDIT_SCHEMA`).
:class:`BackfillPlan` orders the gaps into a
:meth:`~repro.api.session.Session.map` execution -- stale points are
re-keyed automatically (keys always use the current version), failed
points are retried within a bounded budget -- so any interrupted or
multi-host campaign is resumable from the store alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.api.result import RESULT_SCHEMA
from repro.api.workloads import Workload
from repro.core.config import CoreConfig
from repro.sweep.cache import (
    ResultCache,
    package_version,
    point_key,
    result_from_record,
)

#: Schema identifier stamped into every serialized audit report.
AUDIT_SCHEMA = "repro-audit/v1"

#: Every classification a point can receive, in report order.
GAP_CLASSES = ("ok", "missing", "error", "timeout", "stale-version",
               "stale-schema", "stale-fidelity")

#: Axes of the coverage breakdown table.
AUDIT_AXES = ("kernel", "variant", "engine", "num_clusters")

#: Backfill execution order: cheap certain wins first (never-run
#: points), then re-keys of stale records, then retries of points that
#: already failed at least once.
BACKFILL_ORDER = ("missing", "stale-version", "stale-schema",
                  "stale-fidelity", "timeout", "error")

#: Failed points are retried by backfills at most this many times
#: (cumulative across campaigns) unless overridden.
DEFAULT_RETRY_BUDGET = 3


def _schema_issue(record: dict) -> str | None:
    """Why a store record's ``result`` payload is not the current
    canonical schema (``None`` when it is)."""
    payload = record.get("result")
    if not isinstance(payload, dict):
        return f"result payload is {type(payload).__name__}, not a dict"
    if payload.get("schema") != RESULT_SCHEMA:
        return f"pre-1.5 record (schema={payload.get('schema')!r})"
    try:
        result_from_record(payload)
    except Exception as exc:
        return f"unparseable result: {type(exc).__name__}: {exc}"
    return None


def _excerpt(text: str | None, limit: int = 200) -> str | None:
    """Last non-empty line of a traceback/message, display-sized."""
    if not text:
        return None
    lines = [ln.strip() for ln in text.strip().splitlines() if ln.strip()]
    tail = lines[-1] if lines else text.strip()
    return tail[:limit]


@dataclass(frozen=True)
class PointAudit:
    """One point's classification against the store."""

    point: Workload
    key: str
    status: str                  # one of GAP_CLASSES
    detail: str | None = None    # stale version / failure excerpt
    attempts: int = 0            # recorded failed attempts

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> dict:
        """JSON-ready form (one row of the audit report)."""
        return {
            "label": self.point.label,
            "point": self.point.canonical(),
            "key": self.key,
            "status": self.status,
            "detail": self.detail,
            "attempts": self.attempts,
        }


@dataclass
class CampaignAudit:
    """Classification of every point of one campaign, plus roll-ups."""

    name: str
    version: str
    points: list[PointAudit] = field(default_factory=list)
    #: Campaign-level engine context (a per-point override still wins);
    #: mirrors the cache-key ingredient.
    engine: str = "auto"
    #: Malformed store lines skipped on load (the corrupt bucket).
    corrupt_lines: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def ok_count(self) -> int:
        return sum(1 for p in self.points if p.ok)

    @property
    def coverage(self) -> float:
        """Fraction of points with a current, schema-valid record
        (1.0 for an empty campaign: nothing is missing)."""
        return self.ok_count / self.total if self.points else 1.0

    @property
    def complete(self) -> bool:
        return self.ok_count == self.total

    @property
    def gaps(self) -> list[PointAudit]:
        """Every non-ok point, in spec order."""
        return [p for p in self.points if not p.ok]

    def counts(self) -> dict[str, int]:
        """Points per classification, every class always present."""
        counts = {cls: 0 for cls in GAP_CLASSES}
        for p in self.points:
            counts[p.status] += 1
        return counts

    def _axis_value(self, audit: PointAudit, axis: str) -> str:
        if axis == "kernel":
            return audit.point.kernel
        if axis == "variant":
            return audit.point.variant
        if axis == "engine":
            return audit.point.engine or self.engine
        if axis == "num_clusters":
            return str(audit.point.num_clusters)
        raise ValueError(
            f"unknown audit axis {axis!r}; choose from: "
            f"{', '.join(AUDIT_AXES)}")

    def by_axis(self, axis: str) -> dict[str, dict]:
        """Per-value coverage along one of :data:`AUDIT_AXES`
        (insertion-ordered by first appearance in the spec)."""
        table: dict[str, dict] = {}
        for audit in self.points:
            value = self._axis_value(audit, axis)
            row = table.setdefault(value, {"ok": 0, "total": 0})
            row["total"] += 1
            row["ok"] += audit.ok
        for row in table.values():
            row["coverage"] = round(row["ok"] / row["total"], 6)
        return table

    def axes(self) -> dict[str, dict]:
        return {axis: self.by_axis(axis) for axis in AUDIT_AXES}

    def to_dict(self) -> dict:
        """The machine-readable audit report (schema
        :data:`AUDIT_SCHEMA`); ``gaps`` lists only the non-ok points,
        ``points`` the full classification."""
        return {
            "schema": AUDIT_SCHEMA,
            "campaign": self.name,
            "version": self.version,
            "engine": self.engine,
            "total": self.total,
            "coverage": round(self.coverage, 6),
            "complete": self.complete,
            "counts": self.counts(),
            "corrupt_lines": self.corrupt_lines,
            "axes": self.axes(),
            "gaps": [p.record() for p in self.gaps],
            "points": [p.record() for p in self.points],
        }


def audit_campaign(spec_or_points, cache: ResultCache | str,
                   base_cfg: CoreConfig | None = None,
                   engine: str | None = None,
                   version: str | None = None,
                   name: str | None = None) -> CampaignAudit:
    """Diff a campaign against a result store.

    ``spec_or_points`` is a :class:`~repro.sweep.spec.SweepSpec` or an
    explicit workload list; ``base_cfg``/``engine`` set the campaign
    context exactly as they would for :class:`~repro.sweep.runner.
    SweepRunner` (they are cache-key ingredients); ``version`` defaults
    to the installed package version.
    """
    from repro.sweep.spec import SweepSpec

    if isinstance(spec_or_points, SweepSpec):
        points = spec_or_points.points()
        name = name or spec_or_points.name
    else:
        points = list(spec_or_points)
    cache = ResultCache.coerce(cache)
    if cache is None:
        raise ValueError("audit requires a result cache")
    version = version or package_version()
    effective_engine = engine or (base_cfg.engine if base_cfg else "auto")

    # Records grouped by canonical point, for stale detection: a point
    # whose current key misses may still have been computed under an
    # older version (different key, same canonical form).
    by_canonical: dict[str, list[dict]] = {}
    for record in cache.records():
        blob = json.dumps(record.get("point"), sort_keys=True)
        by_canonical.setdefault(blob, []).append(record)

    audits = []
    for point in points:
        key = point_key(point, version, base_cfg, engine=engine)
        audits.append(_classify(point, key, cache, version, by_canonical,
                                effective_engine))
    return CampaignAudit(name=name or "campaign", version=version,
                         points=audits, engine=effective_engine,
                         corrupt_lines=cache.corrupt_lines)


def _classify(point: Workload, key: str, cache: ResultCache,
              version: str, by_canonical: dict,
              campaign_engine: str = "auto") -> PointAudit:
    record = cache.get_record(key)
    if record is not None:
        issue = _schema_issue(record)
        if issue:
            return PointAudit(point, key, "stale-schema", detail=issue)
        if record.get("version") != version:
            # Defensive: the key embeds the version, so this only
            # happens when a record lies about its own provenance.
            return PointAudit(point, key, "stale-version",
                              detail=f"record claims version "
                                     f"{record.get('version')!r}")
        # Fidelity gate: the record's own payload must match what this
        # campaign context would compute.  Like the version check this
        # is defensive -- the engine is a key ingredient -- but it is
        # what stops an analytical estimate (however it got under this
        # key: a hand-merged store, a copied cache) from masquerading
        # as a cycle-accurate result, and vice versa.
        recorded = (record.get("result") or {}).get("meta", {}) \
            .get("fidelity")
        expect = (point.engine or campaign_engine) == "analytical"
        if (recorded == "analytical") != expect:
            return PointAudit(
                point, key, "stale-fidelity",
                detail=f"record fidelity {recorded or 'cycle'!r}, "
                       f"campaign expects "
                       f"{'analytical' if expect else 'cycle'!r}")
        return PointAudit(point, key, "ok")

    # No record under the current key: look for the same canonical
    # point computed in another era (stale) before calling it missing.
    stale = None
    for candidate in by_canonical.get(
            json.dumps(point.canonical(), sort_keys=True), ()):
        issue = _schema_issue(candidate)
        if issue is not None:
            return PointAudit(point, key, "stale-schema", detail=issue)
        if candidate.get("version") != version:
            stale = PointAudit(
                point, key, "stale-version",
                detail=f"cached at version "
                       f"{candidate.get('version')!r}")
        # A same-version candidate under a different key was computed
        # in a different context (base config / engine): for *this*
        # campaign the point is simply missing.
    if stale is not None:
        return stale

    failure = cache.get_failure(key)
    if failure is not None:
        return PointAudit(point, key, failure.get("status", "error"),
                          detail=_excerpt(failure.get("error")),
                          attempts=int(failure.get("attempts", 1)))
    return PointAudit(point, key, "missing")


@dataclass
class BackfillPlan:
    """The gaps of an audit, ordered for execution.

    Points are grouped by :data:`BACKFILL_ORDER` (never-run points
    first, then stale re-keys, then bounded retries of failures) and
    keep spec order within a group.  Failed points whose cumulative
    ``attempts`` meet ``retry_budget`` are *abandoned* -- listed, never
    silently dropped -- so a persistently broken point cannot make a
    campaign loop forever.
    """

    audit: CampaignAudit
    retry_budget: int = DEFAULT_RETRY_BUDGET

    def __post_init__(self) -> None:
        if self.retry_budget < 1:
            raise ValueError(
                f"retry_budget must be >= 1, got {self.retry_budget}")

    def _retryable(self, gap: PointAudit) -> bool:
        if gap.status not in ("error", "timeout"):
            return True
        return gap.attempts < self.retry_budget

    @property
    def entries(self) -> list[PointAudit]:
        """The gaps this plan will execute, in execution order."""
        gaps = self.audit.gaps
        return [g for status in BACKFILL_ORDER
                for g in gaps
                if g.status == status and self._retryable(g)]

    @property
    def abandoned(self) -> list[PointAudit]:
        """Failures out of retry budget (reported, not executed)."""
        return [g for g in self.audit.gaps if not self._retryable(g)]

    @property
    def points(self) -> list[Workload]:
        return [e.point for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def to_dict(self) -> dict:
        return {
            "schema": "repro-backfill/v1",
            "campaign": self.audit.name,
            "retry_budget": self.retry_budget,
            "planned": len(self.entries),
            "entries": [e.record() for e in self.entries],
            "abandoned": [e.record() for e in self.abandoned],
        }

    def describe(self) -> str:
        """Human-readable plan (the ``--dry-run`` output)."""
        lines = [f"backfill plan for {self.audit.name!r}: "
                 f"{len(self.entries)} point(s), retry budget "
                 f"{self.retry_budget}"]
        for entry in self.entries:
            extra = f" [{entry.detail}]" if entry.detail else ""
            attempt = f" (attempt {entry.attempts + 1})" \
                if entry.attempts else ""
            lines.append(f"  {entry.status:14s} {entry.point.label}"
                         f"{attempt}{extra}")
        for entry in self.abandoned:
            lines.append(f"  {'abandoned':14s} {entry.point.label} "
                         f"({entry.attempts} failed attempts >= budget "
                         f"{self.retry_budget})")
        if not self.entries and not self.abandoned:
            lines.append("  nothing to do: campaign is complete")
        return "\n".join(lines)

    def execute(self, session, progress=None):
        """Run the plan through ``session.map`` (stale points re-key
        automatically: keys always embed the current version).  Returns
        the :class:`~repro.sweep.runner.Campaign` of outcomes."""
        return session.map(self.points, progress=progress)
