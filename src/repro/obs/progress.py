"""Live campaign progress rendering for ``repro sweep --progress``.

One updating stderr line in the coverage/ETA idiom::

    [ 12/26]  46%  3.1 pt/s  eta 4.5s  cache 25%  j3d27pt/d16/s1/auto

The meter is a plain ``progress(outcome, done, total)`` callback, so it
plugs straight into :meth:`repro.sweep.SweepRunner.run` (and
:meth:`repro.api.Session.map`) without the runner knowing about it.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressMeter"]


class ProgressMeter:
    """Renders sweep progress as a single rewriting stderr line."""

    def __init__(self, total: int | None = None, stream=None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.cached = 0
        self.failed = 0
        self._t0 = time.perf_counter()
        self._width = 0

    def update(self, outcome, done: int, total: int) -> None:
        """The ``progress`` callback: one finished point."""
        self.done = done
        self.total = total
        if getattr(outcome, "cached", False):
            self.cached += 1
        if getattr(outcome, "status", "ok") != "ok":
            self.failed += 1
        elapsed = time.perf_counter() - self._t0
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else 0.0
        pct = 100.0 * done / total if total else 100.0
        hit = 100.0 * self.cached / done if done else 0.0
        label = getattr(getattr(outcome, "point", None), "label", "")
        line = (f"[{done:>3}/{total}] {pct:3.0f}%  {rate:5.1f} pt/s"
                f"  eta {remaining:5.1f}s  cache {hit:3.0f}%")
        if self.failed:
            line += f"  failed {self.failed}"
        if label:
            line += f"  {label}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Finish the line so later output starts on a fresh row."""
        if self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0
