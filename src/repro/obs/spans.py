"""Span recording: the wall-clock/simulated-cycle event backbone.

One process-wide :class:`Tracer` records two kinds of events:

* **wall** events -- nested wall-clock spans and instants around the
  orchestration seams (``Session.run``/``Session.map``, sweep-worker
  point execution, ``System.run``).  Timestamps are epoch seconds
  (:func:`time.time`) so events recorded by *different processes* of
  one campaign land on one comparable timeline; durations are measured
  with :func:`time.perf_counter` for precision.
* **sim** events -- spans and instants whose timeline is *simulated
  cycles* (engine-selection accept/reject, scalar-v2 fast-forward
  jumps, system barrier waits, global-memory DMA transfers).  They
  carry the current :func:`sim_context` label so each workload's cycle
  timeline becomes its own track in the Perfetto export.

Overhead contract
-----------------

Observability is **opt-in and zero-overhead when disabled**.  The
module-level :data:`ENABLED` flag is ``False`` by default and every
instrumentation site guards with ``if spans.ENABLED:`` before touching
the tracer, so the disabled cost is one module-attribute read on the
few non-hot seams that are instrumented at all (per *workload*, per
*fast-forward jump*, per *DMA transfer* -- never per cycle).  The
benchmark-regression gate runs with observability disabled and pins
this.

Worker processes
----------------

A tracer opened with ``jsonl_dir`` appends every finished event as one
JSON line to ``<jsonl_dir>/spans-<pid>.jsonl``.  Sweep workers inherit
(fork) or re-create (spawn, via the ``obs_dir`` argument threaded
through the pool) the enabled state and write their own per-process
segment; :func:`repro.obs.export.load_segments` merges all segments
into one timeline.  A tracer detects a fork by pid change and re-opens
its own segment file, so two processes never interleave writes.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "ENABLED",
    "Tracer",
    "disable",
    "enable",
    "is_enabled",
    "sim_context",
    "sim_label",
    "sink_dir",
    "tracer",
]

#: The one hot-path guard.  Instrumentation sites read this module
#: attribute and do nothing further when it is ``False``.
ENABLED = False

_TRACER: "Tracer | None" = None

#: Label naming the *current* simulated-cycle timeline (one per
#: executing workload); sim events record it as their track.
_SIM_LABEL: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_obs_sim_label", default="sim")


class Tracer:
    """Process-local event recorder (wall + simulated-cycle clocks).

    Events are plain JSON-ready dicts with a fixed shape::

        {"kind": "span" | "instant",
         "clock": "wall" | "sim",
         "name": ..., "cat": ...,
         "ts": <epoch seconds | cycle>, "dur": <seconds | cycles>,
         "pid": <os pid>, "proc": <process-track name>,
         "lane": <thread-track name>, "args": {...}}

    ``keep_in_memory=False`` (the sweep/CLI export mode) records to the
    JSONL sink only; the exporter then reads every process's segment
    back, including this one's.
    """

    def __init__(self, jsonl_dir: str | Path | None = None,
                 keep_in_memory: bool | None = None):
        self.jsonl_dir = Path(jsonl_dir) if jsonl_dir is not None else None
        if keep_in_memory is None:
            keep_in_memory = self.jsonl_dir is None
        self.keep_in_memory = keep_in_memory
        self.events: list[dict] = []
        self._pid = os.getpid()
        self._sink = None
        self._lock = threading.Lock()

    # -- emission -----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        pid = os.getpid()
        if pid != self._pid:
            # Forked child inheriting an enabled tracer: drop the
            # parent's buffer and sink handle, write an own segment.
            self._pid = pid
            self._sink = None
            self.events = []
        event["pid"] = pid
        with self._lock:
            if self.keep_in_memory:
                self.events.append(event)
            if self.jsonl_dir is not None:
                if self._sink is None:
                    self.jsonl_dir.mkdir(parents=True, exist_ok=True)
                    self._sink = open(
                        self.jsonl_dir / f"spans-{pid}.jsonl", "a")
                self._sink.write(json.dumps(event, sort_keys=True) + "\n")
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    # -- wall-clock events --------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "api", lane: str = "main",
             args: dict | None = None):
        """Record one nested wall-clock span around the ``with`` body.

        Yields the mutable ``args`` dict so the body can annotate the
        span with outcomes (status, cache hit, ...) before it closes.
        """
        args = dict(args or {})
        ts = time.time()
        t0 = time.perf_counter()
        try:
            yield args
        finally:
            self._emit({
                "kind": "span", "clock": "wall", "name": name,
                "cat": cat, "ts": ts,
                "dur": time.perf_counter() - t0,
                "proc": f"repro pid {os.getpid()}", "lane": lane,
                "args": args,
            })

    def complete(self, name: str, cat: str = "api", lane: str = "main",
                 start: float | None = None, seconds: float = 0.0,
                 args: dict | None = None) -> None:
        """Record a wall span retrospectively from ``(start, seconds)``.

        Async seams (the serve job lifecycle) cannot wrap their work in
        a ``with span():`` block -- the span's extent is only known
        once the job reaches a terminal state.  ``start`` is epoch
        seconds (defaults to ``seconds`` ago).
        """
        if start is None:
            start = time.time() - seconds
        self._emit({
            "kind": "span", "clock": "wall", "name": name,
            "cat": cat, "ts": float(start), "dur": float(seconds),
            "proc": f"repro pid {os.getpid()}", "lane": lane,
            "args": dict(args or {}),
        })

    def instant(self, name: str, cat: str = "api", lane: str = "main",
                args: dict | None = None) -> None:
        self._emit({
            "kind": "instant", "clock": "wall", "name": name,
            "cat": cat, "ts": time.time(), "dur": 0.0,
            "proc": f"repro pid {os.getpid()}", "lane": lane,
            "args": dict(args or {}),
        })

    # -- simulated-cycle events ---------------------------------------------

    def sim_span(self, name: str, cat: str, start_cycle: int,
                 end_cycle: int, lane: str = "core",
                 args: dict | None = None) -> None:
        self._emit({
            "kind": "span", "clock": "sim", "name": name, "cat": cat,
            "ts": int(start_cycle),
            "dur": int(end_cycle) - int(start_cycle),
            "proc": f"sim {_SIM_LABEL.get()}", "lane": lane,
            "args": dict(args or {}),
        })

    def sim_instant(self, name: str, cat: str, cycle: int,
                    lane: str = "core", args: dict | None = None) -> None:
        self._emit({
            "kind": "instant", "clock": "sim", "name": name, "cat": cat,
            "ts": int(cycle), "dur": 0,
            "proc": f"sim {_SIM_LABEL.get()}", "lane": lane,
            "args": dict(args or {}),
        })


# -- module-level state -------------------------------------------------------


def enable(jsonl_dir: str | Path | None = None,
           keep_in_memory: bool | None = None) -> Tracer:
    """Install the process tracer and flip the hot-path guard on.

    Idempotent per configuration: enabling twice with the same sink
    keeps the existing tracer (and its recorded events).
    """
    global ENABLED, _TRACER
    if _TRACER is not None and ENABLED:
        same_sink = (_TRACER.jsonl_dir is None if jsonl_dir is None
                     else _TRACER.jsonl_dir == Path(jsonl_dir))
        if same_sink:
            return _TRACER
        _TRACER.close()
    _TRACER = Tracer(jsonl_dir=jsonl_dir, keep_in_memory=keep_in_memory)
    ENABLED = True
    return _TRACER


def disable() -> None:
    """Tear the tracer down; instrumentation reverts to zero-overhead."""
    global ENABLED, _TRACER
    ENABLED = False
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def is_enabled() -> bool:
    return ENABLED


def tracer() -> Tracer:
    """The active tracer; call only behind an ``ENABLED`` check."""
    if _TRACER is None:
        raise RuntimeError(
            "observability is disabled; call repro.obs.enable() first")
    return _TRACER


def sink_dir() -> str | None:
    """JSONL sink directory of the active tracer (``None`` when the
    tracer is disabled or memory-only).  The sweep runner forwards this
    to pool workers so spawned processes re-enable with the same sink."""
    if not ENABLED or _TRACER is None or _TRACER.jsonl_dir is None:
        return None
    return str(_TRACER.jsonl_dir)


def ensure_worker(obs_dir: str | None) -> None:
    """Worker-process entry hook: adopt the parent's obs configuration.

    Forked workers usually inherit the enabled tracer (whose pid check
    re-opens a per-process segment); spawned workers start cold and
    enable here.  ``None`` means the parent ran without observability.
    """
    if obs_dir is not None and not ENABLED:
        enable(jsonl_dir=obs_dir, keep_in_memory=False)


def sim_label() -> str:
    """The label of the current simulated-cycle timeline."""
    return _SIM_LABEL.get()


@contextmanager
def sim_context(label: str):
    """Name the simulated-cycle timeline for the ``with`` body.

    Every sim event emitted inside lands on the track ``sim <label>``
    (one track per workload in the merged Perfetto timeline).
    """
    token = _SIM_LABEL.set(label)
    try:
        yield
    finally:
        _SIM_LABEL.reset(token)
