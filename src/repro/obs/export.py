"""Chrome trace-event JSON export (loadable at https://ui.perfetto.dev).

The exporter maps the tracer's two clocks onto Perfetto tracks:

* each ``(os pid, proc)`` pair becomes one *process* track — wall-clock
  events group per real process (``repro pid 1234``), simulated-cycle
  events group per workload (``sim j3d27pt/...``);
* each ``lane`` becomes a *thread* row inside its process track.

Wall timestamps (epoch seconds) are normalized to the earliest event
and scaled to microseconds — the native trace-event unit — so a
campaign's processes share one comparable timeline.  Simulated-cycle
timestamps use the fixed mapping **1 cycle = 1 µs**, which keeps cycle
arithmetic readable in the Perfetto UI (a 27 000-cycle run renders as
27 ms).

Output format (the "JSON Array Format with metadata" flavor)::

    {"traceEvents": [
        {"ph": "M", "name": "process_name", ...},   # track naming
        {"ph": "X", "ts": ..., "dur": ..., ...},    # spans
        {"ph": "i", "ts": ..., "s": "t", ...},      # instants
     ],
     "displayTimeUnit": "ms"}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import Tracer

__all__ = [
    "chrome_trace",
    "export_dir",
    "load_segments",
    "recorder_events",
    "write_trace",
]

#: Microseconds per wall second / per simulated cycle.
_US_PER_SECOND = 1_000_000
_US_PER_CYCLE = 1


def _sort_key(event: dict) -> tuple:
    return (event.get("clock", ""), event.get("proc", ""),
            event.get("lane", ""), event.get("ts", 0))


def chrome_trace(events: list[dict]) -> dict:
    """Convert tracer event records into a Chrome trace-event document."""
    events = sorted(events, key=_sort_key)

    # Stable numeric ids: pids per (clock, proc[, os pid]) process
    # track, tids per lane within it.  Wall tracks keep the real pid in
    # the key so two campaign processes don't collapse into one track.
    pids: dict[tuple, int] = {}
    tids: dict[tuple, int] = {}
    trace_events: list[dict] = []

    wall_ts = [e["ts"] for e in events if e.get("clock") == "wall"]
    wall_origin = min(wall_ts) if wall_ts else 0.0

    for event in events:
        clock = event.get("clock", "wall")
        proc = event.get("proc", "repro")
        lane = event.get("lane", "main")
        proc_key = (clock, proc, event.get("pid") if clock == "wall" else 0)
        if proc_key not in pids:
            pids[proc_key] = len(pids) + 1
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pids[proc_key],
                "tid": 0, "args": {"name": proc},
            })
        pid = pids[proc_key]
        lane_key = (proc_key, lane)
        if lane_key not in tids:
            tids[lane_key] = sum(1 for k in tids if k[0] == proc_key) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[lane_key], "args": {"name": lane},
            })
        tid = tids[lane_key]

        if clock == "wall":
            ts = (event["ts"] - wall_origin) * _US_PER_SECOND
            dur = event.get("dur", 0.0) * _US_PER_SECOND
        else:
            ts = event["ts"] * _US_PER_CYCLE
            dur = event.get("dur", 0) * _US_PER_CYCLE
        record = {
            "name": event.get("name", "?"),
            "cat": event.get("cat", "obs"),
            "pid": pid, "tid": tid,
            "ts": max(0.0, round(ts, 3)),
            "args": dict(event.get("args", {})),
        }
        if event.get("kind") == "instant":
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = max(0.0, round(dur, 3))
        trace_events.append(record)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def recorder_events(trace, label: str = "core") -> list[dict]:
    """Convert :class:`repro.trace.TraceRecorder` issue events into
    tracer-shaped sim records (one 1-cycle slot per issue event)."""
    events: list[dict] = []
    for e in trace.fp_events:
        events.append({
            "kind": "span", "clock": "sim", "name": e.text,
            "cat": f"fp.{e.kind}", "ts": e.cycle, "dur": 1, "pid": 0,
            "proc": f"sim {label}", "lane": "fp issue",
            "args": {"kind": e.kind, "chain_valid": e.chain_valid,
                     "pipe_occupancy": e.pipe_occupancy},
        })
    for e in trace.int_events:
        events.append({
            "kind": "span", "clock": "sim", "name": e.text,
            "cat": "int.dispatch" if e.dispatched else "int.issue",
            "ts": e.cycle, "dur": 1, "pid": 0,
            "proc": f"sim {label}", "lane": "int issue",
            "args": {"dispatched": e.dispatched},
        })
    return events


def load_segments(obs_dir: str | Path) -> list[dict]:
    """Read every per-process ``spans-*.jsonl`` segment in a directory."""
    events: list[dict] = []
    for segment in sorted(Path(obs_dir).glob("spans-*.jsonl")):
        with open(segment) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events


def write_trace(path: str | Path, events: list[dict],
                extra: dict | None = None) -> Path:
    """Write events as one Chrome trace-event JSON file."""
    path = Path(path)
    doc = chrome_trace(events)
    if extra:
        doc["metadata"] = extra
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return path


def export_dir(obs_dir: str | Path, tracer: Tracer | None = None,
               extra: dict | None = None) -> Path:
    """Merge all span segments under ``obs_dir`` into ``trace.json``.

    Flushes/closes the given tracer first so its own segment is
    complete on disk before the merge.
    """
    obs_dir = Path(obs_dir)
    if tracer is not None:
        tracer.close()
    events = load_segments(obs_dir)
    if tracer is not None and tracer.keep_in_memory:
        events.extend(tracer.events)
    return write_trace(obs_dir / "trace.json", events, extra=extra)
