"""Unified telemetry: spans, metrics, and Perfetto timeline export.

Three pillars (see ``docs/observability.md`` for the full guide):

* :mod:`repro.obs.spans` — an opt-in :class:`~repro.obs.spans.Tracer`
  recording wall-clock spans at the orchestration seams and
  simulated-cycle events inside the engines/system.
* :mod:`repro.obs.metrics` — a process-local counter/gauge/histogram
  registry, snapshotted into ``Result.meta["obs"]`` per run and
  aggregated into campaign summaries.
* :mod:`repro.obs.export` — Chrome trace-event JSON emission for
  Perfetto (``repro trace --perfetto``, ``repro sweep --obs-out``).

Everything is off by default; instrumented call sites pay one module
attribute read until :func:`enable` is called.
"""

from repro.obs.export import (chrome_trace, export_dir, load_segments,
                              recorder_events, write_trace)
from repro.obs.metrics import (METRICS, MetricsRegistry, campaign_obs,
                               cluster_run_obs, system_run_obs)
from repro.obs.progress import ProgressMeter
from repro.obs.spans import (Tracer, disable, enable, is_enabled,
                             sim_context, sim_label, sink_dir, tracer)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "ProgressMeter",
    "Tracer",
    "campaign_obs",
    "chrome_trace",
    "cluster_run_obs",
    "disable",
    "enable",
    "export_dir",
    "is_enabled",
    "load_segments",
    "recorder_events",
    "sim_context",
    "sim_label",
    "sink_dir",
    "system_run_obs",
    "tracer",
    "write_trace",
]
