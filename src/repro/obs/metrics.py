"""Process-local metrics: counters, gauges, and histograms.

The registry complements the span timeline with cheap aggregates —
cache hit/miss counts, per-point wall seconds, fastpath eligibility,
fast-forward savings, DMA traffic.  Like the tracer, it is only
touched behind ``if spans.ENABLED:`` guards, so the default-off cost
on instrumented seams is one attribute read.

Metric names are dotted strings (see ``docs/observability.md`` for the
full table):

========================  ===========  =====================================
name                      type         meaning
========================  ===========  =====================================
``cache.hit``             counter      results served from the sweep cache
``cache.miss``            counter      results simulated fresh
``session.runs``          counter      ``Session.run`` invocations
``sweep.point_seconds``   histogram    wall seconds per executed sweep point
``fastpath.regions``      counter      FREP regions seen by the fast path
``fastpath.eligible``     counter      regions the fast path accepted
``fastpath.cycles``       counter      cycles skipped by fastpath apply
``ff.spans``              counter      scalar-v2 quiescence fast-forwards
``ff.cycles``             counter      cycles skipped by fast-forwarding
``dma.bytes``             counter      bytes moved through global memory
``dma.contended_cycles``  counter      interconnect arbitration conflicts
``system.runs``           counter      ``System.run`` invocations
``serve.requests``        counter      job submissions accepted
``serve.cache_hits``      counter      serve points answered from cache
``serve.dedup_hits``      counter      points coalesced onto in-flight keys
``serve.executions``      counter      simulations dispatched to the pool
``serve.jobs_done``       counter      jobs finished clean (also
                                       ``_error``/``_timeout``/``_cancelled``)
``serve.queue_depth``     gauge        undispatched unique points
``serve.inflight``        gauge        points running on the pool
========================  ===========  =====================================

The ``serve.*`` family is mirrored from the always-on scheduler
counters (:data:`repro.serve.scheduler.SERVE_COUNTERS`) only while
observability is enabled; ``GET /v1/metrics`` reports the scheduler's
own counters regardless.
"""

from __future__ import annotations

import threading

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "campaign_obs",
    "cluster_run_obs",
    "system_run_obs",
]


class MetricsRegistry:
    """Counters, gauges, and histogram summaries keyed by dotted name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample (kept as count/sum/min/max)."""
        with self._lock:
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = {
                    "count": 1, "sum": value, "min": value, "max": value}
            else:
                h["count"] += 1
                h["sum"] += value
                h["min"] = min(h["min"], value)
                h["max"] = max(h["max"], value)

    def snapshot(self) -> dict:
        """JSON-ready copy of the registry state."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: dict(v)
                               for k, v in self.histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


#: The process-wide registry all instrumentation sites write into.
METRICS = MetricsRegistry()


# -- run summaries ------------------------------------------------------------
#
# These build the per-run ``Result.meta["obs"]`` payloads.  They read
# simulator state (deterministic counters), never wall clocks, but the
# payload is still stripped before results enter the on-disk cache so
# cached records stay bit-identical across obs-on/obs-off runs.


def cluster_run_obs(cluster) -> dict:
    """Summarize one finished single-cluster run."""
    obs: dict = {
        "engine": cluster.cfg.engine,
        "ff_spans": cluster.ff_stats["spans"],
        "ff_cycles_skipped": cluster.ff_stats["cycles"],
    }
    fastpath = getattr(cluster, "fastpath", None)
    if fastpath is not None:
        stats = dict(fastpath.stats)
        reasons = stats.pop("reject_reasons", {})
        obs["fastpath"] = stats
        if reasons:
            obs["fastpath"]["reject_reasons"] = dict(reasons)
    return obs


def system_run_obs(system) -> dict:
    """Summarize one finished multi-cluster ``System.run``."""
    return {
        "num_clusters": len(system.clusters),
        "cluster_cycles": [c.cycle for c in system.clusters],
        "gmem_bytes_read": system.gmem.bytes_read,
        "gmem_bytes_written": system.gmem.bytes_written,
        "interconnect_busy_cycles": system.interconnect.busy_cycles,
        "interconnect_contended_cycles": system.interconnect.contended_cycles,
        "sys_barriers": system.sys_barriers,
        "clusters": [cluster_run_obs(c) for c in system.clusters],
    }


def campaign_obs(outcomes, seconds: float) -> dict:
    """Aggregate per-outcome observability into one campaign summary."""
    executed = [o for o in outcomes if not o.cached]
    wall = [o.seconds for o in executed if o.seconds is not None]
    agg = {
        "points": len(outcomes),
        "ok": sum(1 for o in outcomes if o.status == "ok"),
        "errors": sum(1 for o in outcomes if o.status == "error"),
        "timeouts": sum(1 for o in outcomes if o.status == "timeout"),
        "cache_hits": sum(1 for o in outcomes if o.cached),
        "hit_rate": (sum(1 for o in outcomes if o.cached) / len(outcomes)
                     if outcomes else 0.0),
        "wall_seconds": seconds,
        "point_seconds": {
            "count": len(wall),
            "sum": sum(wall),
            "min": min(wall) if wall else 0.0,
            "max": max(wall) if wall else 0.0,
        },
    }
    ff_spans = ff_cycles = fp_regions = fp_eligible = 0
    reject_reasons: dict[str, int] = {}
    for o in outcomes:
        meta = getattr(o.result, "meta", None) or {}
        run_obs = meta.get("obs")
        if not isinstance(run_obs, dict):
            continue
        for part in ([run_obs] + list(run_obs.get("clusters", []))):
            ff_spans += part.get("ff_spans", 0)
            ff_cycles += part.get("ff_cycles_skipped", 0)
            fp = part.get("fastpath")
            if isinstance(fp, dict):
                fp_regions += fp.get("regions_seen", 0)
                fp_eligible += fp.get("regions_eligible", 0)
                for reason, n in fp.get("reject_reasons", {}).items():
                    reject_reasons[reason] = reject_reasons.get(reason, 0) + n
    agg["ff_spans"] = ff_spans
    agg["ff_cycles_skipped"] = ff_cycles
    agg["fastpath_regions_seen"] = fp_regions
    agg["fastpath_regions_eligible"] = fp_eligible
    agg["fastpath_eligibility_rate"] = (
        fp_eligible / fp_regions if fp_regions else 0.0)
    if reject_reasons:
        agg["fastpath_reject_reasons"] = reject_reasons
    return agg
