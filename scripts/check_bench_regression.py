#!/usr/bin/env python
"""Gate CI on benchmark wall-clock regressions.

Compares a fresh pytest-benchmark JSON report against the checked-in
baseline (``benchmarks/BASELINE.json``) and fails when a gated
benchmark got more than ``--threshold`` slower.

Raw seconds are not comparable across runner generations, so both sides
are normalized by a *calibration* measurement: a small, fixed,
deterministic simulator workload timed on the current machine at check
time and recorded in the baseline at update time.  The comparison is
then ``current / (baseline * cal_now / cal_baseline)``.

Refresh the baseline (after an intentional perf change, from a quiet
machine) with::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=bench.json
    python scripts/check_bench_regression.py --current bench.json \
        --baseline benchmarks/BASELINE.json --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Benchmarks gated by default (regex fragments matched against names).
GATED = ("fastpath", "fig1", "vecop_wallclock", "scalar_v2",
         "system_scaling")


def calibrate(rounds: int = 5) -> float:
    """Seconds for a fixed scalar-engine simulation (best of rounds).

    The workload must be big enough to dominate interpreter startup
    jitter; the best-of keeps scheduler noise out of the scale factor.
    """
    from repro.core.cluster import Cluster
    from repro.core.config import CoreConfig
    from repro.kernels.vecop import VecopVariant, build_vecop

    best = float("inf")
    for _ in range(rounds):
        cfg = CoreConfig(engine="scalar")
        build = build_vecop(n=1024, variant=VecopVariant.CHAINING,
                            cfg=cfg)
        cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
        build.load_into(cluster)
        start = time.perf_counter()
        cluster.run()
        best = min(best, time.perf_counter() - start)
    return best


def load_current(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    out = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = bench["stats"]["median"]
    return out


def gated(names, patterns) -> list[str]:
    return [n for n in names if any(p in n for p in patterns)]


def write_step_summary(rows: list[dict], scale: float,
                       threshold: float) -> None:
    """Append the comparison table to the GitHub Actions job summary.

    A no-op outside Actions (``GITHUB_STEP_SUMMARY`` unset); the same
    information is always printed to stdout.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Benchmark regression gate",
        "",
        f"Calibration scale vs baseline machine: `{scale:.2f}x`; "
        f"fail threshold `{threshold:.2f}x`.",
        "",
        "| benchmark | current | scaled baseline | ratio | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        if row["current_ms"] is None:
            lines.append(f"| `{row['name']}` | missing | "
                         f"{row['baseline_ms']:.2f} ms | - | :x: missing |")
            continue
        verdict = ":white_check_mark: ok" if row["ok"] \
            else ":x: regression"
        lines.append(
            f"| `{row['name']}` | {row['current_ms']:.2f} ms "
            f"| {row['baseline_ms']:.2f} ms | {row['ratio']:.2f}x "
            f"| {verdict} |")
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="pytest-benchmark JSON of this run")
    parser.add_argument("--baseline", default="benchmarks/BASELINE.json")
    parser.add_argument("--threshold", type=float, default=1.2,
                        help="max allowed slowdown ratio (default 1.2 "
                             "= 20%%)")
    parser.add_argument("--select", action="append", default=None,
                        help="gate benchmarks whose name contains this "
                             "(repeatable; default: fastpath, fig1)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from --current")
    args = parser.parse_args(argv)

    current = load_current(Path(args.current))
    patterns = tuple(args.select) if args.select else GATED
    cal = calibrate()

    if args.update:
        names = gated(current, patterns)
        baseline = {
            "calibration_seconds": round(cal, 6),
            "threshold": args.threshold,
            "benchmarks": {n: round(current[n], 6) for n in sorted(names)},
        }
        Path(args.baseline).write_text(json.dumps(baseline, indent=2)
                                       + "\n")
        print(f"baseline updated: {len(names)} benchmarks, "
              f"calibration {cal * 1e3:.2f} ms")
        return 0

    baseline = json.loads(Path(args.baseline).read_text())
    scale = cal / baseline["calibration_seconds"]
    print(f"calibration: baseline "
          f"{baseline['calibration_seconds'] * 1e3:.2f} ms, here "
          f"{cal * 1e3:.2f} ms -> scale {scale:.2f}x")

    failures = []
    rows = []
    for name, base_median in sorted(baseline["benchmarks"].items()):
        if name not in current:
            print(f"  MISSING  {name} (in baseline, not in this run)")
            failures.append(name)
            rows.append({"name": name, "current_ms": None,
                         "baseline_ms": base_median * scale * 1e3,
                         "ratio": None, "ok": False})
            continue
        allowed = base_median * scale * args.threshold
        ratio = current[name] / (base_median * scale)
        ok = current[name] <= allowed
        verdict = "ok" if ok else "REGRESSION"
        print(f"  {verdict:10s} {name}: {current[name] * 1e3:8.2f} ms "
              f"vs scaled baseline {base_median * scale * 1e3:8.2f} ms "
              f"({ratio:.2f}x)")
        rows.append({"name": name, "current_ms": current[name] * 1e3,
                     "baseline_ms": base_median * scale * 1e3,
                     "ratio": ratio, "ok": ok})
        if not ok:
            failures.append(name)
    write_step_summary(rows, scale, args.threshold)

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x: {', '.join(failures)}")
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
