#!/usr/bin/env python
"""Validate an exported Perfetto (Chrome trace-event) JSON file.

CI runs this over the trace produced by the sweep-smoke job so a schema
regression in ``repro.obs.export`` fails loudly instead of producing a
file Perfetto silently refuses to load.  Checks:

* the file parses as JSON and has a ``traceEvents`` list;
* every event's phase is one we emit (``X`` span, ``i`` instant,
  ``M`` metadata);
* timestamps and durations are non-negative finite numbers;
* ``X``/``i`` events carry numeric ``pid``/``tid`` that a prior ``M``
  ``process_name``/``thread_name`` record declared;
* instants carry the ``s`` scope field.

Usage::

    python scripts/check_trace_schema.py trace.json [more.json ...]
"""

from __future__ import annotations

import argparse
import json
import math
import sys

ALLOWED_PHASES = {"X", "i", "M"}


def _fail(path: str, index: int, message: str) -> str:
    return f"{path}: event {index}: {message}"


def validate_trace(path: str) -> list[str]:
    """Return a list of human-readable schema violations (empty = ok)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not loadable JSON: {exc}"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: missing top-level 'traceEvents' key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' is not a list"]
    if not events:
        return [f"{path}: 'traceEvents' is empty"]

    errors: list[str] = []
    named_pids: set = set()
    named_tids: set = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(_fail(path, i, "not an object"))
            continue
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            errors.append(_fail(path, i, f"unexpected phase {ph!r}"))
            continue
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            elif event.get("name") == "thread_name":
                named_tids.add((event.get("pid"), event.get("tid")))
            continue
        for key in ("name", "cat", "pid", "tid", "ts", "args"):
            if key not in event:
                errors.append(_fail(path, i, f"missing {key!r}"))
        for key in ("ts", "dur"):
            value = event.get(key)
            if key == "dur" and ph != "X":
                continue
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool) or not math.isfinite(value) or value < 0:
                errors.append(_fail(
                    path, i, f"{key}={value!r} is not a non-negative "
                    f"finite number"))
        if event.get("pid") not in named_pids:
            errors.append(_fail(
                path, i, f"pid {event.get('pid')!r} has no prior "
                f"process_name metadata"))
        elif (event.get("pid"), event.get("tid")) not in named_tids:
            errors.append(_fail(
                path, i, f"tid {event.get('tid')!r} has no prior "
                f"thread_name metadata"))
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(_fail(
                path, i, f"instant scope s={event.get('s')!r}"))
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", help="trace JSON files")
    parser.add_argument("--max-errors", type=int, default=20,
                        help="violations to print before truncating")
    args = parser.parse_args(argv)

    all_errors: list[str] = []
    for path in args.traces:
        errors = validate_trace(path)
        if not errors:
            with open(path) as handle:
                count = len(json.load(handle)["traceEvents"])
            print(f"{path}: OK ({count} events)")
        all_errors.extend(errors)

    for line in all_errors[:args.max_errors]:
        print(f"FAIL {line}", file=sys.stderr)
    if len(all_errors) > args.max_errors:
        print(f"... and {len(all_errors) - args.max_errors} more",
              file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
