#!/usr/bin/env python
"""Validate a result store (sweep cache) end to end.

CI runs this after every leg that writes to a cache directory, so a
schema regression, a torn write, or a mis-filed shard fails loudly
instead of silently poisoning later cache hits.  Checks (via
``repro.sweep.cache.ResultCache.verify``):

* every JSONL line parses and its ``result`` payload round-trips
  through the canonical :class:`repro.api.Result` schema;
* no key appears twice with *conflicting* payloads (identical
  duplicates -- racing cooperating writers -- are reported but benign,
  and fail only under ``--strict``);
* every sharded record lives in the shard file matching its key
  prefix (no orphans);
* failure-log records carry a key and a status.

Usage::

    python scripts/check_store_integrity.py CACHE_DIR [more ...]
    python scripts/check_store_integrity.py --strict CACHE_DIR
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path


def check_store(root: str, strict: bool = False) -> list[str]:
    """Return a list of human-readable violations (empty = ok)."""
    from repro.sweep.cache import ResultCache

    if not Path(root).is_dir():
        return [f"{root}: not a directory (no store written?)"]
    with warnings.catch_warnings():
        # verify() re-reports malformed lines with file/line detail;
        # the load-time summary warning would be noise here.
        warnings.simplefilter("ignore")
        cache = ResultCache(root)
    report = cache.verify()
    problems = []
    for bucket in ("corrupt", "invalid", "conflicts", "orphans"):
        for entry in report[bucket]:
            problems.append(f"{root}: {bucket[:-1]} record: {entry}")
    if strict:
        for entry in report["duplicates"]:
            problems.append(f"{root}: duplicate key (strict): {entry}")
    print(f"{root}: {report['records']} record(s) in "
          f"{report['files']} file(s) [{cache.layout}], "
          f"{report['failure_records']} failure record(s), "
          f"{len(report['duplicates'])} identical duplicate(s)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("stores", nargs="+",
                        help="cache directories to validate")
    parser.add_argument("--strict", action="store_true",
                        help="fail on identical-duplicate keys too")
    args = parser.parse_args(argv)

    failures = []
    for store in args.stores:
        failures.extend(check_store(store, strict=args.strict))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} integrity violation(s)", file=sys.stderr)
        return 1
    print("store integrity: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
