"""FP instruction execution end to end through the cluster."""

import numpy as np

from repro.core import Cluster

DATA = 0x2000
OUT = 0x3000


def run_fp(body: str, values=(2.0, 0.5, -3.0)):
    prog = f"""
    li a0, {DATA}
    li a1, {OUT}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
{body}
    ebreak
"""
    cluster = Cluster(prog)
    cluster.load_f64(DATA, np.array(values))
    cluster.run()
    return cluster


def test_arith_chain():
    cluster = run_fp("""
    fadd.d fa3, fa0, fa1
    fmul.d fa4, fa3, fa2
    fsub.d fa5, fa4, fa0
    fdiv.d fa6, fa5, fa1
    fsd fa6, 0(a1)
""")
    expected = (((2.0 + 0.5) * -3.0) - 2.0) / 0.5
    assert cluster.mem.read_f64(OUT) == expected


def test_fmadd_family():
    cluster = run_fp("""
    fmadd.d fa3, fa0, fa1, fa2
    fmsub.d fa4, fa0, fa1, fa2
    fnmadd.d fa5, fa0, fa1, fa2
    fnmsub.d fa6, fa0, fa1, fa2
    fsd fa3, 0(a1)
    fsd fa4, 8(a1)
    fsd fa5, 16(a1)
    fsd fa6, 24(a1)
""")
    a, b, c = 2.0, 0.5, -3.0
    out = cluster.read_f64(OUT, (4,))
    assert list(out) == [a * b + c, a * b - c, -(a * b) - c, -(a * b) + c]


def test_sqrt_and_div_latencies_still_correct():
    cluster = run_fp("""
    fmul.d fa3, fa0, fa0
    fsqrt.d fa4, fa3
    fsd fa4, 0(a1)
""")
    assert cluster.mem.read_f64(OUT) == 2.0


def test_min_max_sgnj():
    cluster = run_fp("""
    fmin.d fa3, fa0, fa2
    fmax.d fa4, fa0, fa2
    fsgnjn.d fa5, fa0, fa2
    fsd fa3, 0(a1)
    fsd fa4, 8(a1)
    fsd fa5, 16(a1)
""")
    out = cluster.read_f64(OUT, (3,))
    assert list(out) == [-3.0, 2.0, 2.0]


def test_fmv_pseudo():
    cluster = run_fp("""
    fmv.d fa3, fa2
    fsd fa3, 0(a1)
""")
    assert cluster.mem.read_f64(OUT) == -3.0


def test_fp_compare_returns_to_int_core():
    cluster = run_fp("""
    flt.d t0, fa1, fa0      # 0.5 < 2.0 -> 1
    sw t0, 0(a1)
    feq.d t1, fa0, fa2      # 2.0 == -3.0 -> 0
    sw t1, 4(a1)
""")
    assert cluster.mem.read_u32(OUT) == 1
    assert cluster.mem.read_u32(OUT + 4) == 0


def test_fcvt_roundtrip_through_int():
    cluster = run_fp("""
    li t0, -7
    fcvt.d.w fa3, t0
    fmul.d fa4, fa3, fa0
    fcvt.w.d t1, fa4
    sw t1, 0(a1)
""")
    assert cluster.mem.read_u32(OUT) == (-14) & 0xFFFFFFFF


def test_branch_on_fp_compare():
    cluster = run_fp("""
    flt.d t0, fa0, fa1
    bnez t0, smaller
    li t1, 111
    j done
smaller:
    li t1, 222
done:
    sw t1, 0(a1)
""")
    assert cluster.mem.read_u32(OUT) == 111


def test_fp_load_store_negative_offsets():
    cluster = run_fp(f"""
    li a2, {DATA + 16}
    fld fa3, -16(a2)
    fsd fa3, 16(a2)
    fld fa4, 16(a2)     # reads back what the store just wrote
    fsd fa4, 0(a1)
""")
    assert cluster.mem.read_f64(DATA + 32) == 2.0
    assert cluster.mem.read_f64(OUT) == 2.0
