"""FREP hardware-loop integration tests (through the full cluster)."""

import numpy as np

from repro.core import Cluster

DATA = 0x2000
OUT = 0x3000


def test_frep_outer_accumulates():
    # Sum fa1 into fa0 eight times without any integer-core loop.
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t0, 7
    frep.o t0, 0
    fadd.d fa0, fa0, fa1
    li a1, {OUT}
    fsd fa0, 0(a1)
    ebreak
""")
    cluster.load_f64(DATA, np.array([1.0, 0.25]))
    cluster.run()
    assert cluster.mem.read_f64(OUT) == 1.0 + 8 * 0.25


def test_frep_outer_multi_instruction_body():
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
    li t0, 3
    frep.o t0, 1
    fadd.d fa0, fa0, fa1
    fmul.d fa2, fa2, fa1
    li a1, {OUT}
    fsd fa0, 0(a1)
    fsd fa2, 8(a1)
    ebreak
""")
    cluster.load_f64(DATA, np.array([0.0, 2.0, 1.0]))
    cluster.run()
    assert cluster.mem.read_f64(OUT) == 8.0       # 4 adds of 2.0
    assert cluster.mem.read_f64(OUT + 8) == 16.0  # 1.0 * 2^4


def test_frep_inner_repeats_instruction():
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
    li t0, 2
    frep.i t0, 1
    fadd.d fa0, fa0, fa1
    fmul.d fa2, fa2, fa1
    li a1, {OUT}
    fsd fa0, 0(a1)
    fsd fa2, 8(a1)
    ebreak
""")
    cluster.load_f64(DATA, np.array([0.0, 2.0, 1.0]))
    cluster.run()
    # Each body instruction runs 3 times: fa0 += 2 three times, then
    # fa2 *= 2 three times.
    assert cluster.mem.read_f64(OUT) == 6.0
    assert cluster.mem.read_f64(OUT + 8) == 8.0


def test_frep_with_stagger_spreads_accumulators():
    # Stagger rd and rs1 over two registers: fa0/fa1 alternate as
    # accumulator, Snitch's register-rotation aid.
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
    li t0, 3
    frep.o t0, 0, 1, 3
    fadd.d fa0, fa0, fa2
    li a1, {OUT}
    fsd fa0, 0(a1)
    fsd fa1, 8(a1)
    ebreak
""")
    cluster.load_f64(DATA, np.array([10.0, 20.0, 1.0]))
    cluster.run()
    # Iterations alternate fa0 += 1 / fa1 += 1, twice each.
    assert cluster.mem.read_f64(OUT) == 12.0
    assert cluster.mem.read_f64(OUT + 8) == 22.0


def test_frep_keeps_fpu_fed_without_int_core():
    """The whole point of frep: dispatch once, repeat many times.

    The body uses four rotating destinations so writebacks retire before
    the WAW re-use (a single-destination body would be WAW-bound -- that
    is exactly the problem chaining solves with *one* register).
    """
    iters = 16
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    csrrwi x0, sim_mark, 1
    li t0, {iters - 1}
    frep.o t0, 3
    fmul.d fa2, fa0, fa1
    fmul.d fa3, fa0, fa1
    fmul.d fa4, fa0, fa1
    fmul.d fa5, fa0, fa1
    csrr t1, ssr_enable
    csrrwi x0, sim_mark, 2
    ebreak
""")
    cluster.load_f64(DATA, np.array([1.0, 1.0]))
    cluster.run()
    util = cluster.perf.fpu_utilization(1, 2)
    assert util > 0.9
    assert cluster.perf.value("int_instrs") < 4 * iters


def test_frep_single_destination_body_is_waw_bound():
    # Counterpart of the test above: one architectural destination limits
    # the repeated body to 1 op per (latency+1) cycles.
    iters = 16
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    csrrwi x0, sim_mark, 1
    li t0, {iters - 1}
    frep.o t0, 0
    fmul.d fa2, fa0, fa1
    csrr t1, ssr_enable
    csrrwi x0, sim_mark, 2
    ebreak
""")
    cluster.load_f64(DATA, np.array([1.0, 1.0]))
    cluster.run()
    util = cluster.perf.fpu_utilization(1, 2)
    assert util < 0.3


def test_frep_zero_reps_runs_once():
    cluster = Cluster(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t0, 0
    frep.o t0, 0
    fadd.d fa0, fa0, fa1
    li a1, {OUT}
    fsd fa0, 0(a1)
    ebreak
""")
    cluster.load_f64(DATA, np.array([1.0, 2.0]))
    cluster.run()
    assert cluster.mem.read_f64(OUT) == 3.0
