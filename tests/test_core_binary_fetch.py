"""Binary-fetch mode: execute from encoded machine words in memory."""

import pytest

from repro.core import Cluster, CoreConfig
from repro.eval.runner import run_build
from repro.isa.assembler import assemble
from repro.kernels.stencil import box3d1r
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant, build_vecop


def test_simple_program_from_memory():
    cfg = CoreConfig(fetch_from_memory=True)
    cluster = Cluster("""
    li a0, 6
    li a1, 7
    mul a2, a0, a1
    li t6, 0x2000
    sw a2, 0(t6)
    ebreak
""", cfg=cfg)
    cluster.run()
    assert cluster.mem.read_u32(0x2000) == 42
    # The program image is really in memory.
    from repro.isa.encoding import decode

    assert decode(cluster.mem.read_u32(0)).mnemonic == "addi"


def test_vecop_identical_in_both_modes():
    results = {}
    for fetch in (False, True):
        cfg = CoreConfig(fetch_from_memory=fetch)
        build = build_vecop(n=64, variant=VecopVariant.CHAINING, cfg=cfg)
        results[fetch] = run_build(build, cfg=cfg)
    assert results[True].correct
    # Timing and outputs are identical: the decode cache models the L0
    # loop buffer, so fetching from memory costs nothing extra.
    assert results[True].cycles == results[False].cycles
    assert results[True].fpu_utilization == \
        results[False].fpu_utilization


def test_stencil_identical_in_both_modes(tiny_grid):
    cycles = {}
    for fetch in (False, True):
        cfg = CoreConfig(fetch_from_memory=fetch)
        build = build_stencil(box3d1r(), tiny_grid, Variant.CHAINING_PLUS,
                              cfg=cfg)
        result = run_build(build, cfg=cfg)
        assert result.correct
        cycles[fetch] = result.cycles
    assert cycles[True] == cycles[False]


def test_oversized_program_image_rejected():
    big = "\n".join(["nop"] * 1030 + ["ebreak"])
    cfg = CoreConfig(fetch_from_memory=True)
    with pytest.raises(ValueError, match="colliding"):
        Cluster(big, cfg=cfg)


def test_relocated_program_base():
    prog = assemble("""
    li a0, 99
    li t6, 0x2000
    sw a0, 0(t6)
    ebreak
""", base=0x400)
    cfg = CoreConfig(fetch_from_memory=True)
    cluster = Cluster(prog, cfg=cfg)
    cluster.run()
    assert cluster.mem.read_u32(0x2000) == 99


def test_program_reload_invalidates_decode_cache():
    """Regression: the per-PC decode cache must not survive a program
    (re)load -- a reused core would otherwise execute instructions of
    the *previous* binary from the stale cache."""
    cfg = CoreConfig(fetch_from_memory=True)
    cluster = Cluster("""
    li a0, 11
    li t6, 0x2000
    sw a0, 0(t6)
    ebreak
""", cfg=cfg)
    cluster.run()
    assert cluster.mem.read_u32(0x2000) == 11

    # Program A's decoded words are cached per PC at this point.
    assert cluster.core._decode_cache
    cluster.load_program("""
    li a0, 22
    li t6, 0x2004
    sw a0, 0(t6)
    ebreak
""")
    # The reload must have dropped them -- a stale cache would make the
    # second run re-execute the first program (writing 11 to 0x2000
    # again and nothing to 0x2004).
    assert cluster.core._decode_cache == {}
    cluster.run(max_cycles=cluster.cycle + 1000)
    assert cluster.mem.read_u32(0x2004) == 22


def test_program_reload_refuses_undrained_fp_work():
    """Swapping binaries with a buffered FREP body / armed streams
    still in flight would execute the old program's work against the
    new one; the reload API must refuse."""
    cfg = CoreConfig(fetch_from_memory=True)
    build = build_vecop(n=64, variant=VecopVariant.CHAINING, cfg=cfg)
    cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
    build.load_into(cluster)
    for _ in range(60):  # mid-FREP, streams armed and flowing
        cluster.step()
    assert not cluster.fp.idle or not cluster.fp.streamers_done()
    with pytest.raises(RuntimeError, match="busy"):
        cluster.load_program("    ebreak\n")
