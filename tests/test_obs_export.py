"""Perfetto export: golden Chrome trace-event schema, segment merging,
and the end-to-end acceptance scenario (observed multi-cluster sweep)."""

import importlib.util
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.api import Session, workload
from repro.core import Cluster, CoreConfig
from repro.kernels.ssrgen import SsrPatternAsm
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.trace import TraceRecorder

REPO = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_trace_schema", REPO / "scripts" / "check_trace_schema.py")
check_trace_schema = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trace_schema)


@pytest.fixture(autouse=True)
def _always_disabled_after():
    yield
    obs.disable()


# -- chrome_trace golden schema -------------------------------------------


WALL_SPAN = {"kind": "span", "clock": "wall", "name": "Session.run",
             "cat": "api", "ts": 100.0, "dur": 0.25, "pid": 42,
             "proc": "repro pid 42", "lane": "main", "args": {"w": "x"}}
SIM_INSTANT = {"kind": "instant", "clock": "sim",
               "name": "fastpath.accept", "cat": "engine", "ts": 96,
               "dur": 0, "pid": 42, "proc": "sim vecop", "lane": "cluster",
               "args": {"iters": 15}}


def test_chrome_trace_golden():
    doc = obs.chrome_trace([WALL_SPAN, SIM_INSTANT])
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {(m["name"], m["args"]["name"]) for m in metas} == {
        ("process_name", "sim vecop"), ("thread_name", "cluster"),
        ("process_name", "repro pid 42"), ("thread_name", "main")}

    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "Session.run"
    assert span["ts"] == 0.0                   # normalized to min wall ts
    assert span["dur"] == 250_000.0            # 0.25 s -> µs
    assert span["args"] == {"w": "x"}

    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t"
    assert instant["ts"] == 96.0               # 1 cycle = 1 µs
    assert "dur" not in instant

    # Wall and sim events land on different process tracks.
    assert span["pid"] != instant["pid"]


def test_chrome_trace_separates_wall_pids():
    a = dict(WALL_SPAN)
    b = dict(WALL_SPAN, pid=43, proc="repro pid 43", ts=101.0)
    doc = obs.chrome_trace([a, b])
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len({e["pid"] for e in xs}) == 2


def test_chrome_trace_clamps_negative_durations():
    bad = dict(SIM_INSTANT, kind="span", name="dma", ts=50, dur=-3)
    doc = obs.chrome_trace([bad])
    span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert span["dur"] == 0.0


def test_golden_doc_passes_schema_checker(tmp_path):
    path = obs.write_trace(tmp_path / "t.json", [WALL_SPAN, SIM_INSTANT])
    assert check_trace_schema.validate_trace(str(path)) == []
    assert check_trace_schema.main([str(path)]) == 0


def test_schema_checker_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [
        {"ph": "X", "name": "n", "cat": "c", "pid": 1, "tid": 1,
         "ts": -5, "dur": 1, "args": {}}]}))
    errors = check_trace_schema.validate_trace(str(bad))
    assert any("ts=-5" in e for e in errors)
    assert any("process_name" in e for e in errors)
    assert check_trace_schema.main([str(bad)]) == 1


# -- recorder conversion --------------------------------------------------


def test_recorder_events_roundtrip(tmp_path):
    build = build_vecop(n=8, variant=VecopVariant.CHAINING,
                        loop_mode="bne")
    trace = TraceRecorder()
    cluster = Cluster(build.asm, trace=trace)
    build.load_into(cluster)
    cluster.run()
    events = obs.recorder_events(trace, label="vecop/chaining n=8")
    assert len(events) == len(trace.fp_events) + len(trace.int_events)
    lanes = {e["lane"] for e in events}
    assert lanes == {"fp issue", "int issue"}
    assert all(e["proc"] == "sim vecop/chaining n=8" for e in events)
    path = obs.write_trace(tmp_path / "issue.json", events)
    assert check_trace_schema.validate_trace(str(path)) == []


# -- segment merging ------------------------------------------------------


def test_load_segments_merges_sorted_files(tmp_path):
    for pid, name in ((1, "a"), (2, "b")):
        with open(tmp_path / f"spans-{pid}.jsonl", "w") as fh:
            fh.write(json.dumps(dict(WALL_SPAN, pid=pid, name=name))
                     + "\n")
    events = obs.load_segments(tmp_path)
    assert [e["name"] for e in events] == ["a", "b"]


def test_export_dir_closes_tracer_and_merges(tmp_path):
    tracer = obs.enable(jsonl_dir=tmp_path, keep_in_memory=False)
    tracer.instant("tick")
    path = obs.export_dir(tmp_path, tracer=tracer)
    doc = json.loads(path.read_text())
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] not in "M"]
    assert names == ["tick"]
    assert check_trace_schema.validate_trace(str(path)) == []


# -- acceptance: one observed multi-cluster campaign ----------------------


C, D = 0x30000, 0x50000

REJECTING_ASM_TEMPLATE = """
{reads}
    csrrsi x0, ssr_enable, 1
    li t2, {iters}
    frep.o t2, 0
    fmadd.d ft3, ft0, ft1, ft3
    csrrci x0, ssr_enable, 1
    ebreak
"""


def test_observed_sweep_exports_full_timeline(tmp_path):
    """The PR's acceptance scenario: an observed campaign over a
    2-cluster j3d27pt point plus a vecop point, with one additional
    rejecting FREP region, exports a single merged Perfetto trace
    carrying every event family."""
    obs_dir = tmp_path / "obs"
    tracer = obs.enable(jsonl_dir=obs_dir, keep_in_memory=False)

    session = Session(cache=None, workers=0)
    campaign = session.map([
        workload("j3d27pt", "Chaining", grid=(4, 4, 8),
                 num_clusters=2, iters=2),
        workload("vecop", "chaining", n=64),
    ])
    assert not campaign.failed

    # A cross-iteration reduction: the fast path must refuse it.
    n = 64
    reads = "\n".join(
        SsrPatternAsm(ssr=i, base=base, bounds=[n], strides=[8]).emit()
        for i, base in enumerate((C, D)))
    asm = REJECTING_ASM_TEMPLATE.format(reads=reads, iters=n - 1)
    with obs.sim_context("reduction"):
        cluster = Cluster(asm, cfg=CoreConfig(engine="fast"))
        rng = np.random.default_rng(3)
        cluster.load_f64(C, rng.uniform(-1, 1, n))
        cluster.load_f64(D, rng.uniform(-1, 1, n))
        cluster.run(max_cycles=100_000)

    path = obs.export_dir(obs_dir, tracer=tracer)
    obs.disable()

    assert check_trace_schema.validate_trace(str(path)) == []
    doc = json.loads(path.read_text())
    events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    by_name = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)

    # Per-point sweep spans and the API seams.
    assert len(by_name["sweep.point"]) == 2
    assert len(by_name["execute"]) == 2
    assert "Session.map" in by_name

    # Engine selection, both directions, with a rejection reason.
    accept = by_name["fastpath.accept"][0]
    assert accept["args"]["iters"] >= 1
    reject = by_name["fastpath.reject"][0]
    assert reject["args"]["reason"] == "cross-iteration-register-carry"

    # Fast-forward spans with cycles-skipped args.
    assert all(e["args"]["cycles_skipped"] > 0
               for e in by_name["fast-forward"])

    # System events: per-cluster slices, barrier, DMA transfers.
    assert {e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"} >= {
                "cluster0", "cluster1", "system"}
    assert by_name["barrier.open"][0]["args"]["clusters"] == 2
    assert all(e["args"]["bytes"] > 0 for e in by_name["dma"])
    assert "System.run" in by_name and len(by_name["cluster.run"]) == 2

    # Everything came from this one process's segment.
    assert sorted(p.name for p in obs_dir.glob("spans-*.jsonl")) == [
        f"spans-{os.getpid()}.jsonl"]
