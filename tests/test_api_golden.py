"""Golden-file tests: every emitter speaks the one result schema.

``repro run --json``, ``repro sweep --json``, ``repro sweep --csv`` and
the result cache's JSONL records must all carry exactly the canonical
:mod:`repro.api.result` schema -- same keys, same values for the same
workload.
"""

import csv
import json

from repro.api import RESULT_KEYS, RESULT_SCALARS
from repro.cli import CSV_IDENTITY, CSV_METRICS, main

#: The sweep CSV header, in full -- the schema seam made visible.
GOLDEN_CSV_HEADER = (
    "kernel,variant,grid,n,loop_mode,unroll,overrides,system,"
    "status,cached,seconds,"
    "correct,cycles,region_cycles,fpu_utilization,clock_hz,flops,points,"
    "gflops,gflops_per_watt,power_mw,cycles_per_point"
)

SPEC = {
    "name": "golden",
    "kernels": ["vecop"],
    "variants": ["baseline", "chaining"],
    "ns": [16],
}


def test_csv_columns_derive_from_the_schema():
    assert ",".join([*CSV_IDENTITY, *CSV_METRICS]) == GOLDEN_CSV_HEADER
    assert set(CSV_METRICS) == set(RESULT_SCALARS) - {"name"}


def test_run_json_is_the_canonical_schema(tmp_path):
    path = tmp_path / "run.json"
    assert main(["run", "--kernel", "box3d1r", "--variant", "Chaining+",
                 "--nz", "2", "--ny", "3", "--nx", "8",
                 "--json", str(path)]) == 0
    record = json.loads(path.read_text())
    assert tuple(record) == RESULT_KEYS
    assert record["schema"] == "repro-result/v1"
    assert record["system"] is None


def test_run_json_system_carries_the_sub_report(tmp_path):
    path = tmp_path / "run.json"
    assert main(["run", "--kernel", "box3d1r", "--variant", "Chaining+",
                 "--nz", "2", "--ny", "4", "--nx", "8",
                 "--num-clusters", "2", "--json", str(path)]) == 0
    record = json.loads(path.read_text())
    assert tuple(record) == RESULT_KEYS
    assert record["system"]["num_clusters"] == 2
    assert len(record["system"]["per_cluster_cycles"]) == 2


def test_sweep_json_csv_and_cache_jsonl_agree(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SPEC))
    cache = tmp_path / "cache"
    out_json = tmp_path / "out.json"
    out_csv = tmp_path / "out.csv"
    assert main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
                 "--workers", "0", "--quiet", "--json", str(out_json),
                 "--csv", str(out_csv)]) == 0
    capsys.readouterr()

    # 1. sweep --json outcomes carry the schema verbatim.
    sweep_records = {
        o["label"]: o["result"]
        for o in json.loads(out_json.read_text())["outcomes"]}
    assert len(sweep_records) == 2
    for record in sweep_records.values():
        assert tuple(record) == RESULT_KEYS

    # 2. cache JSONL "result" payloads are the very same records
    #    (new stores are directory-sharded: shards/<keyprefix>.jsonl).
    jsonl = [json.loads(line)
             for shard in sorted((cache / "shards").glob("*.jsonl"))
             for line in shard.read_text().splitlines()]
    assert len(jsonl) == 2
    for entry in jsonl:
        # The cache appends with sort_keys=True (stable diffs), so key
        # *set* equality is the schema contract here.
        assert sorted(entry["result"]) == sorted(RESULT_KEYS)
    by_label = {
        "vecop/" + entry["point"]["variant"] + " n=16": entry["result"]
        for entry in jsonl}
    assert by_label == sweep_records

    # 3. the CSV header and rows are the schema's scalar projection.
    rows = list(csv.DictReader(out_csv.read_text().splitlines()))
    assert ",".join(rows[0].keys()) == GOLDEN_CSV_HEADER
    for row in rows:
        record = sweep_records[f"vecop/{row['variant']} n=16"]
        for column in CSV_METRICS:
            assert row[column] == str(record[column])


def test_run_and_sweep_emit_identical_records_for_one_workload(tmp_path,
                                                               capsys):
    run_json = tmp_path / "run.json"
    assert main(["run", "--kernel", "box3d1r", "--variant", "Base",
                 "--nz", "2", "--ny", "3", "--nx", "8",
                 "--json", str(run_json)]) == 0
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "kernels": ["box3d1r"], "variants": ["Base"],
        "grids": [[2, 3, 8]],
    }))
    sweep_json = tmp_path / "sweep.json"
    assert main(["sweep", "--spec", str(spec), "--no-cache", "--quiet",
                 "--workers", "0", "--json", str(sweep_json)]) == 0
    capsys.readouterr()
    run_record = json.loads(run_json.read_text())
    sweep_record = \
        json.loads(sweep_json.read_text())["outcomes"][0]["result"]
    # The default unroll differs in spelling only (None vs 4), so the
    # simulated numbers -- the whole record -- must coincide.
    assert run_record == sweep_record
