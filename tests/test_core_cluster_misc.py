"""Cluster-level odds and ends: timeouts, metrics, corner semantics."""

import numpy as np
import pytest

from repro.core import Cluster, CoreConfig
from repro.core.cluster import SimulationTimeout


def test_timeout_raises():
    cluster = Cluster("""
loop:
    j loop
""")
    with pytest.raises(SimulationTimeout):
        cluster.run(max_cycles=200)


def test_runtime_seconds_uses_clock():
    cfg = CoreConfig()
    cfg.clock_hz = 2.0e9
    cluster = Cluster("nop\nnop\nebreak", cfg=cfg)
    cluster.run()
    assert cluster.runtime_seconds() == pytest.approx(
        cluster.cycle / 2.0e9)


def test_allocator_helper():
    cluster = Cluster("ebreak")
    alloc = cluster.allocator()
    a = alloc.alloc_f64(10)
    b = alloc.alloc_f64(10)
    assert b >= a + 80
    assert a >= 0x1000


def test_done_only_after_drain():
    # ebreak halts the integer core while four FP ops are still queued;
    # done must wait for the FP subsystem.
    cluster = Cluster("""
    li a0, 0x2000
    fld fa0, 0(a0)
    fmul.d fa1, fa0, fa0
    fmul.d fa2, fa0, fa0
    fmul.d fa3, fa0, fa0
    fmul.d fa4, fa0, fa0
    ebreak
""")
    cluster.mem.write_f64(0x2000, 2.0)
    while not cluster.core.halted:
        cluster.step()
    assert not cluster.done          # FPU work still in flight
    cluster.run()
    assert cluster.done
    assert cluster.fp.fpregs.values[14] == 4.0


def test_chaining_with_unpipelined_divide():
    # A divide writing a chaining register: the FIFO semantics hold even
    # for the iterative unit (push at its late writeback).
    cluster = Cluster("""
    li a0, 0x2000
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    csrrwi x0, chain_mask, 8
    fdiv.d ft3, fa0, fa1
    fadd.d ft3, fa0, fa1
    fmul.d fa2, ft3, fa1
    fmul.d fa3, ft3, fa1
    csrrwi x0, chain_mask, 0
    ebreak
""")
    cluster.mem.write_f64(0x2000, 6.0)
    cluster.mem.write_f64(0x2008, 2.0)
    cluster.run()
    assert cluster.fp.fpregs.values[12] == 3.0 * 2.0   # div result first
    assert cluster.fp.fpregs.values[13] == 8.0 * 2.0   # then the add


def test_chain_mask_on_stream_register_is_shadowed():
    # SSR mapping takes precedence over chaining for ft0-ft2: with SSRs
    # enabled, reads of ft0 pop the stream even when the chain mask names
    # it; the chain bit only matters while SSRs are off.
    from repro.kernels.ssrgen import SsrPatternAsm

    prog = "\n".join([
        SsrPatternAsm(ssr=0, base=0x2000, bounds=[2], strides=[8]).emit(),
        "    csrrwi x0, chain_mask, 1",   # bit 0 = ft0
        "    csrrsi x0, ssr_enable, 1",
        "    fadd.d fa0, ft0, ft0",       # two stream pops
        "    csrrci x0, ssr_enable, 1",
        "    csrrwi x0, chain_mask, 0",
        "    ebreak",
    ])
    cluster = Cluster(prog)
    cluster.load_f64(0x2000, np.array([1.5, 2.5]))
    cluster.run()
    assert cluster.fp.fpregs.values[10] == 4.0


def test_mark_region_excludes_prologue():
    cluster = Cluster("""
    li a0, 0x2000
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    csrrwi x0, sim_mark, 1
    fadd.d fa2, fa0, fa1
    fadd.d fa3, fa0, fa1
    csrr t0, ssr_enable
    csrrwi x0, sim_mark, 2
    ebreak
""")
    cluster.mem.write_f64(0x2000, 1.0)
    cluster.run()
    assert cluster.perf.region_cycles(1, 2) < cluster.cycle
    assert cluster.perf.delta("fpu_compute_ops", 1, 2) == 2


def test_step_is_idempotent_after_done():
    cluster = Cluster("ebreak")
    cluster.run()
    cycle = cluster.cycle
    cluster.step()
    assert cluster.cycle == cycle + 1   # stepping is allowed, harmless
    assert cluster.done
