"""FP queue and FREP sequencer tests."""

import pytest

from repro.core.config import CoreConfig
from repro.core.sequencer import DispatchedEntry, Sequencer
from repro.isa.encoding import pack_frep
from repro.isa.instructions import Instr


def entry(mn="fadd.d", rd=3, rs1=0, rs2=1, **vals):
    return DispatchedEntry(Instr(mn, rd=rd, rs1=rs1, rs2=rs2), vals)


def frep_entry(reps, max_inst, stagger_max=0, stagger_mask=0, inner=False):
    mn = "frep.i" if inner else "frep.o"
    instr = Instr(mn, rs1=5,
                  imm=pack_frep(max_inst, stagger_max, stagger_mask))
    return DispatchedEntry(instr, {"rs1": reps})


def drain(seq, limit=200):
    out = []
    while limit:
        e = seq.peek()
        if e is None:
            break
        out.append(e.instr)
        seq.advance()
        limit -= 1
    return out


def test_plain_fifo_order():
    seq = Sequencer(CoreConfig())
    seq.dispatch(entry(rd=3))
    seq.dispatch(entry(rd=4))
    issued = drain(seq)
    assert [i.rd for i in issued] == [3, 4]
    assert seq.idle


def test_queue_space_accounting():
    cfg = CoreConfig(fp_queue_depth=2)
    seq = Sequencer(cfg)
    assert seq.space() == 2
    seq.dispatch(entry())
    assert seq.space() == 1
    seq.dispatch(entry())
    with pytest.raises(RuntimeError, match="overflow"):
        seq.dispatch(entry())


def test_frep_outer_replays_block():
    seq = Sequencer(CoreConfig())
    seq.begin_frep(frep_entry(reps=2, max_inst=1))   # 2-instr body, 3 iters
    seq.dispatch(entry(rd=3))
    seq.dispatch(entry(rd=4))
    issued = drain(seq)
    assert [i.rd for i in issued] == [3, 4, 3, 4, 3, 4]
    assert seq.replayed_instrs == 4
    assert seq.idle


def test_frep_inner_repeats_each_instr():
    seq = Sequencer(CoreConfig())
    seq.begin_frep(frep_entry(reps=2, max_inst=1, inner=True))
    seq.dispatch(entry(rd=3))
    seq.dispatch(entry(rd=4))
    issued = drain(seq)
    assert [i.rd for i in issued] == [3, 3, 3, 4, 4, 4]


def test_frep_waits_for_body_dispatch():
    seq = Sequencer(CoreConfig())
    seq.begin_frep(frep_entry(reps=1, max_inst=1))
    assert seq.peek() is None          # body not dispatched yet
    seq.dispatch(entry(rd=3))
    assert seq.peek().instr.rd == 3
    seq.advance()
    assert seq.peek() is None          # second body instr still missing
    seq.dispatch(entry(rd=4))
    assert [i.rd for i in drain(seq)] == [4, 3, 4]


def test_frep_stagger_rotates_registers():
    seq = Sequencer(CoreConfig())
    # stagger rd and rs3 across 2 values (stagger_max=1, mask=0b1001).
    seq.begin_frep(frep_entry(reps=3, max_inst=0, stagger_max=1,
                              stagger_mask=0b0001))
    seq.dispatch(entry(rd=8))
    issued = drain(seq)
    assert [i.rd for i in issued] == [8, 9, 8, 9]


def test_frep_stagger_skips_integer_fields():
    seq = Sequencer(CoreConfig())
    seq.begin_frep(frep_entry(reps=1, max_inst=0, stagger_max=1,
                              stagger_mask=0b0010))
    # fld rs1 is an integer register: never staggered.
    instr = Instr("fld", rd=8, rs1=10, imm=0)
    seq.dispatch(DispatchedEntry(instr, {"addr": 0}))
    issued = drain(seq)
    assert [i.rs1 for i in issued] == [10, 10]


def test_nested_frep_rejected():
    seq = Sequencer(CoreConfig())
    seq.begin_frep(frep_entry(reps=1, max_inst=0))
    with pytest.raises(RuntimeError, match="nested"):
        seq.begin_frep(frep_entry(reps=1, max_inst=0))


def test_frep_body_exceeding_buffer_rejected():
    cfg = CoreConfig(frep_buffer_depth=4)
    seq = Sequencer(cfg)
    with pytest.raises(RuntimeError, match="exceeds sequencer buffer"):
        seq.begin_frep(frep_entry(reps=1, max_inst=7))


def test_idle_tracks_frep():
    seq = Sequencer(CoreConfig())
    assert seq.idle
    seq.begin_frep(frep_entry(reps=0, max_inst=0))
    assert not seq.idle
    seq.dispatch(entry())
    drain(seq)
    assert seq.idle
