"""Cycle-model validation against closed-form analytical expectations.

For simple steady-state kernels the cycle count can be derived by hand
from the microarchitectural rules; these tests pin the simulator to that
arithmetic, which is what makes the Fig. 3 shapes trustworthy.

The second half is the differential suite for ``engine="analytical"``
(:mod:`repro.analytical`): for every kernel family -- vecop, stencil,
multi-cluster system, linalg -- the closed-form estimate must land
within the calibration report's per-family error bound of the
cycle-accurate result, under every cycle-accurate engine; plus the
Hypothesis property test (valid workloads never raise, estimates are
finite, positive and deterministic, keys never collide with
cycle-accurate keys), the golden-pinned ``repro-calibration/v1``
report schema, and the triage-mode guarantee that only interest-region
points ever hit a simulator.
"""

import json
import math
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical import (
    CALIBRATION_SCHEMA,
    CalibrationReport,
    calibrate,
    calibration_builds,
    calibration_workloads,
    estimate_build,
    estimate_workload,
    kernel_family,
)
from repro.api import Session, make_workload
from repro.api.execute import execute_workload
from repro.core.config import ENGINES
from repro.eval.runner import execute_build, run_build
from repro.kernels.layout import Grid3d
from repro.kernels.stencil import box3d1r
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.sweep.cache import ResultCache, point_key

DATA = Path(__file__).parent / "data"

#: Every cycle-accurate engine (the analytical engine's foils).
CYCLE_ENGINES = tuple(e for e in ENGINES if e != "analytical")


def test_vecop_baseline_period_is_2_plus_latency():
    # Steady state of Fig. 1a: fadd, 3 RAW stalls, fmul -> 5 cycles per
    # element (with frep, the integer core adds nothing).
    n = 256
    result = run_build(build_vecop(n=n, variant=VecopVariant.BASELINE))
    period = result.region_cycles / n
    assert period == pytest.approx(5.0, abs=0.2)


def test_vecop_chaining_period_is_2():
    n = 256
    result = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING))
    period = result.region_cycles / n
    assert period == pytest.approx(2.0, abs=0.1)


def test_vecop_bne_loop_adds_int_overhead():
    # With a bne loop the integer core must issue addi+bne (+2-cycle
    # taken-branch penalty) per iteration; the FP queue drains meanwhile,
    # so every iteration costs ~4 extra queue-empty cycles over frep.
    n = 128
    frep = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                 loop_mode="frep"))
    bne = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                loop_mode="bne"))
    iters = n // 4
    extra_per_iter = (bne.region_cycles - frep.region_cycles) / iters
    assert 2.0 <= extra_per_iter <= 6.0


def _issue_slots_per_block(variant: Variant, ntaps: int, unroll: int,
                           spills: int) -> int:
    """FP issue slots per inner block, from the DESIGN.md accounting."""
    compute = ntaps * unroll
    stores = 0 if variant.writeback_via_ssr else unroll
    loads = 0 if variant.coeffs_via_ssr or variant.coeffs_in_rf else spills
    return compute + stores + loads


@pytest.mark.parametrize("variant,spills", [
    (Variant.BASE, 0),
    (Variant.BASE_MM, 4),
    (Variant.CHAINING_PLUS, 0),
])
def test_stencil_block_slot_accounting(variant, spills):
    # Region cycles per block = FP slots + integer-loop overhead
    # (addi/bne + branch penalty, and the out-pointer bump for
    # explicit-store variants) + second-order stalls.  The analytical
    # slot count must explain the measurement to within ~10%.
    grid = Grid3d(nz=2, ny=4, nx=32)
    build = build_stencil(box3d1r(), grid, variant)
    result = run_build(build)
    blocks = build.meta["blocks"]
    slots = _issue_slots_per_block(variant, 27, 4, spills)
    int_overhead = 4 if variant.writeback_via_ssr else 5
    expected = slots + int_overhead
    measured = result.region_cycles / blocks
    assert measured == pytest.approx(expected, rel=0.10), (
        f"{variant.label}: measured {measured:.1f} cycles/block, "
        f"analytical {expected}"
    )


def test_stencil_compute_op_count_is_exact():
    grid = Grid3d(nz=2, ny=3, nx=16)
    for variant in (Variant.BASE, Variant.CHAINING):
        build = build_stencil(box3d1r(), grid, variant)
        result = run_build(build)
        # taps * points, exactly -- no op is ever lost or duplicated.
        assert result.meta["expected_compute_ops"] == 27 * grid.points


def test_speedup_follows_slot_ratio():
    # The Chaining+ vs Base speedup must track the issue-slot ratio
    # (112+int)/(108+int) within a couple of points.
    grid = Grid3d(nz=2, ny=4, nx=32)
    base = run_build(build_stencil(box3d1r(), grid, Variant.BASE))
    plus = run_build(build_stencil(box3d1r(), grid,
                                   Variant.CHAINING_PLUS))
    measured = base.region_cycles / plus.region_cycles
    analytical = (112 + 5) / (108 + 4)
    assert measured == pytest.approx(analytical, rel=0.04)


# -- differential: engine="analytical" vs the cycle-accurate engines ------


@pytest.fixture(scope="module")
def cal_ctx():
    """One calibration run shared by the whole differential suite:
    the fitted report, plus a cache holding every cycle-accurate
    reference result so individual tests replay instead of
    re-simulating."""
    with tempfile.TemporaryDirectory() as root:
        report = calibrate(cache=root, workers=0, version="9.9.9")
        yield report, Session(cache=root, workers=0)


def _assert_within_bound(report, family, estimate, actual, label):
    fit = report.families[family]
    for metric, est_v, act_v in (
            ("cycles", estimate.cycles, actual.cycles),
            ("energy", estimate.energy.total_pj,
             actual.energy.total_pj)):
        scale = getattr(fit, f"scale_{metric}")
        bound = getattr(fit, f"bound_{metric}")
        err = abs(est_v * scale - act_v) / act_v
        assert err <= bound, (
            f"{label}: {metric} estimate {est_v} x {scale:.4f} vs "
            f"actual {act_v}: error {err:.4f} exceeds the calibrated "
            f"{family} bound {bound:.4f}")


def test_every_family_is_calibrated(cal_ctx):
    report, _ = cal_ctx
    assert set(report.families) == {"vecop", "stencil", "system",
                                    "linalg"}
    for fit in report.families.values():
        assert fit.points >= 2
        assert 0.5 < fit.scale_cycles < 2.0
        assert fit.bound_cycles < 0.25, (
            "analytical model drifted: residuals should stay in the "
            "few-percent range")


def test_differential_all_families_within_bound(cal_ctx):
    """Every cross-validation point (all kernel families, incl. the
    multi-cluster systems) estimates within the advertised bound."""
    report, session = cal_ctx
    points = calibration_workloads()
    assert any(p.num_clusters > 1 for p in points)
    for point in points:
        est = estimate_workload(point)
        actual = session.run(point)     # cache hit from calibration
        _assert_within_bound(report, kernel_family(point), est, actual,
                             point.label)


def test_differential_linalg_builds_within_bound(cal_ctx):
    report, _ = cal_ctx
    for build in calibration_builds():
        est = estimate_build(build)
        actual = execute_build(build)
        _assert_within_bound(report, "linalg", est, actual, build.name)


@pytest.mark.parametrize("engine", CYCLE_ENGINES)
@pytest.mark.parametrize("point", [
    make_workload("vecop", "chaining", n=64, loop_mode="frep"),
    make_workload("vecop", "baseline", n=64, loop_mode="bne"),
    make_workload("j2d5pt", "Chaining", grid=(1, 8, 32)),
    make_workload("box2d1r", "Base-", grid=(1, 8, 32)),
    make_workload("star3d1r", "Chaining", grid=(8, 4, 16),
                  num_clusters=2, iters=2),
], ids=lambda p: p.label if hasattr(p, "label") else p)
def test_differential_per_engine(cal_ctx, point, engine):
    """The bound holds against every cycle-accurate engine (they are
    bit-identical, so one estimate must explain them all)."""
    report, _ = cal_ctx
    est = estimate_workload(point)
    actual = execute_workload(point, engine=engine)
    _assert_within_bound(report, kernel_family(point), est, actual,
                         f"{point.label} [{engine}]")


def test_estimates_carry_the_fidelity_marker():
    result = execute_workload(
        make_workload("vecop", "chaining", n=64), engine="analytical")
    assert result.meta["fidelity"] == "analytical"
    assert result.meta["family"] == "vecop"
    assert result.correct
    # Round-trips through the canonical schema with the marker intact.
    from repro.api.result import Result
    assert Result.from_dict(result.to_dict()).meta["fidelity"] \
        == "analytical"


def test_estimate_raises_the_builders_shape_errors():
    with pytest.raises(ValueError, match="multiple of 4"):
        estimate_workload(make_workload("vecop", "chaining", n=30))
    with pytest.raises(ValueError, match="multiple of unroll"):
        estimate_workload(make_workload("j2d5pt", "Chaining",
                                        grid=(1, 8, 30)))
    with pytest.raises(ValueError):   # nz < num_clusters: no slabs
        estimate_workload(make_workload("box3d1r", "Chaining",
                                        grid=(2, 4, 16),
                                        num_clusters=4))
    with pytest.raises(ValueError, match="no analytical model"):
        estimate_build(build_stencil(box3d1r(), Grid3d(2, 4, 16),
                                     Variant.BASE))


def test_session_run_build_routes_to_the_estimator():
    build = build_vecop(n=64, variant=VecopVariant.CHAINING)
    result = Session(engine="analytical").run(build)
    assert result.meta["fidelity"] == "analytical"
    assert result.name == build.name


# -- Hypothesis: the estimator is total over valid workloads --------------


_VECOP_POINTS = st.builds(
    lambda variant, k, loop_mode: make_workload(
        "vecop", variant, n=4 * k, loop_mode=loop_mode),
    variant=st.sampled_from(["baseline", "unrolled", "chaining"]),
    k=st.integers(min_value=1, max_value=64),
    loop_mode=st.sampled_from(["bne", "frep"]),
)

_STENCIL_POINTS = st.builds(
    lambda kernel, variant, nz, ny, bx, clusters, iters: make_workload(
        kernel, variant, grid=(nz * max(clusters, 1), ny, 4 * bx),
        system={"num_clusters": clusters, "iters": iters}
        if clusters > 1 else None),
    kernel=st.sampled_from(["box3d1r", "j3d27pt", "star3d1r", "j2d5pt",
                            "box2d1r"]),
    variant=st.sampled_from(["Base--", "Base-", "Base", "Chaining",
                             "Chaining+"]),
    nz=st.integers(min_value=1, max_value=3),
    ny=st.integers(min_value=1, max_value=6),
    bx=st.integers(min_value=1, max_value=8),
    clusters=st.sampled_from([1, 1, 1, 2, 4]),
    iters=st.integers(min_value=1, max_value=3),
)


@settings(max_examples=60, deadline=None)
@given(point=st.one_of(_VECOP_POINTS, _STENCIL_POINTS))
def test_analytical_engine_is_total_finite_and_deterministic(point):
    """For any valid workload: never raises, finite positive cycles and
    energy, deterministic, and its cache key collides with no
    cycle-accurate engine's key."""
    first = execute_workload(point, engine="analytical")
    again = execute_workload(point, engine="analytical")
    assert first.cycles > 0 and math.isfinite(first.cycles)
    assert first.region_cycles > 0
    assert first.energy.total_pj > 0
    assert math.isfinite(first.energy.total_pj)
    assert 0.0 <= first.fpu_utilization <= 1.0
    assert first.meta["fidelity"] == "analytical"
    assert (point.num_clusters > 1) == (first.system is not None)
    assert first.cycles == again.cycles
    assert first.energy.total_pj == again.energy.total_pj

    analytical_key = point_key(point, "v", None, engine="analytical")
    for engine in (*CYCLE_ENGINES, None):
        assert analytical_key != point_key(point, "v", None,
                                           engine=engine)


# -- the golden calibration report ----------------------------------------


def test_calibration_report_schema_is_golden(cal_ctx):
    """The repro-calibration/v1 report, pinned byte-for-byte (fixed
    version string; simulation and the model are both deterministic).
    Regenerate with:

        PYTHONPATH=src python -c "from repro.analytical import calibrate;
        print(calibrate(workers=0, version='9.9.9').to_json())" \\
            > tests/data/calibration_golden.json
    """
    report, _ = cal_ctx
    golden = json.loads((DATA / "calibration_golden.json").read_text())
    assert report.to_dict() == golden


def test_calibration_report_round_trips(cal_ctx):
    report, _ = cal_ctx
    again = CalibrationReport.from_dict(report.to_dict())
    assert again.to_dict() == report.to_dict()
    assert again.schema == CALIBRATION_SCHEMA
    assert again.bound("vecop") == report.families["vecop"].bound_cycles
    with pytest.raises(ValueError, match="not a repro-calibration/v1"):
        CalibrationReport.from_dict({"schema": "something/else"})


def test_calibration_scales_feed_back_into_estimates(cal_ctx):
    report, _ = cal_ctx
    point = make_workload("vecop", "chaining", n=64)
    raw = estimate_workload(point)
    fitted = estimate_workload(point, calibration=report)
    scale = report.families["vecop"].scale_cycles
    assert fitted.cycles == int(round(raw.cycles * scale))
    assert fitted.meta["calibration"]["scale_cycles"] == scale


# -- triage: only interest-region points ever hit a simulator -------------


def _triage_points():
    # Estimated cycle cost is strictly increasing in n, so the interest
    # region (top quartile by cycles) is exactly the largest points.
    return [make_workload("vecop", "chaining", n=n)
            for n in (32, 64, 96, 128, 160, 192, 224, 256)]


def test_triage_simulates_only_the_interest_region(tmp_path):
    points = _triage_points()
    session = Session(cache=str(tmp_path / "c"), workers=0)
    campaign = session.map(points, fidelity="triage")

    assert campaign.triage == {"points": 8, "estimated": 8,
                               "selected": 2}
    assert campaign.summary()["triage"] == campaign.triage
    assert len(campaign) == 8 and campaign.ok_count == 8

    simulated = [o for o in campaign if o.key is not None]
    estimated = [o for o in campaign if o.key is None]
    assert [o.point.n for o in simulated] == [224, 256]
    for outcome in estimated:
        assert outcome.result.meta["fidelity"] == "analytical"
        assert not outcome.cached
    for outcome in simulated:
        assert "fidelity" not in outcome.result.meta

    # The store proves it: exactly the interest-region points were
    # simulated (and cached); nothing else ever reached a backend.
    records = list(ResultCache(tmp_path / "c").records())
    assert len(records) == 2

    # A second triage pass replays the simulated points from cache.
    again = session.map(points, fidelity="triage")
    assert again.cached_count == 2


def test_triage_interest_dict_and_callable(tmp_path):
    points = _triage_points()
    session = Session(cache=str(tmp_path / "c"), workers=0)

    half = session.map(points, fidelity="triage",
                       interest={"metric": "cycles", "top": 0.5})
    assert half.triage["selected"] == 4

    target = estimate_workload(points[3]).cycles        # n=128
    banded = session.map(points, fidelity="triage",
                         interest={"metric": "cycles", "min": target,
                                   "max": target})
    simulated = [o.point.n for o in banded if o.key is not None]
    assert simulated == [128]

    picky = session.map(points, fidelity="triage",
                        interest=lambda p, est: p.n == 96)
    assert picky.triage["selected"] == 1

    with pytest.raises(ValueError, match="interest applies"):
        session.map(points, interest={"top": 0.5})
    with pytest.raises(ValueError, match="fidelity must be"):
        session.map(points, fidelity="roofline")


def test_triage_routes_invalid_points_to_the_simulator(tmp_path):
    """A point whose estimate raises (invalid shape) is re-run
    cycle-accurately so the campaign carries the authoritative error."""
    bad = make_workload("vecop", "chaining", n=30)   # not a multiple of 4
    good = make_workload("vecop", "chaining", n=64)
    session = Session(cache=str(tmp_path / "c"), workers=0)
    campaign = session.map([bad, good], fidelity="triage")
    by_n = {o.point.n: o for o in campaign}
    assert by_n[30].status == "error"
    assert "multiple of 4" in by_n[30].error
    assert by_n[64].ok
    assert campaign.triage == {"points": 2, "estimated": 1,
                               "selected": 2}


def test_analytical_fidelity_map_is_fast_and_cached(tmp_path):
    """An analytical campaign caches under analytical keys and replays
    from cache on the second pass -- and an auto campaign over the same
    points shares nothing with it."""
    points = _triage_points()
    session = Session(cache=str(tmp_path / "c"), engine="analytical",
                      workers=0)
    first = session.map(points)
    assert first.ok_count == 8 and first.cached_count == 0
    second = session.map(points)
    assert second.cached_count == 8
    for outcome in second:
        assert outcome.result.meta["fidelity"] == "analytical"
    # Different fidelity, different keys: nothing replays cross-tier.
    cycle = Session(cache=str(tmp_path / "c"), workers=0)
    assert {cycle.key(p) for p in points}.isdisjoint(
        {session.key(p) for p in points})
