"""Cycle-model validation against closed-form analytical expectations.

For simple steady-state kernels the cycle count can be derived by hand
from the microarchitectural rules; these tests pin the simulator to that
arithmetic, which is what makes the Fig. 3 shapes trustworthy.
"""

import pytest

from repro.eval.runner import run_build
from repro.kernels.layout import Grid3d
from repro.kernels.stencil import box3d1r
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant, build_vecop


def test_vecop_baseline_period_is_2_plus_latency():
    # Steady state of Fig. 1a: fadd, 3 RAW stalls, fmul -> 5 cycles per
    # element (with frep, the integer core adds nothing).
    n = 256
    result = run_build(build_vecop(n=n, variant=VecopVariant.BASELINE))
    period = result.region_cycles / n
    assert period == pytest.approx(5.0, abs=0.2)


def test_vecop_chaining_period_is_2():
    n = 256
    result = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING))
    period = result.region_cycles / n
    assert period == pytest.approx(2.0, abs=0.1)


def test_vecop_bne_loop_adds_int_overhead():
    # With a bne loop the integer core must issue addi+bne (+2-cycle
    # taken-branch penalty) per iteration; the FP queue drains meanwhile,
    # so every iteration costs ~4 extra queue-empty cycles over frep.
    n = 128
    frep = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                 loop_mode="frep"))
    bne = run_build(build_vecop(n=n, variant=VecopVariant.CHAINING,
                                loop_mode="bne"))
    iters = n // 4
    extra_per_iter = (bne.region_cycles - frep.region_cycles) / iters
    assert 2.0 <= extra_per_iter <= 6.0


def _issue_slots_per_block(variant: Variant, ntaps: int, unroll: int,
                           spills: int) -> int:
    """FP issue slots per inner block, from the DESIGN.md accounting."""
    compute = ntaps * unroll
    stores = 0 if variant.writeback_via_ssr else unroll
    loads = 0 if variant.coeffs_via_ssr or variant.coeffs_in_rf else spills
    return compute + stores + loads


@pytest.mark.parametrize("variant,spills", [
    (Variant.BASE, 0),
    (Variant.BASE_MM, 4),
    (Variant.CHAINING_PLUS, 0),
])
def test_stencil_block_slot_accounting(variant, spills):
    # Region cycles per block = FP slots + integer-loop overhead
    # (addi/bne + branch penalty, and the out-pointer bump for
    # explicit-store variants) + second-order stalls.  The analytical
    # slot count must explain the measurement to within ~10%.
    grid = Grid3d(nz=2, ny=4, nx=32)
    build = build_stencil(box3d1r(), grid, variant)
    result = run_build(build)
    blocks = build.meta["blocks"]
    slots = _issue_slots_per_block(variant, 27, 4, spills)
    int_overhead = 4 if variant.writeback_via_ssr else 5
    expected = slots + int_overhead
    measured = result.region_cycles / blocks
    assert measured == pytest.approx(expected, rel=0.10), (
        f"{variant.label}: measured {measured:.1f} cycles/block, "
        f"analytical {expected}"
    )


def test_stencil_compute_op_count_is_exact():
    grid = Grid3d(nz=2, ny=3, nx=16)
    for variant in (Variant.BASE, Variant.CHAINING):
        build = build_stencil(box3d1r(), grid, variant)
        result = run_build(build)
        # taps * points, exactly -- no op is ever lost or duplicated.
        assert result.meta["expected_compute_ops"] == 27 * grid.points


def test_speedup_follows_slot_ratio():
    # The Chaining+ vs Base speedup must track the issue-slot ratio
    # (112+int)/(108+int) within a couple of points.
    grid = Grid3d(nz=2, ny=4, nx=32)
    base = run_build(build_stencil(box3d1r(), grid, Variant.BASE))
    plus = run_build(build_stencil(box3d1r(), grid,
                                   Variant.CHAINING_PLUS))
    measured = base.region_cycles / plus.region_cycles
    analytical = (112 + 5) / (108 + 4)
    assert measured == pytest.approx(analytical, rel=0.04)
