"""Integer core execution semantics, end to end through the cluster."""

import pytest

from repro.core import Cluster

OUT = 0x4000


def run_and_read(body: str, out_words: int = 1, **symbols):
    symbols.setdefault("out", OUT)
    prog = f"{body}\n    ebreak\n"
    cluster = Cluster(prog, symbols=symbols)
    cluster.run()
    words = [cluster.mem.read_u32(OUT + 4 * i) for i in range(out_words)]
    return words if out_words > 1 else words[0], cluster


def store_result(reg="a0"):
    return f"""
    li t6, %out
    sw {reg}, 0(t6)
"""


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 5, 7, 12),
    ("sub", 5, 7, 0xFFFFFFFE),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("sll", 1, 5, 32),
    ("srl", 0x80000000, 4, 0x08000000),
    ("sra", 0x80000000, 4, 0xF8000000),
    ("slt", -1 & 0xFFFFFFFF, 1, 1),
    ("sltu", 0xFFFFFFFF, 1, 0),
    ("mul", 7, 6, 42),
    ("mulhu", 0xFFFFFFFF, 2, 1),
    ("div", -7 & 0xFFFFFFFF, 2, 0xFFFFFFFD),
    ("divu", 7, 2, 3),
    ("rem", -7 & 0xFFFFFFFF, 2, 0xFFFFFFFF),
    ("remu", 7, 4, 3),
])
def test_alu_ops(op, a, b, expected):
    value, _ = run_and_read(f"""
    li a1, {a}
    li a2, {b}
    {op} a0, a1, a2
{store_result()}""")
    assert value == expected


def test_div_by_zero_riscv_semantics():
    value, _ = run_and_read(f"""
    li a1, 7
    li a2, 0
    div a0, a1, a2
{store_result()}""")
    assert value == 0xFFFFFFFF


@pytest.mark.parametrize("op,a,imm,expected", [
    ("addi", 5, -3, 2),
    ("andi", 0xFF, 0x0F, 0x0F),
    ("ori", 0xF0, 0x0F, 0xFF),
    ("xori", 0xFF, 0x0F, 0xF0),
    ("slti", 3, 9, 1),
    ("sltiu", 3, 2, 0),
    ("slli", 3, 4, 48),
    ("srli", 0x100, 4, 0x10),
    ("srai", 0x80000000, 1, 0xC0000000),
])
def test_alu_imm_ops(op, a, imm, expected):
    value, _ = run_and_read(f"""
    li a1, {a}
    {op} a0, a1, {imm}
{store_result()}""")
    assert value == expected


def test_lui_auipc():
    value, _ = run_and_read(f"""
    lui a0, 0x12345
{store_result()}""")
    assert value == 0x12345000


def test_loads_and_stores_all_widths():
    values, cluster = run_and_read(f"""
    li t6, %out
    li a0, 0x11223344
    sw a0, 0(t6)
    lw a1, 0(t6)
    sw a1, 4(t6)
    lbu a2, 1(t6)
    sw a2, 8(t6)
    lhu a3, 2(t6)
    sw a3, 12(t6)
""", out_words=4)
    assert values == [0x11223344, 0x11223344, 0x33, 0x1122]


def test_signed_byte_and_half_loads():
    values, _ = run_and_read(f"""
    li t6, %out
    li a0, 0xFFFF8280
    sw a0, 16(t6)
    lb a1, 17(t6)
    sw a1, 0(t6)
    lh a2, 16(t6)
    sw a2, 4(t6)
""", out_words=2)
    assert values[0] == 0xFFFFFF82 & 0xFFFFFFFF or values[0] == 0x82
    # lb sign-extends 0x82 -> 0xFFFFFF82; lh sign-extends 0x8280.
    assert values == [0xFFFFFF82, 0xFFFF8280]


def test_branches_taken_and_not():
    value, _ = run_and_read(f"""
    li a0, 0
    li a1, 3
    li a2, 0
loop:
    addi a2, a2, 10
    addi a0, a0, 1
    blt a0, a1, loop
    mv a0, a2
{store_result()}""")
    assert value == 30


def test_bltu_unsigned_comparison():
    value, _ = run_and_read(f"""
    li a0, 1
    li a1, -1          # 0xFFFFFFFF unsigned
    li a2, 0
    bltu a0, a1, is_less
    j done
is_less:
    li a2, 1
done:
    mv a0, a2
{store_result()}""")
    assert value == 1


def test_jal_jalr_link_and_return():
    value, _ = run_and_read(f"""
    li a0, 0
    jal ra, sub
    addi a0, a0, 100
    j done
sub:
    addi a0, a0, 1
    ret
done:
{store_result()}""")
    assert value == 101


def test_mcycle_readable_and_monotonic():
    values, _ = run_and_read("""
    li t6, %out
    csrr a0, mcycle
    sw a0, 0(t6)
    csrr a1, mcycle
    sw a1, 4(t6)
""", out_words=2)
    assert values[1] > values[0]


def test_minstret_counts():
    value, _ = run_and_read(f"""
    nop
    nop
    csrr a0, minstret
{store_result()}""")
    assert value >= 2


def test_falling_off_program_raises():
    cluster = Cluster("nop\nnop")
    with pytest.raises(RuntimeError, match="ebreak"):
        cluster.run()


def test_sim_mark_snapshots(cfg):
    cluster = Cluster("""
    csrrwi x0, sim_mark, 1
    nop
    nop
    nop
    csrrwi x0, sim_mark, 2
    ebreak
""")
    cluster.run()
    assert cluster.perf.region_cycles(1, 2) == 4
