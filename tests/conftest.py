"""Shared fixtures for the test suite."""

import pytest

from repro.core.config import CoreConfig
from repro.kernels.layout import Grid3d


@pytest.fixture
def cfg() -> CoreConfig:
    """Default core configuration."""
    return CoreConfig()


@pytest.fixture
def tiny_grid() -> Grid3d:
    """Smallest practical stencil grid (fast integration tests)."""
    return Grid3d(nz=2, ny=3, nx=8)


@pytest.fixture
def small_grid() -> Grid3d:
    """A slightly larger grid for steady-state behaviour."""
    return Grid3d(nz=2, ny=4, nx=16)
