"""Cycle-accuracy tests of the hazard and latency model.

These pin down the timing semantics the paper's analysis relies on:
a RAW-dependent FP instruction issues ``latency + 1`` cycles after its
producer ("three wasted cycles" on the 3-stage Snitch FMA pipe), WAW
stalls on plain registers, chaining's elision of both, and the FIFO
backpressure bubble.
"""

import pytest

from repro.core import Cluster, CoreConfig
from repro.core.perf import StallReason
from repro.trace import TraceRecorder


def run_traced(body: str, cfg: CoreConfig | None = None,
               prelude: str = "") -> tuple[Cluster, TraceRecorder]:
    trace = TraceRecorder()
    prog = f"{prelude}\n{body}\n    ebreak\n"
    cluster = Cluster(prog, cfg=cfg, trace=trace)
    cluster.mem.write_f64(0x2000, 2.0)    # -> ft4 via the prelude
    cluster.mem.write_f64(0x2008, 0.5)    # -> ft5
    cluster.run()
    return cluster, trace


def fp_issue_cycles(trace: TraceRecorder, mnemonic: str) -> list[int]:
    return [e.cycle for e in trace.fp_events if e.text.startswith(mnemonic)]


LOAD_F0_F1 = """
    li a0, 0x2000
    fld ft4, 0(a0)
    fld ft5, 8(a0)
"""


def test_raw_dependency_costs_pipeline_latency():
    # Paper Fig. 1a: fmul stalls 3 cycles behind the fadd it depends on.
    cluster, trace = run_traced("""
    fadd.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft4
""", prelude=LOAD_F0_F1)
    fadd = fp_issue_cycles(trace, "fadd.d")[0]
    fmul = fp_issue_cycles(trace, "fmul.d")[0]
    assert fmul - fadd == 4      # latency 3 + 1 = 3 wasted issue slots
    assert cluster.perf.stalls[StallReason.RAW] >= 3


def test_raw_gap_scales_with_configured_latency():
    from repro.isa.instructions import InstrClass

    cfg = CoreConfig()
    cfg.fpu_latency = dict(cfg.fpu_latency)
    cfg.fpu_latency[InstrClass.FP_ADD] = 5
    cfg.fpu_pipe_depth = 5
    cluster, trace = run_traced("""
    fadd.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft4
""", cfg=cfg, prelude=LOAD_F0_F1)
    fadd = fp_issue_cycles(trace, "fadd.d")[0]
    fmul = fp_issue_cycles(trace, "fmul.d")[0]
    assert fmul - fadd == 6


def test_independent_ops_issue_back_to_back():
    cluster, trace = run_traced("""
    fadd.d ft3, ft4, ft5
    fadd.d ft6, ft4, ft5
    fadd.d ft7, ft4, ft5
""", prelude=LOAD_F0_F1)
    cycles = fp_issue_cycles(trace, "fadd.d")
    assert cycles[1] - cycles[0] == 1
    assert cycles[2] - cycles[1] == 1


def test_waw_stalls_on_plain_register():
    cluster, trace = run_traced("""
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft5, ft5
""", prelude=LOAD_F0_F1)
    cycles = fp_issue_cycles(trace, "fadd.d")
    assert cycles[1] - cycles[0] == 4    # WAW: wait for writeback
    assert cluster.perf.stalls[StallReason.WAW] == 3


def test_chaining_elides_waw():
    cluster, trace = run_traced("""
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft5, ft5
    fadd.d ft3, ft4, ft4
    fmul.d ft6, ft3, ft4
    fmul.d ft7, ft3, ft4
    fmul.d ft8, ft3, ft4
    csrrwi x0, chain_mask, 0
""", prelude=LOAD_F0_F1)
    adds = fp_issue_cycles(trace, "fadd.d")
    assert adds[1] - adds[0] == 1       # no WAW between chained writes
    assert adds[2] - adds[1] == 1
    assert cluster.perf.stalls[StallReason.WAW] == 0


def test_chaining_pop_order_is_fifo():
    cluster, trace = run_traced("""
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fsub.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft4
    fmul.d ft7, ft3, ft4
    csrrwi x0, chain_mask, 0
""", prelude=LOAD_F0_F1)
    # ft4=2.0, ft5=0.5: pushes 2.5 then 1.5, popped in order.
    assert cluster.fp.fpregs.values[6] == 2.5 * 2.0
    assert cluster.fp.fpregs.values[7] == 1.5 * 2.0


def test_chaining_double_read_pops_once():
    # One instruction naming the chaining register twice sees the same
    # value in both positions and consumes a single FIFO element.
    cluster, trace = run_traced("""
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft3
    csrrwi x0, chain_mask, 0
""", prelude=LOAD_F0_F1)
    assert cluster.fp.fpregs.values[6] == 2.5 * 2.5
    assert cluster.fp.chain.pops == 1


def test_chain_empty_pop_stalls_until_writeback():
    cluster, trace = run_traced("""
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft4
    csrrwi x0, chain_mask, 0
""", prelude=LOAD_F0_F1)
    fadd = fp_issue_cycles(trace, "fadd.d")[0]
    fmul = fp_issue_cycles(trace, "fmul.d")[0]
    assert fmul - fadd == 4
    assert cluster.perf.stalls[StallReason.CHAIN_EMPTY] == 3


# fa0..fa3 are f10..f13: contiguous and outside the accumulator range.
BALANCED_CHAIN = """
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fmul.d fa0, ft3, ft4
    fmul.d fa1, ft3, ft4
    fmul.d fa2, ft3, ft4
    fmul.d fa3, ft3, ft4
    csrrwi x0, chain_mask, 0
"""


def test_balanced_chain_fills_capacity_and_loses_nothing():
    # Four producers exactly fill pipe + architectural register; four
    # consumers drain them in order.  Nothing is overwritten.
    cluster, trace = run_traced(BALANCED_CHAIN, prelude=LOAD_F0_F1)
    values = [cluster.fp.fpregs.values[i] for i in range(10, 14)]
    assert values == [2.5 * 2.0] * 4
    adds = fp_issue_cycles(trace, "fadd.d")
    assert adds[3] - adds[0] == 3       # producers back to back


def test_conservative_mode_cannot_sustain_full_unroll():
    # Without same-cycle pop+push, a producer group of depth+1 deadlocks:
    # the head writeback waits for a pop that only the (pipe-blocked)
    # consumer could perform.  The concurrent FIFO is therefore a
    # *requirement* of the paper's unroll-by-(depth+1) schedule, not an
    # optimization.
    from repro.core.cluster import SimulationDeadlock

    cfg = CoreConfig(chain_concurrent_push_pop=False)
    cluster = Cluster(LOAD_F0_F1 + BALANCED_CHAIN + "\n    ebreak\n",
                      cfg=cfg)
    cluster.mem.write_f64(0x2000, 2.0)
    cluster.mem.write_f64(0x2008, 0.5)
    with pytest.raises(SimulationDeadlock):
        cluster.run()


def test_conservative_mode_works_at_reduced_unroll():
    # With only `depth` producers in flight the conservative FIFO works,
    # at the cost of backpressure bubbles on wrap-around.
    cfg = CoreConfig(chain_concurrent_push_pop=False)
    cluster, trace = run_traced("""
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fmul.d fa0, ft3, ft4
    fmul.d fa1, ft3, ft4
    fmul.d fa2, ft3, ft4
    csrrwi x0, chain_mask, 0
""", cfg=cfg, prelude=LOAD_F0_F1)
    values = [cluster.fp.fpregs.values[i] for i in range(10, 13)]
    assert values == [2.5 * 2.0] * 3
    assert cluster.fp.chain.backpressure_events > 0


def test_oversubscribed_producers_deadlock_not_overwrite():
    # Five outstanding pushes exceed the logical FIFO (pipe depth 3 + 1
    # register).  The backpressure mechanism refuses the overflowing
    # writeback; with in-order issue the program cannot make progress --
    # the simulator reports the deadlock instead of losing a value.
    from repro.core.cluster import SimulationDeadlock

    prog = LOAD_F0_F1 + """
    csrrwi x0, chain_mask, 8
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fadd.d ft3, ft4, ft5
    fmul.d ft6, ft3, ft4
    ebreak
"""
    cluster = Cluster(prog)
    with pytest.raises(SimulationDeadlock):
        cluster.run()
    assert cluster.fp.chain.backpressure_events > 0


def test_store_buffer_not_modelled_fp_stores_pipeline():
    # Consecutive fsd issue once per cycle through the FP LSU.
    cluster, trace = run_traced("""
    li a1, 0x3000
    fsd ft4, 0(a1)
    fsd ft5, 8(a1)
    fsd ft4, 16(a1)
""", prelude=LOAD_F0_F1)
    stores = fp_issue_cycles(trace, "fsd")
    assert stores[1] - stores[0] <= 2
    assert stores[2] - stores[1] <= 2


def test_branch_penalty():
    cfg = CoreConfig(branch_penalty=3)
    cluster_slow = Cluster("""
    li a0, 0
    li a1, 8
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ebreak
""", cfg=cfg)
    cluster_slow.run()
    cfg_fast = CoreConfig(branch_penalty=0)
    cluster_fast = Cluster("""
    li a0, 0
    li a1, 8
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ebreak
""", cfg=cfg_fast)
    cluster_fast.run()
    # 7 taken branches, 3 extra cycles each.
    assert cluster_slow.cycle - cluster_fast.cycle == 21


def test_load_use_stall():
    cluster = Cluster("""
    li a0, 0x2000
    lw a1, 0(a0)
    add a2, a1, a1     # immediate use: must stall
    ebreak
""")
    cluster.run()
    assert cluster.perf.value("int_hazard_stalls") >= 1


def test_dispatch_stall_on_full_queue():
    cfg = CoreConfig(fp_queue_depth=2)
    body = "\n".join(["    fadd.d ft3, ft4, ft5",
                      "    fadd.d ft6, ft4, ft5"] * 6)
    cluster, _ = run_traced(body, cfg=cfg, prelude=LOAD_F0_F1)
    assert cluster.perf.value("int_dispatch_stalls") > 0
