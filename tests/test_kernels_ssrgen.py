"""SSR assembly-emission helper tests."""

import pytest

from repro.core import Cluster
from repro.kernels.ssrgen import SsrPatternAsm
from repro.ssr.config import CfgField, cfg_addr


def test_ctrl_value_encoding():
    read_1d = SsrPatternAsm(ssr=0, base=0, bounds=[4], strides=[8])
    assert read_1d.ctrl_value() == 0
    write_1d = SsrPatternAsm(ssr=2, base=0, bounds=[4], strides=[8],
                             write=True)
    assert write_1d.ctrl_value() == 1
    ind_3d = SsrPatternAsm(ssr=0, base=0, bounds=[2, 2, 2],
                           strides=[8, 16, 32], indirect=True)
    assert ind_3d.ctrl_value() == 2 | (2 << 2)


def test_emit_setup_programs_every_dim():
    pattern = SsrPatternAsm(ssr=1, base=0x100, bounds=[3, 5],
                            strides=[8, 40], repeat=2)
    text = pattern.emit_setup()
    assert f"li t1, {cfg_addr(1, CfgField.BOUND0)}" in text
    assert f"li t1, {cfg_addr(1, CfgField.BOUND0 + 1)}" in text
    assert f"li t1, {cfg_addr(1, CfgField.REPEAT)}" in text
    assert text.count("scfgw") == 5   # 2 bounds + 2 strides + repeat


def test_emit_arm_with_register_base():
    pattern = SsrPatternAsm(ssr=0, base=0x100, bounds=[4], strides=[8])
    text = pattern.emit_arm(base_reg="s0")
    assert "scfgw s0, t1" in text
    assert "li t0, 0" in text          # CTRL commit


def test_mismatched_bounds_strides_rejected():
    pattern = SsrPatternAsm(ssr=0, base=0, bounds=[2, 3], strides=[8])
    with pytest.raises(ValueError, match="equal length"):
        pattern.emit_setup()


def test_too_many_dims_rejected():
    pattern = SsrPatternAsm(ssr=0, base=0, bounds=[1] * 7,
                            strides=[0] * 7)
    with pytest.raises(ValueError, match="MAX_DIMS"):
        pattern.emit_setup()


def test_emitted_asm_assembles_and_runs():
    import numpy as np

    # repeat=1: each element serves both operand reads of the fadd.
    pattern = SsrPatternAsm(ssr=0, base=0x2000, bounds=[4], strides=[8],
                            repeat=1)
    out = SsrPatternAsm(ssr=2, base=0x3000, bounds=[4], strides=[8],
                        write=True)
    prog = "\n".join([
        pattern.emit(), out.emit(),
        "    csrrsi x0, ssr_enable, 1",
        "    li t3, 3",
        "    frep.o t3, 0",
        "    fadd.d ft2, ft0, ft0",
        "    csrrci x0, ssr_enable, 1",
        "    ebreak",
    ])
    cluster = Cluster(prog)
    cluster.load_f64(0x2000, np.array([1.0, 2.0, 3.0, 4.0]))
    cluster.run()
    assert list(cluster.read_f64(0x3000, (4,))) == [2.0, 4.0, 6.0, 8.0]


def test_negative_strides_emitted_verbatim():
    pattern = SsrPatternAsm(ssr=0, base=0x100, bounds=[4], strides=[-8])
    assert "li t0, -8" in pattern.emit_setup()


def test_indirect_fields_emitted():
    pattern = SsrPatternAsm(ssr=1, base=0x100, bounds=[8], strides=[0],
                            indirect=True, idx_base=0x500, idx_size=2,
                            idx_shift=3)
    text = pattern.emit_setup()
    assert f"li t1, {cfg_addr(1, CfgField.IDX_BASE)}" in text
    assert f"li t1, {cfg_addr(1, CfgField.IDX_CFG)}" in text
    # idx_cfg packs log2(size) | shift<<4.
    assert "li t0, 49" in text       # 1 | (3 << 4)
