"""Property-based assembler <-> disassembler round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import format_instr

from tests.test_prop_encoding import instructions


@given(st.lists(instructions(), min_size=1, max_size=12))
@settings(max_examples=150)
def test_disassemble_reassemble_program(instrs):
    text = "\n".join(format_instr(i) for i in instrs)
    prog = assemble(text)
    assert len(prog) == len(instrs)
    for orig, back in zip(instrs, prog.instrs):
        assert format_instr(back) == format_instr(orig)


@given(st.lists(instructions(), min_size=1, max_size=8))
@settings(max_examples=100)
def test_words_stable_through_text(instrs):
    from repro.isa.encoding import encode

    text = "\n".join(format_instr(i) for i in instrs)
    words_direct = [encode(i) for i in instrs]
    words_via_text = assemble(text).encode_words()
    assert words_direct == words_via_text
