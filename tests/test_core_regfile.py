"""Register file tests: scoreboard, chaining integration, int ready bits."""

import pytest

from repro.core.chaining import ChainController
from repro.core.regfile import FpRegFile, IntRegFile


def make_fp():
    chain = ChainController()
    return FpRegFile(chain), chain


def test_int_x0_hardwired():
    regs = IntRegFile()
    regs.write(0, 123)
    assert regs.read(0) == 0
    assert regs.ready(0, 0)


def test_int_values_wrap_32bit():
    regs = IntRegFile()
    regs.write(5, 1 << 33 | 7)
    assert regs.read(5) == 7
    regs.write(6, -1)
    assert regs.read(6) == 0xFFFFFFFF
    assert regs.read_signed(6) == -1


def test_int_ready_cycles():
    regs = IntRegFile()
    regs.write(4, 9, ready_cycle=10)
    assert not regs.ready(4, 9)
    assert regs.ready(4, 10)
    regs.set_ready(4, 20)
    assert not regs.ready(4, 15)


def test_fp_plain_scoreboard():
    regs, _ = make_fp()
    assert regs.can_read(4) and regs.can_write(4)
    regs.allocate(4)
    assert not regs.can_read(4)
    assert not regs.can_write(4)    # WAW blocked
    assert regs.try_writeback(4, 2.5)
    assert regs.can_read(4)
    assert regs.read(4) == 2.5


def test_fp_chaining_read_pops():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    assert not regs.can_read(3)     # FIFO empty
    assert regs.try_writeback(3, 1.25)
    assert regs.can_read(3)
    assert regs.read(3) == 1.25
    assert not regs.can_read(3)     # popped


def test_fp_chaining_write_never_waw_blocked_at_issue():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    regs.allocate(3)                # no-op for chaining regs
    assert regs.can_write(3)


def test_fp_chaining_backpressure_at_writeback():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    chain.begin_cycle()
    assert regs.try_writeback(3, 1.0)
    assert not regs.try_writeback(3, 2.0)   # refused: valid still set
    assert chain.backpressure_events == 1
    assert regs.read(3) == 1.0              # original value preserved


def test_fp_pop_empty_chaining_raises():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    with pytest.raises(RuntimeError, match="empty chaining"):
        regs.read(3)


def test_fp_fifo_order_through_reg():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    chain.begin_cycle()
    assert regs.try_writeback(3, 1.0)
    assert regs.read(3) == 1.0
    assert regs.try_writeback(3, 2.0)
    assert regs.read(3) == 2.0


def test_poke_bypasses_semantics():
    regs, chain = make_fp()
    chain.write_mask(1 << 3)
    regs.poke(3, 7.0)
    assert regs.values[3] == 7.0
    assert not chain.can_pop(3)   # poke does not set valid
