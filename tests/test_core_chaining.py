"""Unit tests of the chaining controller (the paper's section II rules)."""

from repro.core.chaining import ChainController


def test_mask_write_and_read():
    chain = ChainController()
    chain.write_mask(0b1000)
    assert chain.read_mask() == 0b1000
    assert chain.enabled(3)
    assert not chain.enabled(4)


def test_mask_truncated_to_register_count():
    chain = ChainController(num_regs=32)
    chain.write_mask(1 << 40 | 1 << 3)
    assert chain.read_mask() == 1 << 3


def test_newly_enabled_register_starts_empty():
    chain = ChainController()
    chain.write_mask(1 << 3)
    chain.note_push(3)
    assert chain.can_pop(3)
    # Re-enabling (already set) must not clear the FIFO...
    chain.write_mask(1 << 3)
    assert chain.can_pop(3)
    # ...but disabling and enabling again starts empty.
    chain.write_mask(0)
    chain.write_mask(1 << 3)
    assert not chain.can_pop(3)


def test_pop_clears_valid_push_sets_it():
    chain = ChainController()
    chain.write_mask(1 << 5)
    assert not chain.can_pop(5)
    chain.note_push(5)
    assert chain.can_pop(5)
    chain.note_pop(5)
    assert not chain.can_pop(5)


def test_push_refused_while_valid():
    chain = ChainController()
    chain.write_mask(1 << 3)
    chain.note_push(3)
    chain.begin_cycle()
    assert not chain.can_push(3)


def test_concurrent_pop_then_push_same_cycle():
    chain = ChainController(concurrent_push_pop=True)
    chain.write_mask(1 << 3)
    chain.note_push(3)
    chain.begin_cycle()
    chain.note_pop(3)
    assert chain.can_push(3)


def test_conservative_mode_refuses_same_cycle_pop_push():
    # Conservative: acceptance is judged on the top-of-cycle valid bit,
    # so a pop earlier in the same cycle does not unlock the push.
    chain = ChainController(concurrent_push_pop=False)
    chain.write_mask(1 << 3)
    chain.note_push(3)
    chain.begin_cycle()
    chain.note_pop(3)
    assert not chain.can_push(3)
    # Next cycle the register was empty at the start: push accepted.
    chain.begin_cycle()
    assert chain.can_push(3)


def test_status_packs_valid_bits():
    chain = ChainController()
    chain.write_mask((1 << 3) | (1 << 7))
    chain.note_push(3)
    chain.note_push(7)
    assert chain.status() == (1 << 3) | (1 << 7)
    chain.note_pop(3)
    assert chain.status() == 1 << 7


def test_statistics():
    chain = ChainController()
    chain.write_mask(1 << 3)
    chain.note_push(3)
    chain.note_pop(3)
    chain.note_backpressure()
    assert chain.pushes == 1
    assert chain.pops == 1
    assert chain.backpressure_events == 1


def test_begin_cycle_resets_pop_tracking():
    chain = ChainController(concurrent_push_pop=True)
    chain.write_mask(1 << 3)
    chain.note_push(3)
    chain.begin_cycle()
    chain.note_pop(3)
    chain.note_push(3)
    assert chain.can_push(3)   # popped this cycle
    chain.begin_cycle()
    assert not chain.can_push(3)   # new cycle: valid and not popped
