"""Stencil code generation: correctness of every variant, index patterns,
and the structural properties the paper's analysis relies on."""

import numpy as np
import pytest

from repro.core import Cluster, CoreConfig
from repro.eval.runner import run_build
from repro.kernels.layout import Grid3d
from repro.kernels.stencil import box3d1r, j2d5pt, j3d27pt, star3d1r
from repro.kernels.stencil_codegen import _index_pattern, build_stencil
from repro.kernels.variants import VARIANT_ORDER, Variant


@pytest.mark.parametrize("variant", VARIANT_ORDER)
def test_box3d1r_all_variants_bit_exact(variant, tiny_grid):
    build = build_stencil(box3d1r(), tiny_grid, variant)
    result = run_build(build)
    assert result.correct


@pytest.mark.parametrize("variant", [Variant.BASE, Variant.CHAINING_PLUS])
def test_j3d27pt_variants_bit_exact(variant, tiny_grid):
    build = build_stencil(j3d27pt(), tiny_grid, variant)
    assert run_build(build).correct


@pytest.mark.parametrize("variant", [Variant.BASE_MM, Variant.CHAINING])
def test_star3d1r_irregular_taps(variant, tiny_grid):
    # Non-cube taps exercise truly irregular indirection.
    build = build_stencil(star3d1r(), tiny_grid, variant)
    assert run_build(build).correct


def test_2d_stencil(tiny_grid):
    grid = Grid3d(nz=1, ny=4, nx=16)
    build = build_stencil(j2d5pt(), grid, Variant.CHAINING_PLUS)
    assert run_build(build).correct


def test_index_pattern_matches_affine_walk():
    grid = Grid3d(nz=2, ny=3, nx=8)
    spec = box3d1r()
    idx = _index_pattern(spec, grid, unroll=4, nbx=2)
    _, py, px = grid.shape_padded
    pos = 0
    for b in range(2):
        for dz, dy, dx in spec.taps:
            for p in range(4):
                x = b * 4 + p
                expected = ((dz + 1) * py + (dy + 1)) * px + (x + dx + 1)
                assert idx[pos] == expected
                pos += 1


def test_index_pattern_nonnegative():
    for spec in (box3d1r(), star3d1r()):
        idx = _index_pattern(spec, Grid3d(nz=2, ny=3, nx=8), 4, 2)
        assert (np.asarray(idx, dtype=np.int64) >= 0).all()


def test_nx_must_divide_unroll(tiny_grid):
    with pytest.raises(ValueError, match="multiple of unroll"):
        build_stencil(box3d1r(), Grid3d(nz=2, ny=3, nx=10), Variant.BASE)


def test_grid_radius_checked():
    spec = box3d1r(radius=2)
    with pytest.raises(ValueError, match="radius"):
        build_stencil(spec, Grid3d(nz=4, ny=4, nx=8, radius=1),
                      Variant.BASE)


def test_variant_structure_in_asm(tiny_grid):
    base = build_stencil(box3d1r(), tiny_grid, Variant.BASE)
    assert "fsd" in base.asm                  # explicit stores
    assert "chain_mask" not in base.asm
    assert base.asm.count("fld") == 0         # no coefficient loads

    base_mm = build_stencil(box3d1r(), tiny_grid, Variant.BASE_MM)
    assert base_mm.asm.count("fld") >= 23     # resident preload + spills

    chaining = build_stencil(box3d1r(), tiny_grid, Variant.CHAINING)
    assert "csrrwi x0, chain_mask, 8" in chaining.asm
    assert "fsd ft3" in chaining.asm          # drain pops the chain reg

    plus = build_stencil(box3d1r(), tiny_grid, Variant.CHAINING_PLUS)
    assert "fsd" not in plus.asm              # writeback via stream
    assert "fmadd.d ft1" in plus.asm          # last tap targets SSR1


def test_expected_op_counts(tiny_grid):
    build = build_stencil(box3d1r(), tiny_grid, Variant.CHAINING_PLUS)
    result = run_build(build)
    compute = result.meta["expected_compute_ops"]
    assert result.energy.breakdown["fpu"] > 0
    # The run's compute-op counter equals taps * points exactly.
    assert compute == 27 * tiny_grid.points


def test_spill_loads_counted(tiny_grid):
    build = build_stencil(box3d1r(), tiny_grid, Variant.BASE_MM)
    blocks = build.meta["blocks"]
    assert build.meta["expected_spill_loads"] == 4 * blocks


def test_stores_match_points(tiny_grid):
    for variant, expect_stores in [
        (Variant.BASE, tiny_grid.points),
        (Variant.CHAINING_PLUS, 0),
    ]:
        build = build_stencil(box3d1r(), tiny_grid, variant)
        assert build.meta["expected_stores"] == expect_stores


def test_measured_counters_match_expectations(tiny_grid):
    build = build_stencil(box3d1r(), tiny_grid, Variant.BASE)
    cluster = Cluster(build.asm, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run()
    perf = cluster.perf
    assert perf.value("fpu_compute_ops") == build.meta[
        "expected_compute_ops"]
    assert perf.value("fp_stores") == build.meta["expected_stores"]
    # Coefficient stream: each coefficient fetched once per block thanks
    # to the repeat feature.
    stats = cluster.tcdm.stats()
    assert stats["ssr1_reads"] == 27 * build.meta["blocks"]
    # Input stream: one data element + one index per tap and point.
    assert stats["ssr0_reads"] == 27 * tiny_grid.points
    assert stats["ssr0_idx_reads"] == 27 * tiny_grid.points


def test_chaining_saves_coefficient_traffic(tiny_grid):
    def tcdm_reads(variant):
        build = build_stencil(box3d1r(), tiny_grid, variant)
        cluster = Cluster(build.asm, symbols=build.symbols)
        build.load_into(cluster)
        cluster.run()
        return cluster.tcdm.stats()["ssr1_reads"]

    assert tcdm_reads(Variant.BASE) == 27 * tiny_grid.points // 4
    assert tcdm_reads(Variant.CHAINING) == 0


def test_different_unroll_with_matching_pipe(tiny_grid):
    cfg = CoreConfig(fpu_pipe_depth=1)
    grid = Grid3d(nz=2, ny=3, nx=8)
    build = build_stencil(box3d1r(), grid, Variant.CHAINING, unroll=2,
                          cfg=cfg)
    assert run_build(build, cfg=cfg).correct


def test_register_plan_recorded(tiny_grid):
    build = build_stencil(box3d1r(), tiny_grid, Variant.CHAINING)
    assert "27/27" in build.meta["register_plan"]
