"""SSR integration through the full cluster: the Fig. 1 vector operation
and stream-register corner cases."""

import numpy as np
import pytest

from repro.core import Cluster
from repro.core.perf import StallReason
from repro.kernels.ssrgen import SsrPatternAsm

A, B, C, D = 0x8000, 0x9000, 0xA000, 0xB000


def vecop_streams(n):
    return "\n".join(
        SsrPatternAsm(ssr=i, base=base, bounds=[n], strides=[8],
                      write=(i == 2)).emit()
        for i, base in enumerate((C, D, A))
    )


def make_vecop(n=32, body=None, extra_setup=""):
    body = body or """
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
"""
    prog = f"""
    li a0, {B}
    fld fa0, 0(a0)
{vecop_streams(n)}
{extra_setup}
    csrrsi x0, ssr_enable, 1
    li t3, 0
    li t4, {n}
loop:
{body}
    addi t3, t3, 1
    bne t3, t4, loop
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(prog)
    rng = np.random.default_rng(3)
    c, d = rng.random(n), rng.random(n)
    cluster.load_f64(C, c)
    cluster.load_f64(D, d)
    cluster.mem.write_f64(B, 2.5)
    return cluster, c, d


def test_vecop_baseline_matches_golden():
    n = 32
    cluster, c, d = make_vecop(n)
    cluster.run()
    out = cluster.read_f64(A, (n,))
    assert np.array_equal(out, (c + d) * 2.5)


def test_vecop_ssr_read_counts():
    n = 16
    cluster, _, _ = make_vecop(n)
    cluster.run()
    stats = cluster.tcdm.stats()
    assert stats["ssr0_reads"] == n
    assert stats["ssr1_reads"] == n
    assert stats["ssr2_writes"] == n


def test_chaining_vecop_matches_golden():
    n = 32
    body = "\n".join(["    fadd.d ft3, ft0, ft1"] * 4
                     + ["    fmul.d ft2, ft3, fa0"] * 4)
    prog = f"""
    li a0, {B}
    fld fa0, 0(a0)
{vecop_streams(n)}
    csrrwi x0, chain_mask, 8
    csrrsi x0, ssr_enable, 1
    li t3, 0
    li t4, {n // 4}
loop:
{body}
    addi t3, t3, 1
    bne t3, t4, loop
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(prog)
    rng = np.random.default_rng(3)
    c, d = rng.random(n), rng.random(n)
    cluster.load_f64(C, c)
    cluster.load_f64(D, d)
    cluster.mem.write_f64(B, 2.5)
    cluster.run()
    assert np.array_equal(cluster.read_f64(A, (n,)), (c + d) * 2.5)


def test_ssr_empty_stalls_are_counted():
    # An instruction consuming two elements per cycle from one stream
    # outruns the 1 element/cycle data mover: SSR_EMPTY stalls pile up.
    n = 8
    prog = f"""
{SsrPatternAsm(ssr=0, base=C, bounds=[2 * n], strides=[8]).emit()}
{SsrPatternAsm(ssr=2, base=A, bounds=[n], strides=[8], write=True).emit()}
    csrrsi x0, ssr_enable, 1
    li t3, {n - 1}
    frep.o t3, 0
    fmul.d ft2, ft0, ft0
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(prog)
    cluster.load_f64(C, np.ones(2 * n))
    cluster.run()
    assert cluster.perf.stalls.get(StallReason.SSR_EMPTY, 0) >= n // 2


def test_double_read_of_one_stream_pops_twice():
    n = 8
    prog = f"""
{SsrPatternAsm(ssr=0, base=C, bounds=[2 * n], strides=[8]).emit()}
{SsrPatternAsm(ssr=2, base=A, bounds=[n], strides=[8], write=True).emit()}
    csrrsi x0, ssr_enable, 1
    li t3, 0
    li t4, {n}
loop:
    fmul.d ft2, ft0, ft0
    addi t3, t3, 1
    bne t3, t4, loop
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(prog)
    data = np.arange(2 * n, dtype=np.float64) + 1
    cluster.load_f64(C, data)
    cluster.run()
    out = cluster.read_f64(A, (n,))
    expected = data[0::2] * data[1::2]
    assert np.array_equal(out, expected)


def test_write_stream_underproduction_detected():
    from repro.core.cluster import SimulationDeadlock

    prog = f"""
{SsrPatternAsm(ssr=2, base=A, bounds=[4], strides=[8], write=True).emit()}
    csrrsi x0, ssr_enable, 1
    li a0, {B}
    fld fa0, 0(a0)
    fmul.d ft2, fa0, fa0
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(prog)
    cluster.mem.write_f64(B, 1.0)
    with pytest.raises(SimulationDeadlock):
        cluster.run()


def test_fld_into_stream_register_rejected():
    prog = f"""
{SsrPatternAsm(ssr=0, base=C, bounds=[1], strides=[8]).emit()}
    csrrsi x0, ssr_enable, 1
    li a0, {C}
    fld ft0, 0(a0)
    ebreak
"""
    cluster = Cluster(prog)
    with pytest.raises(RuntimeError, match="stream register"):
        cluster.run()


def test_ssr_disabled_registers_behave_plainly():
    # Without ssr_enable, ft0-ft2 are ordinary registers.
    prog = f"""
    li a0, {C}
    fld ft0, 0(a0)
    fadd.d ft1, ft0, ft0
    fsd ft1, 8(a0)
    ebreak
"""
    cluster = Cluster(prog)
    cluster.mem.write_f64(C, 3.0)
    cluster.run()
    assert cluster.mem.read_f64(C + 8) == 6.0


def test_scfgr_reads_back_configuration():
    prog = f"""
    li t0, 1234
    li t1, 14        # ssr0 BASE field
    scfgw t0, t1
    scfgr a0, t1
    li a1, {A}
    sw a0, 0(a1)
    ebreak
"""
    cluster = Cluster(prog)
    cluster.run()
    assert cluster.mem.read_u32(A) == 1234


def test_stream_longer_than_fifo_flows():
    n = 64
    cluster, c, d = make_vecop(n)
    cluster.run()
    assert np.array_equal(cluster.read_f64(A, (n,)), (c + d) * 2.5)
