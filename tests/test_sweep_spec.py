"""Sweep spec expansion, canonicalization and (de)serialization."""

import json

import pytest

from repro.kernels.layout import Grid3d
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant
from repro.sweep.spec import Point, SweepSpec, make_point


def test_default_spec_is_fig3():
    points = SweepSpec().points()
    assert len(points) == 10  # 2 kernels x 5 variants
    assert points[0].kernel == "box3d1r"
    assert [p.variant for p in points[:5]] == \
        [v.label for v in (Variant.BASE_MM, Variant.BASE_M, Variant.BASE,
                           Variant.CHAINING, Variant.CHAINING_PLUS)]


def test_cartesian_counts():
    spec = SweepSpec(kernels=("box3d1r",), variants=("Base", "Chaining+"),
                     grids=((2, 3, 8), (2, 4, 16)),
                     overrides=(None, {"tcdm_banks": 16}))
    points = spec.points()
    assert len(points) == 2 * 2 * 2
    assert len(set(points)) == len(points)  # hashable + unique


def test_mixed_kinds_filter_variants():
    spec = SweepSpec(kernels=("vecop", "box3d1r"),
                     variants=("unrolled", "Chaining+"),
                     ns=(32,), grids=((2, 3, 8),))
    points = spec.points()
    kinds = {(p.kernel, p.variant) for p in points}
    assert kinds == {("vecop", "unrolled"), ("box3d1r", "Chaining+")}
    # vecop points carry n but no grid; stencil points the reverse.
    for p in points:
        assert (p.n is None) == (p.kernel != "vecop")
        assert (p.grid is None) == (p.kernel == "vecop")


def test_unknown_names_rejected():
    with pytest.raises(ValueError, match="unknown kernel"):
        make_point("nope", "Base")
    with pytest.raises(ValueError, match="unknown variant"):
        make_point("box3d1r", "Turbo")
    with pytest.raises(ValueError, match="unknown config override"):
        make_point("box3d1r", "Base", overrides={"warp_drive": 9})
    with pytest.raises(ValueError, match="unknown spec keys"):
        SweepSpec.from_dict({"kernles": ["box3d1r"]})


def test_inapplicable_axes_rejected():
    # They would mint distinct cache keys for identical simulations.
    with pytest.raises(ValueError, match="not grid/unroll"):
        make_point("vecop", "baseline", grid=(2, 3, 8))
    with pytest.raises(ValueError, match="not grid/unroll"):
        make_point("vecop", "baseline", unroll=2)
    with pytest.raises(ValueError, match="not n/loop_mode"):
        make_point("box3d1r", "Base", n=64)


def test_variant_spellings_normalize():
    assert make_point("box3d1r", "chaining+").variant == "Chaining+"
    assert make_point("box3d1r", Variant.BASE_MM).variant == "Base--"
    assert make_point("vecop", VecopVariant.UNROLLED).variant == "unrolled"
    assert make_point("vecop", "Baseline").variant == "baseline"


def test_ambiguous_chaining_resolves_per_kind():
    # "chaining" names a variant in BOTH kinds; each kernel gets its own.
    assert make_point("box3d1r", "chaining").variant == "Chaining"
    assert make_point("vecop", "chaining").variant == "chaining"
    spec = SweepSpec(kernels=("box3d1r", "vecop"),
                     variants=("chaining", "base"),
                     ns=(16,), grids=((2, 3, 8),))
    kinds = {(p.kernel, p.variant) for p in spec.points()}
    assert kinds == {("box3d1r", "Chaining"), ("box3d1r", "Base"),
                     ("vecop", "chaining")}
    # An enum stays pinned to its own kind even for vecop kernels.
    with pytest.raises(ValueError, match="unknown variant"):
        make_point("vecop", Variant.CHAINING)


def test_canonical_roundtrip_and_override_order():
    a = make_point("box3d1r", "Base", grid=Grid3d(nz=2, ny=3, nx=8),
                   overrides={"tcdm_banks": 16, "ssr_fifo_depth": 8})
    b = make_point("box3d1r", "Base", grid=(2, 3, 8),
                   overrides={"ssr_fifo_depth": 8, "tcdm_banks": 16})
    assert a == b  # overrides sorted, grids normalized
    assert Point.from_canonical(a.canonical()) == a
    assert json.dumps(a.canonical(), sort_keys=True) == \
        json.dumps(b.canonical(), sort_keys=True)


def test_grid3d_reconstruction_keeps_radius():
    p = make_point("box3d1r", "Base", grid=Grid3d(nz=2, ny=3, nx=8,
                                                  radius=2))
    assert p.grid == (2, 3, 8, 2)
    assert p.grid3d() == Grid3d(nz=2, ny=3, nx=8, radius=2)


def test_spec_dict_roundtrip():
    spec = SweepSpec(name="x", kernels=("j2d5pt",), variants=("Base-",),
                     grids=((1, 4, 16), None), unrolls=(2, 4),
                     overrides=({"tcdm_banks": 8},))
    again = SweepSpec.from_dict(spec.to_dict())
    assert again.points() == spec.points()


def test_spec_null_axes_mean_defaults():
    # JSON null on any axis is a natural "use the default" spelling.
    spec = SweepSpec.from_dict({
        "kernels": ["box3d1r"], "variants": None, "grids": None,
        "ns": None, "unrolls": None, "overrides": None, "meta": None,
    })
    assert len(spec.points()) == 5  # all stencil variants, default grid


def test_spec_from_files(tmp_path):
    data = {"name": "file-spec", "kernels": ["vecop"],
            "variants": ["baseline", "chaining"], "ns": [32, 64]}
    jpath = tmp_path / "spec.json"
    jpath.write_text(json.dumps(data))
    assert len(SweepSpec.from_file(str(jpath)).points()) == 4

    tpath = tmp_path / "spec.toml"
    tpath.write_text(
        'name = "file-spec"\nkernels = ["vecop"]\n'
        'variants = ["baseline", "chaining"]\nns = [32, 64]\n')
    assert SweepSpec.from_file(str(tpath)).points() == \
        SweepSpec.from_file(str(jpath)).points()


def test_labels_are_informative():
    p = make_point("box3d1r", "Chaining+", grid=(2, 3, 8), unroll=4,
                   overrides={"tcdm_banks": 16})
    assert "box3d1r/Chaining+" in p.label
    assert "2x3x8" in p.label
    assert "tcdm_banks=16" in p.label
