"""Differential tests: the vectorized FREP/SSR fast path vs. the scalar
reference model.

Every test runs the same program under ``engine="scalar"`` and
``engine="fast"`` and requires *bit-identical* end state: output memory,
FP register file, cycle counts, every perf counter and stall bucket,
chaining statistics, TCDM traffic, SSR activity and region marks.  Where
the fast path must refuse (non-SSR loads in the body, ``frep.i``,
register staggering, cross-iteration carries, software ``bne`` loops) the
tests additionally assert that it did refuse -- falling back is part of
the contract.
"""

import numpy as np
import pytest

from repro.core import Cluster, CoreConfig
from repro.kernels.ssrgen import SsrPatternAsm
from repro.kernels.vecop import VecopVariant, build_vecop

A, B, C, D = 0x10000, 0x20000, 0x30000, 0x50000


def digest(cluster) -> dict:
    """Everything architecturally or statistically visible after a run."""
    perf = cluster.perf
    return {
        "cycles": cluster.cycle,
        "perf": perf.summary(),
        "marks": {k: (v.cycle, v.counters) for k, v in perf.marks.items()},
        "tcdm": cluster.tcdm.stats(),
        "tcdm_busy": cluster.tcdm.busy_bank_cycles,
        "fpregs": [list(fp.fpregs.values) for fp in cluster.fps],
        "chain": [(fp.chain.pushes, fp.chain.pops,
                   fp.chain.backpressure_events, fp.chain.status())
                  for fp in cluster.fps],
        "streams": [[(s.active_cycles, s.elements_moved)
                     for s in fp.streamers] for fp in cluster.fps],
        "replayed": [fp.sequencer.replayed_instrs for fp in cluster.fps],
        "mem": bytes(cluster.mem._data),
    }


def run_engine(asm, engine, arrays=(), num_cores=1, max_cycles=200_000):
    cfg = CoreConfig(engine=engine)
    cluster = Cluster(asm, cfg=cfg, num_cores=num_cores)
    for addr, data in arrays:
        cluster.load_f64(addr, np.asarray(data, dtype=np.float64))
    cluster.run(max_cycles=max_cycles)
    return cluster


def run_both(asm, arrays=(), num_cores=1):
    """Run under both engines, assert identical digests, return the
    fast-engine cluster (for fast-path statistics assertions)."""
    scalar = run_engine(asm, "scalar", arrays, num_cores)
    fast = run_engine(asm, "fast", arrays, num_cores)
    ds, df = digest(scalar), digest(fast)
    assert ds == df
    return fast


def streams_asm(n, *, stride_c=8, stride_d=8, repeat_d=0, bounds_c=None,
                strides_c=None, base_c=C, base_d=D, n_d=None):
    """SSR0 reads c, SSR1 reads d (optional repeat), SSR2 writes a."""
    c = SsrPatternAsm(ssr=0, base=base_c, bounds=bounds_c or [n],
                      strides=strides_c or [stride_c])
    d = SsrPatternAsm(ssr=1, base=base_d, bounds=[n_d or n],
                      strides=[stride_d], repeat=repeat_d)
    a = SsrPatternAsm(ssr=2, base=A, bounds=[n], strides=[8], write=True)
    return "\n".join(p.emit() for p in (c, d, a))


def frep_program(body, iters, streams, *, chain_mask=0, pre_loop=""):
    chain_on = f"    csrrwi x0, chain_mask, {chain_mask}\n" \
        if chain_mask else ""
    chain_off = "    csrrwi x0, chain_mask, 0\n" if chain_mask else ""
    body_lines = "\n".join(f"    {line}" for line in body)
    return f"""
    li a0, {B}
    fld fa0, 0(a0)
{streams}
{chain_on}    csrrsi x0, ssr_enable, 1
{pre_loop}    csrrwi x0, sim_mark, 1
    li t2, {iters - 1}
    frep.o t2, {len(body) - 1}
{body_lines}
    csrr t5, ssr_enable
    csrrwi x0, sim_mark, 2
{chain_off}    csrrci x0, ssr_enable, 1
    ebreak
"""


def vec_arrays(rng, n, n_d=None):
    return [(B, [3.25]),
            (C, rng.uniform(-1.0, 1.0, n)),
            (D, rng.uniform(-1.0, 1.0, n_d or n)),
            (A, np.zeros(n))]


# -- the paper's kernels --------------------------------------------------


@pytest.mark.parametrize("variant", list(VecopVariant),
                         ids=lambda v: v.value)
@pytest.mark.parametrize("loop_mode", ["frep", "bne"])
def test_vecop_bit_identical(variant, loop_mode):
    builds = {}
    for engine in ("scalar", "fast"):
        cfg = CoreConfig(engine=engine)
        build = build_vecop(n=256, variant=variant, loop_mode=loop_mode,
                            cfg=cfg)
        cluster = Cluster(build.asm, cfg=cfg, symbols=build.symbols)
        build.load_into(cluster)
        cluster.run()
        out = cluster.read_f64(build.output_addr, build.output_shape)
        assert np.array_equal(out, build.golden)
        builds[engine] = (cluster, digest(cluster))
    assert builds["scalar"][1] == builds["fast"][1]
    stats = builds["fast"][0].fastpath.stats
    if loop_mode == "frep":
        assert stats["applications"] >= 1
        assert stats["fast_forwarded_cycles"] > 0
    else:
        # A software bne loop has no FREP region at all.
        assert stats["regions_seen"] == 0


def test_fig3_stencil_bit_identical():
    """Fig. 3 stencils use software loops + an indirect input stream;
    the fast path must stay out of the way entirely."""
    from repro.eval.runner import run_stencil_variant
    from repro.kernels.layout import Grid3d
    from repro.kernels.variants import Variant

    grid = Grid3d(nz=2, ny=3, nx=8)
    results = {}
    for engine in ("scalar", "fast"):
        cfg = CoreConfig(engine=engine)
        res = run_stencil_variant("box3d1r", Variant.CHAINING_PLUS,
                                  grid=grid, cfg=cfg)
        results[engine] = res
    a, b = results["scalar"], results["fast"]
    assert a.correct and b.correct
    assert a.cycles == b.cycles
    assert a.region_cycles == b.region_cycles
    assert a.fpu_utilization == b.fpu_utilization
    assert a.stalls == b.stalls
    assert a.energy.total_pj == b.energy.total_pj
    assert a.energy.breakdown == b.energy.breakdown


def test_energy_report_identical():
    from repro.energy.model import EnergyModel

    rng = np.random.default_rng(3)
    asm = frep_program(
        ["fadd.d ft3, ft0, ft1"] * 4 + ["fmul.d ft2, ft3, fa0"] * 4,
        iters=256, streams=streams_asm(1024), chain_mask=8)
    arrays = vec_arrays(rng, 1024)
    scalar = run_engine(asm, "scalar", arrays)
    fast = run_engine(asm, "fast", arrays)
    assert fast.fastpath.stats["applications"] >= 1
    es = EnergyModel(scalar.cfg).report(scalar)
    ef = EnergyModel(fast.cfg).report(fast)
    assert es.total_pj == ef.total_pj
    assert es.breakdown == ef.breakdown


# -- randomized FREP shapes ----------------------------------------------


def random_frep_case(seed):
    rng = np.random.default_rng(seed)
    unroll = int(rng.choice([1, 2, 4]))
    # Regions must comfortably exceed ~2 steady-state periods (a few
    # hundred cycles) for the detector to have anything left to skip.
    iters = int(rng.choice([192, 384]))
    n = unroll * iters
    chaining = bool(rng.random() < 0.5) and unroll <= 4
    repeat_d = int(rng.choice([0, 1]))
    two_d = bool(rng.random() < 0.35)
    neg_c = bool(rng.random() < 0.25)

    stage1 = str(rng.choice(["fadd.d", "fsub.d", "fmul.d", "fmadd.d",
                             "fmin.d", "fsgnjx.d"]))
    stage2 = str(rng.choice(["fmul.d", "fadd.d", "fmax.d"]))

    acc = "ft3" if chaining else None
    body = []
    for k in range(unroll):
        dest = acc or f"ft{3 + k}"
        if stage1 == "fmadd.d":
            body.append(f"fmadd.d {dest}, ft0, ft1, fa0")
        else:
            body.append(f"{stage1} {dest}, ft0, ft1")
    for k in range(unroll):
        src = acc or f"ft{3 + k}"
        body.append(f"{stage2} ft2, {src}, fa0")

    if two_d and n % 8 == 0:
        bounds_c, strides_c = [8, n // 8], [8 * (n // 8), 8]
    elif neg_c:
        bounds_c, strides_c = [n], [-8]
    else:
        bounds_c, strides_c = [n], [8]
    base_c = C + 8 * (n - 1) if neg_c else C
    n_d = n // (repeat_d + 1)
    if n % (repeat_d + 1):
        repeat_d, n_d = 0, n

    streams = streams_asm(n, bounds_c=bounds_c, strides_c=strides_c,
                          base_c=base_c, repeat_d=repeat_d, n_d=n_d)
    asm = frep_program(body, iters, streams,
                       chain_mask=8 if chaining else 0)
    return asm, vec_arrays(rng, n, n_d=n_d)


@pytest.mark.parametrize("seed", range(16))
def test_random_frep_shapes(seed):
    asm, arrays = random_frep_case(seed)
    run_both(asm, arrays)


def test_random_family_exercises_fast_path():
    applied = 0
    for seed in range(16):
        asm, arrays = random_frep_case(seed)
        fast = run_engine(asm, "fast", arrays)
        applied += fast.fastpath.stats["applications"]
    assert applied >= 8  # most shapes must actually fast-forward


# -- operator corner cases ------------------------------------------------


def test_same_stream_register_twice():
    """One instruction reading ft0 in two operand positions pops two
    stream elements (one per FPU read port, as on Snitch)."""
    rng = np.random.default_rng(11)
    n = 256
    streams = "\n".join((
        SsrPatternAsm(ssr=0, base=C, bounds=[2 * n], strides=[8]).emit(),
        SsrPatternAsm(ssr=2, base=A, bounds=[n], strides=[8],
                      write=True).emit(),
    ))
    asm = frep_program(["fadd.d ft2, ft0, ft0"], n, streams)
    arrays = [(B, [1.0]), (C, rng.uniform(-1, 1, 2 * n)), (A, np.zeros(n))]
    fast = run_both(asm, arrays)
    assert fast.fastpath.stats["applications"] >= 1


def test_unpipelined_divide_body():
    rng = np.random.default_rng(12)
    n = 192
    asm = frep_program(["fdiv.d ft2, ft0, ft1"], n, streams_asm(n))
    arrays = [(B, [1.0]), (C, rng.uniform(-1, 1, n)),
              (D, rng.uniform(1.0, 2.0, n)), (A, np.zeros(n))]
    run_both(asm, arrays)


def test_divide_by_zero_guard():
    """A zero divisor must surface as the scalar ZeroDivisionError, not
    as a numpy inf silently committed by the fast path."""
    n = 192
    d = np.full(n, 1.5)
    d[150] = 0.0
    asm = frep_program(["fdiv.d ft2, ft0, ft1"], n, streams_asm(n))
    arrays = [(B, [1.0]), (C, np.ones(n)), (D, d), (A, np.zeros(n))]
    for engine in ("scalar", "fast"):
        with pytest.raises(ZeroDivisionError):
            run_engine(asm, engine, arrays)


def test_unused_armed_stream_and_sequential_regions():
    """During the first FREP the armed ``d`` stream is never popped: it
    fills its FIFO and goes quiet, and the fast path must neither
    disturb it nor multiply its transient traffic.  A second FREP then
    drains it, exercising engine re-arming across regions."""
    rng = np.random.default_rng(13)
    n, n_d = 512, 16
    streams = streams_asm(n, n_d=n_d)
    asm = f"""
    li a0, {B}
    fld fa0, 0(a0)
{streams}
    csrrsi x0, ssr_enable, 1
    csrrwi x0, sim_mark, 1
    li t2, {n - 1}
    frep.o t2, 0
    fmul.d ft2, ft0, fa0
    csrr t5, ssr_enable
    csrrwi x0, sim_mark, 2
    li t2, {n_d - 1}
    frep.o t2, 0
    fadd.d ft4, ft1, ft4
    csrr t5, ssr_enable
    csrrci x0, ssr_enable, 1
    ebreak
"""
    arrays = vec_arrays(rng, n, n_d=n_d)
    fast = run_both(asm, arrays)
    assert fast.fastpath.stats["regions_seen"] == 2
    assert fast.fastpath.stats["applications"] >= 1


# -- mandatory rejections -------------------------------------------------


def test_reject_fp_load_in_body():
    rng = np.random.default_rng(14)
    n = 128
    body = ["fadd.d ft3, ft0, ft1",
            "fld fa1, 8(a0)",
            "fmul.d ft2, ft3, fa1"]
    asm = frep_program(body, n, streams_asm(n))
    arrays = vec_arrays(rng, n) + [(B + 8, [2.5])]
    fast = run_both(asm, arrays)
    stats = fast.fastpath.stats
    assert stats["regions_seen"] == 1
    assert stats["regions_eligible"] == 0


def test_reject_cross_iteration_accumulator():
    """A plain-register reduction carries a value across iterations --
    exactly what the vectorized evaluation cannot reorder."""
    rng = np.random.default_rng(15)
    n = 128
    reads = "\n".join(
        SsrPatternAsm(ssr=i, base=base, bounds=[n], strides=[8]).emit()
        for i, base in enumerate((C, D)))
    asm = f"""
    li a0, {B}
    fld fa0, 0(a0)
{reads}
    csrrsi x0, ssr_enable, 1
    li t2, {n - 1}
    frep.o t2, 0
    fmadd.d ft3, ft0, ft1, ft3
    csrr t5, ssr_enable
    csrrci x0, ssr_enable, 1
    li a1, {A}
    fsd ft3, 0(a1)
    ebreak
"""
    arrays = [(B, [3.25]), (C, rng.uniform(-1, 1, n)),
              (D, rng.uniform(-1, 1, n)), (A, np.zeros(1))]
    fast = run_both(asm, arrays)
    assert fast.fastpath.stats["regions_eligible"] == 0
    dot = float(fast.mem.read_f64(A))
    expected = 0.0
    c = fast.read_f64(C, (n,))
    d = fast.read_f64(D, (n,))
    for x, y in zip(c, d):
        expected = x * y + expected
    assert dot == expected


def test_reject_preseeded_chain_fifo():
    """A chaining FIFO seeded before the loop shifts every pop to the
    *previous* iteration's push; the alignment check must refuse."""
    rng = np.random.default_rng(16)
    n = 256
    pre = "    fadd.d ft3, fa0, fa0\n"
    body = ["fadd.d ft3, ft0, ft1", "fmul.d ft2, ft3, fa0"]
    asm = frep_program(body, n, streams_asm(n), chain_mask=8,
                       pre_loop=pre)
    arrays = vec_arrays(rng, n)
    fast = run_both(asm, arrays)
    assert fast.fastpath.stats["applications"] == 0


def test_reject_frep_inner():
    rng = np.random.default_rng(17)
    n = 64
    streams = streams_asm(n, n_d=n)
    asm = f"""
    li a0, {B}
    fld fa0, 0(a0)
{streams}
    csrrsi x0, ssr_enable, 1
    li t2, {n - 1}
    frep.i t2, 1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    csrr t5, ssr_enable
    csrrci x0, ssr_enable, 1
    ebreak
"""
    # frep.i repeats each instruction n times: n adds into ft3 (only the
    # last survives architecturally? no -- each add pops fresh stream
    # elements), then n muls.  Timing-wise it is a valid program; the
    # fast path must simply refuse the inner-repeat form.
    arrays = vec_arrays(rng, n)
    fast = run_both(asm, arrays)
    assert fast.fastpath.stats["regions_eligible"] == 0


def test_reject_stagger():
    asm = f"""
    li a0, {B}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    li t0, 63
    frep.o t0, 0, 1, 3
    fadd.d fa0, fa0, fa2
    ebreak
"""
    fast = run_both(asm, [(B, [1.0, 2.0])])
    assert fast.fastpath.stats["regions_eligible"] == 0


def test_reject_indirect_stream():
    """SARIS-style indirect streams have data-dependent addresses; the
    fast path must leave them to the scalar model."""
    rng = np.random.default_rng(18)
    n = 128
    idx_base = 0x6000
    indirect = SsrPatternAsm(ssr=0, base=C, bounds=[n], strides=[0],
                             indirect=True, idx_base=idx_base,
                             idx_size=4, idx_shift=3)
    streams = "\n".join((
        indirect.emit(),
        SsrPatternAsm(ssr=2, base=A, bounds=[n], strides=[8],
                      write=True).emit(),
    ))
    asm = frep_program(["fmul.d ft2, ft0, fa0"], n, streams)
    perm = rng.permutation(n).astype(np.uint32)
    data = rng.uniform(-1, 1, n)
    results = {}
    for engine in ("scalar", "fast"):
        cluster = Cluster(asm, cfg=CoreConfig(engine=engine))
        cluster.load_u32(idx_base, perm)
        cluster.load_f64(B, np.array([3.25]))
        cluster.load_f64(C, data)
        cluster.run()
        results[engine] = (cluster, digest(cluster))
    assert results["scalar"][1] == results["fast"][1]
    assert results["fast"][0].fastpath.stats["regions_eligible"] == 0


# -- configuration & environment -----------------------------------------


def test_multicore_fast_path_engages_when_others_halt():
    rng = np.random.default_rng(20)
    n = 256
    body = ["fadd.d ft3, ft0, ft1"] * 4 + ["fmul.d ft2, ft3, fa0"] * 4
    inner = frep_program(body, n // 4, streams_asm(n), chain_mask=8)
    asm = f"""
    csrr t0, mhartid
    bne t0, x0, other
{inner}
other:
    ebreak
"""
    fast = run_both(asm, vec_arrays(rng, n), num_cores=2)
    assert fast.fastpath.stats["applications"] >= 1


def test_engine_fast_rejects_trace():
    from repro.trace import TraceRecorder

    with pytest.raises(ValueError, match="tracing"):
        Cluster("    ebreak\n", cfg=CoreConfig(engine="fast"),
                trace=TraceRecorder())


def test_engine_auto_with_trace_falls_back_scalar():
    from repro.trace import TraceRecorder

    build = build_vecop(n=64, variant=VecopVariant.CHAINING)
    scalar = Cluster(build.asm, cfg=CoreConfig(engine="scalar"))
    traced = Cluster(build.asm, cfg=CoreConfig(engine="auto"),
                     trace=TraceRecorder())
    assert traced.fastpath is None
    for cluster in (scalar, traced):
        build.load_into(cluster)
        cluster.run()
    assert scalar.cycle == traced.cycle


def test_engine_validation():
    with pytest.raises(ValueError, match="engine"):
        CoreConfig(engine="warp").validate()


def test_fast_engine_deterministic():
    rng = np.random.default_rng(21)
    asm = frep_program(
        ["fadd.d ft3, ft0, ft1"] * 4 + ["fmul.d ft2, ft3, fa0"] * 4,
        iters=128, streams=streams_asm(512), chain_mask=8)
    arrays = vec_arrays(rng, 512)
    a = digest(run_engine(asm, "fast", arrays))
    b = digest(run_engine(asm, "fast", arrays))
    assert a == b
