"""Performance counter unit tests."""

import pytest

from repro.core.perf import PerfCounters, StallReason


def test_bump_and_value():
    perf = PerfCounters()
    perf.bump("x")
    perf.bump("x", 4)
    assert perf.value("x") == 5
    assert perf.value("missing") == 0


def test_stall_accounting():
    perf = PerfCounters()
    perf.stall(StallReason.RAW)
    perf.stall(StallReason.RAW)
    perf.stall(StallReason.SSR_EMPTY)
    breakdown = perf.stall_breakdown()
    assert breakdown == {"raw": 2, "ssr_empty": 1}


def test_stall_breakdown_sorted_by_count():
    perf = PerfCounters()
    for _ in range(3):
        perf.stall(StallReason.WAW)
    perf.stall(StallReason.RAW)
    keys = list(perf.stall_breakdown())
    assert keys == ["waw", "raw"]


def test_marks_and_deltas():
    perf = PerfCounters()
    perf.cycles = 10
    perf.bump("ops", 5)
    perf.mark(1)
    perf.cycles = 30
    perf.bump("ops", 7)
    perf.mark(2)
    assert perf.region_cycles(1, 2) == 20
    assert perf.delta("ops", 1, 2) == 7


def test_utilization_whole_run_and_region():
    perf = PerfCounters()
    perf.cycles = 4
    perf.bump("fpu_compute_ops", 2)
    perf.mark(1)
    perf.cycles = 14
    perf.bump("fpu_compute_ops", 9)
    perf.mark(2)
    assert perf.fpu_utilization() == pytest.approx(11 / 14)
    assert perf.fpu_utilization(1, 2) == pytest.approx(9 / 10)


def test_utilization_zero_cycles():
    perf = PerfCounters()
    assert perf.fpu_utilization() == 0.0


def test_marks_capture_stalls():
    perf = PerfCounters()
    perf.stall(StallReason.RAW)
    perf.mark(1)
    perf.stall(StallReason.RAW)
    perf.stall(StallReason.RAW)
    perf.mark(2)
    assert perf.delta("stall_raw", 1, 2) == 2


def test_summary_contains_key_fields():
    perf = PerfCounters()
    perf.cycles = 100
    perf.bump("fpu_compute_ops", 50)
    perf.stall(StallReason.QUEUE_EMPTY)
    summary = perf.summary()
    assert summary["cycles"] == 100
    assert summary["fpu_utilization"] == 0.5
    assert summary["stall_queue_empty"] == 1


def test_remark_overwrites():
    perf = PerfCounters()
    perf.cycles = 5
    perf.mark(1)
    perf.cycles = 9
    perf.mark(1)
    assert perf.marks[1].cycle == 9
