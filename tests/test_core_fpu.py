"""FPU functional semantics and pipeline mechanics."""

import pytest

from repro.core.config import CoreConfig
from repro.core.fpu import FpuPipe, execute_fp
from repro.isa.instructions import Instr, InstrClass


# -- functional semantics ------------------------------------------------------

@pytest.mark.parametrize("mn,ops,expected", [
    ("fadd.d", [1.5, 2.25], 3.75),
    ("fsub.d", [1.5, 2.25], -0.75),
    ("fmul.d", [3.0, -2.0], -6.0),
    ("fdiv.d", [7.0, 2.0], 3.5),
    ("fsqrt.d", [9.0], 3.0),
    ("fmadd.d", [2.0, 3.0, 4.0], 10.0),
    ("fmsub.d", [2.0, 3.0, 4.0], 2.0),
    ("fnmsub.d", [2.0, 3.0, 4.0], -2.0),
    ("fnmadd.d", [2.0, 3.0, 4.0], -10.0),
    ("fmin.d", [1.0, -2.0], -2.0),
    ("fmax.d", [1.0, -2.0], 1.0),
    ("feq.d", [1.0, 1.0], 1),
    ("feq.d", [1.0, 2.0], 0),
    ("flt.d", [1.0, 2.0], 1),
    ("fle.d", [2.0, 2.0], 1),
    ("fcvt.d.w", [5], 5.0),
    ("fcvt.w.d", [5.75], 5),
    ("fcvt.w.d", [-5.75], -5),
])
def test_execute_fp(mn, ops, expected):
    assert execute_fp(mn, ops) == expected


def test_sign_injection():
    assert execute_fp("fsgnj.d", [3.0, -1.0]) == -3.0
    assert execute_fp("fsgnjn.d", [3.0, -1.0]) == 3.0
    assert execute_fp("fsgnjx.d", [-3.0, -1.0]) == 3.0
    assert execute_fp("fsgnjx.d", [-3.0, 1.0]) == -3.0


def test_fcvt_w_d_saturates():
    assert execute_fp("fcvt.w.d", [1e300]) == (1 << 31) - 1
    assert execute_fp("fcvt.w.d", [-1e300]) == -(1 << 31)
    assert execute_fp("fcvt.w.d", [float("nan")]) == (1 << 31) - 1


def test_wrong_arity_raises():
    with pytest.raises(ValueError, match="expects"):
        execute_fp("fadd.d", [1.0])


def test_fma_is_mul_then_add_double_rounding():
    # Our FMA is modelled as two rounded operations (see fpu docstring);
    # this documents the convention the golden models rely on.
    a, b, c = 1e16, 1.0 + 2**-52, -1e16
    assert execute_fp("fmadd.d", [a, b, c]) == a * b + c


# -- pipeline mechanics ---------------------------------------------------------

def fadd(rd=3):
    return Instr("fadd.d", rd=rd, rs1=0, rs2=1)


def fdiv(rd=3):
    return Instr("fdiv.d", rd=rd, rs1=0, rs2=1)


def test_pipe_completion_after_latency(cfg):
    pipe = FpuPipe(cfg)
    pipe.issue(fadd(), 3, False, 1.0, cycle=10)
    assert not pipe.head_complete(12)
    assert pipe.head_complete(13)     # latency 3


def test_pipe_in_order_single_writeback_port(cfg):
    pipe = FpuPipe(cfg)
    pipe.issue(fdiv(3), 3, False, 1.0, cycle=0)    # completes at 11
    pipe.issue(fadd(4), 4, False, 2.0, cycle=1)    # would be 4, pushed to 12
    head = pipe.retire_head()
    assert head.completes_at == 11
    assert pipe.head().completes_at == 12


def test_pipe_capacity(cfg):
    pipe = FpuPipe(cfg)
    for i in range(cfg.fpu_pipe_depth):
        assert pipe.can_accept(i, InstrClass.FP_ADD, head_will_retire=False)
        pipe.issue(fadd(), 3, False, 1.0, cycle=i)
    assert not pipe.can_accept(3, InstrClass.FP_ADD, head_will_retire=False)
    # A retiring head frees one slot for the same cycle.
    assert pipe.can_accept(3, InstrClass.FP_ADD, head_will_retire=True)


def test_unpipelined_div_blocks(cfg):
    pipe = FpuPipe(cfg)
    pipe.issue(fdiv(), 3, False, 1.0, cycle=0)
    assert pipe.has_unpipelined_in_flight()
    assert not pipe.can_accept(1, InstrClass.FP_ADD, head_will_retire=False)
    assert not pipe.can_accept(1, InstrClass.FP_ADD, head_will_retire=True)


def test_latency_table_respected():
    cfg = CoreConfig()
    cfg.fpu_latency[InstrClass.FP_ADD] = 5
    pipe = FpuPipe(cfg)
    pipe.issue(fadd(), 3, False, 1.0, cycle=0)
    assert not pipe.head_complete(4)
    assert pipe.head_complete(5)
