"""Property-based test: a chaining register is an exact FIFO.

Random balanced producer/consumer programs (groups of k pushes followed
by k pops, k bounded by the logical FIFO capacity) are generated, executed
on the full cluster, and the consumed sequence is compared against a
plain queue model.  Distinct push values are injected from memory, and
pops drain to memory through ``fsd`` (which pops chaining registers).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cluster, CoreConfig

IN = 0x4000
OUT = 0x6000


@st.composite
def balanced_groups(draw):
    cfg_depth = 3  # default pipe depth; capacity = depth + 1
    groups = draw(st.lists(st.integers(1, cfg_depth + 1),
                           min_size=1, max_size=6))
    return groups


def build_program(groups):
    total = sum(groups)
    lines = [
        f"    li a0, {IN}",
        f"    li a1, {OUT}",
        "    fld ft5, 0(a0)",          # 0.0: additive identity
        "    csrrwi x0, chain_mask, 8",
    ]
    in_idx = 1
    out_idx = 0
    for k in groups:
        for _ in range(k):
            lines.append(f"    fld ft4, {in_idx * 8}(a0)")
            lines.append("    fadd.d ft3, ft4, ft5")
            in_idx += 1
        for _ in range(k):
            lines.append(f"    fsd ft3, {out_idx * 8}(a1)")
            out_idx += 1
    lines.append("    csrrwi x0, chain_mask, 0")
    lines.append("    ebreak")
    return "\n".join(lines), total


@given(balanced_groups())
@settings(max_examples=25, deadline=None)
def test_chaining_register_is_exact_fifo(groups):
    prog, total = build_program(groups)
    cluster = Cluster(prog)
    values = np.arange(1.0, total + 1.0)
    cluster.load_f64(IN, np.concatenate([[0.0], values]))
    cluster.run()
    out = cluster.read_f64(OUT, (total,))
    # FIFO order: exactly the push order, nothing lost or duplicated.
    assert np.array_equal(out, values)


@given(balanced_groups())
@settings(max_examples=12, deadline=None)
def test_fifo_property_holds_in_conservative_mode(groups):
    # Conservative push/pop cannot sustain capacity-filling groups
    # (see test_core_timing); cap group size at the pipe depth.
    groups = [min(k, 3) for k in groups]
    prog, total = build_program(groups)
    cfg = CoreConfig(chain_concurrent_push_pop=False)
    cluster = Cluster(prog, cfg=cfg)
    values = np.arange(1.0, total + 1.0)
    cluster.load_f64(IN, np.concatenate([[0.0], values]))
    cluster.run()
    assert np.array_equal(cluster.read_f64(OUT, (total,)), values)


@given(st.integers(1, 3), st.integers(2, 8))
@settings(max_examples=12, deadline=None)
def test_fifo_with_interleaved_compute(k, rounds):
    """Pops interleaved with unrelated FP compute don't disturb order.

    ``k`` stays below the FIFO capacity: a capacity-filling push group
    followed by a non-popping instruction deadlocks by design (the
    unrelated op cannot enter the backpressure-blocked pipe; see
    test_core_timing for the directed version).
    """
    lines = [
        f"    li a0, {IN}",
        f"    li a1, {OUT}",
        "    fld ft5, 0(a0)",
        "    csrrwi x0, chain_mask, 8",
    ]
    idx = 1
    out_idx = 0
    for _ in range(rounds):
        for _ in range(k):
            lines.append(f"    fld ft4, {idx * 8}(a0)")
            lines.append("    fadd.d ft3, ft4, ft5")
            idx += 1
        lines.append("    fmul.d fa4, ft5, ft5")   # unrelated compute
        for _ in range(k):
            lines.append(f"    fsd ft3, {out_idx * 8}(a1)")
            out_idx += 1
    lines += ["    csrrwi x0, chain_mask, 0", "    ebreak"]
    total = rounds * k
    cluster = Cluster("\n".join(lines))
    values = np.arange(1.0, total + 1.0)
    cluster.load_f64(IN, np.concatenate([[0.0], values]))
    cluster.run()
    assert np.array_equal(cluster.read_f64(OUT, (total,)), values)
