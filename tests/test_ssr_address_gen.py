"""Affine and indirect address generator tests."""

import numpy as np
import pytest

from repro.ssr.address_gen import AffineGenerator, IndirectGenerator
from repro.ssr.config import SsrConfig, SsrMode


def affine(base, bounds, strides, repeat=0):
    return AffineGenerator(SsrConfig(
        base=base, bounds=list(bounds) + [1] * (6 - len(bounds)),
        strides=list(strides) + [0] * (6 - len(strides)),
        ndims=len(bounds), repeat=repeat,
    ))


def test_1d_contiguous():
    gen = affine(0x100, [4], [8])
    assert gen.all_addresses() == [0x100, 0x108, 0x110, 0x118]


def test_1d_strided_negative():
    gen = affine(0x100, [3], [-16])
    assert gen.all_addresses() == [0x100, 0xF0, 0xE0]


def test_2d_matches_numpy_index_arithmetic():
    base, b0, b1, s0, s1 = 0x200, 3, 4, 8, 100
    gen = affine(base, [b0, b1], [s0, s1])
    expected = [base + i0 * s0 + i1 * s1
                for i1 in range(b1) for i0 in range(b0)]
    assert gen.all_addresses() == expected


def test_4d_nest_order_dim0_innermost():
    gen = affine(0, [2, 2, 2, 2], [1, 10, 100, 1000])
    addrs = gen.all_addresses()
    assert addrs[0] == 0
    assert addrs[1] == 1       # dim0 advances first
    assert addrs[2] == 10
    assert addrs[-1] == 1111
    assert len(addrs) == 16


def test_remaining_and_exhaustion():
    gen = affine(0, [3], [8])
    assert gen.remaining == 3
    gen.next()
    assert gen.remaining == 2
    gen.next(), gen.next()
    assert gen.exhausted
    with pytest.raises(RuntimeError):
        gen.next()


def test_peek_does_not_advance():
    gen = affine(64, [2], [8])
    assert gen.peek() == 64
    assert gen.peek() == 64
    assert gen.next() == 64
    assert gen.peek() == 72


def test_zero_stride_repeats_address():
    gen = affine(0x40, [3], [0])
    assert gen.all_addresses() == [0x40, 0x40, 0x40]


def test_stencil_window_pattern():
    """The 27-tap cube walk used by the kernels, checked against numpy."""
    px, py = 10, 6   # padded x/y extents
    plane, row = py * px * 8, px * 8
    gen = affine(0, [4, 3, 3, 3], [8, 8, row, plane])
    addrs = np.array(gen.all_addresses())
    expected = []
    for dz in range(3):
        for dy in range(3):
            for dx in range(3):
                for p in range(4):
                    expected.append(p * 8 + dx * 8 + dy * row + dz * plane)
    assert np.array_equal(addrs, np.array(expected))


def test_indirect_requires_flag():
    with pytest.raises(ValueError):
        IndirectGenerator(SsrConfig(indirect=False))


def test_indirect_index_walk_and_scaling():
    cfg = SsrConfig(base=0x1000, bounds=[3, 1, 1, 1, 1, 1], ndims=1,
                    indirect=True, idx_base=0x500, idx_size=4, idx_shift=3)
    gen = IndirectGenerator(cfg)
    assert gen.next_index_addr() == 0x500
    assert gen.next_index_addr() == 0x504
    assert gen.data_addr(7) == 0x1000 + (7 << 3)
    assert gen.remaining == 1
    gen.next_index_addr()
    assert gen.exhausted
    with pytest.raises(RuntimeError):
        gen.next_index_addr()


def test_indirect_u16_indices():
    cfg = SsrConfig(base=0, bounds=[2, 1, 1, 1, 1, 1], ndims=1,
                    indirect=True, idx_base=0x100, idx_size=2, idx_shift=2)
    gen = IndirectGenerator(cfg)
    assert gen.next_index_addr() == 0x100
    assert gen.next_index_addr() == 0x102
    assert gen.data_addr(5) == 5 << 2


def test_config_validation():
    with pytest.raises(ValueError):
        SsrConfig(ndims=0).validate()
    with pytest.raises(ValueError):
        SsrConfig(ndims=7).validate()
    with pytest.raises(ValueError):
        SsrConfig(bounds=[0, 1, 1, 1, 1, 1]).validate()
    with pytest.raises(ValueError):
        SsrConfig(repeat=-1).validate()
    with pytest.raises(ValueError):
        SsrConfig(indirect=True, idx_size=3).validate()
    with pytest.raises(ValueError):
        SsrConfig(indirect=True, mode=SsrMode.WRITE, repeat=2).validate()


def test_total_elements():
    cfg = SsrConfig(bounds=[4, 3, 2, 1, 1, 1], ndims=3)
    assert cfg.total_elements() == 24
