"""The unified Result schema: typed fields, round-trips, legacy lift."""

import json

import pytest

from repro.api import (
    RESULT_KEYS,
    RESULT_SCALARS,
    Result,
    Session,
    SystemReport,
    workload,
)
from repro.energy.model import EnergyReport


def _energy():
    return EnergyReport(total_pj=1234.5, cycles=1000, clock_hz=1e9,
                        breakdown={"fpu": 1000.0, "tcdm": 234.5})


def _result(**kw):
    base = dict(name="t", correct=True, cycles=1000, region_cycles=800,
                fpu_utilization=0.9, energy=_energy(), clock_hz=1e9,
                flops=1600, points=100)
    base.update(kw)
    return Result(**base)


def test_typed_fields_are_required_at_construction():
    for missing in ("clock_hz", "flops", "points"):
        with pytest.raises(ValueError, match=f"Result.{missing}"):
            _result(**{missing: None})   # explicit None: targeted error
    # Omission is a plain TypeError: the fields have no defaults.
    with pytest.raises(TypeError, match="clock_hz"):
        Result(name="t", correct=True, cycles=1, region_cycles=1,
               fpu_utilization=0.5, energy=_energy())
    # Nonsensical values are rejected too, not deferred to a later
    # ZeroDivisionError in a derived metric.
    with pytest.raises(ValueError, match="clock_hz must be positive"):
        _result(clock_hz=0)
    with pytest.raises(ValueError, match=">= 0"):
        _result(flops=-1)


def test_meta_may_not_shadow_typed_fields():
    with pytest.raises(ValueError, match="meta may not shadow"):
        _result(meta={"flops": 3200})
    with pytest.raises(ValueError, match="clock_hz"):
        _result(meta={"clock_hz": 2e9})


def test_derived_metrics_come_from_typed_fields():
    res = _result()
    assert res.gflops == 1600 / (800 / 1e9) / 1e9
    assert res.cycles_per_point == 8.0
    assert res.gflops_per_watt == res.gflops / (res.power_mw / 1e3)
    # explicit zero means "not reported", not a hidden default
    assert _result(flops=0).gflops == 0.0
    assert _result(points=0).cycles_per_point == 0.0


def test_to_dict_emits_exactly_the_schema_keys():
    data = _result().to_dict()
    assert tuple(data) == RESULT_KEYS
    assert data["schema"] == "repro-result/v1"
    json.dumps(data)  # must be JSON-clean


def test_round_trip_is_exact():
    res = _result(meta={"kernel": "t", "unroll": 4},
                  stalls={"raw": 17})
    data = json.loads(json.dumps(res.to_dict()))
    again = Result.from_dict(data)
    assert again.to_dict() == res.to_dict()
    for name in RESULT_SCALARS:
        assert getattr(again, name) == getattr(res, name)
    assert again.energy.breakdown == res.energy.breakdown
    assert again.meta == res.meta and again.stalls == res.stalls
    assert again.system is None


def test_round_trip_with_system_report():
    report = SystemReport(
        num_clusters=4, iters=2, per_cluster_cycles=[10, 11, 12, 13],
        sys_barriers=2, gmem_bytes_read=4096, gmem_bytes_written=2048,
        gmem_latency_cycles=160, interconnect_busy_cycles=64,
        interconnect_contended_cycles=8)
    res = _result(system=report)
    again = Result.from_dict(json.loads(json.dumps(res.to_dict())))
    assert again.system == report
    assert again.to_dict() == res.to_dict()


def test_malformed_stamped_record_raises_instead_of_lifting():
    """A record carrying the schema stamp must have the typed fields at
    the top level; truncation is an error, never a hidden default."""
    data = _result().to_dict()
    del data["clock_hz"]
    with pytest.raises(KeyError):
        Result.from_dict(data)


def test_stampless_new_shape_record_is_read_typed_not_lifted():
    """Top-level typed fields mark a new-shape record even without the
    'schema' stamp: they must be read, never legacy-lifted to 1e9/0/0;
    a partial set is an error."""
    data = _result(flops=512, points=64, clock_hz=2e9).to_dict()
    del data["schema"]
    res = Result.from_dict(data)
    assert (res.clock_hz, res.flops, res.points) == (2e9, 512, 64)
    del data["points"]
    with pytest.raises(KeyError):
        Result.from_dict(data)


def test_unsupported_schema_value_is_rejected():
    data = _result().to_dict()
    data["schema"] = "repro-result/v999"
    with pytest.raises(ValueError, match="unsupported result schema"):
        Result.from_dict(data)


def test_from_dict_lifts_pre_1_5_records():
    legacy = {
        "name": "old", "correct": True, "cycles": 500,
        "region_cycles": 400, "fpu_utilization": 0.8,
        "energy": {"total_pj": 10.0, "cycles": 500, "clock_hz": 1e9,
                   "breakdown": {"fpu": 10.0}},
        "meta": {"clock_hz": 2e9, "flops": 800, "points": 50,
                 "kernel": "old"},
        "stalls": {"raw": 3},
    }
    res = Result.from_dict(legacy)
    assert res.clock_hz == 2e9 and res.flops == 800 and res.points == 50
    assert res.meta == {"kernel": "old"}  # typed fields lifted out
    assert res.gflops == 800 / (400 / 2e9) / 1e9


def test_from_dict_lifts_pre_1_5_system_records():
    legacy = {
        "name": "old-sys", "correct": True, "cycles": 900,
        "region_cycles": 900, "fpu_utilization": 0.7,
        "energy": {"total_pj": 10.0, "cycles": 900, "clock_hz": 1e9,
                   "breakdown": {}},
        "meta": {"clock_hz": 1e9, "flops": 100, "points": 10,
                 "num_clusters": 2, "iters": 2,
                 "per_cluster_cycles": [450, 450], "sys_barriers": 3,
                 "gmem_bytes_read": 64, "gmem_bytes_written": 32,
                 "gmem_latency_cycles": 40,
                 "interconnect_busy_cycles": 16,
                 "interconnect_contended_cycles": 4},
    }
    res = Result.from_dict(legacy)
    assert res.system is not None
    assert res.system.num_clusters == 2
    assert res.system.per_cluster_cycles == [450, 450]


def test_live_system_result_has_typed_report_and_meta_mirror():
    res = Session().run(workload("box3d1r", "Chaining+", grid=(2, 4, 8),
                                 num_clusters=2))
    assert isinstance(res.system, SystemReport)
    assert res.system.num_clusters == 2
    assert res.system.per_cluster_cycles == \
        res.meta["per_cluster_cycles"]  # pre-1.5 meta mirror, one release
    assert "flops" not in res.meta and "clock_hz" not in res.meta
    again = Result.from_dict(json.loads(json.dumps(res.to_dict())))
    assert again.to_dict() == res.to_dict()
    assert again.gflops == res.gflops
