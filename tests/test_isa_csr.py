"""CSR map tests."""

from repro.isa.csr import CSR, FP_SUBSYSTEM_CSRS, csr_name, is_fp_csr


def test_paper_addresses():
    # The paper fixes the chaining mask CSR at 0x7C3 (section II).
    assert CSR.CHAIN_MASK == 0x7C3
    assert CSR.SSR_ENABLE == 0x7C0


def test_fp_csr_classification():
    assert is_fp_csr(CSR.CHAIN_MASK)
    assert is_fp_csr(CSR.SSR_ENABLE)
    assert is_fp_csr(CSR.FFLAGS)
    assert not is_fp_csr(CSR.MCYCLE)
    assert not is_fp_csr(CSR.SIM_MARK)
    assert not is_fp_csr(0x123)


def test_fp_subsystem_set_contents():
    assert CSR.CHAIN_MASK in FP_SUBSYSTEM_CSRS
    assert CSR.MCYCLE not in FP_SUBSYSTEM_CSRS


def test_csr_names():
    assert csr_name(0x7C3) == "chain_mask"
    assert csr_name(0xB00) == "mcycle"
    assert csr_name(0x3FF) == "csr_0x3ff"
