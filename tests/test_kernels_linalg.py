"""Linear-algebra kernel tests: reductions and dual-chain dataflow."""

import numpy as np
import pytest

from repro.core import CoreConfig
from repro.eval.runner import run_build
from repro.kernels.linalg import (
    LinalgVariant,
    build_axpy,
    build_cdot,
    build_dot,
    build_gemv,
)


def test_axpy_correct_and_fast():
    result = run_build(build_axpy(n=128))
    assert result.correct
    # No dependencies: the FPU should be near-fully utilized.
    assert result.fpu_utilization > 0.9


@pytest.mark.parametrize("variant", list(LinalgVariant))
def test_dot_correct(variant):
    result = run_build(build_dot(n=128, variant=variant))
    assert result.correct


def test_dot_chaining_matches_baseline_cycles():
    base = run_build(build_dot(n=256, variant=LinalgVariant.BASELINE))
    chain = run_build(build_dot(n=256, variant=LinalgVariant.CHAINING))
    # Same throughput...
    assert abs(base.region_cycles - chain.region_cycles) <= 8
    # ...but one architectural accumulator instead of four.
    assert chain.meta["arch_accumulators"] == 1
    assert base.meta["arch_accumulators"] == 4


def test_dot_value_matches_numpy_closely():
    build = build_dot(n=256)
    result = run_build(build)
    assert result.correct
    # Bit-exact against the lane-partial golden; close to numpy's sum.
    assert build.golden[0] == pytest.approx(
        float(np.dot(build.arrays[0][1], build.arrays[1][1])), rel=1e-12)


def test_dot_minimum_size():
    # n == lanes: a single seed group, no frep.
    result = run_build(build_dot(n=4))
    assert result.correct
    assert "frep" not in build_dot(n=4).asm


def test_dot_bad_n():
    with pytest.raises(ValueError, match="multiple"):
        build_dot(n=130)


@pytest.mark.parametrize("variant", list(LinalgVariant))
def test_gemv_correct(variant):
    result = run_build(build_gemv(rows=8, n=32, variant=variant))
    assert result.correct


def test_gemv_reuses_chain_across_rows():
    result = run_build(build_gemv(rows=12, n=48))
    assert result.correct
    assert result.fpu_utilization > 0.75


def test_gemv_x_stream_replayed_per_row():
    from repro.core import Cluster

    build = build_gemv(rows=4, n=16)
    cluster = Cluster(build.asm, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run()
    stats = cluster.tcdm.stats()
    # x is re-fetched once per row (stride-0 outer dimension).
    assert stats["ssr1_reads"] == 4 * 16
    assert stats["ssr0_reads"] == 4 * 16


def test_cdot_correct():
    build = build_cdot(n=32)
    result = run_build(build)
    assert result.correct


def test_cdot_matches_numpy_complex():
    build = build_cdot(n=64)
    run_build(build)
    x = build.arrays[0][1].view(np.complex128)
    y = build.arrays[1][1].view(np.complex128)
    expected = np.sum(x * y)
    assert build.golden[0] == pytest.approx(expected.real, rel=1e-12)
    assert build.golden[1] == pytest.approx(expected.imag, rel=1e-12)


def test_cdot_two_chains_active():
    from repro.core import Cluster

    build = build_cdot(n=16)
    cluster = Cluster(build.asm, symbols=build.symbols)
    build.load_into(cluster)
    cluster.run()
    # Both chains pushed and popped an equal number of times.
    assert cluster.fp.chain.pushes == cluster.fp.chain.pops
    # 4 products per element; the 4 seed fmuls push without popping and
    # the 4 drain fmvs pop without pushing: pops == 4n.
    assert cluster.fp.chain.pops == 4 * 16


def test_cdot_sustains_throughput():
    result = run_build(build_cdot(n=128))
    # 8 ops per 2 elements with both chains interleaved.  The indirect
    # y stream costs ~1 bank-conflict cycle per block, so the ceiling
    # sits slightly below the stencils'.
    assert result.fpu_utilization > 0.85


def test_cdot_requires_even_n():
    with pytest.raises(ValueError, match="even"):
        build_cdot(n=7)


def test_cdot_requires_depth_3():
    cfg = CoreConfig(fpu_pipe_depth=2)
    with pytest.raises(ValueError, match="pipe depth"):
        build_cdot(n=8, cfg=cfg)


def test_gemv_with_alternate_depth():
    cfg = CoreConfig(fpu_pipe_depth=2)
    result = run_build(build_gemv(rows=4, n=18, cfg=cfg), cfg=cfg)
    assert result.correct
    assert result.meta["arch_accumulators"] == 1
