"""Differential correctness of the multi-cluster halo-exchange stencils.

The lockdown contract of ``repro.system``: for every paper kernel, the
reassembled multi-cluster output grid must be **bit-identical** to

1. the numpy golden model (iterated Jacobi-style sweeps), and
2. the single-cluster reference run,

for every cluster count and every execution engine.  Cycle counts and
aggregate FPU work must also agree across engines (the engines'
bit-identity contract extends to system runs).
"""

import numpy as np
import pytest

from repro.core.config import CoreConfig, SystemConfig
from repro.eval.system_runner import make_system_config, run_system_stencil
from repro.kernels.layout import Grid3d
from repro.kernels.partition import (
    build_partitioned_stencil,
    iterated_golden,
    split_slabs,
)
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.system import System

GRID = Grid3d(4, 4, 8)
ITERS = 2
CLUSTER_COUNTS = (1, 2, 4)
ENGINES = ("scalar", "scalar-v2", "auto")
VARIANT = Variant.from_label("Chaining+")


def _run(kernel: str, num_clusters: int, engine: str,
         variant: Variant = VARIANT, iters: int = ITERS):
    """One system run; returns (output grid, golden, cycles)."""
    spec, _ = get_stencil(kernel)
    cfg = SystemConfig(num_clusters=num_clusters,
                       core=CoreConfig(engine=engine))
    build = build_partitioned_stencil(spec, GRID, variant, num_clusters,
                                      cfg=cfg, iters=iters)
    system = System(build.asms, cfg)
    build.load_into(system)
    system.run()
    out = build.read_output(system)
    assert np.array_equal(out, build.golden), \
        f"{build.name} engine={engine}: output != golden model"
    return out, build.golden, system


@pytest.mark.parametrize("kernel", ["box3d1r", "j3d27pt"])
def test_multicluster_bit_identical_to_reference_and_golden(kernel):
    """num_clusters x engine sweep against the 1-cluster scalar run."""
    reference, golden, _ = _run(kernel, 1, "scalar")
    assert np.array_equal(reference, golden)
    for num_clusters in CLUSTER_COUNTS:
        for engine in ENGINES:
            out, _, _ = _run(kernel, num_clusters, engine)
            assert np.array_equal(out, reference), (
                f"{kernel} num_clusters={num_clusters} engine={engine}: "
                f"output differs from the single-cluster reference")


@pytest.mark.parametrize("kernel", ["box3d1r", "j3d27pt"])
def test_engines_agree_on_system_cycles(kernel):
    """Per-cluster cycle counts are engine-independent on system runs."""
    for num_clusters in (1, 2):
        cycles = {}
        for engine in ENGINES:
            _, _, system = _run(kernel, num_clusters, engine)
            cycles[engine] = tuple(system.per_cluster_cycles())
        assert len(set(cycles.values())) == 1, cycles


def test_base_variant_and_single_sweep_also_differential():
    """The explicit-store variant and iters=1 take different codegen
    paths (no SSR writeback, no inter-sweep barrier) -- same contract."""
    variant = Variant.from_label("Base")
    ref, golden, _ = _run("box3d1r", 1, "scalar", variant=variant,
                          iters=1)
    assert np.array_equal(ref, golden)
    for num_clusters in (2, 4):
        out, _, system = _run("box3d1r", num_clusters, "auto",
                              variant=variant, iters=1)
        assert np.array_equal(out, ref)
        # A single sweep needs no inter-sweep exchange.
        assert system.sys_barriers == 0


def test_single_sweep_interior_matches_classic_kernel():
    """iters=1 partitioned interior == the classic single-cluster
    kernel's interior (the pre-system reference path)."""
    from repro.eval.runner import run_stencil_variant

    spec, _ = get_stencil("j3d27pt")
    assert np.array_equal(iterated_golden(spec, GRID.make_input(1), 1),
                          _run("j3d27pt", 2, "auto", iters=1)[1])
    classic = run_stencil_variant("j3d27pt", VARIANT, grid=GRID)
    assert classic.correct  # classic harness checks its own golden
    out, _, _ = _run("j3d27pt", 2, "auto", iters=1)
    r = GRID.radius
    interior = out[r:r + GRID.nz, r:r + GRID.ny, r:r + GRID.nx]
    assert np.array_equal(interior, spec.golden(GRID.make_input(1)))


def test_split_slabs_covers_grid_exactly():
    for nz in range(1, 9):
        for clusters in range(1, nz + 1):
            slabs = split_slabs(nz, clusters)
            assert len(slabs) == clusters
            assert slabs[0][0] == 0
            assert sum(tz for _, tz in slabs) == nz
            for (z0, tz), (z1, _) in zip(slabs, slabs[1:]):
                assert z1 == z0 + tz
                assert tz >= 1
            sizes = [tz for _, tz in slabs]
            assert max(sizes) - min(sizes) <= 1


def test_split_slabs_rejects_too_many_clusters():
    with pytest.raises(ValueError, match="cannot split"):
        split_slabs(2, 3)


def test_run_system_stencil_metrics():
    """The sweep-facing wrapper: correctness flag, aggregate metrics,
    and the system meta the report layer consumes."""
    result = run_system_stencil("j3d27pt", VARIANT, grid=GRID,
                                num_clusters=2, iters=ITERS)
    assert result.correct
    assert result.cycles == max(result.meta["per_cluster_cycles"])
    assert len(result.meta["per_cluster_cycles"]) == 2
    assert result.meta["num_clusters"] == 2
    assert result.meta["sys_barriers"] == ITERS - 1
    assert result.meta["gmem_bytes_read"] > 0
    assert result.meta["gmem_bytes_written"] > 0
    assert 0.0 < result.fpu_utilization <= 1.0
    assert result.energy.breakdown["gmem"] > 0
    assert result.energy.breakdown["uncore_static"] > 0


def test_strong_scaling_speeds_up():
    """More clusters must reduce wall cycles on the fixed grid."""
    cycles = {}
    for num_clusters in CLUSTER_COUNTS:
        result = run_system_stencil("box3d1r", VARIANT, grid=GRID,
                                    num_clusters=num_clusters,
                                    iters=ITERS)
        cycles[num_clusters] = result.cycles
    assert cycles[2] < cycles[1]
    assert cycles[4] < cycles[2]


def test_interconnect_contention_and_latency_are_modelled():
    """Squeezing global bandwidth and raising latency must cost cycles
    (the interconnect/bandwidth ablation axis is real, not cosmetic)."""
    fast = run_system_stencil(
        "box3d1r", VARIANT, grid=GRID, num_clusters=2, iters=ITERS,
        sys_cfg=make_system_config(2, gmem_banks=8, gmem_latency=0))
    slow = run_system_stencil(
        "box3d1r", VARIANT, grid=GRID, num_clusters=2, iters=ITERS,
        sys_cfg=make_system_config(2, gmem_banks=1, gmem_latency=200))
    assert slow.cycles > fast.cycles
    assert slow.correct and fast.correct
    assert slow.meta["gmem_latency_cycles"] > \
        fast.meta["gmem_latency_cycles"]


@pytest.mark.parametrize("latency", [0, 5, 20])
def test_gmem_bandwidth_cap_is_never_exceeded(latency):
    """Concurrent cluster DMAs can never jointly move more global-memory
    bytes in one cycle than the configured aggregate bandwidth -- even
    at gmem_latency=0, where a dmcpy issued mid-cycle (after
    arbitration) must wait out its binding cycle before the first data
    beat (regression: unarbitrated first-cycle beats used to double the
    cap)."""
    from repro.system import GLOBAL_BASE, System

    program = f"""
    li t0, {GLOBAL_BASE}
    dmsrc t0
    li t0, 0x2000
    dmdst t0
    li t0, 1
    dmrep t0
    li t1, 256
    dmcpy a0, t1
wait:
    dmstat a1
    bnez a1, wait
    ebreak
"""
    cfg = SystemConfig(num_clusters=2, gmem_latency=latency)
    system = System(program, cfg)
    system.load_global_f64(GLOBAL_BASE, np.arange(64, dtype=np.float64))
    cap = cfg.gmem_bytes_per_cycle
    worst = 0
    # Drive the exact System.run per-cycle protocol so the per-cycle
    # global-memory traffic is observable.
    while not system.done:
        before = system.gmem.bytes_moved
        active = [cl for cl in system.clusters
                  if not system._cluster_done(cl)]
        now = min(cl.cycle for cl in active)
        batch = [cl for cl in active if cl.cycle == now]
        dmas = [cl.dma for cl in batch]
        if any(dma._queue for dma in dmas):
            system.interconnect.arbitrate(dmas)
        for cluster in batch:
            cluster.step()
        worst = max(worst, system.gmem.bytes_moved - before)
    assert worst <= cap, (latency, worst, cap)
    assert system.interconnect.contended_cycles > 0


def test_mixed_local_and_system_barrier_is_fast_forwardable():
    """One core at the cluster barrier, one at the system barrier: the
    local barrier cannot open (the sys-parked core has not arrived), so
    the state is dead and must be fast-forwardable up to an external
    horizon -- _dead_horizon must mirror _release_barrier's predicate
    instead of claiming the barrier opens this cycle."""
    from repro.core.cluster import Cluster

    program = """
    csrr a4, mhartid
    bnez a4, sysb
    csrrwi x0, 0x7C6, 1
    ebreak
sysb:
    csrrwi x0, 0x7C7, 1
    ebreak
"""
    cluster = Cluster(program, num_cores=2)
    for _ in range(10):
        cluster.step()
    assert cluster.cores[0].barrier_wait
    assert not cluster.cores[0].sys_barrier_wait
    assert cluster.cores[1].sys_barrier_wait
    target = cluster.cycle + 500
    assert cluster._dead_horizon(external=target) == target
    assert cluster._try_fast_forward(target, external=target)
    assert cluster.cycle == target
    # The local barrier stayed closed across the jump.
    assert cluster.cores[0].barrier_wait
    assert cluster.perf.value("barriers") == 0


def test_sys_barrier_standalone_cluster_is_not_released():
    """A cluster-local barrier release must never open the system
    barrier (regression guard for the _release_barrier change)."""
    from repro.core.cluster import Cluster, SimulationTimeout

    cluster = Cluster("    csrrwi x0, 0x7C7, 1\n    ebreak\n")
    with pytest.raises(SimulationTimeout):
        cluster.run(max_cycles=2000)
    assert cluster.core.sys_barrier_wait
    assert cluster.core.barrier_wait
    assert cluster.perf.value("barriers") == 0
