"""Span recording: tracer lifecycle, event shapes, instrumentation."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.api import Session, workload
from repro.core import Cluster, CoreConfig
from repro.kernels.ssrgen import SsrPatternAsm
from repro.obs import spans

A, B, C, D = 0x10000, 0x20000, 0x30000, 0x50000


@pytest.fixture
def enabled():
    """Memory-only tracer, guaranteed torn down after the test."""
    tracer = obs.enable()
    yield tracer
    obs.disable()


@pytest.fixture(autouse=True)
def _always_disabled_after():
    yield
    obs.disable()


# -- lifecycle ------------------------------------------------------------


def test_disabled_by_default():
    assert not obs.is_enabled()
    assert not spans.ENABLED
    with pytest.raises(RuntimeError):
        obs.tracer()


def test_enable_disable_roundtrip():
    tracer = obs.enable()
    assert obs.is_enabled() and spans.ENABLED
    assert obs.tracer() is tracer
    obs.disable()
    assert not obs.is_enabled()
    with pytest.raises(RuntimeError):
        obs.tracer()


def test_enable_is_idempotent_per_sink(tmp_path):
    first = obs.enable()
    assert obs.enable() is first          # same (memory) sink: kept
    replaced = obs.enable(jsonl_dir=tmp_path)
    assert replaced is not first          # new sink: new tracer
    assert obs.sink_dir() == str(tmp_path)


def test_sink_dir_none_when_memory_only(enabled):
    assert obs.sink_dir() is None


# -- event shapes ---------------------------------------------------------


def test_wall_span_shape_and_mutable_args(enabled):
    with enabled.span("work", cat="api", args={"a": 1}) as args:
        args["b"] = 2
    (event,) = enabled.events
    assert event["kind"] == "span" and event["clock"] == "wall"
    assert event["name"] == "work" and event["cat"] == "api"
    assert event["args"] == {"a": 1, "b": 2}
    assert event["dur"] >= 0.0
    assert event["pid"] == os.getpid()
    assert event["proc"] == f"repro pid {os.getpid()}"


def test_wall_span_recorded_even_on_exception(enabled):
    with pytest.raises(ValueError):
        with enabled.span("boom"):
            raise ValueError("x")
    assert [e["name"] for e in enabled.events] == ["boom"]


def test_instant_shape(enabled):
    enabled.instant("tick", cat="sweep", args={"point": "p"})
    (event,) = enabled.events
    assert event["kind"] == "instant" and event["clock"] == "wall"
    assert event["dur"] == 0.0


def test_sim_events_carry_context_label(enabled):
    assert obs.sim_label() == "sim"
    with obs.sim_context("j3d27pt/Chaining"):
        assert obs.sim_label() == "j3d27pt/Chaining"
        enabled.sim_span("fast-forward", "engine", 100, 140,
                         lane="cluster", args={"cycles_skipped": 40})
        enabled.sim_instant("fastpath.accept", "engine", 90)
    assert obs.sim_label() == "sim"
    span_ev, inst_ev = enabled.events
    assert span_ev["clock"] == "sim" and span_ev["ts"] == 100
    assert span_ev["dur"] == 40
    assert span_ev["proc"] == "sim j3d27pt/Chaining"
    assert inst_ev["kind"] == "instant" and inst_ev["dur"] == 0


# -- JSONL sink -----------------------------------------------------------


def test_jsonl_sink_writes_per_process_segment(tmp_path):
    tracer = obs.enable(jsonl_dir=tmp_path, keep_in_memory=False)
    tracer.instant("tick")
    obs.disable()
    segment = tmp_path / f"spans-{os.getpid()}.jsonl"
    assert segment.exists()
    (line,) = segment.read_text().splitlines()
    assert json.loads(line)["name"] == "tick"
    assert tracer.events == []            # sink-only mode buffers nothing


def test_ensure_worker_enables_from_dir(tmp_path):
    assert not obs.is_enabled()
    spans.ensure_worker(str(tmp_path))
    assert obs.is_enabled() and obs.sink_dir() == str(tmp_path)
    obs.disable()
    spans.ensure_worker(None)             # parent ran without obs
    assert not obs.is_enabled()


# -- instrumentation sites ------------------------------------------------


def test_session_run_emits_spans_and_meta(enabled):
    result = Session().run(workload("vecop", "chaining", n=16))
    names = [e["name"] for e in enabled.events]
    assert "Session.run" in names and "execute" in names
    run_obs = result.meta["obs"]
    assert run_obs["engine"] == "auto"
    assert "wall_seconds" in run_obs
    assert run_obs["fastpath"]["regions_seen"] >= 1


def test_disabled_run_keeps_meta_clean():
    result = Session().run(workload("vecop", "chaining", n=16))
    assert "obs" not in result.meta


def test_fastpath_reject_event_carries_reason(enabled):
    rng = np.random.default_rng(7)
    n = 64
    reads = "\n".join(
        SsrPatternAsm(ssr=i, base=base, bounds=[n], strides=[8]).emit()
        for i, base in enumerate((C, D)))
    asm = f"""
{reads}
    csrrsi x0, ssr_enable, 1
    li t2, {n - 1}
    frep.o t2, 0
    fmadd.d ft3, ft0, ft1, ft3
    csrrci x0, ssr_enable, 1
    ebreak
"""
    cluster = Cluster(asm, cfg=CoreConfig(engine="fast"))
    cluster.load_f64(C, rng.uniform(-1, 1, n))
    cluster.load_f64(D, rng.uniform(-1, 1, n))
    cluster.run(max_cycles=100_000)
    rejects = [e for e in enabled.events if e["name"] == "fastpath.reject"]
    assert rejects
    assert rejects[0]["args"]["reason"] == "cross-iteration-register-carry"
    assert cluster.fastpath.stats["reject_reasons"] == {
        "cross-iteration-register-carry": 1}


def test_fastpath_accept_event(enabled):
    Session().run(workload("vecop", "chaining", n=64))
    accepts = [e for e in enabled.events if e["name"] == "fastpath.accept"]
    assert accepts
    assert accepts[0]["args"]["iters"] >= 1
    assert accepts[0]["proc"] == "sim vecop/chaining n=64"


def test_system_run_emits_cluster_and_dma_events(enabled):
    result = Session().run(
        workload("j3d27pt", "Chaining", grid=(4, 4, 8),
                 num_clusters=2, iters=2))
    names = {e["name"] for e in enabled.events}
    assert {"System.run", "cluster.run", "dma", "barrier.open"} <= names
    lanes = {e["lane"] for e in enabled.events
             if e["name"] == "cluster.run"}
    assert lanes == {"cluster0", "cluster1"}
    assert result.meta["obs"]["num_clusters"] == 2
