"""Concurrent multi-writer stores: the invariant the serve layer
(and every cooperating campaign host) leans on.

Two real processes append to one sharded store simultaneously --
overlapping keys and writer-private keys, hundreds of interleaved
appends -- and the store must come out with no corrupt lines, a clean
``verify()`` (same-key records are byte-identical, hence benign
duplicates, never conflicts), and correct dedup-on-load.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro import __version__
from repro.sweep.cache import ResultCache, point_key, result_to_record
from repro.sweep.runner import execute_point
from repro.sweep.spec import make_point

_WRITER = r"""
import json, sys
from repro.api.workloads import Workload
from repro.sweep.cache import ResultCache, result_from_record

manifest = json.load(open(sys.argv[1]))
cache = ResultCache(manifest["store"])
for _ in range(manifest["rounds"]):
    for entry in manifest["records"]:
        cache.put(entry["key"],
                  Workload.from_canonical(entry["point"]),
                  result_from_record(entry["result"]),
                  entry["seconds"], entry["version"])
print(len(cache))
"""


def _manifest(store: Path, ns, rounds: int) -> dict:
    records = []
    for n in ns:
        point = make_point("vecop", "baseline", n=n)
        records.append({
            "key": point_key(point, __version__),
            "point": point.canonical(),
            "result": result_to_record(execute_point(point)),
            # Same-key appends from racing writers are benign only
            # when byte-identical, so the wall-clock field is pinned.
            "seconds": 0.25,
            "version": __version__,
        })
    return {"store": str(store), "records": records, "rounds": rounds}


def _spawn(manifest_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src")
    return subprocess.Popen(
        [sys.executable, "-c", _WRITER, str(manifest_path)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


def test_two_processes_same_and_different_keys(tmp_path):
    store = tmp_path / "store"
    shared = _manifest(store, ns=[16, 32, 48], rounds=40)
    only_a = _manifest(store, ns=[64, 80], rounds=40)
    only_b = _manifest(store, ns=[96, 112], rounds=40)
    # writer A: shared + private-A keys; writer B: shared + private-B
    manifest_a = dict(shared,
                      records=shared["records"] + only_a["records"])
    manifest_b = dict(shared,
                      records=shared["records"] + only_b["records"])
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    path_a.write_text(json.dumps(manifest_a))
    path_b.write_text(json.dumps(manifest_b))

    proc_a = _spawn(path_a)
    proc_b = _spawn(path_b)
    out_a, err_a = proc_a.communicate(timeout=120)
    out_b, err_b = proc_b.communicate(timeout=120)
    assert proc_a.returncode == 0, err_a
    assert proc_b.returncode == 0, err_b

    cache = ResultCache(store)
    expected_keys = {r["key"] for r in manifest_a["records"]} | \
                    {r["key"] for r in manifest_b["records"]}
    # dedup-on-load: one record per unique key, none corrupt
    assert len(cache) == len(expected_keys) == 7
    assert cache.corrupt_lines == 0
    for record in manifest_a["records"] + manifest_b["records"]:
        hit = cache.get_record(record["key"])
        assert hit is not None
        assert hit["result"] == record["result"]
        assert hit["seconds"] == 0.25

    report = cache.verify()
    assert report["ok"], {k: v for k, v in report.items()
                          if k not in ("duplicates",)}
    assert not report["corrupt"]
    assert not report["conflicts"]
    assert not report["orphans"]
    # 560 appends over 7 unique keys: duplication is expected and
    # provably benign (byte-identical lines)
    assert report["records"] == 2 * 40 * 5
    assert len(report["duplicates"]) == report["records"] - 7


def test_interleaved_lines_stay_line_atomic(tmp_path):
    """Every line of every shard parses: appends from two processes
    interleave at line granularity, never mid-line."""
    store = tmp_path / "store"
    manifest = _manifest(store, ns=[16, 32, 48, 64], rounds=60)
    path = tmp_path / "m.json"
    path.write_text(json.dumps(manifest))
    procs = [_spawn(path), _spawn(path)]
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
    total = 0
    for shard in sorted((store / "shards").glob("*.jsonl")):
        for line in shard.read_text().splitlines():
            record = json.loads(line)  # raises on a torn line
            assert record["key"][:2] == shard.stem
            total += 1
    assert total == 2 * 60 * 4
